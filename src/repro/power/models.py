"""Component power models for the server and the SNIC (§3.2, Fig. 6).

The model is deliberately simple — idle floors plus activity-proportional
terms — because that is exactly the structure the paper's measurements
reveal: a 252 W idle server, a 29 W idle SNIC, up to ~150 W of host
active power and up to ~5.4 W of SNIC active power.  Key Observation 5
(energy efficiency is dominated by throughput because idle power
dominates) is a direct consequence of these magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from ..calibration import POWER, PowerCalibration


@dataclass(frozen=True)
class ComponentLoad:
    """A utilization snapshot of the server while running a function."""

    host_busy_cores: float = 0.0  # average number of busy host cores
    snic_busy_cores: float = 0.0  # average number of busy SNIC Arm cores
    accel_utilization: Mapping[str, float] = field(default_factory=dict)
    # engines that are programmed (rules loaded) and drawing static power
    accel_engaged: frozenset = frozenset()
    # ondemand governor parks the host while the SNIC serves (§3.1)
    host_parked: bool = False

    def __post_init__(self):
        if self.host_busy_cores < 0 or self.snic_busy_cores < 0:
            raise ValueError("negative core counts")
        for name, utilization in self.accel_utilization.items():
            if not 0.0 <= utilization <= 1.0:
                raise ValueError(f"accelerator utilization out of range: {name}")


IDLE = ComponentLoad()


class SnicPowerModel:
    """Power of the SmartNIC alone (what the riser-card setup measures)."""

    def __init__(self, calibration: PowerCalibration = POWER):
        self.calibration = calibration

    def power(self, load: ComponentLoad) -> float:
        watts = self.calibration.snic_idle_w
        watts += load.snic_busy_cores * self.calibration.snic_core_active_w
        for name in load.accel_engaged:
            watts += self.calibration.snic_accel_engaged_w.get(name, 0.0)
        for name, utilization in load.accel_utilization.items():
            engine_watts = self.calibration.snic_accel_active_w.get(name, 0.0)
            watts += engine_watts * utilization
        return watts

    def active_power(self, load: ComponentLoad) -> float:
        return self.power(load) - self.calibration.snic_idle_w


class ServerPowerModel:
    """System-wide wall power (what the BMC/DCMI sensor measures).

    ``has_snic`` distinguishes the SNIC server from the comparable
    standard-NIC server of the TCO analysis (§5.2).
    """

    def __init__(self, calibration: PowerCalibration = POWER, has_snic: bool = True):
        self.calibration = calibration
        self.has_snic = has_snic
        self.snic = SnicPowerModel(calibration) if has_snic else None

    @property
    def idle_power(self) -> float:
        base = self.calibration.server_idle_w
        if not self.has_snic:
            # swap the idle SNIC for the idle standard NIC
            base = base - self.calibration.snic_idle_w + self.calibration.nic_idle_w
        return base

    def power(self, load: ComponentLoad) -> float:
        watts = self.idle_power
        if load.host_busy_cores > 0:
            host_cores = min(load.host_busy_cores, 18.0)
            watts += host_cores * self.calibration.host_core_active_w
            watts += self.calibration.host_platform_active_w * min(
                host_cores / 8.0, 1.0
            )
        elif load.host_parked:
            watts -= self.calibration.host_ondemand_savings_w
        if self.snic is not None:
            watts += self.snic.active_power(load)
        return watts

    def active_power(self, load: ComponentLoad) -> float:
        return self.power(load) - self.idle_power
