"""Power models, sensors, and energy-efficiency accounting."""

from .energy import EnergyReport, efficiency_ratio, energy_per_request
from .models import IDLE, ComponentLoad, ServerPowerModel, SnicPowerModel
from .sensors import (
    BmcSensor,
    PowerSensor,
    PowerTrace,
    RiserCardSetup,
    YoctoWattSensor,
    validate_isolation,
)

__all__ = [
    "EnergyReport",
    "efficiency_ratio",
    "energy_per_request",
    "IDLE",
    "ComponentLoad",
    "ServerPowerModel",
    "SnicPowerModel",
    "BmcSensor",
    "PowerSensor",
    "PowerTrace",
    "RiserCardSetup",
    "YoctoWattSensor",
    "validate_isolation",
]
