"""Power measurement instruments (§3.2).

Two instruments, with the paper's exact characteristics:

* :class:`BmcSensor` — the DCMI/IPMI path through the baseboard
  management controller: 1 Hz sampling, ±1 W accuracy, whole-server scope
  (it cannot isolate a PCIe device);
* :class:`YoctoWattSensor` — the custom riser-card setup: 10 Hz sampling,
  ±2 mW accuracy, per-rail scope.  :class:`RiserCardSetup` combines the
  two sensors tapping the 12 V and 3.3 V PCIe pins.

Both sample a ``power_fn(t) -> watts`` ground truth through the event
kernel, so traces line up with whatever workload the simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..core.engine import Simulator

PowerFn = Callable[[float], float]


@dataclass
class PowerTrace:
    """Timestamped sensor readings."""

    times: List[float] = field(default_factory=list)
    watts: List[float] = field(default_factory=list)

    def append(self, t: float, w: float) -> None:
        self.times.append(t)
        self.watts.append(w)

    def __len__(self) -> int:
        return len(self.times)

    def average(self) -> float:
        if not self.watts:
            return 0.0
        return float(np.mean(self.watts))

    def energy_joules(self) -> float:
        """Trapezoidal energy over the trace."""
        if len(self.watts) < 2:
            return 0.0
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(self.watts, self.times))


class PowerSensor:
    """A periodic sampler with quantization and accuracy error."""

    def __init__(self, sample_hz: float, accuracy_w: float,
                 resolution_w: float, rng: Optional[np.random.Generator] = None,
                 name: str = "sensor"):
        if sample_hz <= 0:
            raise ValueError("sample rate must be positive")
        self.sample_hz = sample_hz
        self.accuracy_w = accuracy_w
        self.resolution_w = resolution_w
        self.rng = rng
        self.name = name

    def reading(self, true_watts: float) -> float:
        value = true_watts
        if self.rng is not None and self.accuracy_w > 0:
            value += float(self.rng.uniform(-self.accuracy_w, self.accuracy_w))
        if self.resolution_w > 0:
            value = round(value / self.resolution_w) * self.resolution_w
        return max(value, 0.0)

    def attach(self, sim: Simulator, power_fn: PowerFn,
               duration: Optional[float] = None) -> PowerTrace:
        """Start sampling on the kernel; returns the (live) trace."""
        trace = PowerTrace()
        period = 1.0 / self.sample_hz

        def sampler():
            while duration is None or sim.now < duration:
                trace.append(sim.now, self.reading(power_fn(sim.now)))
                yield sim.timeout(period)

        sim.process(sampler(), name=f"power-sensor:{self.name}")
        return trace


class BmcSensor(PowerSensor):
    """DCMI via ipmitool: 1 Hz, ±1 W, system-wide (§3.2)."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        super().__init__(sample_hz=1.0, accuracy_w=1.0, resolution_w=1.0,
                         rng=rng, name="bmc-dcmi")


class YoctoWattSensor(PowerSensor):
    """Yocto-Watt on a PCIe rail: 10 Hz, ±2 mW (§3.2)."""

    def __init__(self, rail: str, rng: Optional[np.random.Generator] = None):
        super().__init__(sample_hz=10.0, accuracy_w=0.002, resolution_w=0.001,
                         rng=rng, name=f"yocto-watt:{rail}")
        self.rail = rail


# PCIe slots power devices mostly from 12 V with a small 3.3 V share.
RAIL_SPLIT = {"12V": 0.88, "3.3V": 0.12}


class RiserCardSetup:
    """The custom measurement rig of Fig. 3: a riser card exposing the
    12 V and 3.3 V pins to two Yocto-Watt sensors."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.sensor_12v = YoctoWattSensor("12V", rng)
        self.sensor_3v3 = YoctoWattSensor("3.3V", rng)

    def attach(self, sim: Simulator, device_power_fn: PowerFn,
               duration: Optional[float] = None) -> Tuple[PowerTrace, PowerTrace]:
        trace_12v = self.sensor_12v.attach(
            sim, lambda t: device_power_fn(t) * RAIL_SPLIT["12V"], duration
        )
        trace_3v3 = self.sensor_3v3.attach(
            sim, lambda t: device_power_fn(t) * RAIL_SPLIT["3.3V"], duration
        )
        return trace_12v, trace_3v3

    @staticmethod
    def device_power(trace_12v: PowerTrace, trace_3v3: PowerTrace) -> float:
        """Total device power = sum of the rail averages."""
        return trace_12v.average() + trace_3v3.average()


def validate_isolation(
    server_with_device_w: float,
    server_without_device_w: float,
    device_w: float,
    tolerance_w: float = 3.0,
) -> bool:
    """The paper's validation: (server with SNIC) - (server without SNIC)
    must approximately equal the riser-card measurement of the SNIC."""
    return abs((server_with_device_w - server_without_device_w) - device_w) <= tolerance_w
