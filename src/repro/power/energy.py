"""Energy-efficiency computation (Fig. 6).

The paper defines energy efficiency as throughput divided by system-wide
energy consumption; for a fixed measurement window this reduces to
throughput per watt, and the comparison between platforms reduces to the
ratio of those quotients.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyReport:
    """One platform's power/efficiency summary at an operating point."""

    label: str
    throughput: float  # requests/s or Gb/s, caller-consistent
    total_power_w: float
    device_power_w: float = 0.0  # the (S)NIC alone
    idle_power_w: float = 0.0

    @property
    def active_power_w(self) -> float:
        return self.total_power_w - self.idle_power_w

    @property
    def efficiency(self) -> float:
        """Throughput per watt (throughput / energy per second)."""
        if self.total_power_w <= 0:
            return 0.0
        return self.throughput / self.total_power_w


def efficiency_ratio(snic: EnergyReport, host: EnergyReport) -> float:
    """SNIC-processing efficiency normalized to host-processing (Fig. 6)."""
    if host.efficiency == 0:
        return float("inf")
    return snic.efficiency / host.efficiency


def energy_per_request(report: EnergyReport) -> float:
    """Joules per unit of work — the TCO-relevant quantity."""
    if report.throughput <= 0:
        return float("inf")
    return report.total_power_w / report.throughput
