"""TCO analysis, table/figure rendering, CSV export, report generation."""

from .export import (
    write_fig4_csv,
    write_fig5_csv,
    write_fig6_csv,
    write_table5_csv,
)
from .plots import bar_chart, fig4_chart, fig5_chart, fig6_chart, line_plot
from .tco import (
    FleetPlan,
    ServerCosts,
    TcoComparison,
    compare,
    format_comparison,
)


def generate_report(*args, **kwargs):
    """Lazy wrapper: .report imports the experiments package, which in
    turn imports analysis.tco — importing it eagerly here would cycle."""
    from .report import generate_report as _generate_report

    return _generate_report(*args, **kwargs)


def format_all_tables():
    from .tables import format_all_tables as _format_all_tables

    return _format_all_tables()


def format_table1():
    from .tables import format_table1 as _format

    return _format()


def format_table2():
    from .tables import format_table2 as _format

    return _format()


def format_table3():
    from .tables import format_table3 as _format

    return _format()


__all__ = [
    "write_fig4_csv",
    "write_fig5_csv",
    "write_fig6_csv",
    "write_table5_csv",
    "bar_chart",
    "fig4_chart",
    "fig5_chart",
    "fig6_chart",
    "line_plot",
    "generate_report",
    "format_all_tables",
    "format_table1",
    "format_table2",
    "format_table3",
    "FleetPlan",
    "ServerCosts",
    "TcoComparison",
    "compare",
    "format_comparison",
]
