"""Total-cost-of-ownership analysis (Table 5, §5.2).

The paper compares a fleet of SNIC-equipped servers against a fleet of
standard-NIC servers delivering the *same aggregate throughput*: the NIC
fleet is scaled up when the SNIC runs a function faster (Compress needs
35 NIC servers to match 10 SNIC servers).  Cost = capital (server + the
chosen NIC) + electricity over the 5-year lifetime at $0.162/kWh.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hardware.specs import (
    ELECTRICITY_USD_PER_KWH,
    PRICES_USD,
    SERVER_LIFETIME_YEARS,
)

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class ServerCosts:
    """Capital cost of one server in each configuration."""

    base_usd: float = PRICES_USD["server_without_nic"]
    snic_usd: float = PRICES_USD["snic_bluefield2"]
    nic_usd: float = PRICES_USD["nic_connectx6dx"]

    @property
    def snic_server_usd(self) -> float:
        return self.base_usd + self.snic_usd

    @property
    def nic_server_usd(self) -> float:
        return self.base_usd + self.nic_usd


@dataclass(frozen=True)
class FleetPlan:
    """One side of the Table 5 comparison."""

    servers: int
    power_per_server_w: float
    server_cost_usd: float
    lifetime_years: float = SERVER_LIFETIME_YEARS
    electricity_usd_per_kwh: float = ELECTRICITY_USD_PER_KWH

    @property
    def energy_per_server_kwh(self) -> float:
        hours = self.lifetime_years * HOURS_PER_YEAR
        return self.power_per_server_w * hours / 1000.0

    @property
    def power_cost_per_server_usd(self) -> float:
        return self.energy_per_server_kwh * self.electricity_usd_per_kwh

    @property
    def tco_usd(self) -> float:
        return self.servers * (self.server_cost_usd + self.power_cost_per_server_usd)


@dataclass(frozen=True)
class TcoComparison:
    application: str
    snic_fleet: FleetPlan
    nic_fleet: FleetPlan

    @property
    def savings_fraction(self) -> float:
        """Positive = the SNIC fleet is cheaper (the paper's convention)."""
        if self.nic_fleet.tco_usd <= 0:
            return 0.0
        return 1.0 - self.snic_fleet.tco_usd / self.nic_fleet.tco_usd


def compare(
    application: str,
    snic_power_w: float,
    nic_power_w: float,
    throughput_ratio_snic_over_host: float,
    snic_servers: int = 10,
    costs: ServerCosts = ServerCosts(),
) -> TcoComparison:
    """Build the Table 5 comparison for one application.

    ``throughput_ratio_snic_over_host`` sizes the NIC fleet: matching the
    SNIC fleet's aggregate throughput needs ``ceil(snic_servers * ratio)``
    standard servers (ratio <= 1 keeps the fleets equal, as the paper does
    for fio/OvS/REM where throughputs are comparable).
    """
    if throughput_ratio_snic_over_host <= 0:
        raise ValueError("throughput ratio must be positive")
    if throughput_ratio_snic_over_host <= 1.07:
        # comparable throughput (fio / OvS / REM): equal fleets, as in the
        # paper; measurement noise must not add a phantom server
        nic_servers = snic_servers
    else:
        nic_servers = math.ceil(snic_servers * throughput_ratio_snic_over_host)
    return TcoComparison(
        application=application,
        snic_fleet=FleetPlan(
            servers=snic_servers,
            power_per_server_w=snic_power_w,
            server_cost_usd=costs.snic_server_usd,
        ),
        nic_fleet=FleetPlan(
            servers=nic_servers,
            power_per_server_w=nic_power_w,
            server_cost_usd=costs.nic_server_usd,
        ),
    )


def format_comparison(comparisons) -> str:
    lines = [
        f"{'application':<12} {'SNIC srv':>8} {'NIC srv':>8} {'SNIC W':>7} "
        f"{'NIC W':>7} {'SNIC TCO':>11} {'NIC TCO':>11} {'savings':>8}"
    ]
    for c in comparisons:
        lines.append(
            f"{c.application:<12} {c.snic_fleet.servers:>8} {c.nic_fleet.servers:>8} "
            f"{c.snic_fleet.power_per_server_w:>7.0f} {c.nic_fleet.power_per_server_w:>7.0f} "
            f"${c.snic_fleet.tco_usd:>10,.0f} ${c.nic_fleet.tco_usd:>10,.0f} "
            f"{c.savings_fraction:>7.1%}"
        )
    return "\n".join(lines)
