"""Latency attribution: where each operating point's sojourn comes from.

Every fast-path queue simulation decomposes per-request latency into
components that sum exactly to the sojourn (see
``repro.core.queueing.COMPONENTS``): FIFO queueing wait, service, batch
formation wait (accelerator path), the fixed stack-RTT floor, and
retry/fault stall.  :func:`outcome_to_metrics` folds the post-warmup
means of those components into ``RunMetrics.extra`` as ``attr.*`` keys;
this module renders them as the attribution table in EXPERIMENTS.md.

Two views per operating point:

* **mean** — component means over the measurement window.  These sum to
  the reported ``latency_mean`` exactly (same warmup trim), which the
  ``check`` column verifies.
* **p99 tail** — component means conditioned on requests at or above
  the window's p99, showing what the tail is made of (queueing for
  CPU platforms near saturation, batch formation for the accelerator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..core.queueing import COMPONENTS

COMPONENT_LABELS = {
    "queue_wait": "queue",
    "service": "service",
    "batch_wait": "batch",
    "stack_rtt": "stack",
    "stall": "stall",
}


@dataclass
class AttributionRow:
    """One operating point's latency decomposition (seconds)."""

    function: str
    platform: str
    mean_s: float
    tail_mean_s: float
    mean_components: Dict[str, float] = field(default_factory=dict)
    tail_components: Dict[str, float] = field(default_factory=dict)

    @property
    def component_sum_s(self) -> float:
        return sum(self.mean_components.values())

    @property
    def residual_fraction(self) -> float:
        """|sum(components) - mean| / mean; ~0 when attribution is exact."""
        if self.mean_s <= 0:
            return 0.0
        return abs(self.component_sum_s - self.mean_s) / self.mean_s


def row_from_metrics(function: str, platform: str, metrics) -> AttributionRow:
    """Build a row from a :class:`RunMetrics` carrying ``attr.*`` extras."""
    extra = metrics.extra or {}
    row = AttributionRow(
        function=function,
        platform=platform,
        mean_s=extra.get("attr.sojourn_mean_s", metrics.latency_mean),
        tail_mean_s=extra.get("attr.tail_mean_s", metrics.latency_p99),
    )
    for name in COMPONENTS:
        mean = extra.get(f"attr.{name}_mean_s")
        if mean is not None:
            row.mean_components[name] = mean
        tail = extra.get(f"attr.{name}_tail_s")
        if tail is not None:
            row.tail_components[name] = tail
    return row


def rows_from_fig4(fig4_rows: Sequence) -> List[AttributionRow]:
    """Host and SNIC attribution rows for every Fig. 4 function."""
    rows: List[AttributionRow] = []
    for fig_row in fig4_rows:
        rows.append(row_from_metrics(fig_row.key, "host", fig_row.host.metrics))
        rows.append(row_from_metrics(fig_row.key, fig_row.snic_platform,
                                     fig_row.snic.metrics))
    return rows


def _us(value: float) -> str:
    return f"{value * 1e6:.2f}"


def format_attribution_markdown(rows: Sequence[AttributionRow]) -> str:
    """The EXPERIMENTS.md table: mean + tail split per operating point."""
    lines = [
        "| function | platform | mean us | queue | service | batch | stack "
        "| stall | check | p99-tail us | tail queue | tail service |",
        "|---|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        comp = row.mean_components
        tail = row.tail_components
        check = "ok" if row.residual_fraction <= 0.01 else (
            f"off {row.residual_fraction:.1%}")
        lines.append(
            f"| {row.function} | {row.platform} | {_us(row.mean_s)} "
            f"| {_us(comp.get('queue_wait', 0.0))} "
            f"| {_us(comp.get('service', 0.0))} "
            f"| {_us(comp.get('batch_wait', 0.0))} "
            f"| {_us(comp.get('stack_rtt', 0.0))} "
            f"| {_us(comp.get('stall', 0.0))} "
            f"| {check} "
            f"| {_us(row.tail_mean_s)} "
            f"| {_us(tail.get('queue_wait', 0.0) + tail.get('batch_wait', 0.0))} "
            f"| {_us(tail.get('service', 0.0))} |"
        )
    return "\n".join(lines)


def format_attribution(rows: Sequence[AttributionRow]) -> str:
    """Aligned text rendering for the CLI."""
    lines = [
        f"{'function':<24} {'plat':<10} {'mean us':>9} {'queue':>8} "
        f"{'service':>8} {'batch':>8} {'stack':>8} {'stall':>8} "
        f"{'tail us':>9}"
    ]
    for row in rows:
        comp = row.mean_components
        lines.append(
            f"{row.function:<24} {row.platform:<10} {_us(row.mean_s):>9} "
            f"{_us(comp.get('queue_wait', 0.0)):>8} "
            f"{_us(comp.get('service', 0.0)):>8} "
            f"{_us(comp.get('batch_wait', 0.0)):>8} "
            f"{_us(comp.get('stack_rtt', 0.0)):>8} "
            f"{_us(comp.get('stall', 0.0)):>8} "
            f"{_us(row.tail_mean_s):>9}"
        )
    return "\n".join(lines)
