"""ASCII renderings of the paper's figures.

The paper's Fig. 4 and Fig. 6 are grouped bar charts and Fig. 5 is a set
of line plots; these renderers draw the same shapes in a terminal so the
CLI output *looks like* the figures, not just tables of numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 48,
    reference: float = 1.0,
    log_scale: bool = True,
) -> str:
    """Horizontal bars with a reference line (the 'host = 1.0' axis).

    Log scale matches the paper's figures, which span 0.1x-3.5x.
    """
    if not items:
        return title
    values = [value for _, value in items]
    finite = [v for v in values if v > 0 and math.isfinite(v)]
    if not finite:
        return title
    if log_scale:
        low = min(min(finite), reference / 1.05)
        high = max(max(finite), reference * 1.05)
        span = math.log(high) - math.log(low)

        def position(value: float) -> int:
            if value <= 0:
                return 0
            return int(round((math.log(value) - math.log(low)) / span * (width - 1)))
    else:
        high = max(max(finite), reference)

        def position(value: float) -> int:
            return int(round(value / high * (width - 1)))

    reference_column = position(reference)
    label_width = max(len(label) for label, _ in items)
    lines = [title] if title else []
    for label, value in items:
        column = position(value) if value > 0 and math.isfinite(value) else 0
        cells = [" "] * width
        start, end = sorted((reference_column, column))
        for i in range(start, end + 1):
            cells[i] = "#"
        cells[reference_column] = "|"
        bar = "".join(cells)
        lines.append(f"{label:<{label_width}} {bar} {value:6.2f}")
    pointer = " " * (label_width + 1 + reference_column) + "^"
    lines.append(pointer + f" host = {reference:g}")
    return "\n".join(lines)


def line_plot(
    series: Dict[str, List[Tuple[float, float]]],
    title: str = "",
    width: int = 64,
    height: int = 16,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Multiple (x, y) series on one character grid, distinct markers."""
    markers = "ox+*#@%&"
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return title
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            column = int(round((x - x_low) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_low) / y_span * (height - 1)))
            grid[row][column] = marker
    lines = [title] if title else []
    if y_label:
        lines.append(f"{y_label} (top={y_high:g}, bottom={y_low:g})")
    lines += ["  |" + "".join(row) for row in grid]
    lines.append("  +" + "-" * width)
    axis = f"   {x_low:g}" + " " * max(1, width - 12) + f"{x_high:g}"
    lines.append(axis + (f"  {x_label}" if x_label else ""))
    legend = "   " + "   ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(legend)
    return "\n".join(lines)


def fig4_chart(rows) -> str:
    """The Fig. 4 throughput-ratio bar chart from measured rows."""
    items = [(row.display, row.throughput_ratio) for row in rows]
    return bar_chart(
        items,
        title="Fig. 4: SNIC/host maximum-throughput ratio (log scale)",
    )


def fig6_chart(rows) -> str:
    items = [(row.display, row.efficiency_ratio) for row in rows]
    return bar_chart(
        items,
        title="Fig. 6: SNIC/host energy-efficiency ratio (log scale)",
    )


def fig5_chart(curves) -> str:
    series = {
        curve.label: [(p.offered_gbps, p.achieved_gbps) for p in curve.points]
        for curve in curves
    }
    return line_plot(
        series,
        title="Fig. 5: achieved vs offered rate",
        x_label="offered Gb/s",
        y_label="achieved Gb/s",
    )
