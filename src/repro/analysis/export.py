"""CSV and JSON export of measured results.

Reviewers and downstream tooling want raw numbers, not rendered tables:
the CSV writers serialize the Fig. 4/5/6 and Table 5 result objects with
one row per measurement point, suitable for pandas/gnuplot, and the JSON
artifact writer wraps any registered experiment's result in a stable
machine-readable envelope (``python -m repro <verb> --json FILE``) that
CI validates against the spec's declared schema.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
from typing import IO, Any, Dict, List, Mapping, Optional, Sequence


def write_fig4_csv(stream: IO[str], rows: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "key", "display", "category", "snic_platform",
        "host_capacity_rps", "host_throughput_rps", "host_goodput_gbps",
        "host_p99_us", "host_power_w",
        "snic_capacity_rps", "snic_throughput_rps", "snic_goodput_gbps",
        "snic_p99_us", "snic_power_w",
        "throughput_ratio", "p99_ratio",
    ])
    for row in rows:
        writer.writerow([
            row.key, row.display, row.category, row.snic_platform,
            f"{row.host.capacity_rps:.2f}",
            f"{row.host.throughput_rps:.2f}",
            f"{row.host.goodput_gbps:.4f}",
            f"{row.host.p99_latency_s * 1e6:.3f}",
            f"{row.host.server_power_w:.2f}",
            f"{row.snic.capacity_rps:.2f}",
            f"{row.snic.throughput_rps:.2f}",
            f"{row.snic.goodput_gbps:.4f}",
            f"{row.snic.p99_latency_s * 1e6:.3f}",
            f"{row.snic.server_power_w:.2f}",
            f"{row.throughput_ratio:.4f}",
            f"{row.p99_ratio:.4f}",
        ])
    return len(rows)


def write_fig5_csv(stream: IO[str], figure) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "ruleset", "series", "platform", "cores",
        "offered_gbps", "achieved_gbps", "p99_us", "saturated",
    ])
    count = 0
    for ruleset, curves in figure.items():
        for curve in curves:
            for point in curve.points:
                writer.writerow([
                    ruleset, curve.label, curve.platform,
                    curve.cores if curve.cores is not None else "",
                    f"{point.offered_gbps:.2f}",
                    f"{point.achieved_gbps:.3f}",
                    f"{point.p99_latency_s * 1e6:.3f}",
                    int(point.saturated),
                ])
                count += 1
    return count


def write_fig6_csv(stream: IO[str], rows: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "key", "display", "snic_platform",
        "host_power_w", "snic_power_w", "snic_device_w",
        "host_goodput_gbps", "snic_goodput_gbps", "efficiency_ratio",
    ])
    for row in rows:
        writer.writerow([
            row.key, row.display, row.snic_platform,
            f"{row.host_power_w:.2f}", f"{row.snic_power_w:.2f}",
            f"{row.snic_device_w:.2f}",
            f"{row.host_goodput_gbps:.4f}", f"{row.snic_goodput_gbps:.4f}",
            f"{row.efficiency_ratio:.4f}",
        ])
    return len(rows)


# ---------------------------------------------------------------------------
# JSON artifacts
# ---------------------------------------------------------------------------

# Shape of the envelope every `--json` artifact is wrapped in; the CI
# smoke matrix validates this for every registered verb, then validates
# the "result" payload against the experiment spec's own schema.
ARTIFACT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["experiment", "title", "tier", "seed", "fidelity",
                 "code_version", "result", "partial"],
    "properties": {
        "experiment": {"type": "string"},
        "title": {"type": "string"},
        "tier": {"type": "string"},
        "seed": {"type": "integer"},
        "code_version": {"type": "string"},
        "fidelity": {
            "type": "object",
            "required": ["samples", "requests"],
            "properties": {
                "samples": {"type": "integer"},
                "requests": {"type": "integer"},
            },
        },
        # Run-farm degradation: a partial artifact carries a null (or
        # incomplete) result plus the quarantined unit names; its
        # "result" payload is NOT validated against the spec schema.
        "partial": {"type": "boolean"},
        "quarantined": {"type": "array", "items": {"type": "string"}},
        # SLO burn monitoring (repro.obs.slo): purely informational —
        # present only when targets were evaluated, never required, and
        # never a verdict input.
        "slo": {
            "type": "object",
            "required": ["evaluated", "breaches", "targets"],
            "properties": {
                "evaluated": {"type": "integer"},
                "breaches": {"type": "integer"},
                "targets": {"type": "array", "items": {"type": "object"}},
            },
        },
    },
}


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` to strict-JSON-safe primitives.

    Dataclasses become dicts, numpy scalars/arrays become Python
    numbers/lists, and non-finite floats become ``null`` — ``NaN`` is
    valid to :mod:`json` but not to strict JSON parsers, and artifacts
    are consumed by tooling we don't control.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if hasattr(value, "tolist"):  # numpy scalar or array
        return to_jsonable(value.tolist())
    if isinstance(value, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in value]
    return str(value)


def build_artifact(
    *,
    experiment: str,
    title: str,
    tier: str,
    seed: int,
    fidelity: Mapping[str, Any],
    result: Any,
    partial: bool = False,
    quarantined: Sequence[str] = (),
    slo: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The machine-readable envelope around one experiment's result.

    ``partial=True`` marks a run-farm degraded artifact: the supervisor
    quarantined the named units, ``result`` may be ``null``, and
    downstream schema validation of the result payload is skipped.
    ``slo`` (when given) attaches the informational SLO-burn block; its
    absence keeps pre-telemetry artifacts byte-identical.
    """
    from ..core.cache import CODE_VERSION

    artifact = {
        "experiment": experiment,
        "title": title,
        "tier": tier,
        "seed": seed,
        "fidelity": to_jsonable(dict(fidelity)),
        "code_version": CODE_VERSION,
        "partial": bool(partial),
        "quarantined": [str(name) for name in quarantined],
        "result": to_jsonable(result),
    }
    if slo is not None:
        artifact["slo"] = to_jsonable(dict(slo))
    return artifact


def write_artifact(stream: IO[str], artifact: Mapping[str, Any]) -> None:
    json.dump(artifact, stream, indent=2, sort_keys=False, allow_nan=False)
    stream.write("\n")


def validate_artifact(
    doc: Any, schema: Optional[Mapping[str, Any]], path: str = "$"
) -> List[str]:
    """Check ``doc`` against a minimal JSON-Schema subset; returns errors.

    Supports ``type`` (a name or list of names, with "number" accepting
    integers), ``required``/``properties`` for objects, ``items`` and
    ``minItems`` for arrays, and ``enum`` — enough to pin each
    artifact's shape in CI without a jsonschema dependency.
    """
    if schema is None:
        return []
    errors: List[str] = []

    type_spec = schema.get("type")
    if type_spec is not None:
        allowed = [type_spec] if isinstance(type_spec, str) else list(type_spec)
        if not any(_is_type(doc, name) for name in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, "
                f"got {type(doc).__name__}"
            )
            return errors  # structural checks below would be nonsense

    if "enum" in schema and doc not in schema["enum"]:
        errors.append(f"{path}: {doc!r} not in enum {schema['enum']!r}")

    if isinstance(doc, dict):
        for name in schema.get("required", ()):
            if name not in doc:
                errors.append(f"{path}: missing required key {name!r}")
        for name, sub in schema.get("properties", {}).items():
            if name in doc:
                errors.extend(validate_artifact(doc[name], sub,
                                                f"{path}.{name}"))
    if isinstance(doc, list):
        min_items = schema.get("minItems")
        if min_items is not None and len(doc) < min_items:
            errors.append(f"{path}: expected >= {min_items} items, "
                          f"got {len(doc)}")
        items = schema.get("items")
        if items is not None:
            for index, entry in enumerate(doc):
                errors.extend(validate_artifact(entry, items,
                                                f"{path}[{index}]"))
    return errors


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _is_type(value: Any, name: str) -> bool:
    check = _TYPE_CHECKS.get(name)
    return bool(check and check(value))


def write_table5_csv(stream: IO[str], comparisons: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "application", "snic_servers", "nic_servers",
        "snic_power_w", "nic_power_w",
        "snic_tco_usd", "nic_tco_usd", "savings_fraction",
    ])
    for comparison in comparisons:
        writer.writerow([
            comparison.application,
            comparison.snic_fleet.servers,
            comparison.nic_fleet.servers,
            f"{comparison.snic_fleet.power_per_server_w:.2f}",
            f"{comparison.nic_fleet.power_per_server_w:.2f}",
            f"{comparison.snic_fleet.tco_usd:.2f}",
            f"{comparison.nic_fleet.tco_usd:.2f}",
            f"{comparison.savings_fraction:.4f}",
        ])
    return len(comparisons)
