"""CSV export of measured results.

Reviewers and downstream tooling want raw numbers, not rendered tables:
these writers serialize the Fig. 4/5/6 and Table 5 result objects to CSV
with one row per measurement point, suitable for pandas/gnuplot.
"""

from __future__ import annotations

import csv
from typing import IO, Sequence


def write_fig4_csv(stream: IO[str], rows: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "key", "display", "category", "snic_platform",
        "host_capacity_rps", "host_throughput_rps", "host_goodput_gbps",
        "host_p99_us", "host_power_w",
        "snic_capacity_rps", "snic_throughput_rps", "snic_goodput_gbps",
        "snic_p99_us", "snic_power_w",
        "throughput_ratio", "p99_ratio",
    ])
    for row in rows:
        writer.writerow([
            row.key, row.display, row.category, row.snic_platform,
            f"{row.host.capacity_rps:.2f}",
            f"{row.host.throughput_rps:.2f}",
            f"{row.host.goodput_gbps:.4f}",
            f"{row.host.p99_latency_s * 1e6:.3f}",
            f"{row.host.server_power_w:.2f}",
            f"{row.snic.capacity_rps:.2f}",
            f"{row.snic.throughput_rps:.2f}",
            f"{row.snic.goodput_gbps:.4f}",
            f"{row.snic.p99_latency_s * 1e6:.3f}",
            f"{row.snic.server_power_w:.2f}",
            f"{row.throughput_ratio:.4f}",
            f"{row.p99_ratio:.4f}",
        ])
    return len(rows)


def write_fig5_csv(stream: IO[str], figure) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "ruleset", "series", "platform", "cores",
        "offered_gbps", "achieved_gbps", "p99_us", "saturated",
    ])
    count = 0
    for ruleset, curves in figure.items():
        for curve in curves:
            for point in curve.points:
                writer.writerow([
                    ruleset, curve.label, curve.platform,
                    curve.cores if curve.cores is not None else "",
                    f"{point.offered_gbps:.2f}",
                    f"{point.achieved_gbps:.3f}",
                    f"{point.p99_latency_s * 1e6:.3f}",
                    int(point.saturated),
                ])
                count += 1
    return count


def write_fig6_csv(stream: IO[str], rows: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "key", "display", "snic_platform",
        "host_power_w", "snic_power_w", "snic_device_w",
        "host_goodput_gbps", "snic_goodput_gbps", "efficiency_ratio",
    ])
    for row in rows:
        writer.writerow([
            row.key, row.display, row.snic_platform,
            f"{row.host_power_w:.2f}", f"{row.snic_power_w:.2f}",
            f"{row.snic_device_w:.2f}",
            f"{row.host_goodput_gbps:.4f}", f"{row.snic_goodput_gbps:.4f}",
            f"{row.efficiency_ratio:.4f}",
        ])
    return len(rows)


def write_table5_csv(stream: IO[str], comparisons: Sequence) -> int:
    writer = csv.writer(stream)
    writer.writerow([
        "application", "snic_servers", "nic_servers",
        "snic_power_w", "nic_power_w",
        "snic_tco_usd", "nic_tco_usd", "savings_fraction",
    ])
    for comparison in comparisons:
        writer.writerow([
            comparison.application,
            comparison.snic_fleet.servers,
            comparison.nic_fleet.servers,
            f"{comparison.snic_fleet.power_per_server_w:.2f}",
            f"{comparison.nic_fleet.power_per_server_w:.2f}",
            f"{comparison.snic_fleet.tco_usd:.2f}",
            f"{comparison.nic_fleet.tco_usd:.2f}",
            f"{comparison.savings_fraction:.4f}",
        ])
    return len(comparisons)
