"""Render the paper's configuration tables (1-3) from the spec records.

These are descriptive, not experimental — but regenerating them from
`hardware/specs.py` and the profile catalog keeps the documentation and
the code from drifting apart, and gives the CLI a complete set of paper
artifacts.
"""

from __future__ import annotations

from typing import List

from ..experiments.profiles import ALL_PROFILE_KEYS, get_profile
from ..hardware.specs import BLUEFIELD2, CLIENT, SERVER


def format_table1() -> str:
    """Table 1: specifications of BlueField-2."""
    snic = BLUEFIELD2
    cache = snic.cpu.cache
    rows = [
        ("CPU", f"{snic.cpu.cores} x {snic.cpu.model} at "
                f"{snic.cpu.frequency_hz/1e9:.1f} GHz"),
        ("Accelerator", ", ".join(sorted(snic.accelerators))),
        ("Cache", f"{cache.l1d_kb} KB L1-D / {cache.l1i_kb} KB L1-I per core, "
                  f"{cache.l2_kb} KB L2 per 2 cores, "
                  f"{cache.llc_kb // 1024} MB shared L3"),
        ("Memory", f"{snic.memory.capacity_gb} GB on-board {snic.memory.technology}"),
        ("Network", f"{snic.nic.ports} x {snic.nic.port_gbps:.0f} Gb/s "
                    f"({snic.nic.model})"),
        ("PCIe", f"x{snic.pcie.lanes} Gen {snic.pcie.generation}.0"),
    ]
    width = max(len(label) for label, _ in rows)
    lines = ["Table 1: Specifications of BlueField-2"]
    lines += [f"  {label:<{width}}  {value}" for label, value in rows]
    return "\n".join(lines)


def format_table2() -> str:
    """Table 2: system configurations (client and server)."""
    lines = ["Table 2: System configurations", ""]
    header = f"  {'':<16} {'Client':<38} {'Server':<38}"
    lines.append(header)
    rows = [
        ("Processor", CLIENT.cpu.model, SERVER.cpu.model),
        ("LLC", f"{CLIENT.cpu.cache.llc_kb/1024:.2f} MB",
         f"{SERVER.cpu.cache.llc_kb/1024:.2f} MB"),
        ("System Memory",
         f"{CLIENT.memory.capacity_gb} GB {CLIENT.memory.technology}, "
         f"{CLIENT.memory.channels} channels",
         f"{SERVER.memory.capacity_gb} GB {SERVER.memory.technology}, "
         f"{SERVER.memory.channels} channels"),
        ("NIC", "ConnectX-6 Dx", "BlueField-2"),
    ]
    for label, client_value, server_value in rows:
        lines.append(f"  {label:<16} {client_value:<38} {server_value:<38}")
    return "\n".join(lines)


def format_table3() -> str:
    """Table 3: the benchmark matrix (stack + execution platforms)."""
    lines = [
        "Table 3: Benchmarks (HC=host CPU, SC=SNIC CPU, SA=SNIC accelerator)",
        "",
        f"  {'benchmark':<26} {'stack':<8} {'HC':>3} {'SC':>3} {'SA':>3}  notes",
    ]
    seen_families = set()
    for key in ALL_PROFILE_KEYS:
        family = key.split(":")[0]
        if family in seen_families or family in ("udp", "dpdk", "rdma"):
            continue
        seen_families.add(family)
        profile = get_profile(key, samples=10)
        marks = {
            "HC": "x" if "host" in profile.platforms else "",
            "SC": "x" if "snic-cpu" in profile.platforms else "",
            "SA": "x" if "snic-accel" in profile.platforms else "",
        }
        lines.append(
            f"  {profile.display:<26} {profile.stack or 'local':<8} "
            f"{marks['HC']:>3} {marks['SC']:>3} {marks['SA']:>3}  {profile.notes[:48]}"
        )
    return "\n".join(lines)


def format_all_tables() -> str:
    return "\n\n".join([format_table1(), format_table2(), format_table3()])


def _register() -> None:
    # Local import: this module is also imported by experiment modules'
    # consumers; keeping the registry import inside the function avoids
    # widening the import graph at module-import time.
    from ..experiments.registry import Experiment, register, smoke_tier

    register(Experiment(
        name="tables",
        title="Tables 1-3: hardware and benchmark configuration",
        description="the paper's descriptive tables regenerated from the "
                    "spec records and the profile catalog",
        runner=lambda ctx: format_all_tables(),
        formatter=lambda text: text,
        to_json=lambda text: {
            "tables": [format_table1(), format_table2(), format_table3()],
        },
        schema={
            "type": "object",
            "required": ["tables"],
            "properties": {
                "tables": {"type": "array", "minItems": 3,
                           "items": {"type": "string"}},
            },
        },
        tiers=smoke_tier(),
    ))


_register()
