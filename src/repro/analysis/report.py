"""EXPERIMENTS.md generator: paper-vs-measured for every artifact.

Running :func:`generate_report` re-measures every table and figure and
emits a markdown report with the paper's anchors beside the reproduction's
numbers, flagging which anchors are calibrated inputs versus emergent
outputs.  ``python -m repro report`` writes it to EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.rng import RandomStreams

if TYPE_CHECKING:  # pragma: no cover
    from ..core.executor import ParallelExecutor
    from ..experiments.registry import ExperimentContext
from ..experiments import format_cluster, format_faults, format_verdicts
from .attribution import format_attribution_markdown
from .attribution import rows_from_fig4 as attribution_rows_from_fig4
from .tco import format_comparison


@dataclass
class AnchorRow:
    artifact: str
    quantity: str
    paper: str
    measured: str
    status: str  # "anchored" (calibrated input) | "emergent" | "deviation"


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


# Smoke-tier runs measure a subset of Fig. 4/5 keys; an anchor row whose
# key is missing renders this instead of crashing the report.
_NOT_MEASURED = "n/a (not measured at this tier)"


def collect_anchor_rows(
    fig4_rows, fig6_rows, fig5_curves, table4, table5
) -> List[AnchorRow]:
    by_key = {r.key: r for r in fig4_rows}
    eff = {r.key: r for r in fig6_rows}

    def tr(key):
        return by_key[key].throughput_ratio

    rows: List[AnchorRow] = []

    def row(artifact, quantity, paper, measured, status):
        # ``measured`` is lazy so a smoke run that skipped the keys a
        # row indexes degrades that row to "n/a" instead of crashing.
        try:
            value = measured()
        except (KeyError, ValueError, ZeroDivisionError):
            value = _NOT_MEASURED
        rows.append(AnchorRow(artifact, quantity, paper, value, status))

    row("Fig4", "throughput ratio range", "0.1x - 3.5x",
        lambda: f"{_fmt(min(r.throughput_ratio for r in fig4_rows))}x - "
                f"{_fmt(max(r.throughput_ratio for r in fig4_rows))}x",
        "emergent")
    row("Fig4", "p99 ratio range", "0.1x - 13.8x",
        lambda: f"{_fmt(min(r.p99_ratio for r in fig4_rows))}x - "
                f"{_fmt(max(r.p99_ratio for r in fig4_rows))}x",
        "emergent (narrower: our worst p99 case is milder)")
    row("Fig4/KO1", "UDP micro throughput", "76.5-85.7% lower",
        lambda: f"{(1-tr('udp:64'))*100:.1f}% / {(1-tr('udp:1024'))*100:.1f}% lower",
        "anchored (stack cycle costs calibrated)")
    row("Fig4/KO1", "UDP micro p99", "1.1-1.4x higher",
        lambda: f"{_fmt(by_key['udp:64'].p99_ratio)}x / "
                f"{_fmt(by_key['udp:1024'].p99_ratio)}x",
        "deviation (queueing model amplifies kernel-stack tails)")
    row("Fig4/KO1", "RDMA micro throughput", "up to 1.4x",
        lambda: f"{_fmt(tr('rdma:1024'))}x", "anchored")
    row("Fig4/KO1", "RDMA micro p99", "14.6-24.3% lower",
        lambda: f"{(1-by_key['rdma:1024'].p99_ratio)*100:.0f}% lower",
        "emergent (slightly smaller gap; knee-detection noise)")
    row("Fig4/KO1", "TCP/UDP functions", "20.6-89.5% lower",
        lambda: f"{(1-max(tr(k) for k in ('redis:a','bm25:1k','nat:10k','snort:file_image')))*100:.0f}%"
                f" - {(1-min(tr(k) for k in ('redis:a','redis:b','nat:10k','nat:1m')))*100:.0f}% lower",
        "emergent (narrower band: see notes)")
    row("Fig4/KO1", "MICA throughput", "19.5-54.5% lower",
        lambda: f"{(1-tr('mica:4'))*100:.0f}% / {(1-tr('mica:32'))*100:.0f}% lower",
        "anchored endpoints")
    row("Fig4/KO1", "fio throughput", "parity",
        lambda: f"{_fmt(tr('fio:read'))}x / {_fmt(tr('fio:write'))}x", "emergent")
    row("Fig4/KO2", "AES", "host 1.385x accel",
        lambda: f"host {_fmt(1/tr('crypto:aes'))}x", "anchored")
    row("Fig4/KO2", "RSA", "host 1.912x accel",
        lambda: f"host {_fmt(1/tr('crypto:rsa'))}x", "anchored")
    row("Fig4/KO2", "SHA-1", "accel 1.89x host",
        lambda: f"accel {_fmt(tr('crypto:sha1'))}x", "anchored")
    row("Fig4/KO4", "REM file_image", "accel 1.8x host",
        lambda: f"accel {_fmt(tr('rem:file_image'))}x",
        "emergent (rule-set density x calibrated scan costs)")
    row("Fig4/KO4", "REM flash/exe", "accel 0.6x host",
        lambda: f"{_fmt(tr('rem:file_flash'))}x / {_fmt(tr('rem:file_executable'))}x",
        "emergent")
    row("Fig4/KO2", "Compression", "accel up to 3.5x",
        lambda: f"{_fmt(tr('compression:app'))}x / {_fmt(tr('compression:txt'))}x",
        "anchored")

    exe_curves = {c.label: c for c in fig5_curves["file_executable"]}
    img_curves = {c.label: c for c in fig5_curves["file_image"]}
    row("Fig5/KO3", "accel max throughput", "~50 Gb/s cap",
        lambda: f"{_fmt(exe_curves['snic-accel'].max_achieved_gbps(), 1)} / "
                f"{_fmt(img_curves['snic-accel'].max_achieved_gbps(), 1)} Gb/s",
        "anchored (engine rate calibrated)")
    row("Fig5", "host exe 8-core max", "~78 Gb/s",
        lambda: f"{_fmt(exe_curves['host-8c'].max_achieved_gbps(), 1)} Gb/s",
        "emergent")
    row("Fig5/KO4", "host image p99 wall", "~40 Gb/s",
        lambda: f"{_fmt(img_curves['host-8c'].max_achieved_gbps(), 1)} Gb/s",
        "emergent")
    row("Fig5", "host p99 below knee", "~5.1 us",
        lambda: f"{min(p.p99_latency_s for p in exe_curves['host-8c'].points)*1e6:.1f} us",
        "emergent")
    row("Fig5", "accel p99 at capacity", "~25.1 us",
        lambda: f"{min(p.p99_latency_s for p in exe_curves['snic-accel'].points)*1e6:.1f} us",
        "emergent (batching latency)")

    row("Fig6/KO5", "efficiency ratio range", "0.2x - 3.8x",
        lambda: f"{_fmt(min(r.efficiency_ratio for r in fig6_rows))}x - "
                f"{_fmt(max(r.efficiency_ratio for r in fig6_rows))}x",
        "emergent (idle-power arithmetic)")
    row("Fig6", "fio efficiency", "1.1-1.3x",
        lambda: f"{_fmt(eff['fio:read'].efficiency_ratio)}x", "emergent")
    row("Fig6", "REM(image) efficiency", "~2.5x",
        lambda: f"{_fmt(eff['rem:file_image'].efficiency_ratio)}x", "emergent")
    row("Fig6", "SHA-1 efficiency", "~1.9x",
        lambda: f"{_fmt(eff['crypto:sha1'].efficiency_ratio)}x",
        "deviation (ours higher: host crypto power modeled at full burn)")
    row("Fig6", "Compression efficiency", "3.4-3.8x",
        lambda: f"{_fmt(eff['compression:txt'].efficiency_ratio)}x", "emergent")
    row("Fig6", "idle server / SNIC", "252 W / 29 W",
        lambda: "252 W / 29 W", "anchored")

    row("Table4", "throughput", "0.76 / 0.76 Gb/s",
        lambda: f"{_fmt(table4.host.throughput_gbps)} / "
                f"{_fmt(table4.snic.throughput_gbps)} Gb/s", "emergent")
    row("Table4", "p99", "5.07 / 17.43 us",
        lambda: f"{_fmt(table4.host.p99_latency_us)} / "
                f"{_fmt(table4.snic.p99_latency_us)} us",
        "emergent (shape: ~3-4x penalty)")
    row("Table4", "power", "278.3 / 254.5 W",
        lambda: f"{_fmt(table4.host.average_power_w, 1)} / "
                f"{_fmt(table4.snic.average_power_w, 1)} W",
        "emergent (spin + engaged-engine model)")

    by_app = table5.by_application()
    paper_savings = {"fio": "2.7%", "OVS": "1.7%", "REM": "-2.5%", "Compress": "70.7%"}
    for app, paper_value in paper_savings.items():
        row("Table5", f"{app} TCO savings", paper_value,
            lambda app=app: f"{by_app[app].savings_fraction:.1%}",
            "emergent (prices anchored; power measured)")
    return rows


def render_faults_section(faults_text: str) -> List[str]:
    """The availability-under-faults block appended to the report."""
    return [
        "",
        "## Availability under faults (extension)",
        "",
        "Fig. 4 operating points of four representative functions replayed",
        "through fault scenarios (`python -m repro faults`): SNIC-path",
        "outage with threshold-policy failover to the host, thermal",
        "throttling, SNIC core loss, and bursty link loss healed by",
        "timeout/retry with exponential backoff.  `avail` counts requests",
        "served within the per-function SLO deadline; `late-drop` counts",
        "drops outside the fault window (+grace) — zero means degradation",
        "stayed contained; `recover ms` is fault end until traffic returns",
        "to the SNIC path.",
        "",
        "```",
        faults_text,
        "```",
    ]


def render_cluster_section(cluster_text: str) -> List[str]:
    """The cluster-scale block appended to the report."""
    return [
        "",
        "## Cluster scale (extension)",
        "",
        "Racks of calibrated server+SNIC nodes behind a two-tier",
        "leaf-spine fabric (`python -m repro cluster`, DESIGN.md §15).",
        "Each scenario drives a traffic mix — many-to-one incast,",
        "uniform random, or skewed — as TCP flows through per-port",
        "bounded switch queues with RED/ECN marking; the same congestion",
        "machinery that serves single-node runs reacts to the marks.",
        "Drop-tail incast is the control: identical buffers, recovery by",
        "RTO only.  `fleet placement` sizes node counts per profile to a",
        "cluster-level throughput+SLO target and prices them ($/krps);",
        "`rack-outage failover` darkens one rack mid-run (a correlated",
        "fault domain) and measures availability at the deadline while",
        "the load balancer re-routes.",
        "",
        "```",
        cluster_text,
        "```",
    ]


def render_profile_section(profiles: Sequence, top_n: int = 10) -> List[str]:
    """The slowest-work-units block (supervised runs only).

    ``profiles`` is a sequence of ``UnitProfile``-shaped objects (unit,
    wall_s, cpu_s, events_per_s) — duck-typed so the report layer does
    not import the executor.
    """
    ranked = sorted(profiles, key=lambda p: (-p.wall_s, p.unit))[:top_n]
    lines = [
        "",
        "## Slowest work units (this run)",
        "",
        "Per-unit wall/CPU/event-rate profiles recorded by the run-farm",
        "supervisor (DESIGN.md §12); also journaled to the manifest and",
        "shown live by `repro status`.",
        "",
        "| unit | wall s | cpu s | kernel events/s |",
        "|---|---|---|---|",
    ]
    for profile in ranked:
        cpu = (f"{profile.cpu_s:.2f}" if profile.cpu_s is not None else "-")
        eps = (f"{profile.events_per_s:,.0f}"
               if profile.events_per_s is not None else "-")
        lines.append(f"| {profile.unit} | {profile.wall_s:.2f} | {cpu} | "
                     f"{eps} |")
    return lines


def render_report(anchor_rows: Sequence[AnchorRow], verdict_text: str,
                  table5_text: str, fig7_stats: Dict[str, float],
                  faults_text: Optional[str] = None,
                  attribution_text: Optional[str] = None,
                  cluster_text: Optional[str] = None,
                  profiles: Optional[Sequence] = None) -> str:
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Regenerate this file with `python -m repro report` (seconds under",
        "the default hybrid engine).  Status legend: **anchored** = the",
        "quantity was used to calibrate the model (agreement is expected,",
        "not evidence); **emergent** = the quantity falls out of the",
        "queueing/power/price models; **deviation** = a known, documented",
        "mismatch.",
        "",
        "The CLI footer's `probes: N simulated, M analytic, K saved` splits",
        "the rate probes by how they were answered: simulated through the",
        "queueing kernels, served by the validated analytic fast path",
        "(DESIGN.md §14), or avoided outright by a warm-started sweep",
        "(DESIGN.md §9).  Analytic answers are only reported inside a",
        "simulation-validated trust region, far from the knee; every",
        "verdict-deciding quantity below is simulation-backed, and",
        "`--engine sim` simulates every probe, keeping each measured",
        "number byte-identical to the pre-hybrid output.",
        "",
        "**Partial results never produce a verdict.**  Under run-farm",
        "supervision (DESIGN.md §11) a consistently failing work unit can be",
        "quarantined; experiments that declare partial-results degradation",
        "then exit with code 3 and a `PARTIAL RESULTS` notice instead of a",
        "table, and any `--json` artifact is marked `\"partial\": true` with",
        "`\"result\": null`.  No row of this file, no Key Observation, and no",
        "offload verdict is ever derived from a partial run — the quantities",
        "here come only from runs where every unit completed.  Resume the run",
        "(`--resume <run-dir>`) to finish the quarantined units; because units",
        "are pure, the completed rerun is byte-identical to an uninterrupted",
        "one.",
        "",
        "**SLO-drift warnings never change a verdict.**  The telemetry layer",
        "(DESIGN.md §12) compares each run's headline quantities against the",
        "anchor bands recorded in this file and the per-platform p99 SLO",
        "ceilings; drift emits a structured `repro.slo` warning and an",
        "informational `slo` block in any `--json` artifact.  These are",
        "operator signals only — no exit code, Key Observation, or offload",
        "verdict is derived from them.",
        "",
        "| artifact | quantity | paper | measured | status |",
        "|---|---|---|---|---|",
    ]
    for row in anchor_rows:
        lines.append(
            f"| {row.artifact} | {row.quantity} | {row.paper} | "
            f"{row.measured} | {row.status} |"
        )
    lines += [
        "",
        "## Key Observations",
        "",
        "```",
        verdict_text,
        "```",
        "",
        "## Table 5 (measured)",
        "",
        "```",
        table5_text,
        "```",
        "",
        "## Fig. 7 trace",
        "",
        f"- average {fig7_stats['average_gbps']:.2f} Gb/s, "
        f"p50 {fig7_stats['p50_gbps']:.2f}, p99 {fig7_stats['p99_gbps']:.2f}, "
        f"peak {fig7_stats['peak_gbps']:.2f} Gb/s over "
        f"{fig7_stats['duration_s']:.0f} s",
    ]
    if attribution_text is not None:
        lines += [
            "",
            "## Latency attribution (extension)",
            "",
            "Each operating point's mean and p99-tail sojourn split into",
            "queueing wait, service, batch-formation wait, the stack-RTT",
            "floor, and retry/fault stall.  Components are accumulated",
            "per request inside the queueing fast paths, so the mean",
            "columns sum to the reported mean sojourn exactly (`check`).",
            "Tail columns are means over requests at or above the window",
            "p99: CPU platforms' tails are queueing-dominated, the",
            "accelerator's by batch formation plus the batch service span.",
            "",
            attribution_text,
        ]
    if faults_text is not None:
        lines += render_faults_section(faults_text)
    if cluster_text is not None:
        lines += render_cluster_section(cluster_text)
    if profiles:
        lines += render_profile_section(profiles)
    lines += [
        "",
        "## Known deviations and their causes",
        "",
        "1. **Kernel-stack p99 ratios (UDP micro, Redis, NAT, BM25).** The",
        "   paper reports 1.1-1.4x (micro) and up to 3.2x (functions); we",
        "   measure ~1.8-3.2x across the board.  Our loss-bounded FCFS",
        "   queues tie tail latency to service time more strongly than the",
        "   real systems, where NAPI batching and client-side effects",
        "   flatten the gap.  Direction and ordering are preserved.",
        "2. **SHA-1 energy efficiency.** Paper ~1.9x, ours ~2.5x: our host",
        "   crypto run is modeled at full 8-core burn (~110 W active); the",
        "   paper's host SHA-1 run apparently drew far less.  All other",
        "   efficiency anchors land in band.",
        "3. **TCP/UDP function throughput band.** Paper 20.6-89.5% lower;",
        "   ours spans ~54-87% lower.  The paper's 20.6% case is not",
        "   identified per-function; our most SNIC-friendly kernel-stack",
        "   function (BM25 1k docs) lands at ~54% lower.",
        "",
        "## Substitutions (hardware -> simulation)",
        "",
        "See DESIGN.md §1 for the full substitution table and rationale.",
        "",
    ]
    return "\n".join(lines)


def generate_report(
    samples: int = 200,
    n_requests: int = 12_000,
    streams: Optional[RandomStreams] = None,
    jobs: int = 1,
    executor: Optional["ParallelExecutor"] = None,
    ctx: Optional["ExperimentContext"] = None,
) -> str:
    """Walk the experiment registry and render the markdown report.

    One :class:`ExperimentContext` memoizes every artifact for the whole
    walk: fig4's rows feed fig6, the observations, and the attribution
    section without re-measuring; table4 feeds table5; the fault study
    reuses fig4's operating points through the content-addressed cache.
    Every artifact — including fig5, which used to run at a private
    hard-coded fidelity — resolves its spec's default tier against the
    same invocation-wide ``samples``/``n_requests``, so each (function,
    platform, fidelity) operating point is simulated at most once per
    report.  ``jobs`` parallelizes the independent measurements in each
    artifact; passing a shared ``executor`` instead reuses one worker
    pool across every phase.
    """
    from ..experiments.registry import ExperimentContext

    if ctx is None:
        from ..core.executor import ParallelExecutor

        ctx = ExperimentContext(
            streams=streams or RandomStreams(2023),
            executor=executor or ParallelExecutor(jobs),
            samples=samples,
            requests=n_requests,
        )
    fig4_rows = ctx.run("fig4")
    fig5_curves = ctx.run("fig5")
    fig6_rows = ctx.run("fig6")
    table4 = ctx.run("table4")
    table5 = ctx.run("table5")
    fig7 = ctx.run("fig7")
    faults = ctx.run("faults")
    cluster = ctx.run("cluster")
    verdicts = ctx.run("observations")

    # The fault study degrades to a partial-results verdict when the
    # run-farm supervisor quarantined some of its scenario units: the
    # report still renders, with the degradation notice in place of the
    # availability table.
    from ..experiments.registry import PartialResult

    faults_text = (faults.notice() if isinstance(faults, PartialResult)
                   else format_faults(faults))
    cluster_text = (cluster.notice() if isinstance(cluster, PartialResult)
                    else format_cluster(cluster))

    anchor_rows = collect_anchor_rows(fig4_rows, fig6_rows, fig5_curves,
                                      table4, table5)
    # Supervised runs expose per-unit profiles; a plain executor has no
    # `unit_profiles` attribute and the section is simply omitted (so the
    # checked-in EXPERIMENTS.md, generated unsupervised, is unchanged).
    profiles = list(getattr(ctx.executor, "unit_profiles", None) or ())
    return render_report(
        anchor_rows,
        format_verdicts(verdicts),
        format_comparison(table5.comparisons),
        fig7.stats,
        faults_text=faults_text,
        attribution_text=format_attribution_markdown(
            attribution_rows_from_fig4(fig4_rows)),
        cluster_text=cluster_text,
        profiles=profiles,
    )
