"""DPDK-Pktgen application model (the appendix's traffic driver).

The paper's artifact drives every DPDK experiment through Pktgen's
command console::

    Pktgen: set 0 rate <traffic_rate>
    Pktgen: set 0 size <bytes>
    Pktgen: start 0
    Pktgen: stop 0

This module reproduces that control surface over the event kernel: a
:class:`PktgenApp` owns ports, accepts those commands (as strings, like
the console), and emits paced packets to an attached sink while tracking
the per-port TX statistics Pktgen prints.  The client CPU constraint from
§3.4 (~70 Gb/s per client core) is modeled as a per-core rate ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.engine import Simulator
from ..core.units import gbps_to_bytes_per_second, line_rate_pps
from ..netstack.packet import PROTO_UDP, Packet

Sink = Callable[[Packet], None]

# §3.4: "~70 Gbps speed per client CPU core"
CLIENT_CORE_GBPS = 70.0


class PktgenError(ValueError):
    pass


@dataclass
class PortConfig:
    rate_percent: float = 100.0  # of line rate, Pktgen convention
    size_bytes: int = 64
    line_rate_gbps: float = 100.0
    dst_ip: int = 2
    dst_port: int = 53

    def target_pps(self) -> float:
        wire_limited = line_rate_pps(self.line_rate_gbps, self.size_bytes)
        return wire_limited * self.rate_percent / 100.0


@dataclass
class PortStats:
    tx_packets: int = 0
    tx_bytes: int = 0
    started_at: Optional[float] = None
    stopped_at: Optional[float] = None

    def tx_gbps(self) -> float:
        if self.started_at is None or self.stopped_at is None:
            return 0.0
        span = self.stopped_at - self.started_at
        return self.tx_bytes * 8 / span / 1e9 if span > 0 else 0.0


class PktgenApp:
    """The traffic generator: ports, console commands, paced emission."""

    def __init__(self, sim: Simulator, ports: int = 1, client_cores: int = 8):
        if ports < 1:
            raise PktgenError("need at least one port")
        self.sim = sim
        self.client_cores = client_cores
        self.configs: Dict[int, PortConfig] = {p: PortConfig() for p in range(ports)}
        self.stats: Dict[int, PortStats] = {p: PortStats() for p in range(ports)}
        self._sinks: Dict[int, Sink] = {}
        self._running: Dict[int, bool] = {p: False for p in range(ports)}
        self._generation: Dict[int, int] = {p: 0 for p in range(ports)}

    def attach(self, port: int, sink: Sink) -> None:
        self._check_port(port)
        self._sinks[port] = sink

    # -- the console -------------------------------------------------------

    def command(self, line: str) -> str:
        """Execute one Pktgen console command; returns a status string."""
        tokens = line.strip().split()
        if not tokens:
            raise PktgenError("empty command")
        verb = tokens[0].lower()
        if verb == "set" and len(tokens) == 4:
            port = self._parse_port(tokens[1])
            knob, value = tokens[2].lower(), tokens[3]
            if knob == "rate":
                rate = float(value)
                if not 0.0 < rate <= 100.0:
                    raise PktgenError("rate must be in (0, 100]")
                self.configs[port].rate_percent = rate
                return f"port {port} rate {rate}%"
            if knob == "size":
                size = int(value)
                if not 64 <= size <= 9000:
                    raise PktgenError("size must be in [64, 9000]")
                self.configs[port].size_bytes = size
                return f"port {port} size {size}B"
            raise PktgenError(f"unknown knob {knob!r}")
        if verb == "start" and len(tokens) == 2:
            port = self._parse_port(tokens[1])
            self.start(port)
            return f"port {port} started"
        if verb == "stop" and len(tokens) == 2:
            port = self._parse_port(tokens[1])
            self.stop(port)
            return f"port {port} stopped"
        raise PktgenError(f"unknown command {line!r}")

    # -- control -----------------------------------------------------------

    def effective_pps(self, port: int) -> float:
        """Requested rate bounded by the wire AND the client CPU (§3.4)."""
        config = self.configs[port]
        requested = config.target_pps()
        cpu_bytes = self.client_cores * gbps_to_bytes_per_second(CLIENT_CORE_GBPS)
        cpu_bound = cpu_bytes / max(config.size_bytes, 64)
        return min(requested, cpu_bound)

    def start(self, port: int) -> None:
        self._check_port(port)
        if port not in self._sinks:
            raise PktgenError(f"port {port} has no sink attached")
        if self._running[port]:
            return
        self._running[port] = True
        self._generation[port] += 1
        self.stats[port] = PortStats(started_at=self.sim.now)
        self.sim.process(self._emit(port, self._generation[port]),
                         name=f"pktgen-port{port}")

    def stop(self, port: int) -> None:
        self._check_port(port)
        if self._running[port]:
            self._running[port] = False
            self.stats[port].stopped_at = self.sim.now

    def _emit(self, port: int, generation: int):
        config = self.configs[port]
        stats = self.stats[port]
        sink = self._sinks[port]
        sequence = 0
        while self._running[port] and self._generation[port] == generation:
            gap = 1.0 / self.effective_pps(port)
            yield self.sim.timeout(gap)
            if not self._running[port] or self._generation[port] != generation:
                return
            sequence += 1
            packet = Packet(
                proto=PROTO_UDP, src_ip=1, src_port=9000,
                dst_ip=config.dst_ip, dst_port=config.dst_port,
                payload=b"\x00" * max(config.size_bytes - 42, 1),
                packet_id=sequence,
            )
            stats.tx_packets += 1
            stats.tx_bytes += packet.wire_bytes
            sink(packet)

    def _parse_port(self, token: str) -> int:
        try:
            port = int(token)
        except ValueError:
            raise PktgenError(f"bad port {token!r}") from None
        self._check_port(port)
        return port

    def _check_port(self, port: int) -> None:
        if port not in self.configs:
            raise PktgenError(f"no such port {port}")

    def page_stats(self) -> str:
        """Pktgen's stats page, abbreviated."""
        lines: List[str] = []
        for port, stats in sorted(self.stats.items()):
            lines.append(
                f"port {port}: tx {stats.tx_packets} pkts, "
                f"{stats.tx_bytes} bytes, {stats.tx_gbps():.2f} Gb/s"
            )
        return "\n".join(lines)
