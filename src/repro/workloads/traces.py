"""Datacenter network traces (Fig. 7 and §5.1).

The paper replays a network trace from a hyperscaler whose average data
rate is low (~0.76 Gb/s through the REM function, Table 4) with diurnal
structure and microbursts — characteristics it cross-references against
Benson et al. and Zhang et al.  :func:`hyperscaler_trace` synthesizes a
rate series with those properties; the generator is deterministic per
seed so every experiment replays the same "measured" trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class RateTrace:
    """A time series of network data rates."""

    interval_s: float
    gbps: np.ndarray
    label: str = ""

    @property
    def duration_s(self) -> float:
        return self.interval_s * len(self.gbps)

    def average_gbps(self) -> float:
        return float(self.gbps.mean()) if len(self.gbps) else 0.0

    def peak_gbps(self) -> float:
        return float(self.gbps.max()) if len(self.gbps) else 0.0

    def percentile_gbps(self, q: float) -> float:
        return float(np.percentile(self.gbps, q))

    def scaled_to_average(self, target_gbps: float) -> "RateTrace":
        current = self.average_gbps()
        if current <= 0:
            raise ValueError("cannot scale an empty trace")
        return RateTrace(
            interval_s=self.interval_s,
            gbps=self.gbps * (target_gbps / current),
            label=f"{self.label} (scaled to {target_gbps} Gb/s)",
        )


def hyperscaler_trace(
    duration_s: float = 3600.0,
    interval_s: float = 1.0,
    average_gbps: float = 0.76,
    seed: int = 2023,
    burst_factor: float = 8.0,
    burst_probability: float = 0.02,
) -> RateTrace:
    """A synthetic stand-in for the paper's hyperscaler trace (Fig. 7).

    Structure: a slowly-varying diurnal baseline, lognormal per-interval
    jitter, and occasional microbursts reaching ``burst_factor`` times the
    baseline — then the series is rescaled so its mean matches the
    measured 0.76 Gb/s average of Table 4.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration_s / interval_s))
    if n < 1:
        raise ValueError("trace too short")
    t = np.arange(n) * interval_s
    # Diurnal-ish baseline compressed into the window: two superposed tones.
    baseline = 1.0 + 0.45 * np.sin(2 * np.pi * t / duration_s) + 0.2 * np.sin(
        2 * np.pi * t / (duration_s / 7) + 1.3
    )
    jitter = rng.lognormal(mean=0.0, sigma=0.35, size=n)
    series = baseline * jitter
    bursts = rng.random(n) < burst_probability
    series[bursts] *= burst_factor * rng.uniform(0.5, 1.5, size=int(bursts.sum()))
    series = np.clip(series, 0.01, None)
    series *= average_gbps / series.mean()
    return RateTrace(interval_s=interval_s, gbps=series, label="hyperscaler")


def constant_trace(gbps: float, duration_s: float, interval_s: float = 1.0) -> RateTrace:
    n = int(round(duration_s / interval_s))
    return RateTrace(interval_s=interval_s, gbps=np.full(n, gbps), label="constant")


def summarize(trace: RateTrace) -> dict:
    """The Fig. 7 descriptive statistics."""
    return {
        "duration_s": trace.duration_s,
        "average_gbps": trace.average_gbps(),
        "peak_gbps": trace.peak_gbps(),
        "p50_gbps": trace.percentile_gbps(50),
        "p99_gbps": trace.percentile_gbps(99),
    }
