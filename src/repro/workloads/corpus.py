"""Synthetic corpora for the Compression and BM25 benchmarks (§3.4).

The paper compresses `Application3` and `Text1` from compressionratings'
corpus and ranks randomly-generated documents.  We synthesize both:

* ``text_file`` — natural-language-like text (word sampling over a
  Zipf-distributed vocabulary) that compresses well, like Text1;
* ``application_file`` — a mix of machine-code-like high-entropy regions
  and structured tables with repetition, like Application3;
* ``document_corpus`` — BM25 databases of N documents with ~10 words
  each ("the content of these documents is randomly generated").
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

_WORD_STEMS = (
    "data center network packet server smart offload energy power tail "
    "latency throughput queue core cache memory bandwidth switch flow "
    "table match engine rule batch buffer driver kernel user stack socket "
    "request response store index log record value key query document"
).split()


def _vocabulary(rng: np.random.Generator, size: int = 800) -> List[str]:
    words = list(_WORD_STEMS)
    while len(words) < size:
        stem = _WORD_STEMS[int(rng.integers(0, len(_WORD_STEMS)))]
        suffix = "".join(
            chr(int(c)) for c in rng.integers(ord("a"), ord("z") + 1, size=3)
        )
        words.append(stem + suffix)
    return words


def text_file(size_bytes: int, rng: np.random.Generator) -> bytes:
    """Text1-like input: zipf-weighted words, sentences, high redundancy."""
    vocabulary = _vocabulary(rng)
    ranks = np.arange(1, len(vocabulary) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    pieces: List[str] = []
    total = 0
    sentence_len = 0
    while total < size_bytes:
        word = vocabulary[int(rng.choice(len(vocabulary), p=weights))]
        sentence_len += 1
        if sentence_len > int(rng.integers(6, 14)):
            word += "."
            sentence_len = 0
        pieces.append(word)
        total += len(word) + 1
    text = (" ".join(pieces)).encode()
    if len(text) < size_bytes:  # the trailing word may land short
        text += b" " + text
    return text[:size_bytes]


def application_file(size_bytes: int, rng: np.random.Generator) -> bytes:
    """Application3-like input: code-ish entropy + table-like repetition."""
    out = bytearray()
    while len(out) < size_bytes:
        kind = rng.random()
        if kind < 0.62:
            # machine-code-like: high entropy, some repeated opcodes
            block = bytes(rng.integers(0, 256, size=512, dtype=np.uint8))
            out += block
        elif kind < 0.9:
            # structured table: fixed-width repeating records
            record = bytes(rng.integers(0x20, 0x7F, size=24, dtype=np.uint8))
            out += record * 10
        else:
            # padding / BSS-like runs
            out += bytes([int(rng.integers(0, 4))]) * 160
    return bytes(out[:size_bytes])


COMPRESSION_FILES = {"app": application_file, "txt": text_file}


def make_compression_input(name: str, size_bytes: int, seed: int = 7) -> bytes:
    """The named compression benchmark input ('app' or 'txt')."""
    try:
        builder = COMPRESSION_FILES[name]
    except KeyError:
        raise KeyError(f"unknown compression input {name!r}") from None
    return builder(size_bytes, np.random.default_rng(seed))


def document_corpus(
    documents: int, rng: np.random.Generator, mean_words: int = 10
) -> List[str]:
    """BM25 database documents (paper: 100 and 1 K docs, ~10 words each)."""
    vocabulary = _vocabulary(rng, size=400)
    ranks = np.arange(1, len(vocabulary) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    corpus: List[str] = []
    for _ in range(documents):
        n_words = max(3, int(rng.normal(mean_words, 2)))
        indices = rng.choice(len(vocabulary), size=n_words, p=weights)
        corpus.append(" ".join(vocabulary[int(i)] for i in indices))
    return corpus


def query_stream(
    count: int, rng: np.random.Generator, terms_per_query: int = 3
) -> List[str]:
    """Search queries drawn from the same vocabulary."""
    vocabulary = _vocabulary(rng, size=400)
    ranks = np.arange(1, len(vocabulary) + 1, dtype=float)
    weights = 1.0 / ranks
    weights /= weights.sum()
    queries = []
    for _ in range(count):
        indices = rng.choice(len(vocabulary), size=terms_per_query, p=weights)
        queries.append(" ".join(vocabulary[int(i)] for i in indices))
    return queries
