"""PCAP-style packet capture files.

The paper feeds REM with a real capture (CTU-Mixed-Capture-5).  This
module implements the classic libpcap container — global header, per-
record headers with second/microsecond timestamps and captured/original
lengths — so synthetic captures can be written to disk, inspected with
standard tooling conventions, and replayed through the experiments.

Only the container is implemented (no protocol dissection): records hold
raw frame bytes, which is all the REM/Snort paths consume.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Sequence

import numpy as np

from .pktgen import PacketSample, payload_stream

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    pass


@dataclass(frozen=True)
class PcapRecord:
    timestamp_s: float
    frame: bytes
    original_length: int

    @property
    def captured_length(self) -> int:
        return len(self.frame)


def write_pcap(
    stream: BinaryIO,
    records: Sequence[PcapRecord],
    snaplen: int = 65535,
) -> int:
    """Write a capture; returns the number of records written."""
    stream.write(
        _GLOBAL_HEADER.pack(
            PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0, 0, snaplen, LINKTYPE_ETHERNET,
        )
    )
    written = 0
    for record in records:
        frame = record.frame[:snaplen]
        seconds = int(record.timestamp_s)
        microseconds = int(round((record.timestamp_s - seconds) * 1e6))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds -= 1_000_000
        stream.write(
            _RECORD_HEADER.pack(seconds, microseconds, len(frame),
                                record.original_length)
        )
        stream.write(frame)
        written += 1
    return written


def read_pcap(stream: BinaryIO) -> Iterator[PcapRecord]:
    """Iterate the records of a capture; validates the global header."""
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated global header")
    magic, major, minor, _tz, _sig, _snaplen, linktype = _GLOBAL_HEADER.unpack(header)
    if magic != PCAP_MAGIC:
        raise PcapError(f"bad magic 0x{magic:08x} (byte-swapped files unsupported)")
    if linktype != LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported link type {linktype}")
    while True:
        raw = stream.read(_RECORD_HEADER.size)
        if not raw:
            return
        if len(raw) < _RECORD_HEADER.size:
            raise PcapError("truncated record header")
        seconds, microseconds, captured, original = _RECORD_HEADER.unpack(raw)
        frame = stream.read(captured)
        if len(frame) < captured:
            raise PcapError("truncated record body")
        yield PcapRecord(
            timestamp_s=seconds + microseconds / 1e6,
            frame=frame,
            original_length=original,
        )


def synthesize_capture(
    sample: PacketSample,
    rng: np.random.Generator,
    text_fraction: float = 0.7,
    seed_fragments: Sequence[bytes] = (),
    seed_probability: float = 0.0,
) -> List[PcapRecord]:
    """Materialize a PacketSample into capture records (frame = payload
    with a minimal Ethernet+IP+UDP encapsulation)."""
    records: List[PcapRecord] = []
    payloads = payload_stream(
        sample, rng, text_fraction=text_fraction,
        seed_fragments=seed_fragments, seed_probability=seed_probability,
    )
    for arrival, payload in zip(sample.arrivals, payloads):
        header = _fake_headers(len(payload), rng)
        frame = header + payload
        records.append(
            PcapRecord(
                timestamp_s=float(arrival),
                frame=frame,
                original_length=len(frame),
            )
        )
    return records


def _fake_headers(payload_length: int, rng: np.random.Generator) -> bytes:
    """A syntactically-plausible Ethernet + IPv4 + UDP header stack."""
    eth = bytes(rng.integers(0, 256, size=12, dtype=np.uint8)) + b"\x08\x00"
    total = 20 + 8 + payload_length
    ip = (
        b"\x45\x00" + struct.pack(">H", total)
        + b"\x00\x00\x40\x00\x40\x11\x00\x00"
        + bytes(rng.integers(1, 255, size=8, dtype=np.uint8))
    )
    udp = struct.pack(">HHHH", 9000, 53, 8 + payload_length, 0)
    return eth + ip + udp


def capture_statistics(records: Sequence[PcapRecord]) -> dict:
    """Size/rate summary of a capture (what tcpdump -r | wc would tell you)."""
    if not records:
        return {"packets": 0, "bytes": 0, "duration_s": 0.0, "gbps": 0.0}
    total_bytes = sum(r.original_length for r in records)
    duration = records[-1].timestamp_s - records[0].timestamp_s
    return {
        "packets": len(records),
        "bytes": total_bytes,
        "duration_s": duration,
        "gbps": (total_bytes * 8 / duration / 1e9) if duration > 0 else 0.0,
        "mean_frame": total_bytes / len(records),
    }
