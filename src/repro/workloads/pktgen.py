"""DPDK-Pktgen-style packet generation (§3.4).

Open-loop generators producing packet arrival times and sizes: fixed-size
streams at a target rate (the Fig. 5 rate sweeps use MTU packets), the
mixed-size PCAP distribution standing in for the CTU-Mixed-Capture-5
trace, and trace-driven generation following a measured rate series (the
§5.1 hyperscaler replay).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..core.units import MTU, gbps_to_bytes_per_second


@dataclass(frozen=True)
class PacketSample:
    """Arrival schedule + sizes for one generation window."""

    arrivals: np.ndarray  # seconds
    sizes: np.ndarray  # payload bytes

    def __len__(self) -> int:
        return len(self.arrivals)

    @property
    def duration(self) -> float:
        return float(self.arrivals[-1]) if len(self.arrivals) else 0.0

    def offered_gbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return float(self.sizes.sum()) * 8 / self.duration / 1e9


# CTU-Mixed-Capture-5-like mix: bimodal with small control packets and
# large data segments — the canonical datacenter shape (Benson et al.).
PCAP_MIX_SIZES = np.array([64, 128, 256, 512, 1024, 1500])
PCAP_MIX_WEIGHTS = np.array([0.30, 0.10, 0.08, 0.10, 0.12, 0.30])


def constant_size_stream(
    rate_pps: float,
    packet_bytes: int,
    count: int,
    rng: np.random.Generator,
    poisson: bool = True,
) -> PacketSample:
    """Fixed-size packets at ``rate_pps`` (Poisson or paced arrivals)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    if packet_bytes < 1:
        raise ValueError("packet size must be >= 1 byte")
    mean_gap = 1.0 / rate_pps
    gaps = (
        rng.exponential(mean_gap, size=count)
        if poisson
        else np.full(count, mean_gap)
    )
    return PacketSample(
        arrivals=np.cumsum(gaps), sizes=np.full(count, packet_bytes, dtype=np.int64)
    )


def gbps_stream(
    gbps: float,
    packet_bytes: int,
    count: int,
    rng: np.random.Generator,
    poisson: bool = True,
) -> PacketSample:
    """Fixed-size packets at a target data rate in Gb/s."""
    rate_pps = gbps_to_bytes_per_second(gbps) / packet_bytes
    return constant_size_stream(rate_pps, packet_bytes, count, rng, poisson)


def pcap_mix_stream(
    gbps: float,
    count: int,
    rng: np.random.Generator,
) -> PacketSample:
    """Mixed-size packets at a target data rate (the Fig. 4 REM input)."""
    sizes = rng.choice(PCAP_MIX_SIZES, size=count, p=PCAP_MIX_WEIGHTS / PCAP_MIX_WEIGHTS.sum())
    mean_size = float((PCAP_MIX_SIZES * PCAP_MIX_WEIGHTS).sum() / PCAP_MIX_WEIGHTS.sum())
    rate_pps = gbps_to_bytes_per_second(gbps) / mean_size
    gaps = rng.exponential(1.0 / rate_pps, size=count)
    return PacketSample(arrivals=np.cumsum(gaps), sizes=sizes.astype(np.int64))


def trace_driven_stream(
    rate_series_gbps: Sequence[float],
    interval_s: float,
    packet_bytes: int,
    rng: np.random.Generator,
    max_packets_per_interval: Optional[int] = None,
) -> PacketSample:
    """Follow a measured rate series: interval i sends at its Gb/s value.

    This is how the paper replays the hyperscaler trace through
    DPDK-Pktgen ("we modify DPDK-Pktgen to send packets, following the
    packet rate distribution of the network trace", §5.1).
    """
    arrivals: List[np.ndarray] = []
    for index, gbps in enumerate(rate_series_gbps):
        if gbps <= 0:
            continue
        rate_pps = gbps_to_bytes_per_second(gbps) / packet_bytes
        expected = rate_pps * interval_s
        n = int(min(expected, max_packets_per_interval or expected))
        if n < 1:
            n = 1
        gaps = rng.exponential(interval_s / n, size=n)
        offsets = np.cumsum(gaps)
        offsets = offsets[offsets < interval_s]
        arrivals.append(index * interval_s + offsets)
    if not arrivals:
        return PacketSample(np.array([]), np.array([], dtype=np.int64))
    all_arrivals = np.concatenate(arrivals)
    return PacketSample(
        arrivals=all_arrivals,
        sizes=np.full(len(all_arrivals), packet_bytes, dtype=np.int64),
    )


def payload_stream(
    sample: PacketSample,
    rng: np.random.Generator,
    text_fraction: float = 0.6,
    seed_fragments: Sequence[bytes] = (),
    seed_probability: float = 0.0,
) -> Iterator[bytes]:
    """Materialize payload bytes for a packet sample.

    Mixed text/binary content (matching the PCAP-mix character) with an
    optional probability of embedding an IDS seed fragment — used to give
    REM/Snort scans real matches at a controlled rate.
    """
    text = (
        b"GET /v2/object HTTP/1.1\r\nhost: svc.internal\r\n"
        b"x-request-id: 00000000\r\naccept: application/json\r\n\r\n"
    )
    for size in sample.sizes:
        size = int(size)
        if rng.random() < text_fraction:
            repeats = size // len(text) + 1
            payload = (text * repeats)[:size]
        else:
            payload = bytes(rng.integers(0, 256, size=size, dtype=np.uint8))
        if seed_fragments and rng.random() < seed_probability:
            fragment = seed_fragments[int(rng.integers(0, len(seed_fragments)))]
            if len(fragment) < size:
                position = int(rng.integers(0, size - len(fragment)))
                payload = (
                    payload[:position] + fragment + payload[position + len(fragment):]
                )
        yield payload
