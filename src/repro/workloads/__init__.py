"""Workload generators: pktgen, YCSB, traces, corpora."""

from .pktgen import (
    PacketSample,
    constant_size_stream,
    gbps_stream,
    pcap_mix_stream,
    payload_stream,
    trace_driven_stream,
)
from .traces import RateTrace, constant_trace, hyperscaler_trace, summarize
from .ycsb import (
    WORKLOADS,
    Operation,
    WorkloadSpec,
    ZipfianGenerator,
    load_phase,
    run_phase,
)
from .corpus import (
    document_corpus,
    make_compression_input,
    query_stream,
)

__all__ = [
    "PacketSample",
    "constant_size_stream",
    "gbps_stream",
    "pcap_mix_stream",
    "payload_stream",
    "trace_driven_stream",
    "RateTrace",
    "constant_trace",
    "hyperscaler_trace",
    "summarize",
    "WORKLOADS",
    "Operation",
    "WorkloadSpec",
    "ZipfianGenerator",
    "load_phase",
    "run_phase",
    "document_corpus",
    "make_compression_input",
    "query_stream",
]
