"""YCSB workload generation (Cooper et al., SoCC'10; §3.4).

The paper runs Redis under YCSB workloads A (50/50 read/update), B (95/5)
and C (read-only), with 30 K records of 1 KB and 10 K operations.  This
module reproduces the generator: zipfian request distribution over the
key space (the YCSB default), latest-distribution support, and the
standard workload letter presets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

DEFAULT_RECORDS = 30_000
DEFAULT_OPERATIONS = 10_000
DEFAULT_VALUE_BYTES = 1024
ZIPFIAN_CONSTANT = 0.99


@dataclass(frozen=True)
class WorkloadSpec:
    name: str
    read_fraction: float
    update_fraction: float
    records: int = DEFAULT_RECORDS
    operations: int = DEFAULT_OPERATIONS
    value_bytes: int = DEFAULT_VALUE_BYTES

    def __post_init__(self):
        total = self.read_fraction + self.update_fraction
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"op mix must sum to 1, got {total}")


WORKLOAD_A = WorkloadSpec("workload_a", read_fraction=0.5, update_fraction=0.5)
WORKLOAD_B = WorkloadSpec("workload_b", read_fraction=0.95, update_fraction=0.05)
WORKLOAD_C = WorkloadSpec("workload_c", read_fraction=1.0, update_fraction=0.0)

WORKLOADS = {"a": WORKLOAD_A, "b": WORKLOAD_B, "c": WORKLOAD_C}


class ZipfianGenerator:
    """Gray et al.'s zipfian generator, as used by YCSB."""

    def __init__(self, items: int, rng: np.random.Generator,
                 constant: float = ZIPFIAN_CONSTANT):
        if items < 1:
            raise ValueError("need at least one item")
        self.items = items
        self.rng = rng
        self.theta = constant
        self.zeta_n = self._zeta(items, constant)
        self.alpha = 1.0 / (1.0 - constant)
        zeta2 = self._zeta(2, constant)
        self.eta = (1 - (2.0 / items) ** (1 - constant)) / (1 - zeta2 / self.zeta_n)

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return float(np.sum(1.0 / np.arange(1, n + 1) ** theta))

    def next(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.items * (self.eta * u - self.eta + 1) ** self.alpha)


@dataclass(frozen=True)
class Operation:
    kind: str  # "read" | "update"
    key: bytes
    value: bytes = b""


def record_key(index: int) -> bytes:
    return b"user%010d" % index


def load_phase(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[Operation]:
    """The YCSB load phase: insert every record once."""
    value = bytes(rng.integers(ord("a"), ord("z") + 1,
                               size=spec.value_bytes, dtype=np.uint8))
    for index in range(spec.records):
        yield Operation("update", record_key(index), value)


def run_phase(spec: WorkloadSpec, rng: np.random.Generator) -> Iterator[Operation]:
    """The transaction phase: zipfian keys, the spec's op mix."""
    zipf = ZipfianGenerator(spec.records, rng)
    value = bytes(rng.integers(ord("a"), ord("z") + 1,
                               size=spec.value_bytes, dtype=np.uint8))
    for _ in range(spec.operations):
        index = min(zipf.next(), spec.records - 1)
        if rng.random() < spec.read_fraction:
            yield Operation("read", record_key(index))
        else:
            yield Operation("update", record_key(index), value)


def operation_mix(operations: List[Operation]) -> Tuple[float, float]:
    """(read fraction, update fraction) actually generated."""
    if not operations:
        return 0.0, 0.0
    reads = sum(1 for op in operations if op.kind == "read")
    return reads / len(operations), 1.0 - reads / len(operations)
