"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig4              # Fig. 4 table
    python -m repro fig5              # Fig. 5 rate sweeps
    python -m repro fig6              # Fig. 6 power / efficiency
    python -m repro fig7              # Fig. 7 trace sparkline
    python -m repro table4            # Table 4 trace replay
    python -m repro table5            # Table 5 TCO
    python -m repro observations     # O1-O5 verdicts
    python -m repro faults --smoke    # availability study, CI fidelity
    python -m repro report [-o FILE]  # full EXPERIMENTS.md
    python -m repro trace fig4 --smoke   # flight-recorder trace of a run

Every experiment verb is a generic walk over the experiment registry
(:mod:`repro.experiments.registry`): the verb list, ``--csv`` support,
``--smoke`` fidelity, ``--json`` artifact export, and dependency
resolution (fig6 reuses fig4's rows, table5 reuses table4) all derive
from the registered :class:`Experiment` specs — registering a new spec
is all it takes to get a verb here, a section in the smoke matrix, and
a JSON artifact schema.

Any verb takes ``--trace`` (record the run into the flight recorder and
write ``trace.jsonl`` + Chrome ``trace.json`` on exit), ``--trace-dir``
(where to write them; implies ``--trace``) and ``--log-level`` (the
``repro.*`` logger hierarchy).  The timing footer on stderr always
prints — even when a verb fails — with probe/cache/kernel/trace totals.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import List, Optional

from .analysis.report import generate_report
from .core import instrument, trace
from .core.cache import ResultCache, configure
from .core.executor import ParallelExecutor
from .core.rng import RandomStreams
from .experiments import registry
from .experiments.registry import DEFAULT_TIER, SMOKE_TIER, ExperimentContext


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartNIC datacenter-tax study (IISWC'23), reproduced in simulation",
    )
    parser.add_argument("--samples", type=int, default=200,
                        help="function-profile sample count (fidelity)")
    parser.add_argument("--requests", type=int, default=12_000,
                        help="requests simulated per rate probe")
    parser.add_argument("--seed", type=int, default=2023, help="root RNG seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent measurements "
                             "(0 = all cores; output is identical at any N)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist measured results on disk and reuse "
                             "them across invocations")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the experiment's smoke fidelity tier "
                             "(tiny deterministic subset, seconds, for CI)")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also write the result as CSV "
                             "(verbs whose spec has a CSV writer)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the result as a JSON artifact "
                             "(validated against the spec's schema in CI)")
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="level for the repro.* logger hierarchy")
    parser.add_argument("--trace", action="store_true",
                        help="record the run into the flight recorder and "
                             "write trace.jsonl + trace.json on exit")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="directory for trace files (implies --trace)")
    parser.add_argument("--metrics-interval", type=float,
                        default=trace.DEFAULT_METRICS_INTERVAL_S,
                        metavar="SECONDS",
                        help="window for queue-depth/utilization series "
                             "in the trace")
    sub = parser.add_subparsers(dest="command", required=True)

    def _mirror_common(p: argparse.ArgumentParser) -> None:
        # The global flags are also accepted after the subcommand
        # (`repro faults --smoke`, `repro fig4 --json out.json`).
        # SUPPRESS defaults keep the subparser from clobbering
        # main-parser values.
        p.add_argument("--smoke", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--csv", metavar="FILE",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--json", metavar="FILE",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--log-level", choices=("debug", "info", "warning",
                                               "error"),
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace-dir", metavar="DIR",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--metrics-interval", type=float, metavar="SECONDS",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    # One verb per registered experiment, in the paper's artifact order.
    for spec in registry.all_experiments():
        _mirror_common(sub.add_parser(spec.name, help=spec.title))
    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    _mirror_common(report)
    tracer = sub.add_parser(
        "trace", help="run an experiment with the flight recorder on and "
                      "export the trace"
    )
    tracer.add_argument("experiment", choices=registry.names(),
                        help="which experiment to trace")
    _mirror_common(tracer)
    return parser


def _configure_logging(level_name: str) -> None:
    """One stderr handler on the ``repro`` root of the logger hierarchy."""
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root.handlers[:] = [handler]
    root.setLevel(getattr(logging, level_name.upper()))
    root.propagate = False


def _write_trace_files(trace_dir: str) -> None:
    """Export the active recorder as JSONL + Chrome trace_event JSON."""
    rec = trace.recorder()
    if rec is None:
        return
    os.makedirs(trace_dir, exist_ok=True)
    jsonl_path = os.path.join(trace_dir, "trace.jsonl")
    chrome_path = os.path.join(trace_dir, "trace.json")
    with open(jsonl_path, "w") as handle:
        trace.export_jsonl(handle, rec)
    with open(chrome_path, "w") as handle:
        trace.export_chrome(handle, rec)
    print(f"wrote {jsonl_path} and {chrome_path} "
          f"({len(rec)} events, {rec.dropped} dropped)", file=sys.stderr)


def _experiment_name(args) -> Optional[str]:
    """The registered experiment a verb resolves to (None for report)."""
    if args.command == "trace":
        return args.experiment
    if args.command == "report":
        return None
    return args.command


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    name = _experiment_name(args)
    if args.csv and (name is None or not registry.get(name).supports_csv):
        parser.error(
            f"--csv is not supported by '{args.command}' "
            f"(supported: {', '.join(registry.csv_capable())})"
        )
    if name is None and args.json:
        parser.error(f"--json is not supported by '{args.command}'")
    if name is None and args.smoke:
        parser.error(
            f"--smoke is not supported by '{args.command}' "
            "(the report compares against the paper at full fidelity)"
        )
    if args.metrics_interval <= 0:
        parser.error("--metrics-interval must be positive")
    _configure_logging(args.log_level)
    instrument.reset()
    configure(ResultCache(cache_dir=args.cache_dir))
    streams = RandomStreams(args.seed)
    tracing = args.trace or args.trace_dir is not None or args.command == "trace"
    if tracing:
        trace.enable(metrics_interval_s=args.metrics_interval)
    started = time.time()
    # One executor (one worker pool) for the whole invocation: every
    # phase of a multi-phase verb reuses the same workers instead of
    # re-paying pool startup per batch.
    executor = ParallelExecutor(args.jobs)
    try:
        return _dispatch(args, streams, executor)
    finally:
        # The footer (and any trace files) must survive a failing verb:
        # a run that died mid-study still reports what it actually did.
        try:
            executor.close()
            if tracing:
                _write_trace_files(args.trace_dir or ".")
        finally:
            _print_footer(started)
            trace.disable()


def _print_footer(started: float) -> None:
    parts = [
        f"{time.time() - started:.1f}s",
        f"probes {instrument.value(instrument.PROBES)}"
        f" ({instrument.value(instrument.PROBES_SAVED)} saved)",
        f"cache {instrument.value(instrument.CACHE_HITS)} hit / "
        f"{instrument.value(instrument.CACHE_MISSES)} miss",
        f"kernel {instrument.value(instrument.EVENTS_SCHEDULED)} sched / "
        f"{instrument.value(instrument.EVENTS_FIRED)} fired",
    ]
    rec = trace.recorder()
    if rec is not None:
        parts.append(trace.summary_line(rec))
    print(f"[{' | '.join(parts)}]", file=sys.stderr)


def _write_json_artifact(path: str, spec, ctx: ExperimentContext,
                         result) -> None:
    from .analysis.export import build_artifact, write_artifact

    payload = spec.to_json(result) if spec.to_json is not None else result
    artifact = build_artifact(
        experiment=spec.name,
        title=spec.title,
        tier=ctx.tier,
        seed=ctx.seed,
        fidelity=ctx.fidelity(spec).__dict__,
        result=payload,
    )
    with open(path, "w") as handle:
        write_artifact(handle, artifact)
    print(f"wrote {path}", file=sys.stderr)


def _dispatch(args, streams, executor) -> int:
    """Generic registry-driven verb driver.

    One :class:`ExperimentContext` per invocation carries the streams,
    the shared worker pool, the fidelity tier, and the per-invocation
    result memo — so a verb with dependencies (fig6, table5,
    observations) computes each upstream artifact exactly once.
    """
    ctx = ExperimentContext(
        streams=streams,
        executor=executor,
        tier=SMOKE_TIER if args.smoke else DEFAULT_TIER,
        samples=args.samples,
        requests=args.requests,
    )
    if args.command == "report":
        text = generate_report(samples=args.samples, n_requests=args.requests,
                               streams=streams, executor=executor, ctx=ctx)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0

    name = _experiment_name(args)
    spec = registry.get(name)
    result = ctx.run(name)
    print(spec.render(result))
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            spec.csv_writer(handle, result)
    if args.json:
        _write_json_artifact(args.json, spec, ctx, result)
    if args.command == "trace":
        rec = trace.recorder()
        if rec is not None:
            counts = ", ".join(f"{cat}={n}" for cat, n in
                               sorted(rec.category_counts().items()))
            print(f"trace categories: {counts}", file=sys.stderr)
    if spec.verdict is not None and not ctx.smoke:
        # Science gates (the observations exit code) only bind at full
        # fidelity; a smoke run validates plumbing, not claims.
        return spec.verdict(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
