"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig4              # Fig. 4 table
    python -m repro fig5              # Fig. 5 rate sweeps
    python -m repro fig6              # Fig. 6 power / efficiency
    python -m repro fig7              # Fig. 7 trace sparkline
    python -m repro table4            # Table 4 trace replay
    python -m repro table5            # Table 5 TCO
    python -m repro observations     # O1-O5 verdicts
    python -m repro faults --smoke    # availability study, CI fidelity
    python -m repro report [-o FILE]  # full EXPERIMENTS.md
    python -m repro trace fig4 --smoke   # flight-recorder trace of a run

Every experiment verb is a generic walk over the experiment registry
(:mod:`repro.experiments.registry`): the verb list, ``--csv`` support,
``--smoke`` fidelity, ``--json`` artifact export, and dependency
resolution (fig6 reuses fig4's rows, table5 reuses table4) all derive
from the registered :class:`Experiment` specs — registering a new spec
is all it takes to get a verb here, a section in the smoke matrix, and
a JSON artifact schema.

Any verb takes ``--trace`` (record the run into the flight recorder and
write ``trace.jsonl`` + Chrome ``trace.json`` on exit), ``--trace-dir``
(where to write them; implies ``--trace``) and ``--log-level`` (the
``repro.*`` logger hierarchy).  The timing footer on stderr always
prints — even when a verb fails — with probe/cache/kernel/trace totals
plus every other non-zero counter in sorted order and a one-line
registry summary.

Telemetry (:mod:`repro.obs`): every verb takes ``--metrics-out DIR``
(write the full metric registry as OpenMetrics ``metrics.prom`` +
``metrics.jsonl`` on exit) and ``--metrics-port N`` (serve live
``GET /metrics`` on localhost while the run is in flight; 0 picks an
ephemeral port).  ``repro status <run-dir>`` reports a supervised run's
fleet progress from its manifest and heartbeats (``--watch`` to follow,
``--json`` for machines).

Run-farm supervision (``--run-dir``, ``--resume``, ``--unit-timeout``,
``--max-unit-attempts``) journals every work unit to a resumable
manifest, enforces per-unit wall-clock deadlines with SIGKILL, retries
failures with backoff, and quarantines poison pills::

    python -m repro report --jobs 4 --run-dir runs/report
    # ... driver or worker dies mid-run (kill -9, OOM, Ctrl-C) ...
    python -m repro report --jobs 4 --resume runs/report
    # only incomplete units re-execute; output is byte-identical

A run that completes with quarantined units exits with code 3 and (for
``degradation="partial"`` experiments, or via ``--json``) produces a
partial-results artifact instead of nothing.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import List, Optional

from .analysis.report import generate_report
from .core import hybrid, instrument, trace
from .core.cache import CODE_VERSION, ResultCache, configure
from .core.executor import ParallelExecutor
from .core.rng import RandomStreams
from .experiments import registry
from .experiments.registry import (
    DEFAULT_TIER,
    SMOKE_TIER,
    ExperimentContext,
    PartialResult,
)
from .faults.retry import RetryPolicy
from .runfarm import (
    QuarantinedUnitError,
    RunManifest,
    SupervisedExecutor,
    SupervisorConfig,
)
from .runfarm.supervisor import DEFAULT_RETRY, load_prior_done

# A supervised run that finished with quarantined poison-pill units:
# every healthy unit completed (and is journaled + stored for resume),
# but the artifact is partial.  Distinct from argparse's 2 and the
# observations verdict's 1.
EXIT_PARTIAL = 3


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartNIC datacenter-tax study (IISWC'23), reproduced in simulation",
    )
    parser.add_argument("--samples", type=int, default=200,
                        help="function-profile sample count (fidelity)")
    parser.add_argument("--requests", type=int, default=12_000,
                        help="requests simulated per rate probe")
    parser.add_argument("--seed", type=int, default=2023, help="root RNG seed")
    parser.add_argument("--engine", choices=hybrid.ENGINES,
                        default=hybrid.DEFAULT_ENGINE,
                        help="probe engine: 'hybrid' answers validated "
                             "off-knee rungs analytically (default); 'sim' "
                             "simulates every probe (byte-identical to the "
                             "pre-hybrid output)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent measurements "
                             "(0 = all cores; output is identical at any N)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist measured results on disk and reuse "
                             "them across invocations")
    parser.add_argument("--smoke", action="store_true",
                        help="run at the experiment's smoke fidelity tier "
                             "(tiny deterministic subset, seconds, for CI)")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also write the result as CSV "
                             "(verbs whose spec has a CSV writer)")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="also write the result as a JSON artifact "
                             "(validated against the spec's schema in CI)")
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="level for the repro.* logger hierarchy")
    parser.add_argument("--trace", action="store_true",
                        help="record the run into the flight recorder and "
                             "write trace.jsonl + trace.json on exit")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="directory for trace files (implies --trace)")
    parser.add_argument("--metrics-interval", type=float,
                        default=trace.DEFAULT_METRICS_INTERVAL_S,
                        metavar="SECONDS",
                        help="window for queue-depth/utilization series "
                             "in the trace")
    parser.add_argument("--metrics-out", default=None, metavar="DIR",
                        help="write the metric registry as OpenMetrics "
                             "(metrics.prom) and JSONL (metrics.jsonl) "
                             "into DIR on exit")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve live GET /metrics (OpenMetrics) on "
                             "127.0.0.1:PORT while the run is in flight "
                             "(0 picks an ephemeral port)")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="run under the run-farm supervisor, journaling "
                             "every work unit to DIR/manifest.jsonl and "
                             "storing artifacts in DIR/artifacts (resumable "
                             "with --resume DIR)")
    parser.add_argument("--resume", default=None, metavar="MANIFEST",
                        help="resume an interrupted supervised run from its "
                             "manifest file (or run directory): completed "
                             "units are served from the artifact store, only "
                             "incomplete units re-execute")
    parser.add_argument("--unit-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-work-unit wall-clock deadline; a unit that "
                             "exceeds it is SIGKILLed and requeued "
                             "(implies run-farm supervision)")
    parser.add_argument("--max-unit-attempts", type=int, default=None,
                        metavar="N",
                        help="attempts before a failing unit is quarantined "
                             "as a poison pill (default 3; implies run-farm "
                             "supervision)")
    sub = parser.add_subparsers(dest="command", required=True)

    def _mirror_common(p: argparse.ArgumentParser) -> None:
        # The global flags are also accepted after the subcommand
        # (`repro faults --smoke`, `repro fig4 --json out.json`).
        # SUPPRESS defaults keep the subparser from clobbering
        # main-parser values.
        p.add_argument("--smoke", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--engine", choices=hybrid.ENGINES,
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--csv", metavar="FILE",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--json", metavar="FILE",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--log-level", choices=("debug", "info", "warning",
                                               "error"),
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace-dir", metavar="DIR",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--metrics-interval", type=float, metavar="SECONDS",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--metrics-out", metavar="DIR",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--metrics-port", type=int, metavar="PORT",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--run-dir", metavar="DIR",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--resume", metavar="MANIFEST",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--unit-timeout", type=float, metavar="SECONDS",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--max-unit-attempts", type=int, metavar="N",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    # One verb per registered experiment, in the paper's artifact order.
    for spec in registry.all_experiments():
        _mirror_common(sub.add_parser(spec.name, help=spec.title))
    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    _mirror_common(report)
    tracer = sub.add_parser(
        "trace", help="run an experiment with the flight recorder on and "
                      "export the trace"
    )
    tracer.add_argument("experiment", choices=registry.names(),
                        help="which experiment to trace")
    _mirror_common(tracer)
    status = sub.add_parser(
        "status", help="fleet progress of a supervised run (from its "
                       "manifest and heartbeats)"
    )
    # Deliberately NOT mirrored: `status` is a read-only observer, so
    # the execution flags (--jobs, --smoke, --trace, ...) don't apply.
    # Its --json is a flag (print a JSON document), unlike the global
    # FILE-valued --json, hence the distinct dest.
    status.add_argument("run_dir",
                        help="run directory (or manifest file) to inspect")
    status.add_argument("--watch", action="store_true",
                        help="refresh until the run has no incomplete units")
    status.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh period for --watch (default 2.0)")
    status.add_argument("--json", action="store_true", dest="status_json",
                        help="print one machine-readable JSON document "
                             "instead of text")
    status.add_argument("--log-level", choices=("debug", "info", "warning",
                                                "error"),
                        default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    return parser


def _configure_logging(level_name: str) -> None:
    """One stderr handler on the ``repro`` root of the logger hierarchy."""
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root.handlers[:] = [handler]
    root.setLevel(getattr(logging, level_name.upper()))
    root.propagate = False


def _write_trace_files(trace_dir: str) -> None:
    """Export the active recorder as JSONL + Chrome trace_event JSON."""
    rec = trace.recorder()
    if rec is None:
        return
    os.makedirs(trace_dir, exist_ok=True)
    jsonl_path = os.path.join(trace_dir, "trace.jsonl")
    chrome_path = os.path.join(trace_dir, "trace.json")
    with open(jsonl_path, "w") as handle:
        trace.export_jsonl(handle, rec)
    with open(chrome_path, "w") as handle:
        trace.export_chrome(handle, rec)
    print(f"wrote {jsonl_path} and {chrome_path} "
          f"({len(rec)} events, {rec.dropped} dropped)", file=sys.stderr)


def _write_metrics_files(metrics_dir: str) -> None:
    """Export the metric registry as OpenMetrics text + JSONL."""
    from .obs import metrics as obs_metrics
    from .obs.openmetrics import write_metrics_files

    prom_path, jsonl_path, count = write_metrics_files(
        metrics_dir, obs_metrics.registry())
    print(f"wrote {prom_path} and {jsonl_path} ({count} metrics)",
          file=sys.stderr)


def _experiment_name(args) -> Optional[str]:
    """The registered experiment a verb resolves to (None for report)."""
    if args.command == "trace":
        return args.experiment
    if args.command == "report":
        return None
    return args.command


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "status":
        # Read-only observer verb: no executor, cache, or trace setup —
        # and none of the execution-flag validation below applies.
        _configure_logging(args.log_level)
        from .runfarm import status as fleet_status

        return fleet_status.run_cli(args)
    name = _experiment_name(args)
    if args.csv and (name is None or not registry.get(name).supports_csv):
        parser.error(
            f"--csv is not supported by '{args.command}' "
            f"(supported: {', '.join(registry.csv_capable())})"
        )
    if name is None and args.json:
        parser.error(f"--json is not supported by '{args.command}'")
    if args.metrics_interval <= 0:
        parser.error("--metrics-interval must be positive")
    if args.metrics_port is not None and not 0 <= args.metrics_port <= 65535:
        parser.error("--metrics-port must be in [0, 65535]")
    if args.unit_timeout is not None and args.unit_timeout <= 0:
        parser.error("--unit-timeout must be positive")
    if args.max_unit_attempts is not None and args.max_unit_attempts < 1:
        parser.error("--max-unit-attempts must be >= 1")
    if args.run_dir and args.resume:
        parser.error("--run-dir and --resume are mutually exclusive "
                     "(--resume already names the run directory)")
    _configure_logging(args.log_level)
    instrument.reset()
    # Run-farm supervision activates when any runfarm flag is given;
    # --resume additionally adopts the original run's fidelity so the
    # resumed output is byte-identical.  Must run before the cache is
    # configured (the run dir doubles as the artifact store) and before
    # the streams are built (resume may override --seed).
    executor: ParallelExecutor
    if _runfarm_active(args):
        executor = _setup_runfarm(args, parser)
    else:
        # One executor (one worker pool) for the whole invocation:
        # every phase of a multi-phase verb reuses the same workers
        # instead of re-paying pool startup per batch.
        executor = ParallelExecutor(args.jobs)
    # After runfarm setup: a resumed manifest may have adopted the
    # original run's engine so the resumed output stays byte-identical.
    hybrid.configure_engine(args.engine)
    configure(ResultCache(cache_dir=args.cache_dir))
    streams = RandomStreams(args.seed)
    tracing = args.trace or args.trace_dir is not None or args.command == "trace"
    if tracing:
        trace.enable(metrics_interval_s=args.metrics_interval)
    metrics_server = None
    if args.metrics_port is not None:
        from .obs.openmetrics import MetricsServer

        metrics_server = MetricsServer(port=args.metrics_port).start()
        print(f"serving metrics at "
              f"http://127.0.0.1:{metrics_server.port}/metrics",
              file=sys.stderr)
    started = time.time()
    try:
        try:
            return _dispatch(args, streams, executor)
        except QuarantinedUnitError as exc:
            # An abort-degradation experiment (or the report) finished
            # its healthy units but quarantined poison pills.  All
            # progress is journaled; tell the operator how to retry.
            print(f"RUN INCOMPLETE: {exc}", file=sys.stderr)
            resume_hint = args.resume or args.run_dir
            if resume_hint:
                print(f"resume with: --resume {resume_hint}",
                      file=sys.stderr)
            return EXIT_PARTIAL
    finally:
        # The footer (and any trace/metrics files) must survive a
        # failing verb: a run that died mid-study still reports what it
        # actually did.
        try:
            executor.close()
            if tracing:
                _write_trace_files(args.trace_dir or ".")
            if args.metrics_out:
                _write_metrics_files(args.metrics_out)
        finally:
            if metrics_server is not None:
                metrics_server.close()
            _print_footer(started, executor)
            trace.disable()


def _runfarm_active(args) -> bool:
    return bool(args.run_dir or args.resume
                or args.unit_timeout is not None
                or args.max_unit_attempts is not None)


def _invocation_topology(command: str, tier: str) -> str:
    """The topology id this invocation will realize.

    Only the ``cluster`` verb fans out over a fabric; every other verb
    runs the seed repo's single-node world.
    """
    if command == "cluster":
        from .experiments.cluster import tier_topology_id

        return tier_topology_id(tier)
    from .cluster import single_node_spec

    return single_node_spec().topology_id()


def _setup_runfarm(args, parser) -> ParallelExecutor:
    """Build the supervised executor (and mutate args for resume/cache).

    Resolves the run directory (``--run-dir``, the ``--resume`` target,
    or ``runs/<verb>`` when only timeout/attempt flags are given), opens
    the manifest, adopts a resumed run's fidelity knobs, and points the
    result cache at the run's artifact store unless ``--cache-dir`` was
    given explicitly.
    """
    if args.resume:
        manifest_path = args.resume
        if os.path.isdir(manifest_path):
            manifest_path = os.path.join(manifest_path, "manifest.jsonl")
        if not os.path.exists(manifest_path):
            parser.error(f"--resume: no manifest at {args.resume}")
        state = RunManifest.load(manifest_path)
        header = state.header
        if header.get("verb") and header["verb"] != args.command:
            parser.error(
                f"--resume: manifest {manifest_path} was recorded by "
                f"'{header['verb']}', not '{args.command}'"
            )
        if header.get("code_version") not in (None, CODE_VERSION):
            # Not fatal: cache keys are salted by CODE_VERSION, so stale
            # artifacts simply miss and re-execute.
            print(f"warning: resuming a manifest from code version "
                  f"{header['code_version']} under {CODE_VERSION}; "
                  f"all units will re-execute", file=sys.stderr)
        # Adopt the original run's fidelity so the resumed output is
        # byte-identical to an uninterrupted run.
        args.seed = int(header.get("seed", args.seed))
        args.samples = int(header.get("samples", args.samples))
        args.requests = int(header.get("requests", args.requests))
        if header.get("tier"):
            args.smoke = header["tier"] == SMOKE_TIER
        if header.get("engine"):
            args.engine = header["engine"]
        if header.get("topology"):
            expected = _invocation_topology(
                args.command, SMOKE_TIER if args.smoke else DEFAULT_TIER)
            if header["topology"] != expected:
                parser.error(
                    f"--resume: manifest {manifest_path} was recorded "
                    f"for topology '{header['topology']}', but this "
                    f"invocation realizes '{expected}'; completed units "
                    f"would mix incompatible clusters"
                )
        run_dir = state.run_dir
        print(f"resuming {manifest_path}: {state.summary()}",
              file=sys.stderr)
    else:
        run_dir = args.run_dir or os.path.join("runs", args.command)
    manifest = RunManifest(run_dir)
    prior_done = load_prior_done(manifest.path)
    if args.cache_dir is None:
        # The run directory doubles as the artifact store: completed
        # units are resume-served straight from it.
        args.cache_dir = os.path.join(run_dir, "artifacts")
    retry = DEFAULT_RETRY
    if args.max_unit_attempts is not None:
        retry = RetryPolicy(
            timeout_s=retry.timeout_s,
            max_attempts=args.max_unit_attempts,
            backoff_factor=retry.backoff_factor,
            jitter_fraction=retry.jitter_fraction,
            max_elapsed_s=retry.max_elapsed_s,
        )
    config = SupervisorConfig(
        unit_timeout_s=args.unit_timeout,
        retry=retry,
        heartbeat_dir=os.path.join(run_dir, "heartbeats"),
    )
    executor = SupervisedExecutor(args.jobs, manifest=manifest,
                                  config=config, prior_done=prior_done)
    tier = SMOKE_TIER if args.smoke else DEFAULT_TIER
    manifest.begin_generation(
        verb=args.command, seed=args.seed, samples=args.samples,
        requests=args.requests,
        tier=tier,
        engine=args.engine,
        topology=_invocation_topology(args.command, tier),
        jobs=args.jobs, code_version=CODE_VERSION,
        argv=list(sys.argv[1:]),
    )
    return executor


def _print_footer(started: float,
                  executor: Optional[ParallelExecutor] = None) -> None:
    parts = [
        f"{time.time() - started:.1f}s",
        f"probes: {instrument.value(instrument.PROBES_SIMULATED)} simulated, "
        f"{instrument.value(instrument.ANALYTIC_HITS)} analytic, "
        f"{instrument.value(instrument.PROBES_SAVED)} saved",
        f"cache {instrument.value(instrument.CACHE_HITS)} hit / "
        f"{instrument.value(instrument.CACHE_MISSES)} miss",
        f"kernel {instrument.value(instrument.EVENTS_SCHEDULED)} sched / "
        f"{instrument.value(instrument.EVENTS_FIRED)} fired",
    ]
    if isinstance(executor, SupervisedExecutor):
        parts.append(executor.summary())
    # Every other non-zero counter, in sorted (stable) order, so new
    # subsystems surface in the footer without bespoke formatting.
    from .obs import metrics as obs_metrics

    shown = {instrument.PROBES, instrument.PROBES_SIMULATED,
             instrument.ANALYTIC_HITS, instrument.PROBES_SAVED,
             instrument.CACHE_HITS, instrument.CACHE_MISSES,
             instrument.EVENTS_SCHEDULED, instrument.EVENTS_FIRED}
    registry_counters = obs_metrics.registry().counter_values()
    parts.extend(f"{name} {value}"
                 for name, value in sorted(registry_counters.items())
                 if value and name not in shown)
    rec = trace.recorder()
    if rec is not None:
        parts.append(trace.summary_line(rec))
    parts.append(obs_metrics.summary_line())
    print(f"[{' | '.join(parts)}]", file=sys.stderr)


def _write_json_artifact(path: str, spec, ctx: ExperimentContext,
                         result, *, partial: bool = False,
                         quarantined=()) -> None:
    from .analysis.export import build_artifact, write_artifact
    from .obs import slo as slo_mod

    if partial:
        payload = None
    else:
        payload = spec.to_json(result) if spec.to_json is not None else result
    artifact = build_artifact(
        experiment=spec.name,
        title=spec.title,
        tier=ctx.tier,
        seed=ctx.seed,
        fidelity=ctx.fidelity(spec).__dict__,
        result=payload,
        partial=partial,
        quarantined=quarantined,
        slo=slo_mod.block(getattr(ctx, "slo_findings", {}).get(spec.name, ())),
    )
    with open(path, "w") as handle:
        write_artifact(handle, artifact)
    print(f"wrote {path}", file=sys.stderr)


def _dispatch(args, streams, executor) -> int:
    """Generic registry-driven verb driver.

    One :class:`ExperimentContext` per invocation carries the streams,
    the shared worker pool, the fidelity tier, and the per-invocation
    result memo — so a verb with dependencies (fig6, table5,
    observations) computes each upstream artifact exactly once.
    """
    ctx = ExperimentContext(
        streams=streams,
        executor=executor,
        tier=SMOKE_TIER if args.smoke else DEFAULT_TIER,
        samples=args.samples,
        requests=args.requests,
        engine=args.engine,
    )
    if args.command == "report":
        text = generate_report(samples=args.samples, n_requests=args.requests,
                               streams=streams, executor=executor, ctx=ctx)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
        return 0

    name = _experiment_name(args)
    spec = registry.get(name)
    try:
        result = ctx.run(name)
    except QuarantinedUnitError as exc:
        # Abort-degradation spec: no partial rendering, but the JSON
        # artifact (if requested) still records what was quarantined so
        # CI can distinguish "degraded" from "crashed".
        if args.json:
            _write_json_artifact(args.json, spec, ctx, None, partial=True,
                                 quarantined=exc.quarantined_units())
        raise
    if isinstance(result, PartialResult):
        # Partial-degradation spec: the run completed around its poison
        # pills; render the degradation notice instead of the table.
        print(result.notice())
        if args.json:
            _write_json_artifact(args.json, spec, ctx, None, partial=True,
                                 quarantined=result.quarantined)
        return EXIT_PARTIAL
    print(spec.render(result))
    if args.csv:
        with open(args.csv, "w", newline="") as handle:
            spec.csv_writer(handle, result)
    if args.json:
        _write_json_artifact(args.json, spec, ctx, result)
    if args.command == "trace":
        rec = trace.recorder()
        if rec is not None:
            counts = ", ".join(f"{cat}={n}" for cat, n in
                               sorted(rec.category_counts().items()))
            print(f"trace categories: {counts}", file=sys.stderr)
    if spec.verdict is not None and not ctx.smoke:
        # Science gates (the observations exit code) only bind at full
        # fidelity; a smoke run validates plumbing, not claims.
        return spec.verdict(result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
