"""Command-line interface: regenerate any paper artifact from a shell.

Usage::

    python -m repro fig4              # Fig. 4 table
    python -m repro fig5              # Fig. 5 rate sweeps
    python -m repro fig6              # Fig. 6 power / efficiency
    python -m repro fig7              # Fig. 7 trace sparkline
    python -m repro table4            # Table 4 trace replay
    python -m repro table5            # Table 5 TCO
    python -m repro observations      # O1-O5 verdicts
    python -m repro faults [--smoke]  # availability under fault scenarios
    python -m repro report [-o FILE]  # full EXPERIMENTS.md
    python -m repro trace fig4 --smoke   # flight-recorder trace of a run

Any verb takes ``--trace`` (record the run into the flight recorder and
write ``trace.jsonl`` + Chrome ``trace.json`` on exit), ``--trace-dir``
(where to write them; implies ``--trace``) and ``--log-level`` (the
``repro.*`` logger hierarchy).  The timing footer on stderr always
prints — even when a verb fails — with probe/cache/kernel/trace totals.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time
from typing import List, Optional

from .analysis.report import generate_report
from .analysis.tables import format_all_tables
from .analysis.tco import format_comparison
from .core import instrument, trace
from .core.cache import ResultCache, configure
from .core.executor import ParallelExecutor
from .core.rng import RandomStreams
from .experiments import (
    format_fig4,
    format_fig5,
    format_fig6,
    format_fig7,
    format_table4,
    format_verdicts,
    rows_from_fig4,
    run_fig4,
    run_fig5,
    run_fig7,
    run_table4,
    run_table5,
)
from .experiments.observations import (
    observation_1,
    observation_2,
    observation_3,
    observation_4,
    observation_5,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SmartNIC datacenter-tax study (IISWC'23), reproduced in simulation",
    )
    parser.add_argument("--samples", type=int, default=200,
                        help="function-profile sample count (fidelity)")
    parser.add_argument("--requests", type=int, default=12_000,
                        help="requests simulated per rate probe")
    parser.add_argument("--seed", type=int, default=2023, help="root RNG seed")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent measurements "
                             "(0 = all cores; output is identical at any N)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persist measured results on disk and reuse "
                             "them across invocations")
    parser.add_argument("--csv", default=None, metavar="FILE",
                        help="also write the result as CSV (fig4/fig5/fig6/table5)")
    parser.add_argument("--log-level", default="warning",
                        choices=("debug", "info", "warning", "error"),
                        help="level for the repro.* logger hierarchy")
    parser.add_argument("--trace", action="store_true",
                        help="record the run into the flight recorder and "
                             "write trace.jsonl + trace.json on exit")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="directory for trace files (implies --trace)")
    parser.add_argument("--metrics-interval", type=float,
                        default=trace.DEFAULT_METRICS_INTERVAL_S,
                        metavar="SECONDS",
                        help="window for queue-depth/utilization series "
                             "in the trace")
    sub = parser.add_subparsers(dest="command", required=True)

    def _mirror_common(p: argparse.ArgumentParser) -> None:
        # The global observability flags are also accepted after the
        # subcommand (`repro trace fig4 --trace-dir out/`).  SUPPRESS
        # defaults keep the subparser from clobbering main-parser values.
        p.add_argument("--log-level", choices=("debug", "info", "warning",
                                               "error"),
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--trace-dir", metavar="DIR",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
        p.add_argument("--metrics-interval", type=float, metavar="SECONDS",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    for name in ("fig4", "fig5", "fig6", "fig7", "table4", "table5",
                 "observations", "tables", "strategy1", "modes",
                 "sensitivity", "microburst"):
        _mirror_common(sub.add_parser(name, help=f"regenerate {name}"))
    faults = sub.add_parser(
        "faults", help="availability under fault scenarios (failover study)"
    )
    faults.add_argument("--smoke", action="store_true",
                        help="tiny deterministic subset (seconds, for CI)")
    _mirror_common(faults)
    report = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    _mirror_common(report)
    tracer = sub.add_parser(
        "trace", help="run an experiment with the flight recorder on and "
                      "export the trace"
    )
    tracer.add_argument("experiment", choices=("fig4", "fig5", "faults"),
                        help="which experiment to trace")
    tracer.add_argument("--smoke", action="store_true",
                        help="tiny deterministic subset (seconds, for CI)")
    _mirror_common(tracer)
    return parser


# Subcommands whose output has a CSV writer; everything else rejects --csv.
CSV_COMMANDS = frozenset({"fig4", "fig5", "fig6", "table5"})

# Smoke fidelity for `repro trace <experiment> --smoke`: a spread that
# still exercises the CPU queueing, accelerator batch, and cache layers.
TRACE_SMOKE_KEYS = ("udp:64", "redis:a", "rem:file_image")


def _configure_logging(level_name: str) -> None:
    """One stderr handler on the ``repro`` root of the logger hierarchy."""
    root = logging.getLogger("repro")
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root.handlers[:] = [handler]
    root.setLevel(getattr(logging, level_name.upper()))
    root.propagate = False


def _write_trace_files(trace_dir: str) -> None:
    """Export the active recorder as JSONL + Chrome trace_event JSON."""
    rec = trace.recorder()
    if rec is None:
        return
    os.makedirs(trace_dir, exist_ok=True)
    jsonl_path = os.path.join(trace_dir, "trace.jsonl")
    chrome_path = os.path.join(trace_dir, "trace.json")
    with open(jsonl_path, "w") as handle:
        trace.export_jsonl(handle, rec)
    with open(chrome_path, "w") as handle:
        trace.export_chrome(handle, rec)
    print(f"wrote {jsonl_path} and {chrome_path} "
          f"({len(rec)} events, {rec.dropped} dropped)", file=sys.stderr)


def _run_trace_experiment(args, streams, executor) -> None:
    """The ``trace`` verb body: run one experiment under the recorder."""
    if args.experiment == "fig4":
        keys = TRACE_SMOKE_KEYS if args.smoke else None
        samples = min(args.samples, 40) if args.smoke else args.samples
        requests = min(args.requests, 2_500) if args.smoke else args.requests
        kwargs = dict(samples=samples, n_requests=requests, streams=streams,
                      executor=executor)
        if keys is not None:
            kwargs["keys"] = keys
        rows = run_fig4(**kwargs)
        print(format_fig4(rows))
    elif args.experiment == "fig5":
        samples = min(args.samples, 40) if args.smoke else args.samples
        requests = min(args.requests, 2_500) if args.smoke else args.requests
        rates = (10, 30, 50) if args.smoke else None
        kwargs = dict(samples=samples, n_requests=requests, streams=streams,
                      executor=executor)
        if rates is not None:
            kwargs["rates_gbps"] = rates
        figure = run_fig5(**kwargs)
        print(format_fig5(figure))
    else:  # faults
        from .experiments.faults import format_faults, run_faults_study

        print(format_faults(run_faults_study(
            samples=args.samples, n_requests=args.requests, streams=streams,
            smoke=args.smoke, executor=executor)))
    rec = trace.recorder()
    if rec is not None:
        counts = ", ".join(f"{cat}={n}" for cat, n in
                           sorted(rec.category_counts().items()))
        print(f"trace categories: {counts}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.csv and args.command not in CSV_COMMANDS:
        parser.error(
            f"--csv is not supported by '{args.command}' "
            f"(supported: {', '.join(sorted(CSV_COMMANDS))})"
        )
    if args.metrics_interval <= 0:
        parser.error("--metrics-interval must be positive")
    _configure_logging(args.log_level)
    instrument.reset()
    configure(ResultCache(cache_dir=args.cache_dir))
    streams = RandomStreams(args.seed)
    tracing = args.trace or args.trace_dir is not None or args.command == "trace"
    if tracing:
        trace.enable(metrics_interval_s=args.metrics_interval)
    started = time.time()
    # One executor (one worker pool) for the whole invocation: every
    # phase of a multi-phase verb reuses the same workers instead of
    # re-paying pool startup per batch.
    executor = ParallelExecutor(args.jobs)
    try:
        return _dispatch(args, streams, executor)
    finally:
        # The footer (and any trace files) must survive a failing verb:
        # a run that died mid-study still reports what it actually did.
        try:
            executor.close()
            if tracing:
                _write_trace_files(args.trace_dir or ".")
        finally:
            _print_footer(started)
            trace.disable()


def _print_footer(started: float) -> None:
    parts = [
        f"{time.time() - started:.1f}s",
        f"probes {instrument.value(instrument.PROBES)}"
        f" ({instrument.value(instrument.PROBES_SAVED)} saved)",
        f"cache {instrument.value(instrument.CACHE_HITS)} hit / "
        f"{instrument.value(instrument.CACHE_MISSES)} miss",
        f"kernel {instrument.value(instrument.EVENTS_SCHEDULED)} sched / "
        f"{instrument.value(instrument.EVENTS_FIRED)} fired",
    ]
    rec = trace.recorder()
    if rec is not None:
        parts.append(trace.summary_line(rec))
    print(f"[{' | '.join(parts)}]", file=sys.stderr)


def _dispatch(args, streams, executor) -> int:
    if args.command == "fig4":
        from .analysis.plots import fig4_chart

        rows = run_fig4(samples=args.samples, n_requests=args.requests,
                        streams=streams, executor=executor)
        print(format_fig4(rows))
        print()
        print(fig4_chart(rows))
        if args.csv:
            from .analysis.export import write_fig4_csv

            with open(args.csv, "w", newline="") as handle:
                write_fig4_csv(handle, rows)
    elif args.command == "fig5":
        from .analysis.plots import fig5_chart

        figure = run_fig5(samples=args.samples, n_requests=args.requests,
                          streams=streams, executor=executor)
        print(format_fig5(figure))
        for ruleset, curves in figure.items():
            print(f"\n[{ruleset}]")
            print(fig5_chart(curves))
        if args.csv:
            from .analysis.export import write_fig5_csv

            with open(args.csv, "w", newline="") as handle:
                write_fig5_csv(handle, figure)
    elif args.command == "fig6":
        from .analysis.plots import fig6_chart

        rows = rows_from_fig4(run_fig4(samples=args.samples,
                                       n_requests=args.requests,
                                       streams=streams, executor=executor))
        print(format_fig6(rows))
        print()
        print(fig6_chart(rows))
        if args.csv:
            from .analysis.export import write_fig6_csv

            with open(args.csv, "w", newline="") as handle:
                write_fig6_csv(handle, rows)
    elif args.command == "fig7":
        print(format_fig7(run_fig7()))
    elif args.command == "table4":
        print(format_table4(run_table4(samples=args.samples,
                                       n_requests=args.requests,
                                       streams=streams)))
    elif args.command == "table5":
        result = run_table5(samples=args.samples, n_requests=args.requests,
                            streams=streams)
        print(format_comparison(result.comparisons))
        if args.csv:
            from .analysis.export import write_table5_csv

            with open(args.csv, "w", newline="") as handle:
                write_table5_csv(handle, result.comparisons)
    elif args.command == "observations":
        fig4_rows = run_fig4(samples=args.samples, n_requests=args.requests,
                             streams=streams, executor=executor)
        fig5_curves = run_fig5(samples=150, n_requests=8000, streams=streams,
                               executor=executor)
        fig6_rows = rows_from_fig4(fig4_rows)
        verdicts = [
            observation_1(fig4_rows),
            observation_2(fig4_rows),
            observation_3(fig5_curves),
            observation_4(fig4_rows),
            observation_5(fig6_rows),
        ]
        print(format_verdicts(verdicts))
        if not all(v.holds for v in verdicts):
            return 1
    elif args.command == "tables":
        print(format_all_tables())
    elif args.command == "strategy1":
        from .experiments.strategy1 import format_strategy1, run_strategy1

        print(format_strategy1(run_strategy1(samples=args.samples,
                                             n_requests=args.requests,
                                             streams=streams)))
    elif args.command == "modes":
        from .experiments.modes import format_mode_study, run_mode_study

        print(format_mode_study(run_mode_study()))
    elif args.command == "sensitivity":
        from .experiments.sensitivity import format_sensitivity, run_sensitivity

        print(format_sensitivity(run_sensitivity(samples=args.samples,
                                                 n_requests=args.requests,
                                                 streams=streams)))
    elif args.command == "microburst":
        from .experiments.microburst import format_microburst, run_microburst_study

        print(format_microburst(run_microburst_study(
            samples=args.samples, n_requests=args.requests, streams=streams)))
    elif args.command == "faults":
        from .experiments.faults import format_faults, run_faults_study

        print(format_faults(run_faults_study(
            samples=args.samples, n_requests=args.requests, streams=streams,
            smoke=args.smoke, executor=executor)))
    elif args.command == "report":
        text = generate_report(samples=args.samples, n_requests=args.requests,
                               streams=streams, executor=executor)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.output}", file=sys.stderr)
        else:
            print(text)
    elif args.command == "trace":
        _run_trace_experiment(args, streams, executor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
