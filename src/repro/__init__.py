"""snicbench: the IISWC'23 SmartNIC datacenter-tax study, in simulation.

Public surface:

* :mod:`repro.core` — discrete-event kernel, queueing fast path, metrics
* :mod:`repro.hardware` — testbed specifications (Tables 1-2)
* :mod:`repro.calibration` — measured anchors -> model coefficients
* :mod:`repro.netstack` — UDP / TCP / DPDK / RDMA substrates
* :mod:`repro.functions` — the 13 evaluated network functions, for real
* :mod:`repro.power` — power models and sensor instruments
* :mod:`repro.workloads` — pktgen, YCSB, traces, corpora
* :mod:`repro.experiments` — one harness per paper table/figure
* :mod:`repro.offload` — placement advisor and load balancer (§5.3)
* :mod:`repro.analysis` — TCO model and report generation
"""

__version__ = "1.0.0"
