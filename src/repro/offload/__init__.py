"""Offload strategies (§5.3): placement advisor and load balancing."""

from .advisor import (
    PlacementDecision,
    PlatformPrediction,
    placement_table,
    predict_platform,
    recommend,
)
from .loadbalancer import (
    ROUTE_DROP,
    ROUTE_HOST,
    ROUTE_SNIC,
    BalancerConfig,
    BalancerOutcome,
    FailoverOutcome,
    hardware_balancer,
    simulate_balancer,
    simulate_failover,
    snic_cpu_balancer,
)

__all__ = [
    "ROUTE_DROP",
    "ROUTE_HOST",
    "ROUTE_SNIC",
    "FailoverOutcome",
    "simulate_failover",
    "PlacementDecision",
    "PlatformPrediction",
    "placement_table",
    "predict_platform",
    "recommend",
    "BalancerConfig",
    "BalancerOutcome",
    "hardware_balancer",
    "simulate_balancer",
    "snic_cpu_balancer",
]
