"""Offload strategies (§5.3): placement advisor and load balancing."""

from .advisor import (
    PlacementDecision,
    PlatformPrediction,
    placement_table,
    predict_platform,
    recommend,
)
from .loadbalancer import (
    BalancerConfig,
    BalancerOutcome,
    hardware_balancer,
    simulate_balancer,
    snic_cpu_balancer,
)

__all__ = [
    "PlacementDecision",
    "PlatformPrediction",
    "placement_table",
    "predict_platform",
    "recommend",
    "BalancerConfig",
    "BalancerOutcome",
    "hardware_balancer",
    "simulate_balancer",
    "snic_cpu_balancer",
]
