"""Host/SNIC load balancing (Strategy 3, §5.3) and SNIC→host failover.

The paper's preliminary investigation: a load balancer implemented on the
BlueField-2 CPU "consumes most of the SNIC CPU cycles simply to monitor
packets at high rates and cannot redirect packets fast enough to meet SLO
constraints", hence the call for hardware support.  This module builds
both balancers so that claim is measurable:

* :class:`SnicCpuBalancer` — per-packet monitoring costs SNIC CPU cycles
  (reducing the capacity left for the function) and redirect decisions
  react after a monitoring/telemetry delay;
* :class:`HardwareBalancer` — the proposed design: zero monitoring cost,
  immediate backlog visibility.

Both run the same threshold policy: send a packet to the host when the
SNIC path's (observed) backlog exceeds a bound.  `simulate_balancer`
drives either over an arrival stream and reports per-path latency, loss,
and the split.

`simulate_failover` extends the same policy with a fault-aware SNIC path:
given a health model (:class:`~repro.faults.models.SnicHealth`), the SNIC
backlog stops draining during an outage, packets queued behind a dead
path see the remaining outage in their sojourn, and the threshold policy
— through its existing reaction-delay machinery — detects the inflated
observed backlog, redirects to the host, and fails back once the path
recovers and drains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np


@dataclass
class BalancerConfig:
    """Capacities are request rates; backlogs are seconds of queued work."""

    snic_service_s: float
    host_service_s: float
    snic_cores: int = 8
    host_cores: int = 8
    redirect_threshold_s: float = 50e-6  # observed SNIC backlog bound
    snic_queue_limit_s: float = 500e-6
    host_queue_limit_s: float = 500e-6
    # SNIC-CPU implementation overheads (zero for the hardware design)
    monitor_cost_s: float = 0.0  # per packet, charged to the SNIC path
    reaction_delay_s: float = 0.0  # staleness of the observed backlog


@dataclass
class BalancerOutcome:
    sent_to_snic: int
    sent_to_host: int
    dropped: int
    p99_latency_s: float
    mean_latency_s: float
    snic_monitor_utilization: float

    @property
    def host_fraction(self) -> float:
        total = self.sent_to_snic + self.sent_to_host
        return self.sent_to_host / total if total else 0.0

    @property
    def loss_fraction(self) -> float:
        total = self.sent_to_snic + self.sent_to_host + self.dropped
        return self.dropped / total if total else 0.0


ROUTE_SNIC, ROUTE_HOST, ROUTE_DROP = 0, 1, 2


@dataclass
class FailoverOutcome:
    """A balancer run with per-packet routing visibility and SLO accounting."""

    outcome: BalancerOutcome
    deadline_s: Optional[float]
    p999_latency_s: float
    arrivals: np.ndarray  # arrival time of every offered packet
    routes: np.ndarray  # ROUTE_SNIC / ROUTE_HOST / ROUTE_DROP per packet
    latencies: np.ndarray  # sojourn of every *kept* packet (arrival order)
    outage_windows: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def offered(self) -> int:
        return len(self.arrivals)

    @property
    def availability(self) -> float:
        """Fraction of offered requests served (within the deadline if set)."""
        if self.offered == 0:
            return 1.0
        served = self.routes != ROUTE_DROP
        if self.deadline_s is None:
            return float(np.mean(served))
        ok = self.latencies <= self.deadline_s
        return float(np.sum(ok)) / self.offered

    def host_fraction_between(self, t0: float, t1: float) -> float:
        """Host share of routed packets arriving in ``[t0, t1)``."""
        window = (self.arrivals >= t0) & (self.arrivals < t1)
        routed = window & (self.routes != ROUTE_DROP)
        if not routed.any():
            return 0.0
        return float(np.mean(self.routes[routed] == ROUTE_HOST))

    def drops_between(self, t0: float, t1: float) -> int:
        window = (self.arrivals >= t0) & (self.arrivals < t1)
        return int(np.sum(self.routes[window] == ROUTE_DROP))

    def recovery_times_s(self) -> List[float]:
        """Per outage window: delay from recovery until traffic returns to
        the SNIC path (inf if it never fails back within the run)."""
        times: List[float] = []
        for _, end in self.outage_windows:
            after = (self.arrivals >= end) & (self.routes == ROUTE_SNIC)
            if after.any():
                times.append(float(self.arrivals[after][0] - end))
            else:
                times.append(float("inf"))
        return times


def _run_policy(
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    rng: np.random.Generator,
    snic_health=None,
) -> Tuple[BalancerOutcome, np.ndarray, np.ndarray, np.ndarray]:
    """The threshold policy over a Poisson stream; shared by both entry
    points.  With ``snic_health`` (duck-typed:
    ``service_profile(times)``) the SNIC path carries fault state; with
    None the arithmetic is exactly the classic balancer.
    """
    gaps = rng.exponential(1.0 / rate, size=n_packets)
    arrivals = np.cumsum(gaps)
    if snic_health is not None:
        # One vectorized health sweep instead of three timeline queries
        # per packet; element-wise identical to the scalar methods.
        h_avail, h_factor, h_until = snic_health.service_profile(arrivals)
    snic_effective = config.snic_service_s / config.snic_cores
    host_effective = config.host_service_s / config.host_cores
    monitor_effective = config.monitor_cost_s / config.snic_cores

    snic_backlog = 0.0
    host_backlog = 0.0
    history: list = []  # (time, observed backlog) for delayed observation
    latencies = np.empty(n_packets)
    routes = np.full(n_packets, ROUTE_DROP, dtype=np.int8)
    kept = 0
    to_snic = to_host = dropped = 0
    monitor_busy = 0.0
    previous = 0.0

    # Plain-float views for the per-packet loop: scalar ndarray indexing
    # boxes a np.float64 per access; python floats are the same IEEE
    # doubles, so every comparison and sum below is bit-identical.
    arrival_list = arrivals.tolist()
    if snic_health is not None:
        h_avail_list = h_avail.tolist()
        h_factor_list = h_factor.tolist()
        h_until_list = h_until.tolist()
    latency_list = latencies.tolist()
    route_list = routes.tolist()
    redirect_threshold = config.redirect_threshold_s
    snic_queue_limit = config.snic_queue_limit_s
    host_queue_limit = config.host_queue_limit_s
    reaction_delay = config.reaction_delay_s
    monitor_cost = config.monitor_cost_s

    for index in range(n_packets):
        now = arrival_list[index]
        elapsed = now - previous
        previous = now

        if snic_health is None:
            snic_backlog = max(0.0, snic_backlog - elapsed)
            head_delay = 0.0
            factor = 1.0
        else:
            available = h_avail_list[index]
            # A dead path does not drain its queue.
            if available:
                snic_backlog = max(0.0, snic_backlog - elapsed)
            head_delay = 0.0 if available else h_until_list[index] - now
            factor = h_factor_list[index] if available else 1.0
        host_backlog = max(0.0, host_backlog - elapsed)

        # Monitoring happens on the SNIC CPU for every packet.
        snic_backlog += monitor_effective
        monitor_busy += monitor_cost

        # What the policy could see *right now*: queued work plus, during an
        # outage, the wait for the path to come back at all.
        snic_visible = snic_backlog + head_delay

        if reaction_delay > 0.0:
            history.append((now, snic_visible))
            cutoff = now - reaction_delay
            observed = 0.0
            while len(history) > 1 and history[1][0] <= cutoff:
                history.pop(0)
            if history and history[0][0] <= cutoff:
                observed = history[0][1]
        else:
            observed = snic_visible

        if observed <= redirect_threshold:
            if snic_visible > snic_queue_limit:
                dropped += 1
                continue
            # Work queued behind a dead path is served at the nominal rate
            # after recovery; a throttled path inflates it by ``factor``.
            addition = snic_effective if head_delay > 0.0 else snic_effective * factor
            snic_backlog += addition
            latency_list[kept] = snic_backlog + head_delay
            route_list[index] = ROUTE_SNIC
            to_snic += 1
        else:
            if host_backlog > host_queue_limit:
                dropped += 1
                continue
            host_backlog += host_effective
            latency_list[kept] = host_backlog
            route_list[index] = ROUTE_HOST
            to_host += 1
        kept += 1

    latencies = np.asarray(latency_list[:kept])
    routes = np.asarray(route_list, dtype=np.int8)
    duration = float(arrivals[-1]) if n_packets else 0.0
    outcome = BalancerOutcome(
        sent_to_snic=to_snic,
        sent_to_host=to_host,
        dropped=dropped,
        p99_latency_s=float(np.percentile(latencies, 99)) if kept else float("inf"),
        mean_latency_s=float(np.mean(latencies)) if kept else float("inf"),
        snic_monitor_utilization=(
            monitor_busy / (duration * config.snic_cores) if duration else 0.0
        ),
    )
    return outcome, arrivals, routes, latencies


def simulate_balancer(
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    rng: np.random.Generator,
) -> BalancerOutcome:
    """Run the threshold policy over a Poisson arrival stream.

    Each path is a fluid FIFO (per-core sharding folded into an effective
    service time); the balancer observes the SNIC backlog with
    ``reaction_delay_s`` staleness, and every packet pays
    ``monitor_cost_s`` of SNIC CPU time whether or not it is redirected —
    that is what starves the SNIC-CPU implementation at high rates.
    """
    outcome, _, _, _ = _run_policy(config, rate, n_packets, rng)
    return outcome


def simulate_failover(
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    rng: np.random.Generator,
    snic_health=None,
    deadline_s: Optional[float] = None,
) -> FailoverOutcome:
    """The threshold policy with a fault-aware SNIC path.

    ``snic_health`` follows the :class:`~repro.faults.models.SnicHealth`
    protocol; ``deadline_s`` turns availability into an SLO statement
    (served AND within the deadline) rather than plain delivery.
    """
    outcome, arrivals, routes, latencies = _run_policy(
        config, rate, n_packets, rng, snic_health=snic_health
    )
    windows: List[Tuple[float, float]] = []
    if snic_health is not None and hasattr(snic_health, "outage_windows"):
        windows = list(snic_health.outage_windows())
    p999 = float(np.percentile(latencies, 99.9)) if len(latencies) else float("inf")
    return FailoverOutcome(
        outcome=outcome,
        deadline_s=deadline_s,
        p999_latency_s=p999,
        arrivals=arrivals,
        routes=routes,
        latencies=latencies,
        outage_windows=windows,
    )


# ---------------------------------------------------------------------------
# Cross-node placement: the two-path policy generalized to a fleet
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodePathConfig:
    """One node as a balancing target: a fluid FIFO with optional outages.

    The same shape as the SNIC/host paths above, multiplied out: service
    folded across cores into an effective drain rate, a backlog bound
    beyond which packets drop, and (for correlated-fault studies) outage
    windows during which the node neither drains nor serves.
    """

    name: str
    service_s: float
    cores: int = 8
    queue_limit_s: float = 500e-6
    outages: Tuple[Tuple[float, float], ...] = ()

    @property
    def effective_service_s(self) -> float:
        return self.service_s / self.cores


@dataclass
class FleetOutcome:
    """A fleet balancer run: per-node split, latency, availability."""

    per_node_served: Tuple[Tuple[str, int], ...]
    dropped: int
    offered: int
    mean_latency_s: float
    p99_latency_s: float
    deadline_s: Optional[float]
    within_deadline: int

    @property
    def served(self) -> int:
        return self.offered - self.dropped

    @property
    def availability(self) -> float:
        """Served fraction — within the deadline when one is set."""
        if self.offered == 0:
            return 1.0
        if self.deadline_s is None:
            return self.served / self.offered
        return self.within_deadline / self.offered


def simulate_fleet(
    nodes: List[NodePathConfig],
    rate: float,
    n_packets: int,
    rng: np.random.Generator,
    reaction_delay_s: float = 0.0,
    deadline_s: Optional[float] = None,
) -> FleetOutcome:
    """Join-the-shortest-queue across N nodes over a Poisson stream.

    This is ``_run_policy`` with the two hard-wired paths replaced by a
    vector of them: each arrival is routed to the node with the smallest
    *observed* backlog (periodic telemetry snapshots of staleness
    ``reaction_delay_s``, as a fleet balancer sees, rather than the
    per-path sliding history of the two-path policy), where the observed
    backlog of a node mid-outage includes the wait for it to come back.
    A packet whose best visible choice exceeds that node's queue bound is
    dropped.
    """
    if not nodes:
        raise ValueError("fleet needs at least one node")
    n = len(nodes)
    gaps = rng.exponential(1.0 / rate, size=n_packets)
    arrivals = np.cumsum(gaps).tolist()

    effective = [node.effective_service_s for node in nodes]
    limits = [node.queue_limit_s for node in nodes]
    windows = [list(node.outages) for node in nodes]
    pointers = [0] * n
    backlogs = [0.0] * n
    observed = [0.0] * n
    last_snapshot = float("-inf")

    served_counts = [0] * n
    latencies: List[float] = []
    dropped = 0
    within = 0
    previous = 0.0

    for now in arrivals:
        elapsed = now - previous
        previous = now
        visible = observed  # refreshed below when the snapshot is due
        head_delays = [0.0] * n
        for k in range(n):
            wins = windows[k]
            p = pointers[k]
            while p < len(wins) and wins[p][1] <= now:
                p += 1
            pointers[k] = p
            in_outage = p < len(wins) and wins[p][0] <= now < wins[p][1]
            if in_outage:
                head_delays[k] = wins[p][1] - now
            else:
                backlogs[k] = max(0.0, backlogs[k] - elapsed)
        if now - last_snapshot >= reaction_delay_s:
            observed = [backlogs[k] + head_delays[k] for k in range(n)]
            last_snapshot = now
            visible = observed

        best = min(range(n), key=lambda k: (visible[k], k))
        actual = backlogs[best] + head_delays[best]
        if actual > limits[best]:
            dropped += 1
            continue
        backlogs[best] += effective[best]
        latency = backlogs[best] + head_delays[best]
        latencies.append(latency)
        served_counts[best] += 1
        if deadline_s is not None and latency <= deadline_s:
            within += 1

    values = np.asarray(latencies) if latencies else np.asarray([np.inf])
    return FleetOutcome(
        per_node_served=tuple(
            (node.name, served_counts[k]) for k, node in enumerate(nodes)),
        dropped=dropped,
        offered=n_packets,
        mean_latency_s=float(np.mean(values)),
        p99_latency_s=float(np.percentile(values, 99)),
        deadline_s=deadline_s,
        within_deadline=within,
    )


def snic_cpu_balancer(snic_service_s: float, host_service_s: float,
                      **overrides) -> BalancerConfig:
    """The BlueField-2-CPU implementation the paper found wanting: ~600
    cycles of per-packet monitoring on the A72s and telemetry staleness."""
    defaults = dict(
        monitor_cost_s=600 / 2.0e9,
        reaction_delay_s=100e-6,
    )
    defaults.update(overrides)
    return BalancerConfig(
        snic_service_s=snic_service_s, host_service_s=host_service_s, **defaults
    )


def hardware_balancer(snic_service_s: float, host_service_s: float,
                      **overrides) -> BalancerConfig:
    """The proposed hardware design: free monitoring, immediate reaction."""
    return BalancerConfig(
        snic_service_s=snic_service_s,
        host_service_s=host_service_s,
        monitor_cost_s=0.0,
        reaction_delay_s=0.0,
        **overrides,
    )
