"""Host/SNIC load balancing (Strategy 3, §5.3).

The paper's preliminary investigation: a load balancer implemented on the
BlueField-2 CPU "consumes most of the SNIC CPU cycles simply to monitor
packets at high rates and cannot redirect packets fast enough to meet SLO
constraints", hence the call for hardware support.  This module builds
both balancers so that claim is measurable:

* :class:`SnicCpuBalancer` — per-packet monitoring costs SNIC CPU cycles
  (reducing the capacity left for the function) and redirect decisions
  react after a monitoring/telemetry delay;
* :class:`HardwareBalancer` — the proposed design: zero monitoring cost,
  immediate backlog visibility.

Both run the same threshold policy: send a packet to the host when the
SNIC path's (observed) backlog exceeds a bound.  `simulate_balancer`
drives either over an arrival stream and reports per-path latency, loss,
and the split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class BalancerConfig:
    """Capacities are request rates; backlogs are seconds of queued work."""

    snic_service_s: float
    host_service_s: float
    snic_cores: int = 8
    host_cores: int = 8
    redirect_threshold_s: float = 50e-6  # observed SNIC backlog bound
    snic_queue_limit_s: float = 500e-6
    host_queue_limit_s: float = 500e-6
    # SNIC-CPU implementation overheads (zero for the hardware design)
    monitor_cost_s: float = 0.0  # per packet, charged to the SNIC path
    reaction_delay_s: float = 0.0  # staleness of the observed backlog


@dataclass
class BalancerOutcome:
    sent_to_snic: int
    sent_to_host: int
    dropped: int
    p99_latency_s: float
    mean_latency_s: float
    snic_monitor_utilization: float

    @property
    def host_fraction(self) -> float:
        total = self.sent_to_snic + self.sent_to_host
        return self.sent_to_host / total if total else 0.0

    @property
    def loss_fraction(self) -> float:
        total = self.sent_to_snic + self.sent_to_host + self.dropped
        return self.dropped / total if total else 0.0


def simulate_balancer(
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    rng: np.random.Generator,
) -> BalancerOutcome:
    """Run the threshold policy over a Poisson arrival stream.

    Each path is a fluid FIFO (per-core sharding folded into an effective
    service time); the balancer observes the SNIC backlog with
    ``reaction_delay_s`` staleness, and every packet pays
    ``monitor_cost_s`` of SNIC CPU time whether or not it is redirected —
    that is what starves the SNIC-CPU implementation at high rates.
    """
    gaps = rng.exponential(1.0 / rate, size=n_packets)
    arrivals = np.cumsum(gaps)
    snic_effective = config.snic_service_s / config.snic_cores
    host_effective = config.host_service_s / config.host_cores
    monitor_effective = config.monitor_cost_s / config.snic_cores

    snic_backlog = 0.0
    host_backlog = 0.0
    history: list = []  # (time, backlog) for delayed observation
    latencies = np.empty(n_packets)
    kept = 0
    to_snic = to_host = dropped = 0
    monitor_busy = 0.0
    previous = 0.0

    for index in range(n_packets):
        now = arrivals[index]
        elapsed = now - previous
        previous = now
        snic_backlog = max(0.0, snic_backlog - elapsed)
        host_backlog = max(0.0, host_backlog - elapsed)

        # Monitoring happens on the SNIC CPU for every packet.
        snic_backlog += monitor_effective
        monitor_busy += config.monitor_cost_s

        if config.reaction_delay_s > 0.0:
            history.append((now, snic_backlog))
            cutoff = now - config.reaction_delay_s
            observed = 0.0
            while len(history) > 1 and history[1][0] <= cutoff:
                history.pop(0)
            if history and history[0][0] <= cutoff:
                observed = history[0][1]
        else:
            observed = snic_backlog

        if observed <= config.redirect_threshold_s:
            if snic_backlog > config.snic_queue_limit_s:
                dropped += 1
                continue
            snic_backlog += snic_effective
            latencies[kept] = snic_backlog
            to_snic += 1
        else:
            if host_backlog > config.host_queue_limit_s:
                dropped += 1
                continue
            host_backlog += host_effective
            latencies[kept] = host_backlog
            to_host += 1
        kept += 1

    latencies = latencies[:kept]
    duration = float(arrivals[-1]) if n_packets else 0.0
    return BalancerOutcome(
        sent_to_snic=to_snic,
        sent_to_host=to_host,
        dropped=dropped,
        p99_latency_s=float(np.percentile(latencies, 99)) if kept else float("inf"),
        mean_latency_s=float(np.mean(latencies)) if kept else float("inf"),
        snic_monitor_utilization=(
            monitor_busy / (duration * config.snic_cores) if duration else 0.0
        ),
    )


def snic_cpu_balancer(snic_service_s: float, host_service_s: float,
                      **overrides) -> BalancerConfig:
    """The BlueField-2-CPU implementation the paper found wanting: ~600
    cycles of per-packet monitoring on the A72s and telemetry staleness."""
    defaults = dict(
        monitor_cost_s=600 / 2.0e9,
        reaction_delay_s=100e-6,
    )
    defaults.update(overrides)
    return BalancerConfig(
        snic_service_s=snic_service_s, host_service_s=host_service_s, **defaults
    )


def hardware_balancer(snic_service_s: float, host_service_s: float,
                      **overrides) -> BalancerConfig:
    """The proposed hardware design: free monitoring, immediate reaction."""
    return BalancerConfig(
        snic_service_s=snic_service_s,
        host_service_s=host_service_s,
        monitor_cost_s=0.0,
        reaction_delay_s=0.0,
        **overrides,
    )
