"""Offload advisor (Strategy 2, §5.3).

Key Observations 2 and 4 say a function's name is not enough to decide
offload — inputs, configurations, algorithms, and operation types flip
the winner.  This module is the Clara-style tool the paper points at: an
*analytic* predictor that prices a function profile on every available
platform (no queueing simulation) and recommends a placement under an
SLO, with the predicted numbers exposed so the decision is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..calibration import ACCELERATORS, NODE_PROFILES, PLATFORMS
from ..experiments.measurement import (
    ACCEL_PLATFORM,
    accel_per_item_seconds,
    cpu_cores,
    cpu_service_seconds,
    estimate_capacity_rps,
)
from ..experiments.profiles import FunctionProfile
from ..hardware.specs import (
    ELECTRICITY_USD_PER_KWH,
    NODE_SPECS,
    SERVER_LIFETIME_YEARS,
)


@dataclass(frozen=True)
class PlatformPrediction:
    platform: str
    capacity_rps: float
    base_p99_s: float  # latency floor at low load (queueing excluded)

    def meets(self, required_rps: float, slo_p99: Optional[float]) -> bool:
        if self.capacity_rps < required_rps:
            return False
        if slo_p99 is not None and self.base_p99_s > slo_p99:
            return False
        return True


@dataclass(frozen=True)
class PlacementDecision:
    profile_key: str
    platform: str
    predictions: Dict[str, PlatformPrediction]
    reason: str

    @property
    def predicted(self) -> PlatformPrediction:
        return self.predictions[self.platform]


def predict_platform(profile: FunctionProfile, platform: str) -> PlatformPrediction:
    """Analytic capacity + latency floor for one platform."""
    capacity = estimate_capacity_rps(profile, platform)
    if platform == ACCEL_PLATFORM:
        engine = ACCELERATORS[profile.accel_engine]
        base = engine.setup_latency_s + engine.max_batch * accel_per_item_seconds(profile)
        if profile.stack is not None:
            base += PLATFORMS["snic-cpu"].stacks[profile.stack].base_rtt_p99_s
    else:
        services = cpu_service_seconds(profile, platform)
        base = float(np.mean(services)) * 3.0  # light-load p99 ~ a few services
        if profile.stack is not None:
            base += PLATFORMS[platform].stacks[profile.stack].base_rtt_p99_s
    base += profile.latency_extra.get(platform, 0.0)
    return PlatformPrediction(platform=platform, capacity_rps=capacity, base_p99_s=base)


def recommend(
    profile: FunctionProfile,
    required_rps: float = 0.0,
    slo_p99: Optional[float] = None,
    prefer_offload: bool = True,
) -> PlacementDecision:
    """Choose an execution platform for the function.

    Policy: among platforms satisfying the rate requirement and the SLO,
    prefer the SNIC (it frees host cores — the datacenter-tax argument);
    if nothing satisfies, pick the platform with the highest capacity.
    """
    predictions = {
        platform: predict_platform(profile, platform)
        for platform in profile.platforms
    }
    feasible = [
        p for p in predictions.values() if p.meets(required_rps, slo_p99)
    ]
    if feasible:
        snic_feasible = [p for p in feasible if p.platform != "host"]
        if prefer_offload and snic_feasible:
            best = max(snic_feasible, key=lambda p: p.capacity_rps)
            reason = "offload frees host cores and meets rate + SLO"
        else:
            best = max(feasible, key=lambda p: p.capacity_rps)
            reason = "highest-capacity feasible platform"
    else:
        best = max(predictions.values(), key=lambda p: p.capacity_rps)
        reason = "nothing meets the requirement; highest capacity chosen"
    return PlacementDecision(
        profile_key=profile.key,
        platform=best.platform,
        predictions=predictions,
        reason=reason,
    )


# ---------------------------------------------------------------------------
# Cross-node placement: size a fleet of each node profile for a target load
# ---------------------------------------------------------------------------

# Which serving platforms each node profile physically offers.
_NODE_PLATFORMS = {
    "host+bf2": ("host", "snic-cpu", ACCEL_PLATFORM),
    "host-only": ("host",),
    "all-snic": ("snic-cpu", ACCEL_PLATFORM),
}

# Fleet sizing never plans nodes at 100%: headroom for bursts and drains.
FLEET_UTILIZATION_TARGET = 0.7


@dataclass(frozen=True)
class FleetOption:
    """One way to serve the target load: N nodes of one profile."""

    node_profile: str
    platform: str  # serving platform chosen on that node
    node_capacity_rps: float
    nodes: int
    capex_usd: float
    energy_usd: float
    meets_slo: bool

    @property
    def tco_usd(self) -> float:
        return self.capex_usd + self.energy_usd

    @property
    def usd_per_krps(self) -> float:
        """Lifetime dollars per 1000 req/s of planned capacity."""
        planned = self.nodes * self.node_capacity_rps * FLEET_UTILIZATION_TARGET
        return self.tco_usd / (planned / 1000.0) if planned else float("inf")


@dataclass(frozen=True)
class FleetPlacement:
    profile_key: str
    required_rps: float
    options: Dict[str, FleetOption]
    chosen: str
    reason: str

    @property
    def best(self) -> FleetOption:
        return self.options[self.chosen]


def _node_capacity_rps(profile: FunctionProfile, platform: str,
                       serve_cores: int) -> float:
    """Per-node capacity: the single-platform estimate scaled to the
    cores this node profile actually grants the application (accelerator
    capacity is engine-bound, not core-bound)."""
    capacity = estimate_capacity_rps(profile, platform)
    if platform == ACCEL_PLATFORM:
        return capacity
    return capacity * serve_cores / PLATFORMS[platform].cores


def recommend_fleet(
    profile: FunctionProfile,
    required_rps: float,
    slo_p99: Optional[float] = None,
    node_profiles: tuple = ("host+bf2", "host-only", "all-snic"),
    lifetime_years: float = SERVER_LIFETIME_YEARS,
) -> FleetPlacement:
    """Generalize :func:`recommend` from one box to a fleet.

    For each node profile, pick the best serving platform that node
    offers (honoring the SLO floor when one platform can and another
    cannot), size the fleet to carry ``required_rps`` at the planning
    utilization, and price it: component capex plus lifetime energy at
    the planned utilization.  The recommendation is the cheapest option
    that meets the SLO; if none does, the cheapest overall — with the
    reason recorded either way, in the auditable style of
    :func:`recommend`.
    """
    if required_rps <= 0:
        raise ValueError("required_rps must be positive")
    options: Dict[str, FleetOption] = {}
    for key in node_profiles:
        node = NODE_PROFILES[key]
        spec = NODE_SPECS[node.spec_key]
        allowed = [
            p for p in _NODE_PLATFORMS[key]
            if p in profile.platforms
            and (p != ACCEL_PLATFORM
                 or (profile.accel_engine or "") in node.accelerators)
        ]
        if not allowed:
            continue
        predictions = {p: predict_platform(profile, p) for p in allowed}
        capacities = {
            p: _node_capacity_rps(profile, p, node.serve_cores)
            for p in allowed
        }
        slo_ok = [p for p in allowed
                  if slo_p99 is None or predictions[p].base_p99_s <= slo_p99]
        pool = slo_ok or allowed
        platform = max(pool, key=lambda p: (capacities[p], p))
        capacity = capacities[platform]
        nodes = int(np.ceil(required_rps
                            / (capacity * FLEET_UTILIZATION_TARGET)))
        hours = lifetime_years * 365.0 * 24.0
        energy = (nodes * node.power_w(FLEET_UTILIZATION_TARGET) / 1000.0
                  * hours * ELECTRICITY_USD_PER_KWH)
        options[key] = FleetOption(
            node_profile=key,
            platform=platform,
            node_capacity_rps=capacity,
            nodes=nodes,
            capex_usd=nodes * spec.price_usd,
            energy_usd=energy,
            meets_slo=bool(slo_ok),
        )
    if not options:
        raise ValueError(
            f"no node profile can serve function {profile.key!r}")
    feasible = {k: o for k, o in options.items() if o.meets_slo}
    pool = feasible or options
    chosen = min(pool, key=lambda k: (pool[k].tco_usd, k))
    reason = ("cheapest lifetime TCO meeting the SLO" if feasible
              else "nothing meets the SLO; cheapest lifetime TCO chosen")
    return FleetPlacement(
        profile_key=profile.key,
        required_rps=required_rps,
        options=options,
        chosen=chosen,
        reason=reason,
    )


def placement_table(profiles: List[FunctionProfile],
                    slo_p99: Optional[float] = None) -> str:
    lines = [f"{'function':<26} {'choice':<10} {'capacities (rps)'}"]
    for profile in profiles:
        decision = recommend(profile, slo_p99=slo_p99)
        capacities = ", ".join(
            f"{name}={pred.capacity_rps:,.0f}"
            for name, pred in sorted(decision.predictions.items())
        )
        lines.append(f"{profile.key:<26} {decision.platform:<10} {capacities}")
    return "\n".join(lines)
