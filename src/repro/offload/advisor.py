"""Offload advisor (Strategy 2, §5.3).

Key Observations 2 and 4 say a function's name is not enough to decide
offload — inputs, configurations, algorithms, and operation types flip
the winner.  This module is the Clara-style tool the paper points at: an
*analytic* predictor that prices a function profile on every available
platform (no queueing simulation) and recommends a placement under an
SLO, with the predicted numbers exposed so the decision is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..calibration import ACCELERATORS, PLATFORMS
from ..experiments.measurement import (
    ACCEL_PLATFORM,
    accel_per_item_seconds,
    cpu_cores,
    cpu_service_seconds,
    estimate_capacity_rps,
)
from ..experiments.profiles import FunctionProfile


@dataclass(frozen=True)
class PlatformPrediction:
    platform: str
    capacity_rps: float
    base_p99_s: float  # latency floor at low load (queueing excluded)

    def meets(self, required_rps: float, slo_p99: Optional[float]) -> bool:
        if self.capacity_rps < required_rps:
            return False
        if slo_p99 is not None and self.base_p99_s > slo_p99:
            return False
        return True


@dataclass(frozen=True)
class PlacementDecision:
    profile_key: str
    platform: str
    predictions: Dict[str, PlatformPrediction]
    reason: str

    @property
    def predicted(self) -> PlatformPrediction:
        return self.predictions[self.platform]


def predict_platform(profile: FunctionProfile, platform: str) -> PlatformPrediction:
    """Analytic capacity + latency floor for one platform."""
    capacity = estimate_capacity_rps(profile, platform)
    if platform == ACCEL_PLATFORM:
        engine = ACCELERATORS[profile.accel_engine]
        base = engine.setup_latency_s + engine.max_batch * accel_per_item_seconds(profile)
        if profile.stack is not None:
            base += PLATFORMS["snic-cpu"].stacks[profile.stack].base_rtt_p99_s
    else:
        services = cpu_service_seconds(profile, platform)
        base = float(np.mean(services)) * 3.0  # light-load p99 ~ a few services
        if profile.stack is not None:
            base += PLATFORMS[platform].stacks[profile.stack].base_rtt_p99_s
    base += profile.latency_extra.get(platform, 0.0)
    return PlatformPrediction(platform=platform, capacity_rps=capacity, base_p99_s=base)


def recommend(
    profile: FunctionProfile,
    required_rps: float = 0.0,
    slo_p99: Optional[float] = None,
    prefer_offload: bool = True,
) -> PlacementDecision:
    """Choose an execution platform for the function.

    Policy: among platforms satisfying the rate requirement and the SLO,
    prefer the SNIC (it frees host cores — the datacenter-tax argument);
    if nothing satisfies, pick the platform with the highest capacity.
    """
    predictions = {
        platform: predict_platform(profile, platform)
        for platform in profile.platforms
    }
    feasible = [
        p for p in predictions.values() if p.meets(required_rps, slo_p99)
    ]
    if feasible:
        snic_feasible = [p for p in feasible if p.platform != "host"]
        if prefer_offload and snic_feasible:
            best = max(snic_feasible, key=lambda p: p.capacity_rps)
            reason = "offload frees host cores and meets rate + SLO"
        else:
            best = max(feasible, key=lambda p: p.capacity_rps)
            reason = "highest-capacity feasible platform"
    else:
        best = max(predictions.values(), key=lambda p: p.capacity_rps)
        reason = "nothing meets the requirement; highest capacity chosen"
    return PlacementDecision(
        profile_key=profile.key,
        platform=best.platform,
        predictions=predictions,
        reason=reason,
    )


def placement_table(profiles: List[FunctionProfile],
                    slo_p99: Optional[float] = None) -> str:
    lines = [f"{'function':<26} {'choice':<10} {'capacities (rps)'}"]
    for profile in profiles:
        decision = recommend(profile, slo_p99=slo_p99)
        capacities = ", ".join(
            f"{name}={pred.capacity_rps:,.0f}"
            for name, pred in sorted(decision.predictions.items())
        )
        lines.append(f"{profile.key:<26} {decision.platform:<10} {capacities}")
    return "\n".join(lines)
