"""Component-facing fault state.

Two consumers need a view of "how broken is component X right now":

* DES components (links, accelerator engines) attach a
  :class:`ComponentHealth` to the :class:`~repro.faults.injector.
  FaultInjector` and read its properties inline;
* vectorized simulators (the load balancer, the fluid fault experiments)
  query a :class:`SnicHealth` built directly from the
  :class:`~repro.faults.schedule.FaultTimeline` by timestamp.

Both interpret the same fault kinds: ``outage`` removes the component,
``degrade`` multiplies its service times by the fault severity (thermal
throttle / degraded clock), ``core-loss`` removes a severity-fraction of
its cores (which also inflates effective per-request service).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .schedule import (
    KIND_CORE_LOSS,
    KIND_DEGRADE,
    KIND_OUTAGE,
    ActiveFault,
    FaultTimeline,
)


class ComponentHealth:
    """Injector target that folds active faults into live multipliers.

    Attach one per component; the component reads ``available``,
    ``throttle_factor`` and ``core_fraction`` on its hot path.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._active: List[ActiveFault] = []
        self.fault_count = 0

    # -- FaultTarget protocol ------------------------------------------------

    def fault_begin(self, fault: ActiveFault) -> None:
        self._active.append(fault)
        self.fault_count += 1

    def fault_end(self, fault: ActiveFault) -> None:
        self._active = [
            a for a in self._active
            if not (a.spec.name == fault.spec.name and a.start_s == fault.start_s)
        ]

    # -- live state ----------------------------------------------------------

    @property
    def available(self) -> bool:
        return not any(a.spec.kind == KIND_OUTAGE for a in self._active)

    @property
    def throttle_factor(self) -> float:
        """Service-time multiplier from active degraded-clock faults."""
        factors = [a.spec.severity for a in self._active
                   if a.spec.kind == KIND_DEGRADE]
        return max(factors) if factors else 1.0

    @property
    def core_fraction(self) -> float:
        """Fraction of cores still alive (core-loss faults compound)."""
        fraction = 1.0
        for a in self._active:
            if a.spec.kind == KIND_CORE_LOSS:
                fraction *= max(0.0, 1.0 - a.spec.severity)
        return fraction

    @property
    def service_multiplier(self) -> float:
        """Combined effective per-request service-time multiplier."""
        if not self.available or self.core_fraction <= 0.0:
            return float("inf")
        return self.throttle_factor / self.core_fraction


class SnicHealth:
    """Timestamp-indexed health of the SNIC path for fluid simulators.

    Wraps a timeline and answers, for any simulated time ``t``, whether the
    SNIC path can serve at all and what multiplier applies to its service
    times.  ``target`` selects which timeline target name represents the
    SNIC path ("accel" for accelerator functions, "snic-cpu" otherwise).
    """

    def __init__(self, timeline: FaultTimeline, target: str = "snic"):
        self.timeline = timeline
        self.target = target

    def available(self, t: float) -> bool:
        return not self.timeline.active(t, target=self.target, kind=KIND_OUTAGE)

    def service_factor(self, t: float) -> float:
        """Multiplier on SNIC path service times at ``t`` (inf if down)."""
        if not self.available(t):
            return float("inf")
        throttle = self.timeline.severity(t, self.target, KIND_DEGRADE, default=1.0)
        lost = self.timeline.severity(t, self.target, KIND_CORE_LOSS, default=0.0)
        alive = max(0.0, 1.0 - lost)
        if alive <= 0.0:
            return float("inf")
        return max(throttle, 1.0) / alive

    def unavailable_until(self, t: float) -> float:
        """End of the outage covering ``t`` (``t`` itself if the path is up)."""
        hits = self.timeline.active(t, target=self.target, kind=KIND_OUTAGE)
        if not hits:
            return t
        return max(hit.end_s for hit in hits)

    def service_profile(
        self, times: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized ``(available, service_factor, unavailable_until)``.

        Element ``i`` equals the scalar methods evaluated at ``times[i]``
        — the same comparisons and arithmetic over the same episode
        floats — so per-packet simulators can precompute health for a
        whole arrival vector instead of querying three methods per
        packet.  ``service_factor`` is ``inf`` wherever the path is down
        (callers never read it there); ``unavailable_until`` equals the
        timestamp itself wherever the path is up.
        """
        times = np.asarray(times, dtype=float)
        n = len(times)
        available = ~self.timeline.active_mask(
            times, self.target, KIND_OUTAGE
        )
        throttle = np.ones(n)
        lost = np.zeros(n)
        until = times.copy()
        for spec in self.timeline.specs:
            if spec.target != self.target:
                continue
            for start, end in self.timeline.episodes(spec.name):
                covered = (times >= start) & (times < end)
                if not covered.any():
                    continue
                if spec.kind == KIND_DEGRADE:
                    np.maximum(throttle, spec.severity, out=throttle,
                               where=covered)
                elif spec.kind == KIND_CORE_LOSS:
                    np.maximum(lost, spec.severity, out=lost,
                               where=covered)
                elif spec.kind == KIND_OUTAGE:
                    np.maximum(until, end, out=until, where=covered)
        alive = np.maximum(0.0, 1.0 - lost)
        with np.errstate(divide="ignore"):
            factor = np.maximum(throttle, 1.0) / alive
        factor[~available] = np.inf
        return available, factor, until

    def outage_windows(self) -> List[tuple]:
        windows = []
        for spec in self.timeline.specs:
            if spec.target == self.target and spec.kind == KIND_OUTAGE:
                windows.extend(self.timeline.episodes(spec.name))
        return sorted(windows)


def healthy_snic() -> "SnicHealth":
    """A SnicHealth with no faults (baseline runs)."""
    return SnicHealth(FaultTimeline([], horizon_s=0.0))


def health_report(components: Dict[str, ComponentHealth]) -> str:
    """One-line-per-component summary used by debug output."""
    lines = []
    for name, health in sorted(components.items()):
        state = "up" if health.available else "DOWN"
        lines.append(
            f"{name:<12} {state:<5} x{health.throttle_factor:.2f} "
            f"cores {health.core_fraction:.0%} (faults seen: {health.fault_count})"
        )
    return "\n".join(lines)
