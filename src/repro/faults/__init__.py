"""Fault injection and graceful degradation.

The simulator's happy path answers "what does the SNIC buy at steady
state"; this package answers "what happens when the offload path stops
keeping up".  It provides deterministic fault schedules (one-shot,
periodic, MTBF/MTTR stochastic), a DES-driven injector that toggles
component hooks at episode boundaries, health models interpreting outage /
thermal-throttle / core-loss faults, and timeout-retry-with-backoff
recovery mechanics.  The availability experiment lives in
:mod:`repro.experiments.faults`.
"""

from .domains import (
    correlated,
    node_target,
    outage_windows,
    rack_outage,
    rack_targets,
    spine_outage,
    spine_target,
)
from .injector import FaultInjector, FaultTarget, InjectionRecord
from .models import ComponentHealth, SnicHealth, health_report, healthy_snic
from .retry import RetryOutcome, RetryPolicy, retrying_process, simulate_retries
from .schedule import (
    KIND_BURST_LOSS,
    KIND_CORE_LOSS,
    KIND_DEGRADE,
    KIND_LINK_FLAP,
    KIND_OUTAGE,
    ActiveFault,
    FaultSpec,
    FaultTimeline,
    materialize,
)

__all__ = [
    "FaultInjector",
    "FaultTarget",
    "InjectionRecord",
    "ComponentHealth",
    "SnicHealth",
    "health_report",
    "healthy_snic",
    "RetryOutcome",
    "RetryPolicy",
    "retrying_process",
    "simulate_retries",
    "KIND_BURST_LOSS",
    "KIND_CORE_LOSS",
    "KIND_DEGRADE",
    "KIND_LINK_FLAP",
    "KIND_OUTAGE",
    "ActiveFault",
    "FaultSpec",
    "FaultTimeline",
    "materialize",
    "correlated",
    "node_target",
    "outage_windows",
    "rack_outage",
    "rack_targets",
    "spine_outage",
    "spine_target",
]
