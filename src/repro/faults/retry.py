"""Timeout/retry with exponential backoff and jitter.

Production request paths survive lossy or flapping links by retransmitting
after a timeout; the backoff doubles per attempt and is jittered so that
synchronized clients do not retry in lockstep.  Two entry points:

* :func:`retrying_process` — a DES process wrapper: keeps calling an
  attempt factory until one succeeds or the policy gives up, sleeping the
  backoff between attempts on the kernel clock;
* :func:`simulate_retries` — a vectorized form for the fluid fault
  experiments: given per-attempt loss draws, returns delivery outcomes and
  the retry delay each request accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

from ..core.engine import Event, Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/backoff parameters for one request path.

    ``max_elapsed_s`` optionally bounds the *total* time a request may
    spend retrying: once the elapsed time (base service plus accumulated
    backoff) reaches the deadline, no further attempt is scheduled even
    if ``max_attempts`` has budget left.  Unbounded (``None``) keeps the
    attempt-count-only behavior.
    """

    timeout_s: float = 100e-6  # first-attempt timeout
    max_attempts: int = 5
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.2  # +- fraction applied to each backoff
    max_elapsed_s: Optional[float] = None  # total retry deadline

    def __post_init__(self):
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        if self.max_elapsed_s is not None:
            if self.max_elapsed_s <= 0:
                raise ValueError("max_elapsed_s must be positive")
            if self.max_elapsed_s < self.timeout_s:
                raise ValueError(
                    "max_elapsed_s must be >= timeout_s (the deadline "
                    "cannot be shorter than one attempt's timeout)"
                )

    def backoff_s(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before retry number ``attempt`` (0-based failed attempt)."""
        base = self.timeout_s * self.backoff_factor**attempt
        if self.jitter_fraction:
            base *= 1.0 + float(
                rng.uniform(-self.jitter_fraction, self.jitter_fraction)
            )
        return base

    def within_deadline(self, elapsed_s: float) -> bool:
        """Whether another retry may be scheduled after ``elapsed_s``."""
        return self.max_elapsed_s is None or elapsed_s < self.max_elapsed_s


@dataclass
class RetryOutcome:
    """Result of driving one request through the retry loop."""

    delivered: bool
    attempts: int
    extra_delay_s: float  # retry/backoff time added on top of base service


def retrying_process(
    sim: Simulator,
    attempt: Callable[[int], Event],
    policy: RetryPolicy,
    rng: np.random.Generator,
) -> Generator:
    """DES process body: retry ``attempt`` under ``policy``.

    ``attempt(i)`` must return an Event that fires with a truthy value on
    success and falsy on failure (loss/timeout).  The process's own event
    fires with a :class:`RetryOutcome`.
    """
    started = sim.now
    for i in range(policy.max_attempts):
        result = yield attempt(i)
        if result:
            return RetryOutcome(
                delivered=True, attempts=i + 1, extra_delay_s=sim.now - started
            )
        if i + 1 >= policy.max_attempts:
            break
        backoff = policy.backoff_s(i, rng)
        if not policy.within_deadline(sim.now - started + backoff):
            # Total-elapsed deadline: the next attempt could not start
            # before the budget runs out, so give up now.
            return RetryOutcome(
                delivered=False, attempts=i + 1,
                extra_delay_s=sim.now - started,
            )
        yield sim.timeout(backoff)
    return RetryOutcome(
        delivered=False,
        attempts=policy.max_attempts,
        extra_delay_s=sim.now - started,
    )


def simulate_retries(
    lost: Callable[[int], bool],
    policy: RetryPolicy,
    rng: np.random.Generator,
) -> RetryOutcome:
    """Drive one request's attempt sequence without the kernel.

    ``lost(attempt_index)`` reports whether that transmission attempt was
    lost; backoff delays accumulate into ``extra_delay_s``.
    """
    delay = 0.0
    for i in range(policy.max_attempts):
        if not lost(i):
            return RetryOutcome(delivered=True, attempts=i + 1, extra_delay_s=delay)
        if i + 1 >= policy.max_attempts:
            break
        backoff = policy.backoff_s(i, rng)
        if not policy.within_deadline(delay + backoff):
            return RetryOutcome(delivered=False, attempts=i + 1,
                                extra_delay_s=delay)
        delay += backoff
    return RetryOutcome(
        delivered=False, attempts=policy.max_attempts, extra_delay_s=delay
    )
