"""DES-driven fault injection.

The :class:`FaultInjector` walks a :class:`~repro.faults.schedule.
FaultTimeline` on the event kernel: for every materialized episode it
schedules an onset event and a recovery event, and calls the attached
target's ``fault_begin`` / ``fault_end`` hooks at those simulated times.
Anything that implements the two-method :class:`FaultTarget` protocol can
be attached — a :class:`~repro.netstack.link.Link`, an accelerator model,
or a bare recording stub in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Protocol, runtime_checkable

from ..core import trace
from ..core.engine import Simulator
from .schedule import ActiveFault, FaultTimeline


@runtime_checkable
class FaultTarget(Protocol):
    """What a component must implement to be fault-injectable."""

    def fault_begin(self, fault: ActiveFault) -> None: ...

    def fault_end(self, fault: ActiveFault) -> None: ...


@dataclass
class InjectionRecord:
    """One line of the injector's event log."""

    time_s: float
    fault_name: str
    target: str
    phase: str  # "begin" | "end"


class FaultInjector:
    """Schedules fault onset/recovery callbacks on the event kernel."""

    def __init__(self, sim: Simulator, timeline: FaultTimeline):
        self.sim = sim
        self.timeline = timeline
        self._targets: Dict[str, List[FaultTarget]] = {}
        self.log: List[InjectionRecord] = []
        self._started = False

    def attach(self, target_name: str, target: FaultTarget) -> None:
        """Register a component under the spec's ``target`` name."""
        self._targets.setdefault(target_name, []).append(target)

    def start(self) -> None:
        """Spawn one kernel process per episode; idempotent."""
        if self._started:
            raise RuntimeError("injector already started")
        self._started = True
        for episode in self.timeline.all_episodes():
            self.sim.process(self._drive(episode), name=f"fault:{episode.spec.name}")

    def _drive(self, episode: ActiveFault):
        now = self.sim.now
        if episode.start_s > now:
            yield self.sim.timeout(episode.start_s - now)
        self._dispatch(episode, "begin")
        yield self.sim.timeout(max(0.0, episode.end_s - self.sim.now))
        self._dispatch(episode, "end")

    def _dispatch(self, episode: ActiveFault, phase: str) -> None:
        self.log.append(
            InjectionRecord(
                time_s=self.sim.now,
                fault_name=episode.spec.name,
                target=episode.spec.target,
                phase=phase,
            )
        )
        if trace.TRACING:
            if phase == "begin":
                trace.instant(episode.spec.name, trace.FAULT, ts=self.sim.now,
                              track=trace.subtrack("faults"),
                              target=episode.spec.target, phase="begin")
            else:
                # One span per episode, stamped at recovery so its extent
                # is the actually-experienced outage.
                trace.complete(episode.spec.name, trace.FAULT,
                               ts=episode.start_s,
                               dur=max(0.0, self.sim.now - episode.start_s),
                               track=trace.subtrack("faults"),
                               target=episode.spec.target)
        for target in self._targets.get(episode.spec.target, []):
            if phase == "begin":
                target.fault_begin(episode)
            else:
                target.fault_end(episode)
