"""Fault specifications and their deterministic materialization.

A :class:`FaultSpec` describes *what* breaks (a named target component, a
fault kind, a severity) and *when* it breaks (one-shot, periodic, or a
stochastic MTBF/MTTR renewal process).  :func:`materialize` expands a spec
into concrete ``(start, end)`` episodes over a horizon, drawing any random
quantities from a per-fault named substream of :class:`~repro.core.rng.
RandomStreams` — so adding a fault to a scenario never perturbs the draws
of another, and whole fault schedules replay bit-identically.

:class:`FaultTimeline` is the query side: components (and the vectorized
simulators in :mod:`repro.experiments.faults`) ask it which faults are
active at a time ``t``, or for a boolean mask over an arrival vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.rng import RandomStreams

# Fault kinds understood by the built-in models.  The timeline itself is
# agnostic — any string works — but these are the ones the experiment
# scenarios and component hooks interpret.
KIND_OUTAGE = "outage"  # component fully unavailable
KIND_DEGRADE = "degrade"  # thermal throttle: service times x severity
KIND_CORE_LOSS = "core-loss"  # severity = fraction of cores lost
KIND_LINK_FLAP = "link-flap"  # link down, all packets lost
KIND_BURST_LOSS = "burst-loss"  # correlated (Gilbert-Elliott) loss episode

MODE_ONE_SHOT = "one-shot"
MODE_PERIODIC = "periodic"
MODE_STOCHASTIC = "stochastic"


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what it hits, how severe it is, and its time pattern."""

    name: str
    target: str  # component identifier ("accel", "snic-cpu", "link", ...)
    kind: str = KIND_OUTAGE
    severity: float = 1.0  # kind-specific (throttle factor, lost-core frac...)
    mode: str = MODE_ONE_SHOT
    start_s: float = 0.0
    duration_s: float = 0.0  # episode length (one-shot/periodic), or MTTR mean
    period_s: float = 0.0  # periodic spacing between episode starts
    mtbf_s: float = 0.0  # stochastic: mean time between failures
    mttr_s: float = 0.0  # stochastic: mean time to repair
    # Correlation domain: stochastic specs sharing a ``correlation`` key
    # draw from one substream *re-created per spec*, so they materialize
    # identical episodes — a rack-level power event takes every node in
    # the rack down together rather than independently.
    correlation: Optional[str] = None

    def __post_init__(self):
        if self.mode not in (MODE_ONE_SHOT, MODE_PERIODIC, MODE_STOCHASTIC):
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.mode == MODE_PERIODIC and self.period_s <= 0:
            raise ValueError("periodic fault needs period_s > 0")
        if self.mode == MODE_STOCHASTIC and (self.mtbf_s <= 0 or self.mttr_s <= 0):
            raise ValueError("stochastic fault needs mtbf_s > 0 and mttr_s > 0")
        if self.duration_s < 0 or self.start_s < 0:
            raise ValueError("fault times must be non-negative")

    # -- constructors --------------------------------------------------------

    @classmethod
    def one_shot(cls, name: str, target: str, start_s: float, duration_s: float,
                 kind: str = KIND_OUTAGE, severity: float = 1.0) -> "FaultSpec":
        return cls(name=name, target=target, kind=kind, severity=severity,
                   mode=MODE_ONE_SHOT, start_s=start_s, duration_s=duration_s)

    @classmethod
    def periodic(cls, name: str, target: str, start_s: float, period_s: float,
                 duration_s: float, kind: str = KIND_OUTAGE,
                 severity: float = 1.0) -> "FaultSpec":
        return cls(name=name, target=target, kind=kind, severity=severity,
                   mode=MODE_PERIODIC, start_s=start_s, period_s=period_s,
                   duration_s=duration_s)

    @classmethod
    def stochastic(cls, name: str, target: str, mtbf_s: float, mttr_s: float,
                   kind: str = KIND_OUTAGE, severity: float = 1.0,
                   start_s: float = 0.0,
                   correlation: Optional[str] = None) -> "FaultSpec":
        return cls(name=name, target=target, kind=kind, severity=severity,
                   mode=MODE_STOCHASTIC, start_s=start_s, mtbf_s=mtbf_s,
                   mttr_s=mttr_s, correlation=correlation)


Episode = Tuple[float, float]  # [start, end) in simulated seconds


def materialize(spec: FaultSpec, horizon_s: float,
                streams: Optional[RandomStreams] = None) -> List[Episode]:
    """Expand a spec into concrete episodes within ``[0, horizon_s)``.

    Stochastic faults draw up/down durations from the substream named
    ``fault:{spec.name}`` so each fault owns an independent, replayable
    stream.
    """
    if horizon_s <= 0:
        return []
    if spec.mode == MODE_ONE_SHOT:
        if spec.start_s >= horizon_s or spec.duration_s == 0:
            return []
        return [(spec.start_s, min(spec.start_s + spec.duration_s, horizon_s))]
    if spec.mode == MODE_PERIODIC:
        episodes: List[Episode] = []
        start = spec.start_s
        while start < horizon_s:
            episodes.append((start, min(start + spec.duration_s, horizon_s)))
            start += spec.period_s
        return episodes
    # Stochastic: alternating exponential up/down times (MTBF / MTTR).
    streams = streams or RandomStreams()
    if spec.correlation is not None:
        # Fresh (stateless) stream per spec: every spec sharing the key
        # replays the identical draw sequence => identical episodes.
        rng = streams.fresh(f"fault:{spec.correlation}")
    else:
        rng = streams.stream(f"fault:{spec.name}")
    episodes = []
    t = spec.start_s + float(rng.exponential(spec.mtbf_s))
    while t < horizon_s:
        repair = float(rng.exponential(spec.mttr_s))
        episodes.append((t, min(t + repair, horizon_s)))
        t += repair + float(rng.exponential(spec.mtbf_s))
    return episodes


@dataclass
class ActiveFault:
    """A fault episode as seen by a component at query time."""

    spec: FaultSpec
    start_s: float
    end_s: float


class FaultTimeline:
    """Materialized schedule: which faults are active when.

    Built once per run from a list of specs; queried per packet (scalar) or
    per arrival vector (numpy mask) by fault-aware simulators, and walked
    episode-by-episode by the DES :class:`~repro.faults.injector.
    FaultInjector`.
    """

    def __init__(self, specs: Sequence[FaultSpec], horizon_s: float,
                 streams: Optional[RandomStreams] = None):
        self.horizon_s = horizon_s
        self.specs = list(specs)
        self._episodes: Dict[str, List[Episode]] = {
            spec.name: materialize(spec, horizon_s, streams) for spec in self.specs
        }

    def episodes(self, name: str) -> List[Episode]:
        return list(self._episodes[name])

    def all_episodes(self) -> List[ActiveFault]:
        out = [
            ActiveFault(spec, start, end)
            for spec in self.specs
            for start, end in self._episodes[spec.name]
        ]
        out.sort(key=lambda a: a.start_s)
        return out

    def active(self, t: float, target: Optional[str] = None,
               kind: Optional[str] = None) -> List[ActiveFault]:
        """Faults active at time ``t``, optionally filtered."""
        hits: List[ActiveFault] = []
        for spec in self.specs:
            if target is not None and spec.target != target:
                continue
            if kind is not None and spec.kind != kind:
                continue
            for start, end in self._episodes[spec.name]:
                if start <= t < end:
                    hits.append(ActiveFault(spec, start, end))
                    break
        return hits

    def severity(self, t: float, target: str, kind: str,
                 default: float = 0.0) -> float:
        """Max severity among matching active faults (``default`` if none)."""
        hits = self.active(t, target=target, kind=kind)
        if not hits:
            return default
        return max(hit.spec.severity for hit in hits)

    def active_mask(self, times: np.ndarray, target: str,
                    kind: Optional[str] = None) -> np.ndarray:
        """Boolean mask over ``times``: is a matching fault active?"""
        mask = np.zeros(len(times), dtype=bool)
        for spec in self.specs:
            if spec.target != target:
                continue
            if kind is not None and spec.kind != kind:
                continue
            for start, end in self._episodes[spec.name]:
                mask |= (times >= start) & (times < end)
        return mask

    def downtime_s(self, target: str, kind: Optional[str] = None) -> float:
        """Total (union) time a matching fault is active."""
        windows: List[Episode] = []
        for spec in self.specs:
            if spec.target != target:
                continue
            if kind is not None and spec.kind != kind:
                continue
            windows.extend(self._episodes[spec.name])
        if not windows:
            return 0.0
        windows.sort()
        total = 0.0
        cur_start, cur_end = windows[0]
        for start, end in windows[1:]:
            if start > cur_end:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        return total + (cur_end - cur_start)
