"""Correlated fault domains: rack- and switch-scope schedules.

Single-node fault schedules treat every target independently; at cluster
scale the interesting failures are *correlated* — a rack PDU trip takes
every node in the rack down together, a spine reboot blackholes every
flow hashed onto it.  This module expands one logical event into a
per-target :class:`~repro.faults.schedule.FaultSpec` family sharing a
``correlation`` key, so :func:`~repro.faults.schedule.materialize` draws
each member from a freshly re-created substream and the whole domain
fails and recovers in lockstep (see the ``correlation`` field).

Targets follow the cluster naming convention: ``node:<id>`` for server
nodes and ``spine:<s>`` for spine switches, which
:mod:`repro.cluster.fabric` and :class:`repro.cluster.node.Node`
understand.  :func:`outage_windows` flattens a materialized timeline
back into per-target ``(start, end)`` windows — the shape
:class:`repro.offload.loadbalancer.NodePathConfig` expects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .schedule import (
    KIND_OUTAGE,
    Episode,
    FaultSpec,
    FaultTimeline,
    MODE_ONE_SHOT,
    MODE_STOCHASTIC,
)

# Target-id helpers (the cluster layer's component namespace).


def node_target(node_id: int) -> str:
    return f"node:{node_id}"


def spine_target(spine: int) -> str:
    return f"spine:{spine}"


def rack_targets(topo, rack: int) -> List[str]:
    """Targets for every node in ``rack`` of a
    :class:`~repro.cluster.topology.TopologySpec`."""
    if not 0 <= rack < topo.racks:
        raise ValueError(f"rack {rack} outside topology ({topo.racks} racks)")
    return [node_target(node_id) for node_id in topo.node_ids()
            if topo.rack_of(node_id) == rack]


def correlated(name: str, targets: Sequence[str], *,
               kind: str = KIND_OUTAGE, severity: float = 1.0,
               mtbf_s: float = 0.0, mttr_s: float = 0.0,
               start_s: float = 0.0,
               duration_s: float = 0.0) -> List[FaultSpec]:
    """Expand one logical event into per-target specs that fail together.

    With ``mtbf_s``/``mttr_s`` the members are stochastic and share the
    ``correlation`` key ``name``, so every member materializes identical
    episodes.  With ``duration_s`` alone the event is a deterministic
    one-shot (already trivially correlated).  Member specs are named
    ``{name}@{target}`` so :class:`FaultTimeline` keeps them distinct.
    """
    if not targets:
        raise ValueError("correlated() needs at least one target")
    stochastic = mtbf_s > 0 or mttr_s > 0
    if stochastic and duration_s > 0:
        raise ValueError("give mtbf_s/mttr_s or duration_s, not both")
    specs: List[FaultSpec] = []
    for target in targets:
        if stochastic:
            specs.append(FaultSpec(
                name=f"{name}@{target}", target=target, kind=kind,
                severity=severity, mode=MODE_STOCHASTIC, start_s=start_s,
                mtbf_s=mtbf_s, mttr_s=mttr_s, correlation=name))
        else:
            specs.append(FaultSpec(
                name=f"{name}@{target}", target=target, kind=kind,
                severity=severity, mode=MODE_ONE_SHOT, start_s=start_s,
                duration_s=duration_s))
    return specs


def rack_outage(topo, rack: int, *, mtbf_s: float = 0.0, mttr_s: float = 0.0,
                start_s: float = 0.0, duration_s: float = 0.0,
                name: Optional[str] = None) -> List[FaultSpec]:
    """A whole-rack power event: every node in the rack down together."""
    return correlated(name or f"rack{rack}-power", rack_targets(topo, rack),
                      kind=KIND_OUTAGE, mtbf_s=mtbf_s, mttr_s=mttr_s,
                      start_s=start_s, duration_s=duration_s)


def spine_outage(topo, spine: int, *, mtbf_s: float = 0.0, mttr_s: float = 0.0,
                 start_s: float = 0.0, duration_s: float = 0.0,
                 name: Optional[str] = None) -> List[FaultSpec]:
    """A spine-switch event: one spec targeting ``spine:<s>``.

    Kept as a (single-member) correlated family for symmetry, so callers
    can concatenate rack and spine schedules without special cases.
    """
    if not 0 <= spine < topo.spines:
        raise ValueError(f"spine {spine} outside topology ({topo.spines})")
    return correlated(name or f"spine{spine}-reboot", [spine_target(spine)],
                      kind=KIND_OUTAGE, mtbf_s=mtbf_s, mttr_s=mttr_s,
                      start_s=start_s, duration_s=duration_s)


def outage_windows(timeline: FaultTimeline) -> Dict[str, List[Episode]]:
    """Per-target outage episodes, in start order.

    The bridge from a materialized cluster fault schedule to the fleet
    balancer: ``outage_windows(tl)["node:3"]`` is exactly the ``outages``
    tuple a :class:`~repro.offload.loadbalancer.NodePathConfig` takes.
    """
    windows: Dict[str, List[Episode]] = {}
    for spec in timeline.specs:
        if spec.kind != KIND_OUTAGE:
            continue
        windows.setdefault(spec.target, []).extend(
            timeline.episodes(spec.name))
    for target in windows:
        windows[target].sort()
    return windows
