"""Multi-pattern regular-expression matching (the REM function, §2.2 A1)."""

from .engine import MultiPatternMatcher, ScanStats
from .parser import RegexSyntaxError, parse
from .rulesets import RULESET_NAMES, RuleSet, compile_ruleset, load_ruleset

__all__ = [
    "MultiPatternMatcher",
    "ScanStats",
    "RegexSyntaxError",
    "parse",
    "RULESET_NAMES",
    "RuleSet",
    "compile_ruleset",
    "load_ruleset",
]
