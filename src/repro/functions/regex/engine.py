"""Multi-pattern matcher with work-unit accounting.

`MultiPatternMatcher` is the software analogue of Hyperscan on the host
and of the RXP rule engine on the SNIC: compile a rule set once, then scan
payloads and report (pattern_id, end_offset) matches.  Every scan returns
a `ScanStats` used for work-unit pricing: bytes scanned, visits to deep
(non-root) automaton states (a proxy for verification effort — dense rule
sets that keep the automaton away from the root cost real engines more),
and reported matches.

Semantics note: like Hyperscan, the engine reports only *non-empty*
matches — a nullable pattern (``a*``) never fires on the empty string.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from ...core.work import WorkUnits
from .automata import Dfa, Nfa, determinize


@lru_cache(maxsize=None)
def _compile_patterns(patterns: Tuple[str, ...], max_states: int) -> Dfa:
    """Compile a pattern set once per process.

    Subset construction is by far the most expensive fixture build (the
    dense rule sets take seconds), and independent consumers compile the
    same sets — the IDS and the REM offload both use the named rule sets.
    The DFA is immutable after construction, so sharing one instance
    across matchers is safe.
    """
    nfa = Nfa()
    for pattern_id, pattern in enumerate(patterns):
        nfa.add_pattern(pattern, pattern_id)
    return determinize(nfa, max_states=max_states)


@dataclass
class ScanStats:
    bytes_scanned: int
    deep_visits: int
    matches: int

    def work_units(self) -> WorkUnits:
        return WorkUnits(
            {
                "dfa_byte": float(self.bytes_scanned),
                "dfa_deep_byte": float(self.deep_visits),
                "regex_report": float(self.matches),
            }
        )


class MultiPatternMatcher:
    """Compiles many patterns into one DFA and scans payloads."""

    def __init__(self, patterns: Sequence[str], max_states: int = 20000):
        if not patterns:
            raise ValueError("need at least one pattern")
        self.patterns = list(patterns)
        self.dfa: Dfa = _compile_patterns(tuple(self.patterns), max_states)

    @property
    def state_count(self) -> int:
        return self.dfa.state_count

    def scan(self, payload: bytes) -> Tuple[List[Tuple[int, int]], ScanStats]:
        """Scan ``payload``; return (matches, stats).

        Matches are (pattern_id, end_offset) with end_offset pointing one
        past the last matched byte.  Each (pattern, end) pair reports once.
        """
        transitions = self.dfa.transitions
        accepts = self.dfa.accepts
        depth = self.dfa.depth_class
        state = self.dfa.start
        matches: List[Tuple[int, int]] = []
        deep_visits = 0
        for offset, byte in enumerate(payload):
            state = transitions[state * 256 + byte]
            state_depth = depth[state]
            if state_depth:
                # Depth-1 excursions are ordinary scanning; only states two
                # or more transitions from the root count as verification
                # work (the prefilter has "hit" and the engine is matching).
                if state_depth >= 2:
                    deep_visits += 1
                found = accepts[state]
                if found:
                    end = offset + 1
                    for pattern_id in found:
                        matches.append((pattern_id, end))
        return matches, ScanStats(
            bytes_scanned=len(payload),
            deep_visits=deep_visits,
            matches=len(matches),
        )

    def contains_match(self, payload: bytes) -> bool:
        """Early-exit check: does any pattern occur in the payload?"""
        transitions = self.dfa.transitions
        accepts = self.dfa.accepts
        state = self.dfa.start
        for byte in payload:
            state = transitions[state * 256 + byte]
            if accepts[state]:
                return True
        return False
