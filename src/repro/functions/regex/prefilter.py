"""Aho-Corasick literal prefilter.

Hyperscan's decisive trick — and the reason the host beats naive scalar
matchers — is splitting matching into a cheap multi-literal *prefilter*
over extracted pattern literals and an exact engine that only runs where
the prefilter fires.  This module implements the real Aho-Corasick
automaton (goto/fail/output functions) and the literal extraction that
feeds it, so the two-stage architecture can be built and ablated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .parser import Concat, Literal, Node, Repeat, parse


class AhoCorasick:
    """Multi-literal matcher with classic goto/fail construction."""

    def __init__(self, literals: Sequence[bytes]):
        if not literals:
            raise ValueError("need at least one literal")
        for literal in literals:
            if not literal:
                raise ValueError("empty literal")
        self.literals = list(literals)
        # state -> {byte: state}
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[List[int]] = [[]]
        for index, literal in enumerate(self.literals):
            self._insert(literal, index)
        self._build_failure_links()

    def _insert(self, literal: bytes, literal_id: int) -> None:
        state = 0
        for byte in literal:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._output.append([])
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].append(literal_id)

    def _build_failure_links(self) -> None:
        queue: deque = deque()
        for byte, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for byte, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] = self._output[nxt] + self._output[self._fail[nxt]]

    @property
    def state_count(self) -> int:
        return len(self._goto)

    def scan(self, payload: bytes) -> List[Tuple[int, int]]:
        """(literal_id, end_offset) for every occurrence."""
        state = 0
        hits: List[Tuple[int, int]] = []
        for offset, byte in enumerate(payload):
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            for literal_id in self._output[state]:
                hits.append((literal_id, offset + 1))
        return hits

    def contains_any(self, payload: bytes) -> bool:
        state = 0
        for byte in payload:
            while state and byte not in self._goto[state]:
                state = self._fail[state]
            state = self._goto[state].get(byte, 0)
            if self._output[state]:
                return True
        return False


def extract_literal(pattern: str, min_length: int = 2) -> Optional[bytes]:
    """The longest mandatory literal run of a pattern, if one exists.

    Only byte-exact atoms in the top-level concatenation count; anything
    behind an alternation or an optional quantifier is not mandatory.
    Patterns without a usable literal cannot be prefiltered (the caller
    must always run the exact engine for them).
    """
    ast = parse(pattern)
    parts: Sequence[Node]
    if isinstance(ast, Concat):
        parts = ast.parts
    else:
        parts = (ast,)
    best = b""
    current = bytearray()
    for part in parts:
        byte = _single_byte(part)
        if byte is not None:
            current.append(byte)
            continue
        if len(current) > len(best):
            best = bytes(current)
        current = bytearray()
        if isinstance(part, Repeat) and part.minimum > 0:
            inner = _single_byte(part.node)
            if inner is not None:
                run = bytes([inner]) * part.minimum
                if len(run) > len(best):
                    best = run
    if len(current) > len(best):
        best = bytes(current)
    return best if len(best) >= min_length else None


def _single_byte(node: Node) -> Optional[int]:
    if isinstance(node, Literal) and len(node.bytes_allowed) == 1:
        return next(iter(node.bytes_allowed))
    return None


@dataclass
class PrefilterReport:
    """Outcome of a prefiltered scan batch."""

    packets: int
    prefilter_passes: int  # packets the exact engine had to scan
    matches: int

    @property
    def pass_rate(self) -> float:
        return self.prefilter_passes / self.packets if self.packets else 0.0


class PrefilteredMatcher:
    """The two-stage architecture: AC literals in front of the exact DFA.

    Patterns with no extractable literal go into an *always-scan* set:
    the exact engine runs on every packet regardless (which is why rule
    authors care about literal-free rules).
    """

    def __init__(self, patterns: Sequence[str], min_literal: int = 2):
        from .engine import MultiPatternMatcher

        self.exact = MultiPatternMatcher(list(patterns))
        literals = []
        self.filterable: List[int] = []
        self.unfilterable: List[int] = []
        for index, pattern in enumerate(patterns):
            literal = extract_literal(pattern, min_length=min_literal)
            if literal is None:
                self.unfilterable.append(index)
            else:
                self.filterable.append(index)
                literals.append(literal)
        self.prefilter = AhoCorasick(literals) if literals else None

    def scan(self, payload: bytes):
        """Same interface as MultiPatternMatcher.scan, plus a flag telling
        whether the exact engine actually ran."""
        must_scan = bool(self.unfilterable)
        if not must_scan and self.prefilter is not None:
            must_scan = self.prefilter.contains_any(payload)
        if not must_scan:
            from .engine import ScanStats

            return [], ScanStats(bytes_scanned=len(payload), deep_visits=0,
                                 matches=0), False
        matches, stats = self.exact.scan(payload)
        return matches, stats, True

    def scan_batch(self, payloads: Sequence[bytes]) -> PrefilterReport:
        passes = 0
        matches = 0
        for payload in payloads:
            found, _, scanned = self.scan(payload)
            passes += int(scanned)
            matches += len(found)
        return PrefilterReport(
            packets=len(payloads), prefilter_passes=passes, matches=matches
        )
