"""Regular-expression parser.

Supports the subset needed for IDS-style signature rules: literals,
escapes (``\\x41``, ``\\n``, ``\\t``, ``\\d``, ``\\w``, ``\\s``), the dot,
character classes with ranges and negation, grouping, alternation, and the
``* + ? {m,n}`` quantifiers.  Parsing produces a small AST that the NFA
builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple


class RegexSyntaxError(ValueError):
    """Raised on malformed patterns."""


# -- AST ------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    pass


@dataclass(frozen=True)
class Literal(Node):
    """Match exactly one byte from ``bytes_allowed``."""

    bytes_allowed: FrozenSet[int]


@dataclass(frozen=True)
class Concat(Node):
    parts: Tuple[Node, ...]


@dataclass(frozen=True)
class Alternate(Node):
    options: Tuple[Node, ...]


@dataclass(frozen=True)
class Repeat(Node):
    node: Node
    minimum: int
    maximum: Optional[int]  # None = unbounded


ANY_BYTE = frozenset(range(256))
DIGITS = frozenset(range(ord("0"), ord("9") + 1))
WORD = frozenset(
    set(range(ord("a"), ord("z") + 1))
    | set(range(ord("A"), ord("Z") + 1))
    | set(DIGITS)
    | {ord("_")}
)
SPACE = frozenset({ord(" "), ord("\t"), ord("\n"), ord("\r"), 0x0B, 0x0C})


class _Parser:
    def __init__(self, pattern: str):
        self.pattern = pattern
        self.pos = 0

    def peek(self) -> Optional[str]:
        if self.pos < len(self.pattern):
            return self.pattern[self.pos]
        return None

    def advance(self) -> str:
        char = self.pattern[self.pos]
        self.pos += 1
        return char

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise RegexSyntaxError(
                f"expected {char!r} at position {self.pos} in {self.pattern!r}"
            )
        self.advance()

    # alternation := concat ('|' concat)*
    def parse_alternation(self) -> Node:
        options = [self.parse_concat()]
        while self.peek() == "|":
            self.advance()
            options.append(self.parse_concat())
        if len(options) == 1:
            return options[0]
        return Alternate(tuple(options))

    def parse_concat(self) -> Node:
        parts: List[Node] = []
        while self.peek() not in (None, "|", ")"):
            parts.append(self.parse_quantified())
        if len(parts) == 1:
            return parts[0]
        return Concat(tuple(parts))

    def parse_quantified(self) -> Node:
        atom = self.parse_atom()
        char = self.peek()
        if char == "*":
            self.advance()
            return Repeat(atom, 0, None)
        if char == "+":
            self.advance()
            return Repeat(atom, 1, None)
        if char == "?":
            self.advance()
            return Repeat(atom, 0, 1)
        if char == "{":
            return self._parse_counted(atom)
        return atom

    def _parse_counted(self, atom: Node) -> Node:
        self.expect("{")
        minimum = self._parse_int()
        maximum: Optional[int] = minimum
        if self.peek() == ",":
            self.advance()
            if self.peek() == "}":
                maximum = None
            else:
                maximum = self._parse_int()
        self.expect("}")
        if maximum is not None and maximum < minimum:
            raise RegexSyntaxError(f"bad repeat bounds in {self.pattern!r}")
        return Repeat(atom, minimum, maximum)

    def _parse_int(self) -> int:
        digits = ""
        while self.peek() is not None and self.peek().isdigit():
            digits += self.advance()
        if not digits:
            raise RegexSyntaxError(f"expected number at {self.pos} in {self.pattern!r}")
        return int(digits)

    def parse_atom(self) -> Node:
        char = self.peek()
        if char is None:
            raise RegexSyntaxError(f"unexpected end of pattern {self.pattern!r}")
        if char == "(":
            self.advance()
            inner = self.parse_alternation()
            self.expect(")")
            return inner
        if char == "[":
            return self._parse_class()
        if char == ".":
            self.advance()
            return Literal(ANY_BYTE)
        if char == "\\":
            return Literal(frozenset(self._parse_escape()))
        if char in "*+?{":
            raise RegexSyntaxError(f"dangling quantifier at {self.pos} in {self.pattern!r}")
        self.advance()
        return Literal(frozenset({ord(char)}))

    def _parse_escape(self) -> FrozenSet[int]:
        self.expect("\\")
        char = self.peek()
        if char is None:
            raise RegexSyntaxError(f"trailing backslash in {self.pattern!r}")
        self.advance()
        if char == "x":
            digits = ""
            for _ in range(2):
                nxt = self.peek()
                if nxt is None or nxt not in "0123456789abcdefABCDEF":
                    raise RegexSyntaxError(f"bad \\x escape in {self.pattern!r}")
                digits += self.advance()
            return frozenset({int(digits, 16)})
        simple = {"n": 10, "r": 13, "t": 9, "0": 0}
        if char in simple:
            return frozenset({simple[char]})
        if char == "d":
            return DIGITS
        if char == "D":
            return frozenset(ANY_BYTE - DIGITS)
        if char == "w":
            return WORD
        if char == "W":
            return frozenset(ANY_BYTE - WORD)
        if char == "s":
            return SPACE
        if char == "S":
            return frozenset(ANY_BYTE - SPACE)
        # Escaped metacharacter or literal.
        return frozenset({ord(char)})

    def _parse_class(self) -> Node:
        self.expect("[")
        negate = False
        if self.peek() == "^":
            negate = True
            self.advance()
        members: set = set()
        first = True
        while True:
            char = self.peek()
            if char is None:
                raise RegexSyntaxError(f"unterminated class in {self.pattern!r}")
            if char == "]" and not first:
                self.advance()
                break
            first = False
            if char == "\\":
                members |= set(self._parse_escape())
                continue
            self.advance()
            low = ord(char)
            if self.peek() == "-" and self.pos + 1 < len(self.pattern) and self.pattern[self.pos + 1] != "]":
                self.advance()  # '-'
                high_char = self.advance()
                high = ord(high_char)
                if high < low:
                    raise RegexSyntaxError(f"reversed range in class in {self.pattern!r}")
                members |= set(range(low, high + 1))
            else:
                members.add(low)
        if negate:
            members = set(ANY_BYTE) - members
        if not members:
            raise RegexSyntaxError(f"empty character class in {self.pattern!r}")
        return Literal(frozenset(members))


def nullable(node: Node) -> bool:
    """Can the node match the empty string?"""
    if isinstance(node, Literal):
        return False
    if isinstance(node, Concat):
        return all(nullable(part) for part in node.parts)
    if isinstance(node, Alternate):
        return any(nullable(option) for option in node.options)
    if isinstance(node, Repeat):
        return node.minimum == 0 or nullable(node.node)
    raise TypeError(node)


def parse(pattern: str) -> Node:
    """Parse ``pattern`` into an AST; raises RegexSyntaxError when invalid."""
    parser = _Parser(pattern)
    node = parser.parse_alternation()
    if parser.pos != len(pattern):
        raise RegexSyntaxError(f"trailing garbage at {parser.pos} in {pattern!r}")
    return node
