"""NFA construction and DFA subset conversion for multi-pattern matching.

The matcher compiles *many* patterns into one automaton whose accept
states carry pattern ids — the same architecture as Hyperscan and the
BlueField-2 RXP engine.  Matching runs the DFA over a payload in "search"
mode (an implicit ``.*`` prefix lets matches start anywhere) and reports
``(pattern_id, end_offset)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .parser import Alternate, Concat, Literal, Node, Repeat, parse

_MAX_COUNTED_EXPANSION = 64


@dataclass
class NfaState:
    transitions: List[Tuple[FrozenSet[int], int]] = field(default_factory=list)
    epsilon: List[int] = field(default_factory=list)
    accepts: Optional[int] = None  # pattern id


class Nfa:
    """Thompson NFA over byte alphabet with pattern-id accepts."""

    def __init__(self):
        self.states: List[NfaState] = []
        self.start = self.new_state()

    def new_state(self) -> int:
        self.states.append(NfaState())
        return len(self.states) - 1

    def add_pattern(self, pattern: str, pattern_id: int) -> None:
        from .parser import nullable

        ast = parse(pattern)
        if nullable(ast):
            # As in Hyperscan: a pattern matching the empty string would
            # "fire" at every offset, which is meaningless for scanning.
            raise ValueError(
                f"pattern {pattern!r} matches the empty string; anchor it "
                "with at least one mandatory atom"
            )
        entry, exit_ = self._build(ast)
        # Search semantics: the global start self-loops on any byte and
        # epsilon-enters every pattern's entry.
        self.states[self.start].epsilon.append(entry)
        self.states[exit_].accepts = pattern_id

    # -- Thompson construction -------------------------------------------

    def _build(self, node: Node) -> Tuple[int, int]:
        if isinstance(node, Literal):
            entry, exit_ = self.new_state(), self.new_state()
            self.states[entry].transitions.append((node.bytes_allowed, exit_))
            return entry, exit_
        if isinstance(node, Concat):
            entry, exit_ = self.new_state(), self.new_state()
            current = entry
            for part in node.parts:
                part_entry, part_exit = self._build(part)
                self.states[current].epsilon.append(part_entry)
                current = part_exit
            self.states[current].epsilon.append(exit_)
            return entry, exit_
        if isinstance(node, Alternate):
            entry, exit_ = self.new_state(), self.new_state()
            for option in node.options:
                option_entry, option_exit = self._build(option)
                self.states[entry].epsilon.append(option_entry)
                self.states[option_exit].epsilon.append(exit_)
            return entry, exit_
        if isinstance(node, Repeat):
            return self._build_repeat(node)
        raise TypeError(f"unknown AST node {node!r}")

    def _build_repeat(self, node: Repeat) -> Tuple[int, int]:
        if node.maximum is None:
            # min{0,1,n} then a Kleene tail
            entry, exit_ = self.new_state(), self.new_state()
            current = entry
            for _ in range(node.minimum):
                part_entry, part_exit = self._build(node.node)
                self.states[current].epsilon.append(part_entry)
                current = part_exit
            # Kleene star segment
            star_entry, star_exit = self.new_state(), self.new_state()
            inner_entry, inner_exit = self._build(node.node)
            self.states[star_entry].epsilon.extend([inner_entry, star_exit])
            self.states[inner_exit].epsilon.extend([inner_entry, star_exit])
            self.states[current].epsilon.append(star_entry)
            self.states[star_exit].epsilon.append(exit_)
            return entry, exit_
        total = node.maximum
        if total > _MAX_COUNTED_EXPANSION:
            raise ValueError(
                f"counted repeat {{{node.minimum},{node.maximum}}} too large to expand"
            )
        entry, exit_ = self.new_state(), self.new_state()
        current = entry
        optional_starts: List[int] = []
        for index in range(total):
            part_entry, part_exit = self._build(node.node)
            if index >= node.minimum:
                optional_starts.append(current)
            self.states[current].epsilon.append(part_entry)
            current = part_exit
        self.states[current].epsilon.append(exit_)
        for state in optional_starts:
            self.states[state].epsilon.append(exit_)
        return entry, exit_

    # -- epsilon closure ---------------------------------------------------

    def closure(self, states: Set[int]) -> FrozenSet[int]:
        stack = list(states)
        seen = set(states)
        while stack:
            state = stack.pop()
            for target in self.states[state].epsilon:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return frozenset(seen)


@dataclass
class Dfa:
    """Dense-table DFA: transitions[state * 256 + byte] -> state.

    ``accepts[state]`` is a tuple of pattern ids reported when the state is
    entered.  ``depth_class[state]`` is 0 for the root scanning state and
    grows with automaton depth — the matcher uses it to count "deep state"
    visits, the work-unit proxy for verification effort.
    """

    transitions: List[int]
    accepts: List[Tuple[int, ...]]
    start: int
    depth_class: List[int]

    @property
    def state_count(self) -> int:
        return len(self.accepts)


def determinize(nfa: Nfa, max_states: int = 20000) -> Dfa:
    """Subset construction with a search-mode self-looping start state."""
    # NFA subsets are int bitmasks: identical membership semantics to the
    # frozensets of the naive construction (mask identity == set
    # identity), but unions are word-parallel and closures memoizable.
    # Epsilon closures decompose over union — closure(S) is the union of
    # the members' single-state closures — so precompute those once.
    # Per-state byte->targets moves replay the original nested-loop byte
    # order: the merged dict's first-seen byte order fixes the discovery
    # order of new DFA states, and that order (hence state numbering,
    # depth classes, and the final table) must not change.
    single_mask: List[int] = []
    for s in range(len(nfa.states)):
        mask = 0
        for member in nfa.closure({s}):
            mask |= 1 << member
        single_mask.append(mask)
    state_moves: List[Dict[int, int]] = []
    for s, st in enumerate(nfa.states):
        per: Dict[int, int] = {}
        if s == nfa.start:
            # search semantics: start state loops on every byte
            for byte in range(256):
                per[byte] = per.get(byte, 0) | (1 << nfa.start)
        for allowed, target in st.transitions:
            bit = 1 << target
            for byte in allowed:
                per[byte] = per.get(byte, 0) | bit
        state_moves.append(per)

    start_bit = 1 << nfa.start
    start_set = single_mask[nfa.start]
    index_of: Dict[int, int] = {start_set: 0}
    order: List[int] = [start_set]
    transitions: List[int] = []
    accepts: List[Tuple[int, ...]] = []
    depth_class: List[int] = [0]
    closure_of: Dict[int, int] = {}  # targets mask -> closure mask

    work = [start_set]
    while work:
        current = work.pop()
        current_index = index_of[current]
        while len(transitions) < (current_index + 1) * 256:
            transitions.extend([0] * 256)
        # Merge per-state move maps into per-byte target masks.
        moves: Dict[int, int] = {}
        remaining = current
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            state = low.bit_length() - 1
            for byte, bits in state_moves[state].items():
                moves[byte] = moves.get(byte, 0) | bits
        for byte, targets in moves.items():
            targets |= start_bit  # keep scanning for later matches
            closure = closure_of.get(targets)
            if closure is None:
                closure = 0
                bits = targets
                while bits:
                    low = bits & -bits
                    bits ^= low
                    closure |= single_mask[low.bit_length() - 1]
                closure_of[targets] = closure
            index = index_of.get(closure)
            if index is None:
                index = len(order)
                if index >= max_states:
                    raise ValueError(
                        f"DFA exceeds {max_states} states; simplify the rule set"
                    )
                index_of[closure] = index
                order.append(closure)
                depth_class.append(min(depth_class[current_index] + 1, 255))
                work.append(closure)
            transitions[current_index * 256 + byte] = index

    for subset in order:
        ids = []
        bits = subset
        while bits:
            low = bits & -bits
            bits ^= low
            accept = nfa.states[low.bit_length() - 1].accepts
            if accept is not None:
                ids.append(accept)
        accepts.append(tuple(sorted(ids)))
    return Dfa(
        transitions=transitions,
        accepts=accepts,
        start=0,
        depth_class=depth_class,
    )
