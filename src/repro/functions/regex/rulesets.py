"""Synthetic IDS rule sets standing in for the Snort registered rules.

The paper uses three rule sets from Snort snapshot 31470 — file_image,
file_flash, file_executable — whose *interaction with traffic* drives Key
Observation 4: the host's software matcher slows down on rule sets that
keep the automaton away from its root state (dense partial matches), while
the RXP accelerator's throughput is input-independent (capped ~50 Gbps).

We reproduce that structure synthetically:

* ``file_image`` — many short signatures anchored on bytes common in the
  traffic mix (format markers inside ASCII-ish carriers), yielding a high
  partial-match density;
* ``file_flash`` — medium-length container signatures, moderate density;
* ``file_executable`` — long distinctive signatures over rare byte
  prefixes, yielding a low density.

Rule sets are deterministic (fixed generator seed) so every experiment and
test sees identical automata.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from .engine import MultiPatternMatcher

RULESET_NAMES = ("file_image", "file_flash", "file_executable")


@dataclass(frozen=True)
class RuleSet:
    name: str
    patterns: Tuple[str, ...]
    # Signature fragments injected into "infected" traffic so scans find
    # real matches at a controlled rate.
    seed_fragments: Tuple[bytes, ...]


def _hex(byte_values) -> str:
    return "".join(f"\\x{b:02x}" for b in byte_values)


# Digrams common in HTTP-ish datacenter traffic.  Rules anchored on them
# keep the automaton in deep (verification) states on ordinary text, which
# is what makes file_image the expensive rule set for software matchers.
_COMMON_DIGRAMS = ("in", "re", "st", "on", "ti", "er", "te", "ec", "at", "os",
                   "ap", "or", "es", "al", "ct", "io")


def _image_ruleset(rng: np.random.Generator) -> RuleSet:
    patterns: List[str] = []
    fragments: List[bytes] = []
    # Classic image magics — short, common-prefix signatures.
    magics = [b"\xff\xd8\xff", b"\x89PNG", b"GIF8", b"BM\x36", b"II*\x00"]
    for magic in magics:
        patterns.append(_hex(magic))
        fragments.append(magic)
    # Marker-plus-context rules anchored on common text digrams: after any
    # such digram the automaton sits in a depth>=2 verification state.
    for digram in _COMMON_DIGRAMS:
        tail_bytes = bytes(int(b) for b in rng.integers(0x21, 0x7E, size=4))
        patterns.append(f"{digram}[a-z0-9/.:]{{2}}{_hex(tail_bytes)}")
        middle = bytes(int(b) for b in rng.integers(ord("a"), ord("z") + 1, size=2))
        fragments.append(digram.encode() + middle + tail_bytes)
    # EXIF / metadata keywords, frequent in mixed traffic.
    for keyword in ("Exif", "JFIF", "IHDR", "PLTE", "tEXt", "8BIM"):
        patterns.append(keyword)
        fragments.append(keyword.encode())
    return RuleSet("file_image", tuple(patterns), tuple(fragments))


def _flash_ruleset(rng: np.random.Generator) -> RuleSet:
    patterns: List[str] = []
    fragments: List[bytes] = []
    for magic in (b"FWS\x0a", b"CWS\x0a", b"ZWS\x0d"):
        patterns.append(_hex(magic))
        fragments.append(magic)
    for _ in range(14):
        body = bytes(int(b) for b in rng.integers(0x30, 0x7A, size=6))
        patterns.append("\\x78\\x9c" + _hex(body[:4]))
        fragments.append(b"\x78\x9c" + body[:4])
    for keyword in ("DoABC", "SymbolClass", "ActionScript"):
        patterns.append(keyword)
        fragments.append(keyword.encode())
    return RuleSet("file_flash", tuple(patterns), tuple(fragments))


def _executable_ruleset(rng: np.random.Generator) -> RuleSet:
    patterns: List[str] = []
    fragments: List[bytes] = []
    # Long, rare-prefix signatures: shellcode stubs, section names, import
    # thunks.  Rare first bytes keep the DFA at its root on normal traffic.
    stubs = [
        b"\xd9\xee\xd9\x74\x24\xf4",  # fnstenv GetPC
        b"\xeb\xfe\x90\x90\x90\x90",
        b"\xe8\x00\x00\x00\x00\x5d",
        b"\xfc\xe8\x82\x00\x00\x00",
    ]
    for stub in stubs:
        patterns.append(_hex(stub))
        fragments.append(stub)
    for _ in range(12):
        body = bytes(int(b) for b in rng.integers(0x80, 0xFF, size=10))
        patterns.append(_hex(body))
        fragments.append(body)
    for name in (".textbss", "UPX0\x00", "KERNEL32.DLL\x00"):
        patterns.append(_hex(name.encode("latin1")))
        fragments.append(name.encode("latin1"))
    return RuleSet("file_executable", tuple(patterns), tuple(fragments))


_BUILDERS = {
    "file_image": _image_ruleset,
    "file_flash": _flash_ruleset,
    "file_executable": _executable_ruleset,
}


@lru_cache(maxsize=None)
def load_ruleset(name: str) -> RuleSet:
    """The deterministic rule set for ``name`` (see RULESET_NAMES)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown rule set {name!r}; choose from {RULESET_NAMES}") from None
    seeds = {"file_image": 0x5EED01, "file_flash": 0x5EED02, "file_executable": 0x5EED03}
    rng = np.random.Generator(np.random.PCG64(seeds[name]))
    return builder(rng)


@lru_cache(maxsize=None)
def compile_ruleset(name: str) -> MultiPatternMatcher:
    """Compile (and cache) the matcher for a named rule set."""
    return MultiPatternMatcher(list(load_ruleset(name).patterns))
