"""Canonical Huffman coding (the back half of DEFLATE).

Builds length-limited canonical codes from symbol frequencies, serializes
the code-length table in the header, and encodes/decodes bitstreams.  The
decoder walks a flat (code -> symbol) table built from the same canonical
lengths, so the header fully determines the code.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

MAX_CODE_LENGTH = 15


def code_lengths(frequencies: Dict[int, int]) -> Dict[int, int]:
    """Huffman code lengths per symbol (package-merge-free simple build).

    Falls back to flattening when the tree would exceed MAX_CODE_LENGTH
    (rare for our alphabets).
    """
    symbols = [s for s, f in frequencies.items() if f > 0]
    if not symbols:
        return {}
    if len(symbols) == 1:
        return {symbols[0]: 1}
    heap: List[Tuple[int, int, Tuple[int, ...]]] = []
    for index, symbol in enumerate(symbols):
        heapq.heappush(heap, (frequencies[symbol], index, (symbol,)))
    depths: Dict[int, int] = {s: 0 for s in symbols}
    counter = len(symbols)
    while len(heap) > 1:
        fa, _, group_a = heapq.heappop(heap)
        fb, _, group_b = heapq.heappop(heap)
        for symbol in group_a + group_b:
            depths[symbol] += 1
        counter += 1
        heapq.heappush(heap, (fa + fb, counter, group_a + group_b))
    longest = max(depths.values())
    if longest > MAX_CODE_LENGTH:
        # crude length limiting: clamp and re-normalize via Kraft sum
        depths = _limit_lengths(depths, MAX_CODE_LENGTH)
    return depths


def _limit_lengths(depths: Dict[int, int], limit: int) -> Dict[int, int]:
    clamped = {s: min(d, limit) for s, d in depths.items()}
    # Repair the Kraft inequality by lengthening the shortest codes.
    def kraft(lengths: Dict[int, int]) -> float:
        return sum(2.0 ** -d for d in lengths.values())

    symbols_by_length = sorted(clamped, key=lambda s: clamped[s])
    while kraft(clamped) > 1.0:
        for symbol in symbols_by_length:
            if clamped[symbol] < limit:
                clamped[symbol] += 1
                break
        else:
            raise ValueError("cannot satisfy Kraft inequality")
        symbols_by_length = sorted(clamped, key=lambda s: clamped[s])
    return clamped


def canonical_codes(lengths: Dict[int, int]) -> Dict[int, Tuple[int, int]]:
    """symbol -> (code, length), assigned canonically."""
    ordered = sorted(lengths.items(), key=lambda item: (item[1], item[0]))
    codes: Dict[int, Tuple[int, int]] = {}
    code = 0
    previous_length = 0
    for symbol, length in ordered:
        code <<= length - previous_length
        codes[symbol] = (code, length)
        code += 1
        previous_length = length
    return codes


class BitWriter:
    def __init__(self):
        self._bytes = bytearray()
        self._bit_position = 0

    def write(self, code: int, length: int) -> None:
        for shift in range(length - 1, -1, -1):
            bit = (code >> shift) & 1
            if self._bit_position == 0:
                self._bytes.append(0)
            if bit:
                self._bytes[-1] |= 1 << (7 - self._bit_position)
            self._bit_position = (self._bit_position + 1) % 8

    def getvalue(self) -> bytes:
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        if not self._bytes:
            return 0
        return (len(self._bytes) - 1) * 8 + (self._bit_position or 8)


class BitReader:
    def __init__(self, data: bytes):
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        byte_index, bit_index = divmod(self._position, 8)
        if byte_index >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, count: int) -> int:
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value


class Decoder:
    """Canonical-code decoder using a (length, code) -> symbol map."""

    def __init__(self, lengths: Dict[int, int]):
        self._table: Dict[Tuple[int, int], int] = {}
        for symbol, (code, length) in canonical_codes(lengths).items():
            self._table[(length, code)] = symbol
        self._max_length = max(lengths.values()) if lengths else 0

    def decode(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, self._max_length + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._table.get((length, code))
            if symbol is not None:
                return symbol
        raise ValueError("invalid Huffman code in stream")


def encode_symbols(
    symbols: Sequence[int], codes: Dict[int, Tuple[int, int]], writer: BitWriter
) -> int:
    """Write all symbols; returns the number of symbols written."""
    for symbol in symbols:
        code, length = codes[symbol]
        writer.write(code, length)
    return len(symbols)


def serialize_lengths(lengths: Dict[int, int], alphabet_size: int) -> bytes:
    """Fixed-size header: one length byte per alphabet symbol."""
    out = bytearray(alphabet_size)
    for symbol, length in lengths.items():
        if symbol >= alphabet_size:
            raise ValueError(f"symbol {symbol} outside alphabet {alphabet_size}")
        out[symbol] = length
    return bytes(out)


def deserialize_lengths(header: bytes) -> Dict[int, int]:
    return {symbol: length for symbol, length in enumerate(header) if length > 0}
