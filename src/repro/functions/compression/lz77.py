"""LZ77 sliding-window match finder (the front half of DEFLATE).

Hash-chain match search in the zlib style: a 3-byte rolling hash indexes
chains of previous positions; higher compression levels probe chains
deeper.  Emits a token stream of literals and (length, distance) copies
and counts the work units that dominate compression cost — bytes consumed
and chain probes performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union

from ...core.work import WorkUnits

WINDOW_SIZE = 32 * 1024
MIN_MATCH = 3
MAX_MATCH = 258

# zlib-style level -> max chain probes per position.
LEVEL_MAX_CHAIN = {1: 4, 3: 16, 6: 32, 9: 128}


@dataclass(frozen=True)
class Literal:
    byte: int


@dataclass(frozen=True)
class Match:
    length: int
    distance: int


Token = Union[Literal, Match]


@dataclass
class Lz77Result:
    tokens: List[Token]
    input_bytes: int
    chain_probes: int

    def work_units(self) -> WorkUnits:
        return WorkUnits(
            {
                "lz_byte": float(self.input_bytes),
                "lz_match_search": float(self.chain_probes),
            }
        )


def _hash3(data: bytes, pos: int) -> int:
    return (data[pos] << 10) ^ (data[pos + 1] << 5) ^ data[pos + 2]


def compress(data: bytes, level: int = 9) -> Lz77Result:
    """Tokenize ``data``; higher ``level`` searches harder for matches."""
    if level not in LEVEL_MAX_CHAIN:
        raise ValueError(f"level must be one of {sorted(LEVEL_MAX_CHAIN)}")
    max_chain = LEVEL_MAX_CHAIN[level]
    tokens: List[Token] = []
    head: dict = {}
    prev: dict = {}
    probes = 0
    pos = 0
    n = len(data)
    while pos < n:
        best_length = 0
        best_distance = 0
        if pos + MIN_MATCH <= n:
            key = _hash3(data, pos)
            candidate = head.get(key)
            chain = 0
            while candidate is not None and chain < max_chain:
                distance = pos - candidate
                if distance > WINDOW_SIZE:
                    break
                probes += 1
                chain += 1
                length = _match_length(data, candidate, pos, n)
                if length > best_length:
                    best_length = length
                    best_distance = distance
                    if length >= MAX_MATCH:
                        break
                candidate = prev.get(candidate)
            # insert current position into the chain
            prev[pos] = head.get(key)
            head[key] = pos
        if best_length >= MIN_MATCH:
            tokens.append(Match(best_length, best_distance))
            # insert skipped positions so later matches can reference them
            end = pos + best_length
            insert_end = min(end, n - MIN_MATCH + 1)
            for p in range(pos + 1, insert_end):
                key = _hash3(data, p)
                prev[p] = head.get(key)
                head[key] = p
            pos = end
        else:
            tokens.append(Literal(data[pos]))
            pos += 1
    return Lz77Result(tokens=tokens, input_bytes=n, chain_probes=probes)


def _match_length(data: bytes, candidate: int, pos: int, n: int) -> int:
    limit = min(MAX_MATCH, n - pos)
    length = 0
    while length < limit and data[candidate + length] == data[pos + length]:
        length += 1
    return length


def decompress(tokens: List[Token]) -> bytes:
    """Invert the token stream back to the original bytes."""
    out = bytearray()
    for token in tokens:
        if isinstance(token, Literal):
            out.append(token.byte)
        else:
            if token.distance <= 0 or token.distance > len(out):
                raise ValueError(f"bad match distance {token.distance}")
            start = len(out) - token.distance
            for i in range(token.length):
                out.append(out[start + i])
    return bytes(out)
