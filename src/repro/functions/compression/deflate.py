"""DEFLATE-shaped compressor: LZ77 tokens entropy-coded with canonical
Huffman codes.

The container format is simplified relative to RFC 1951 (single block,
byte-aligned header carrying the two code-length tables) but the pipeline
— hash-chain LZ77 at a compression level, canonical Huffman over a
literal/length alphabet plus a distance alphabet — is the real algorithm,
and compress/decompress round-trips exactly.  Work units: ``lz_byte`` and
``lz_match_search`` from the match finder plus ``huffman_symbol`` per
emitted symbol.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from ...core.work import WorkUnits
from . import huffman, lz77

# Literal/length alphabet: 0-255 literals, 256 = end-of-block,
# 257-284 length buckets (like DEFLATE's length codes).
END_OF_BLOCK = 256
LENGTH_BASE = [3, 4, 5, 6, 7, 8, 9, 10, 12, 16, 24, 32, 48, 64, 96, 128, 192, 258]
LITLEN_ALPHABET = 257 + len(LENGTH_BASE)
# Distance buckets, powers of two up to the 32 KiB window.
DIST_BASE = [1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256,
             384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288,
             16384, 24576, 32768]
DIST_ALPHABET = len(DIST_BASE)

MAGIC = b"RPDF"


@dataclass
class CompressionResult:
    payload: bytes
    original_size: int
    work: WorkUnits

    @property
    def compressed_size(self) -> int:
        return len(self.payload)

    @property
    def ratio(self) -> float:
        if self.compressed_size == 0:
            return float("inf")
        return self.original_size / self.compressed_size


def _length_bucket(length: int) -> Tuple[int, int, int]:
    """(symbol, extra_bits, extra_value) for a match length."""
    for index in range(len(LENGTH_BASE) - 1, -1, -1):
        base = LENGTH_BASE[index]
        if length >= base:
            next_base = LENGTH_BASE[index + 1] if index + 1 < len(LENGTH_BASE) else 259
            span = next_base - base
            extra_bits = max(0, (span - 1).bit_length())
            return 257 + index, extra_bits, length - base
    raise ValueError(f"length {length} below minimum match")


def _distance_bucket(distance: int) -> Tuple[int, int, int]:
    for index in range(len(DIST_BASE) - 1, -1, -1):
        base = DIST_BASE[index]
        if distance >= base:
            next_base = DIST_BASE[index + 1] if index + 1 < len(DIST_BASE) else 32769
            span = next_base - base
            extra_bits = max(0, (span - 1).bit_length())
            return index, extra_bits, distance - base
    raise ValueError(f"distance {distance} below 1")


def compress(data: bytes, level: int = 9) -> CompressionResult:
    """Compress ``data``; returns payload + work-unit accounting."""
    lz = lz77.compress(data, level=level)
    litlen_symbols: List[Tuple[int, int, int]] = []  # (symbol, extra_bits, extra)
    dist_symbols: List[Tuple[int, int, int]] = []
    for token in lz.tokens:
        if isinstance(token, lz77.Literal):
            litlen_symbols.append((token.byte, 0, 0))
        else:
            symbol, bits, extra = _length_bucket(token.length)
            litlen_symbols.append((symbol, bits, extra))
            dist_symbols.append(_distance_bucket(token.distance))
    litlen_symbols.append((END_OF_BLOCK, 0, 0))

    litlen_freq: dict = {}
    for symbol, _, _ in litlen_symbols:
        litlen_freq[symbol] = litlen_freq.get(symbol, 0) + 1
    dist_freq: dict = {}
    for symbol, _, _ in dist_symbols:
        dist_freq[symbol] = dist_freq.get(symbol, 0) + 1

    litlen_lengths = huffman.code_lengths(litlen_freq)
    dist_lengths = huffman.code_lengths(dist_freq)
    litlen_codes = huffman.canonical_codes(litlen_lengths)
    dist_codes = huffman.canonical_codes(dist_lengths)

    writer = huffman.BitWriter()
    dist_iter = iter(dist_symbols)
    emitted = 0
    for symbol, extra_bits, extra in litlen_symbols:
        code, length = litlen_codes[symbol]
        writer.write(code, length)
        emitted += 1
        if extra_bits:
            writer.write(extra, extra_bits)
        if symbol >= 257:
            dist_symbol, dist_extra_bits, dist_extra = next(dist_iter)
            dcode, dlength = dist_codes[dist_symbol]
            writer.write(dcode, dlength)
            emitted += 1
            if dist_extra_bits:
                writer.write(dist_extra, dist_extra_bits)

    header = (
        MAGIC
        + struct.pack("<IB", len(data), level)
        + huffman.serialize_lengths(litlen_lengths, LITLEN_ALPHABET)
        + huffman.serialize_lengths(dist_lengths, DIST_ALPHABET)
    )
    payload = header + writer.getvalue()
    work = lz.work_units().add("huffman_symbol", float(emitted))
    return CompressionResult(payload=payload, original_size=len(data), work=work)


def decompress(payload: bytes) -> Tuple[bytes, WorkUnits]:
    """Invert :func:`compress`; returns (data, work units of inflation)."""
    if payload[:4] != MAGIC:
        raise ValueError("not a repro-deflate payload")
    original_size, _level = struct.unpack("<IB", payload[4:9])
    offset = 9
    litlen_lengths = huffman.deserialize_lengths(payload[offset:offset + LITLEN_ALPHABET])
    offset += LITLEN_ALPHABET
    dist_lengths = huffman.deserialize_lengths(payload[offset:offset + DIST_ALPHABET])
    offset += DIST_ALPHABET
    reader = huffman.BitReader(payload[offset:])
    litlen_decoder = huffman.Decoder(litlen_lengths)
    dist_decoder = huffman.Decoder(dist_lengths) if dist_lengths else None

    out = bytearray()
    symbols = 0
    while True:
        symbol = litlen_decoder.decode(reader)
        symbols += 1
        if symbol == END_OF_BLOCK:
            break
        if symbol < 256:
            out.append(symbol)
            continue
        index = symbol - 257
        base = LENGTH_BASE[index]
        next_base = LENGTH_BASE[index + 1] if index + 1 < len(LENGTH_BASE) else 259
        extra_bits = max(0, (next_base - base - 1).bit_length())
        length = base + (reader.read_bits(extra_bits) if extra_bits else 0)
        if dist_decoder is None:
            raise ValueError("match token but no distance table")
        dist_symbol = dist_decoder.decode(reader)
        symbols += 1
        dbase = DIST_BASE[dist_symbol]
        dnext = DIST_BASE[dist_symbol + 1] if dist_symbol + 1 < len(DIST_BASE) else 32769
        dextra_bits = max(0, (dnext - dbase - 1).bit_length())
        distance = dbase + (reader.read_bits(dextra_bits) if dextra_bits else 0)
        start = len(out) - distance
        if start < 0:
            raise ValueError("distance before stream start")
        for i in range(length):
            out.append(out[start + i])
    if len(out) != original_size:
        raise ValueError(f"size mismatch: header {original_size}, got {len(out)}")
    work = WorkUnits({"huffman_symbol": float(symbols), "mem_stream_byte": float(len(out))})
    return bytes(out), work
