"""IPsec ESP tunnel processing (the strongSwan use case, §2.2 A2).

The paper motivates the crypto engine with strongSwan, the IPsec VPN
stack.  This module implements the datapath such a gateway runs per
packet: ESP encapsulation (SPI + sequence number, AES-CTR payload
encryption, truncated SHA-1 integrity tag), decapsulation with tag
verification, and the RFC 4303 anti-replay window.

Work units per packet: AES blocks + SHA-1 blocks from the real
primitives, plus header handling — which makes this the "crypto applied
at packet rate" workload the PKA engine exists for.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.work import WorkUnits
from .crypto import aes, sha1

ESP_HEADER = struct.Struct(">II")  # SPI, sequence number
ICV_BYTES = 12  # truncated HMAC-style tag, as ESP does
REPLAY_WINDOW = 64


class IpsecError(ValueError):
    pass


@dataclass
class SecurityAssociation:
    """One direction of a tunnel: keys, SPI, counters, replay state."""

    spi: int
    encryption_key: bytes
    integrity_key: bytes
    sequence: int = 0
    # receive-side anti-replay (RFC 4303 §3.4.3)
    highest_seen: int = 0
    window: int = 0
    replays_rejected: int = 0

    def __post_init__(self):
        if len(self.encryption_key) != 16:
            raise IpsecError("AES-128 key must be 16 bytes")
        if not self.integrity_key:
            raise IpsecError("integrity key required")

    # -- replay window -----------------------------------------------------

    def check_and_update_replay(self, sequence: int) -> bool:
        """True if the sequence number is fresh; updates the window."""
        if sequence == 0:
            return False
        if sequence > self.highest_seen:
            shift = sequence - self.highest_seen
            self.window = ((self.window << shift) | 1) & ((1 << REPLAY_WINDOW) - 1)
            self.highest_seen = sequence
            return True
        offset = self.highest_seen - sequence
        if offset >= REPLAY_WINDOW:
            self.replays_rejected += 1
            return False
        bit = 1 << offset
        if self.window & bit:
            self.replays_rejected += 1
            return False
        self.window |= bit
        return True


def _tag(sa: SecurityAssociation, data: bytes) -> Tuple[bytes, WorkUnits]:
    digest, work = sha1.digest(sa.integrity_key + data)
    return digest[:ICV_BYTES], work


def encapsulate(sa: SecurityAssociation, payload: bytes) -> Tuple[bytes, WorkUnits]:
    """Build an ESP packet around ``payload``; returns (packet, work)."""
    sa.sequence += 1
    header = ESP_HEADER.pack(sa.spi, sa.sequence)
    ciphertext, encrypt_work = aes.encrypt_ctr(
        payload, sa.encryption_key, nonce=sa.sequence
    )
    body = header + ciphertext
    tag, tag_work = _tag(sa, body)
    work = WorkUnits({"instr": 120.0, "pkt_touch_byte": float(len(payload))})
    work.merge(encrypt_work).merge(tag_work)
    return body + tag, work


def decapsulate(
    sa: SecurityAssociation, packet: bytes
) -> Tuple[Optional[bytes], WorkUnits]:
    """Verify + decrypt; returns (payload, work); payload is None when the
    packet is rejected (bad tag, replay, malformed)."""
    work = WorkUnits({"instr": 120.0})
    if len(packet) < ESP_HEADER.size + ICV_BYTES:
        return None, work
    body, tag = packet[:-ICV_BYTES], packet[-ICV_BYTES:]
    expected, tag_work = _tag(sa, body)
    work.merge(tag_work)
    if tag != expected:
        return None, work
    spi, sequence = ESP_HEADER.unpack(body[: ESP_HEADER.size])
    if spi != sa.spi:
        return None, work
    if not sa.check_and_update_replay(sequence):
        return None, work
    ciphertext = body[ESP_HEADER.size:]
    plaintext, decrypt_work = aes.encrypt_ctr(ciphertext, sa.encryption_key,
                                              nonce=sequence)
    work.merge(decrypt_work)
    work.add("pkt_touch_byte", float(len(plaintext)))
    return plaintext, work


@dataclass
class Tunnel:
    """A bidirectional tunnel: an outbound SA and an inbound SA."""

    outbound: SecurityAssociation
    inbound: SecurityAssociation
    packets_protected: int = 0
    packets_rejected: int = 0

    @classmethod
    def create(cls, spi: int, encryption_key: bytes, integrity_key: bytes) -> "Tunnel":
        return cls(
            outbound=SecurityAssociation(spi, encryption_key, integrity_key),
            inbound=SecurityAssociation(spi, encryption_key, integrity_key),
        )

    def protect(self, payload: bytes) -> Tuple[bytes, WorkUnits]:
        packet, work = encapsulate(self.outbound, payload)
        self.packets_protected += 1
        return packet, work

    def unprotect(self, packet: bytes) -> Tuple[Optional[bytes], WorkUnits]:
        payload, work = decapsulate(self.inbound, packet)
        if payload is None:
            self.packets_rejected += 1
        return payload, work
