"""DSA (FIPS 186-4) sign/verify, pure Python reference.

One of the PKA algorithms the BlueField-2 crypto engine advertises
(§2.2 A2).  Work accounting follows the same limb-multiply convention as
RSA: signing is one modular exponentiation in the subgroup (g^k mod p)
plus cheap field arithmetic mod q; verification performs two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ...core.work import WorkUnits
from .rsa import (
    _extended_gcd,
    _is_probable_prime,
    generate_prime,
    modexp_work,
    random_int,
)


def _modinv(a: int, m: int) -> int:
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError("inverse does not exist")
    return x % m


@dataclass(frozen=True)
class DsaParameters:
    p: int  # prime modulus
    q: int  # prime subgroup order, q | p-1
    g: int  # generator of the order-q subgroup


@dataclass(frozen=True)
class DsaKey:
    parameters: DsaParameters
    x: int  # private
    y: int  # public = g^x mod p


def generate_parameters(
    p_bits: int, q_bits: int, rng: np.random.Generator
) -> DsaParameters:
    """(p, q, g) with q | p-1 — the FIPS construction, scaled-down sizes
    allowed for tests."""
    if q_bits >= p_bits:
        raise ValueError("q must be smaller than p")
    while True:
        q = generate_prime(q_bits, rng)
        # search for p = q * m + 1 prime
        for _ in range(4096):
            m = random_int(p_bits - q_bits, rng) & ~1
            p = q * m + 1
            if p.bit_length() == p_bits and _is_probable_prime(p, rng):
                h = 2
                g = pow(h, (p - 1) // q, p)
                if g > 1:
                    return DsaParameters(p=p, q=q, g=g)


def generate_key(parameters: DsaParameters, rng: np.random.Generator) -> DsaKey:
    x = int(rng.integers(2, min(parameters.q - 1, 2**63 - 1)))
    y = pow(parameters.g, x, parameters.p)
    return DsaKey(parameters=parameters, x=x, y=y)


def sign(
    digest: int, key: DsaKey, rng: np.random.Generator
) -> Tuple[Tuple[int, int], WorkUnits]:
    """(r, s) signature over ``digest`` (already reduced mod q by caller
    or here)."""
    params = key.parameters
    work = WorkUnits()
    while True:
        k = int(rng.integers(2, min(params.q - 1, 2**63 - 1)))
        work.merge(modexp_work(k, params.p.bit_length()))
        r = pow(params.g, k, params.p) % params.q
        if r == 0:
            continue
        k_inv = _modinv(k, params.q)
        s = (k_inv * (digest + key.x * r)) % params.q
        if s == 0:
            continue
        work.add("rsa_limb_mul", 4.0 * ((params.q.bit_length() + 63) // 64) ** 2)
        return (r, s), work


def verify(
    digest: int, signature: Tuple[int, int], key: DsaKey
) -> Tuple[bool, WorkUnits]:
    params = key.parameters
    r, s = signature
    if not (0 < r < params.q and 0 < s < params.q):
        return False, WorkUnits()
    w = _modinv(s, params.q)
    u1 = (digest * w) % params.q
    u2 = (r * w) % params.q
    work = modexp_work(u1, params.p.bit_length())
    work.merge(modexp_work(u2, params.p.bit_length()))
    v = (pow(params.g, u1, params.p) * pow(key.y, u2, params.p)) % params.p % params.q
    return v == r, work
