"""SHA-1 (FIPS 180-4), pure Python reference with work accounting.

One ``sha1_block`` work unit per 64-byte compression round; verified
against known-answer vectors in the test suite.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ...core.work import WorkUnits

BLOCK_BYTES = 64


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & 0xFFFFFFFF


def digest(message: bytes) -> Tuple[bytes, WorkUnits]:
    """20-byte SHA-1 digest plus per-block work units."""
    h0, h1, h2, h3, h4 = (
        0x67452301,
        0xEFCDAB89,
        0x98BADCFE,
        0x10325476,
        0xC3D2E1F0,
    )
    bit_length = len(message) * 8
    padded = message + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", bit_length)

    blocks = 0
    for offset in range(0, len(padded), BLOCK_BYTES):
        blocks += 1
        w = list(struct.unpack(">16I", padded[offset : offset + BLOCK_BYTES]))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = h0, h1, h2, h3, h4
        for t in range(80):
            if t < 20:
                f = (b & c) | ((~b) & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & 0xFFFFFFFF
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        h0 = (h0 + a) & 0xFFFFFFFF
        h1 = (h1 + b) & 0xFFFFFFFF
        h2 = (h2 + c) & 0xFFFFFFFF
        h3 = (h3 + d) & 0xFFFFFFFF
        h4 = (h4 + e) & 0xFFFFFFFF

    out = struct.pack(">5I", h0, h1, h2, h3, h4)
    return out, WorkUnits({"sha1_block": float(blocks)})


def hexdigest(message: bytes) -> str:
    raw, _ = digest(message)
    return raw.hex()
