"""Cryptography functions (the PKA algorithm families, §2.2 A2):
AES-128, SHA-1, RSA, DSA, and elliptic-curve (ECDSA over P-256)."""

from . import aes, dsa, ecc, rsa, sha1

__all__ = ["aes", "dsa", "ecc", "rsa", "sha1"]
