"""RSA key generation, sign/verify, encrypt/decrypt (textbook + CRT).

Implements Miller-Rabin prime generation and CRT-accelerated private-key
operations.  Work accounting counts 64-bit limb multiplies: a k-limb
modular multiply costs ~k^2 limb multiplies, and a w-bit modular
exponentiation performs ~w squarings plus ~w/2 multiplies (square-and-
multiply), which is what both OpenSSL's software path and the BlueField-2
PKA engine fundamentally execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ...core.work import WorkUnits

LIMB_BITS = 64

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
]


def modexp_work(exponent: int, modulus_bits: int) -> WorkUnits:
    """Work units of one modular exponentiation."""
    limbs = (modulus_bits + LIMB_BITS - 1) // LIMB_BITS
    squarings = max(exponent.bit_length() - 1, 0)
    multiplies = max(bin(exponent).count("1") - 1, 0)
    limb_muls = (squarings + multiplies) * limbs * limbs
    return WorkUnits({"rsa_limb_mul": float(limb_muls)})


def random_int(bits: int, rng: np.random.Generator) -> int:
    """A uniform random integer with exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise ValueError("need at least 2 bits")
    words = rng.integers(0, 2**32, size=(bits + 31) // 32, dtype=np.uint64)
    value = 0
    for word in words:
        value = (value << 32) | int(word)
    value &= (1 << bits) - 1
    value |= 1 << (bits - 1)
    return value


def _is_probable_prime(n: int, rng: np.random.Generator, rounds: int = 24) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = int(rng.integers(2, min(n - 2, 2**63 - 1)))
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        # assemble a random odd candidate with the top bit set
        words = rng.integers(0, 2**32, size=(bits + 31) // 32, dtype=np.uint64)
        candidate = 0
        for word in words:
            candidate = (candidate << 32) | int(word)
        candidate &= (1 << bits) - 1
        candidate |= (1 << (bits - 1)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _modinv(a: int, m: int) -> int:
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError("inverse does not exist")
    return x % m


def _extended_gcd(a: int, b: int) -> Tuple[int, int]:
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


@dataclass(frozen=True)
class RsaKey:
    n: int
    e: int
    d: int
    p: int
    q: int
    d_p: int
    d_q: int
    q_inv: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()


def generate_key(bits: int, rng: np.random.Generator, e: int = 65537) -> RsaKey:
    """Generate an RSA key pair of roughly ``bits`` modulus size."""
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        d = _modinv(e, phi)
        return RsaKey(
            n=n, e=e, d=d, p=p, q=q,
            d_p=d % (p - 1), d_q=d % (q - 1), q_inv=_modinv(q, p),
        )


def encrypt(message: int, key: RsaKey) -> Tuple[int, WorkUnits]:
    """Public-key operation m^e mod n."""
    if not 0 <= message < key.n:
        raise ValueError("message out of range")
    return pow(message, key.e, key.n), modexp_work(key.e, key.bits)


def decrypt(ciphertext: int, key: RsaKey) -> Tuple[int, WorkUnits]:
    """Private-key operation via CRT (two half-size exponentiations)."""
    if not 0 <= ciphertext < key.n:
        raise ValueError("ciphertext out of range")
    m_p = pow(ciphertext % key.p, key.d_p, key.p)
    m_q = pow(ciphertext % key.q, key.d_q, key.q)
    h = (key.q_inv * (m_p - m_q)) % key.p
    message = m_q + h * key.q
    work = modexp_work(key.d_p, key.p.bit_length())
    work.merge(modexp_work(key.d_q, key.q.bit_length()))
    return message, work


def sign(message_digest: int, key: RsaKey) -> Tuple[int, WorkUnits]:
    """RSA signature = private-key operation on the digest."""
    return decrypt(message_digest, key)


def verify(signature: int, message_digest: int, key: RsaKey) -> Tuple[bool, WorkUnits]:
    recovered, work = encrypt(signature, key)
    return recovered == message_digest, work
