"""Elliptic-curve cryptography: curve arithmetic + ECDSA (FIPS 186-4).

The remaining advertised PKA family (§2.2 A2).  Implements short
Weierstrass curves over prime fields with affine point arithmetic, the
NIST P-256 parameters, and ECDSA sign/verify.  Work accounting counts
field multiplies: a scalar multiply with a w-bit scalar performs ~w
doublings + ~w/2 additions, each a handful of field multiplies — priced
through the ``rsa_limb_mul`` kind (the PKA engine runs both through the
same multiplier array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ...core.work import WorkUnits
from .rsa import _extended_gcd

Point = Optional[Tuple[int, int]]  # None = point at infinity

# Field multiplies per affine point operation (2 mul + 1 inversion ~ 10).
_MULS_PER_POINT_OP = 12.0


def _modinv(a: int, m: int) -> int:
    g, x = _extended_gcd(a % m, m)
    if g != 1:
        raise ValueError("inverse does not exist")
    return x % m


@dataclass(frozen=True)
class Curve:
    """y^2 = x^3 + ax + b over GF(p), base point G of prime order n."""

    name: str
    p: int
    a: int
    b: int
    g: Tuple[int, int]
    n: int

    def is_on_curve(self, point: Point) -> bool:
        if point is None:
            return True
        x, y = point
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    # -- group law -----------------------------------------------------------

    def add(self, p1: Point, p2: Point) -> Point:
        if p1 is None:
            return p2
        if p2 is None:
            return p1
        x1, y1 = p1
        x2, y2 = p2
        if x1 == x2 and (y1 + y2) % self.p == 0:
            return None
        if p1 == p2:
            if y1 == 0:
                return None
            slope = (3 * x1 * x1 + self.a) * _modinv(2 * y1, self.p) % self.p
        else:
            slope = (y2 - y1) * _modinv(x2 - x1, self.p) % self.p
        x3 = (slope * slope - x1 - x2) % self.p
        y3 = (slope * (x1 - x3) - y1) % self.p
        return (x3, y3)

    def scalar_multiply(self, k: int, point: Point) -> Tuple[Point, WorkUnits]:
        """Double-and-add k*P with work accounting."""
        if k < 0:
            raise ValueError("negative scalar")
        k %= self.n
        limbs = (self.p.bit_length() + 63) // 64
        result: Point = None
        addend = point
        operations = 0.0
        while k:
            if k & 1:
                result = self.add(result, addend)
                operations += 1
            addend = self.add(addend, addend)
            operations += 1
            k >>= 1
        work = WorkUnits(
            {"rsa_limb_mul": operations * _MULS_PER_POINT_OP * limbs * limbs}
        )
        return result, work


# NIST P-256 (FIPS 186-4 D.1.2.3)
P256 = Curve(
    name="P-256",
    p=0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    a=-3 % 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF,
    b=0x5AC635D8AA3A93E7B3EBBD55769886BC651D06B0CC53B0F63BCE3C3E27D2604B,
    g=(
        0x6B17D1F2E12C4247F8BCE6E563A440F277037D812DEB33A0F4A13945D898C296,
        0x4FE342E2FE1A7F9B8EE7EB4A7C0F9E162BCE33576B315ECECBB6406837BF51F5,
    ),
    n=0xFFFFFFFF00000000FFFFFFFFFFFFFFFFBCE6FAADA7179E84F3B9CAC2FC632551,
)

# A tiny curve for fast property tests: y^2 = x^3 + 2x + 2 over GF(17),
# generator (5, 1) of order 19.
TINY_CURVE = Curve(name="tiny-17", p=17, a=2, b=2, g=(5, 1), n=19)


@dataclass(frozen=True)
class EcdsaKey:
    curve: Curve
    d: int  # private scalar
    q: Tuple[int, int]  # public point d*G


def generate_key(curve: Curve, rng: np.random.Generator) -> EcdsaKey:
    d = int(rng.integers(2, min(curve.n - 1, 2**63 - 1)))
    q, _ = curve.scalar_multiply(d, curve.g)
    assert q is not None
    return EcdsaKey(curve=curve, d=d, q=q)


def sign(
    digest: int, key: EcdsaKey, rng: np.random.Generator
) -> Tuple[Tuple[int, int], WorkUnits]:
    curve = key.curve
    z = digest % curve.n
    total = WorkUnits()
    while True:
        k = int(rng.integers(2, min(curve.n - 1, 2**63 - 1)))
        point, work = curve.scalar_multiply(k, curve.g)
        total.merge(work)
        if point is None:
            continue
        r = point[0] % curve.n
        if r == 0:
            continue
        s = (_modinv(k, curve.n) * (z + r * key.d)) % curve.n
        if s == 0:
            continue
        return (r, s), total


def verify(
    digest: int, signature: Tuple[int, int], key: EcdsaKey
) -> Tuple[bool, WorkUnits]:
    curve = key.curve
    r, s = signature
    if not (0 < r < curve.n and 0 < s < curve.n):
        return False, WorkUnits()
    z = digest % curve.n
    w = _modinv(s, curve.n)
    u1 = (z * w) % curve.n
    u2 = (r * w) % curve.n
    p1, work1 = curve.scalar_multiply(u1, curve.g)
    p2, work2 = curve.scalar_multiply(u2, key.q)
    total = WorkUnits().merge(work1).merge(work2)
    point = curve.add(p1, p2)
    if point is None:
        return False, total
    return point[0] % curve.n == r, total
