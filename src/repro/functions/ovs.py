"""Open vSwitch-style virtual switch (the OvS benchmark, §3.4).

The paper offloads the OvS *data plane* to the embedded switch in
ConnectX-6/BlueField-2 and leaves only the control plane on the CPU.  We
reproduce that split:

* :class:`FlowTable` — the control-plane classifier: an exact-match
  megaflow cache in front of prioritized wildcard rules; cache misses
  trigger an upcall (rule lookup + megaflow install), which is the only
  CPU-visible per-packet event once the data plane is offloaded;
* :class:`ESwitchDatapath` — the bump-in-the-wire model: packets whose
  megaflow is installed in hardware forward at line rate with no CPU
  work at all.

Work units: ``flow_lookup`` per cache hit handled in software,
``flow_upcall`` per miss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.work import WorkUnits

FlowKey = Tuple[int, int, int, int, int]  # proto, src_ip, dst_ip, src_port, dst_port


@dataclass(frozen=True)
class WildcardRule:
    priority: int
    # None fields are wildcards.
    proto: Optional[int] = None
    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    action: str = "forward"
    out_port: int = 0

    def matches(self, key: FlowKey) -> bool:
        proto, src_ip, dst_ip, src_port, dst_port = key
        checks = (
            (self.proto, proto),
            (self.src_ip, src_ip),
            (self.dst_ip, dst_ip),
            (self.src_port, src_port),
            (self.dst_port, dst_port),
        )
        return all(want is None or want == got for want, got in checks)


@dataclass
class MegaflowEntry:
    action: str
    out_port: int
    hits: int = 0
    in_hardware: bool = False


@dataclass
class SwitchStats:
    packets: int = 0
    cache_hits: int = 0
    upcalls: int = 0
    drops: int = 0
    hardware_forwards: int = 0


class FlowTable:
    """Control-plane classifier with a megaflow cache."""

    def __init__(self, cache_capacity: int = 200_000):
        self.rules: List[WildcardRule] = []
        self.cache: Dict[FlowKey, MegaflowEntry] = {}
        self.cache_capacity = cache_capacity
        self.stats = SwitchStats()

    def add_rule(self, rule: WildcardRule) -> None:
        self.rules.append(rule)
        self.rules.sort(key=lambda r: -r.priority)

    def classify(self, key: FlowKey) -> Tuple[Optional[MegaflowEntry], WorkUnits]:
        """Software slow/fast path for one packet."""
        self.stats.packets += 1
        entry = self.cache.get(key)
        if entry is not None:
            self.stats.cache_hits += 1
            entry.hits += 1
            return entry, WorkUnits({"flow_lookup": 1.0})
        # Miss: upcall walks the wildcard rules and installs a megaflow.
        self.stats.upcalls += 1
        work = WorkUnits({"flow_upcall": 1.0})
        for rule in self.rules:
            if rule.matches(key):
                entry = MegaflowEntry(rule.action, rule.out_port)
                break
        else:
            entry = MegaflowEntry("drop", -1)
        if len(self.cache) >= self.cache_capacity:
            self.cache.pop(next(iter(self.cache)))
        self.cache[key] = entry
        if entry.action == "drop":
            self.stats.drops += 1
            return None, work
        return entry, work


class ESwitchDatapath:
    """Hardware-offloaded data plane: megaflows pushed into the eSwitch
    forward without CPU involvement (§2.2 'bump-in-the-wire')."""

    def __init__(self, flow_table: FlowTable, eswitch_gbps: float = 100.0):
        self.flow_table = flow_table
        self.eswitch_gbps = eswitch_gbps
        self.offloaded: Dict[FlowKey, MegaflowEntry] = {}

    def process(self, key: FlowKey) -> Tuple[str, WorkUnits]:
        """Returns (path_taken, cpu_work) for one packet."""
        entry = self.offloaded.get(key)
        if entry is not None:
            entry.hits += 1
            self.flow_table.stats.packets += 1
            self.flow_table.stats.hardware_forwards += 1
            return "hardware", WorkUnits()
        entry, work = self.flow_table.classify(key)
        if entry is not None:
            entry.in_hardware = True
            self.offloaded[key] = entry
        return "software", work

    def hardware_hit_fraction(self) -> float:
        stats = self.flow_table.stats
        if stats.packets == 0:
            return 0.0
        return stats.hardware_forwards / stats.packets
