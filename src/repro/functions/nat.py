"""Network address translation (RFC 1631 style; the NAT benchmark, §3.4).

A UDP-fronted translator: ingress packets have their destination rewritten
toward the private network; egress packets have their source rewritten to
the public address.  The paper runs tables of 10 K and 1 M entries — the
large table spills out of cache, which the work model expresses by
switching to the ``nat_lookup_cold`` unit above a size threshold (the
host's LLC holds ~400 K entries; the SNIC's, far fewer — both go to DRAM
at 1 M, but the SNIC pays more per miss, see calibration).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.work import WorkUnits

FiveTuple = Tuple[int, int, int, int, int]  # proto, src_ip, src_port, dst_ip, dst_port

# Above this entry count, lookups are priced as cache-cold.
CACHE_RESIDENT_ENTRIES = 100_000


@dataclass(frozen=True)
class Mapping:
    private_ip: int
    private_port: int


class NatTable:
    """Static translation table keyed by (public_ip, public_port)."""

    def __init__(self):
        self._entries: Dict[Tuple[int, int], Mapping] = {}
        self.translated = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, public_ip: int, public_port: int,
                private_ip: int, private_port: int) -> None:
        self._entries[(public_ip, public_port)] = Mapping(private_ip, private_port)

    def _lookup_kind(self) -> str:
        if len(self._entries) > CACHE_RESIDENT_ENTRIES:
            return "nat_lookup_cold"
        return "nat_lookup"

    def translate_ingress(
        self, five_tuple: FiveTuple
    ) -> Tuple[Optional[FiveTuple], WorkUnits]:
        """Rewrite destination (public -> private); None = no mapping."""
        proto, src_ip, src_port, dst_ip, dst_port = five_tuple
        work = WorkUnits({self._lookup_kind(): 1.0})
        mapping = self._entries.get((dst_ip, dst_port))
        if mapping is None:
            self.dropped += 1
            return None, work
        work.add("nat_rewrite", 1.0)
        self.translated += 1
        return (proto, src_ip, src_port, mapping.private_ip, mapping.private_port), work

    def translate_egress(
        self, five_tuple: FiveTuple, public_ip: int, public_port: int
    ) -> Tuple[FiveTuple, WorkUnits]:
        """Rewrite source (private -> public)."""
        proto, _src_ip, _src_port, dst_ip, dst_port = five_tuple
        work = WorkUnits({self._lookup_kind(): 1.0, "nat_rewrite": 1.0})
        self.translated += 1
        return (proto, public_ip, public_port, dst_ip, dst_port), work


def build_random_table(entries: int, rng: np.random.Generator) -> NatTable:
    """A NAT table with ``entries`` random mappings (paper: 10 K and 1 M)."""
    table = NatTable()
    public_ips = rng.integers(0x0A000000, 0x0AFFFFFF, size=entries, dtype=np.int64)
    ports = rng.integers(1024, 65535, size=entries, dtype=np.int64)
    private_ips = rng.integers(0xC0A80000, 0xC0A8FFFF, size=entries, dtype=np.int64)
    for index in range(entries):
        table.install(
            int(public_ips[index]),
            int(ports[index]),
            int(private_ips[index]),
            int(ports[index]),
        )
    return table
