"""Okapi BM25 ranking over an inverted index (the BM25 benchmark, §3.4).

A real search-engine ranking path: documents are tokenized into an
inverted index with per-term postings; a query scores every document that
contains a query term with the standard BM25 formula (k1/b parameters per
Robertson & Zaragoza).  Work units: one ``bm25_query_term`` per query term
(seek + idf) and one ``bm25_posting`` per posting traversed — so the 100-
vs 1 K-document configurations of the paper differ in postings walked per
query, not in code path.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.work import WorkUnits

_TOKEN = re.compile(r"[a-z0-9]+")

DEFAULT_K1 = 1.2
DEFAULT_B = 0.75


def tokenize(text: str) -> List[str]:
    return _TOKEN.findall(text.lower())


@dataclass
class Posting:
    doc_id: int
    term_frequency: int


@dataclass
class InvertedIndex:
    postings: Dict[str, List[Posting]] = field(default_factory=dict)
    doc_lengths: Dict[int, int] = field(default_factory=dict)

    @property
    def doc_count(self) -> int:
        return len(self.doc_lengths)

    @property
    def average_doc_length(self) -> float:
        if not self.doc_lengths:
            return 0.0
        return sum(self.doc_lengths.values()) / len(self.doc_lengths)

    def add_document(self, doc_id: int, text: str) -> None:
        if doc_id in self.doc_lengths:
            raise ValueError(f"duplicate document id {doc_id}")
        terms = tokenize(text)
        self.doc_lengths[doc_id] = len(terms)
        frequencies: Dict[str, int] = {}
        for term in terms:
            frequencies[term] = frequencies.get(term, 0) + 1
        for term, tf in frequencies.items():
            self.postings.setdefault(term, []).append(Posting(doc_id, tf))


class Bm25Ranker:
    """Scores queries against an index; returns top-k and work units."""

    def __init__(self, index: InvertedIndex, k1: float = DEFAULT_K1, b: float = DEFAULT_B):
        if index.doc_count == 0:
            raise ValueError("index is empty")
        self.index = index
        self.k1 = k1
        self.b = b

    def idf(self, term: str) -> float:
        n = self.index.doc_count
        df = len(self.index.postings.get(term, ()))
        return math.log((n - df + 0.5) / (df + 0.5) + 1.0)

    def score(self, query: str, top_k: int = 10) -> Tuple[List[Tuple[int, float]], WorkUnits]:
        terms = tokenize(query)
        work = WorkUnits()
        scores: Dict[int, float] = {}
        avg_length = self.index.average_doc_length
        for term in terms:
            work.add("bm25_query_term", 1.0)
            postings = self.index.postings.get(term)
            if not postings:
                continue
            idf = self.idf(term)
            for posting in postings:
                work.add("bm25_posting", 1.0)
                doc_length = self.index.doc_lengths[posting.doc_id]
                tf = posting.term_frequency
                denominator = tf + self.k1 * (
                    1 - self.b + self.b * doc_length / avg_length
                )
                scores[posting.doc_id] = scores.get(posting.doc_id, 0.0) + (
                    idf * tf * (self.k1 + 1) / denominator
                )
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:top_k]
        return ranked, work

    def work_units(self, query: str) -> WorkUnits:
        """The :meth:`score` work tally without ranking.

        Work units are one ``bm25_query_term`` per query term and one
        ``bm25_posting`` per posting traversed — both fully determined
        by postings-list lengths, so the tally (including float-exact
        counts: n additions of 1.0 equal float(n) here) is identical to
        what :meth:`score` returns.  Profile builders use this: they
        only keep the work counts, and pricing a 1 K-document corpus
        does not need the scores re-ranked per sample.
        """
        work = WorkUnits()
        for term in tokenize(query):
            work.add("bm25_query_term", 1.0)
            postings = self.index.postings.get(term)
            if postings:
                work.add("bm25_posting", float(len(postings)))
        return work


def build_index(documents: Sequence[str]) -> InvertedIndex:
    index = InvertedIndex()
    for doc_id, text in enumerate(documents):
        index.add_document(doc_id, text)
    return index
