"""MICA-style partitioned key-value store (Lim et al., NSDI'14; §3.4).

The defining features reproduced here:

* **partitioned design** — keys hash to partitions, each owned by one
  core (no cross-core locking);
* **lossy bucket index** — fixed-size buckets of (tag, offset) slots with
  eviction on overflow, exactly MICA's lossy mode;
* **circular append log** — values live in a per-partition ring; old
  entries are overwritten and their index slots invalidated lazily;
* **request batching** — clients submit GETs in batches (the paper runs
  batch sizes 4 and 32), which amortizes the per-message RDMA cost.

Work units per op: one hash probe for the bucket, one random access for
the log read, value-byte movement.  The per-batch transport cost is added
by the experiment layer (one RDMA message per batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.work import WorkUnits

BUCKET_SLOTS = 8


def _hash64(key: bytes) -> int:
    value = 0xCBF29CE484222325
    for byte in key:
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    # murmur-style finalizer: FNV alone leaves the high bits poorly mixed
    # for short, similar keys, which would collapse tags into collisions.
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


@dataclass
class _Slot:
    tag: int
    offset: int


class _Partition:
    def __init__(self, buckets: int, log_bytes: int):
        self.buckets: List[List[_Slot]] = [[] for _ in range(buckets)]
        self.log = bytearray(log_bytes)
        self.head = 0
        self.wrapped = False

    def _append(self, key: bytes, value: bytes) -> int:
        record = len(key).to_bytes(2, "little") + len(value).to_bytes(4, "little") + key + value
        if len(record) > len(self.log):
            raise ValueError("record larger than partition log")
        if self.head + len(record) > len(self.log):
            self.head = 0
            self.wrapped = True
        offset = self.head
        self.log[offset : offset + len(record)] = record
        self.head += len(record)
        return offset

    def _read(self, offset: int, key: bytes) -> Optional[bytes]:
        key_length = int.from_bytes(self.log[offset : offset + 2], "little")
        value_length = int.from_bytes(self.log[offset + 2 : offset + 6], "little")
        start = offset + 6
        stored_key = bytes(self.log[start : start + key_length])
        if stored_key != key:
            return None  # overwritten by log wrap or tag collision
        start += key_length
        return bytes(self.log[start : start + value_length])


class MicaStore:
    """The store; ``partitions`` should match serving cores."""

    def __init__(self, partitions: int = 8, buckets_per_partition: int = 4096,
                 log_bytes_per_partition: int = 1 << 22):
        if partitions < 1:
            raise ValueError("need at least one partition")
        self.partitions = [
            _Partition(buckets_per_partition, log_bytes_per_partition)
            for _ in range(partitions)
        ]
        self.evictions = 0

    def _locate(self, key: bytes) -> Tuple[_Partition, int, int]:
        h = _hash64(key)
        partition = self.partitions[h % len(self.partitions)]
        bucket_index = (h >> 16) % len(partition.buckets)
        tag = (h >> 48) & 0xFFFF
        return partition, bucket_index, tag

    def put(self, key: bytes, value: bytes) -> WorkUnits:
        partition, bucket_index, tag = self._locate(key)
        offset = partition._append(key, value)
        bucket = partition.buckets[bucket_index]
        for slot in bucket:
            if slot.tag == tag:
                slot.offset = offset
                break
        else:
            if len(bucket) >= BUCKET_SLOTS:
                bucket.pop(0)  # lossy eviction of the oldest slot
                self.evictions += 1
            bucket.append(_Slot(tag, offset))
        return WorkUnits(
            {
                "hash_probe": 1.0,
                "mem_random_access": 1.0,
                "kv_value_byte": float(len(value)),
            }
        )

    def get(self, key: bytes) -> Tuple[Optional[bytes], WorkUnits]:
        partition, bucket_index, tag = self._locate(key)
        work = WorkUnits({"hash_probe": 1.0})
        for slot in partition.buckets[bucket_index]:
            if slot.tag == tag:
                work.add("mem_random_access", 1.0)
                value = partition._read(slot.offset, key)
                if value is not None:
                    work.add("kv_value_byte", float(len(value)))
                    return value, work
        return None, work

    def get_batch(self, keys: List[bytes]) -> Tuple[List[Optional[bytes]], WorkUnits]:
        """Batched GET: one transport message carries ``len(keys)`` ops."""
        total = WorkUnits()
        values: List[Optional[bytes]] = []
        for key in keys:
            value, work = self.get(key)
            values.append(value)
            total.merge(work)
        return values, total
