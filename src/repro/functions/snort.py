"""Snort-style network intrusion detection (the Snort benchmark, §3.4).

A lightweight IDS in the architecture of Snort: rules pair a header
predicate (protocol / port constraints) with a content signature; packets
that satisfy a rule's header are scanned by the shared multi-pattern
engine, and matches produce alerts.  Work per packet: header evaluation
(``instr``), payload touch, and the regex engine's scan accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.work import WorkUnits
from .regex import MultiPatternMatcher
from .regex.rulesets import RuleSet, load_ruleset


@dataclass(frozen=True)
class RuleHeader:
    protocol: str = "udp"  # "udp" | "tcp" | "any"
    dst_port: Optional[int] = None


@dataclass(frozen=True)
class Alert:
    rule_index: int
    pattern_id: int
    offset: int


@dataclass
class IdsStats:
    packets: int = 0
    scanned: int = 0
    alerts: int = 0
    header_rejected: int = 0


@dataclass
class PacketMeta:
    protocol: str
    dst_port: int
    payload: bytes = b""


class IntrusionDetector:
    """Compile a named rule set and inspect packets."""

    def __init__(self, ruleset: RuleSet, header: RuleHeader = RuleHeader()):
        self.ruleset = ruleset
        self.header = header
        self.matcher = MultiPatternMatcher(list(ruleset.patterns))
        self.stats = IdsStats()
        self.alerts: List[Alert] = []

    @classmethod
    def from_named_ruleset(cls, name: str) -> "IntrusionDetector":
        return cls(load_ruleset(name))

    def _header_matches(self, packet: PacketMeta) -> bool:
        if self.header.protocol != "any" and packet.protocol != self.header.protocol:
            return False
        if self.header.dst_port is not None and packet.dst_port != self.header.dst_port:
            return False
        return True

    def inspect(self, packet: PacketMeta) -> Tuple[List[Alert], WorkUnits]:
        """Inspect one packet; returns new alerts and work units."""
        self.stats.packets += 1
        work = WorkUnits({"instr": 40.0})  # header predicate + dispatch
        if not self._header_matches(packet):
            self.stats.header_rejected += 1
            return [], work
        self.stats.scanned += 1
        work.add("pkt_touch_byte", float(len(packet.payload)))
        matches, scan_stats = self.matcher.scan(packet.payload)
        work.merge(scan_stats.work_units())
        new_alerts = [
            Alert(rule_index=0, pattern_id=pattern_id, offset=end)
            for pattern_id, end in matches
        ]
        self.alerts.extend(new_alerts)
        self.stats.alerts += len(new_alerts)
        return new_alerts, work


def inspect_stream(
    detector: IntrusionDetector, packets: Sequence[PacketMeta]
) -> Tuple[int, WorkUnits]:
    """Inspect a packet stream; returns (alert_count, total work)."""
    total = WorkUnits()
    alerts = 0
    for packet in packets:
        new_alerts, work = detector.inspect(packet)
        alerts += len(new_alerts)
        total.merge(work)
    return alerts, total
