"""Redis-like in-memory key-value store (the Redis benchmark, §3.4).

A functional TCP-fronted KVS: RESP-style command encoding, a hash-table
store with optional TTLs, and YCSB-style GET/SET handling.  Work units per
operation: request parse + dispatch (``kv_op``), one hash probe, and
value-byte movement — the stack cost of the TCP round trip is added by
the experiment layer (it dominates on the SNIC CPU, Key Observation 1).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.work import WorkUnits


class ProtocolError(ValueError):
    """Malformed RESP-ish command."""


def encode_command(*parts: bytes) -> bytes:
    """RESP array-of-bulk-strings encoding."""
    out = bytearray(b"*%d\r\n" % len(parts))
    for part in parts:
        out += b"$%d\r\n%s\r\n" % (len(part), part)
    return bytes(out)


def decode_command(payload: bytes) -> List[bytes]:
    """Decode one RESP command; raises ProtocolError when malformed."""
    if not payload.startswith(b"*"):
        raise ProtocolError("expected array header")
    try:
        header_end = payload.index(b"\r\n")
        count = int(payload[1:header_end])
        parts: List[bytes] = []
        cursor = header_end + 2
        for _ in range(count):
            if payload[cursor : cursor + 1] != b"$":
                raise ProtocolError("expected bulk string header")
            length_end = payload.index(b"\r\n", cursor)
            length = int(payload[cursor + 1 : length_end])
            start = length_end + 2
            end = start + length
            if payload[end : end + 2] != b"\r\n":
                raise ProtocolError("missing bulk string terminator")
            parts.append(payload[start:end])
            cursor = end + 2
        return parts
    except (ValueError, IndexError) as exc:
        raise ProtocolError(str(exc)) from exc


@dataclass
class StoreStats:
    gets: int = 0
    sets: int = 0
    deletes: int = 0
    hits: int = 0
    misses: int = 0
    expired: int = 0
    evictions: int = 0


@dataclass
class _Entry:
    value: bytes
    expires_at: Optional[float] = None


class KeyValueStore:
    """The server-side store; time is injected for TTL determinism.

    ``max_memory_bytes`` enables Redis's ``maxmemory`` behaviour with an
    allkeys-lru policy: writes that would exceed the budget evict the
    least-recently-used entries first.
    """

    def __init__(self, max_memory_bytes: Optional[int] = None):
        self._data: "OrderedDict[bytes, _Entry]" = OrderedDict()
        self.stats = StoreStats()
        self.max_memory_bytes = max_memory_bytes
        self._memory_used = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def memory_used(self) -> int:
        return self._memory_used

    def _entry_size(self, key: bytes, value: bytes) -> int:
        return len(key) + len(value) + 64  # object overhead approximation

    def _evict_for(self, needed: int) -> None:
        if self.max_memory_bytes is None:
            return
        while self._memory_used + needed > self.max_memory_bytes and self._data:
            old_key, old_entry = self._data.popitem(last=False)  # LRU end
            self._memory_used -= self._entry_size(old_key, old_entry.value)
            self.stats.evictions += 1

    def set(self, key: bytes, value: bytes, now: float = 0.0,
            ttl: Optional[float] = None) -> WorkUnits:
        self.stats.sets += 1
        expires = now + ttl if ttl is not None else None
        previous = self._data.pop(key, None)
        if previous is not None:
            self._memory_used -= self._entry_size(key, previous.value)
        self._evict_for(self._entry_size(key, value))
        self._data[key] = _Entry(value, expires)
        self._memory_used += self._entry_size(key, value)
        return WorkUnits(
            {"kv_op": 1.0, "hash_probe": 1.0, "kv_value_byte": float(len(value))}
        )

    def get(self, key: bytes, now: float = 0.0) -> Tuple[Optional[bytes], WorkUnits]:
        self.stats.gets += 1
        work = WorkUnits({"kv_op": 1.0, "hash_probe": 1.0})
        entry = self._data.get(key)
        if entry is None:
            self.stats.misses += 1
            return None, work
        if entry.expires_at is not None and now >= entry.expires_at:
            del self._data[key]
            self._memory_used -= self._entry_size(key, entry.value)
            self.stats.expired += 1
            self.stats.misses += 1
            return None, work
        self.stats.hits += 1
        self._data.move_to_end(key)  # LRU touch
        work.add("kv_value_byte", float(len(entry.value)))
        return entry.value, work

    def delete(self, key: bytes) -> Tuple[bool, WorkUnits]:
        self.stats.deletes += 1
        work = WorkUnits({"kv_op": 1.0, "hash_probe": 1.0})
        entry = self._data.pop(key, None)
        if entry is not None:
            self._memory_used -= self._entry_size(key, entry.value)
            return True, work
        return False, work

    def execute(self, command: bytes, now: float = 0.0) -> Tuple[bytes, WorkUnits]:
        """Process one encoded command, return (response, work)."""
        parts = decode_command(command)
        if not parts:
            raise ProtocolError("empty command")
        verb = parts[0].upper()
        if verb == b"GET" and len(parts) == 2:
            value, work = self.get(parts[1], now)
            response = b"$-1\r\n" if value is None else b"$%d\r\n%s\r\n" % (len(value), value)
            return response, work
        if verb == b"SET" and len(parts) in (3, 5):
            ttl = None
            if len(parts) == 5:
                if parts[3].upper() != b"EX":
                    raise ProtocolError("unsupported SET option")
                ttl = float(parts[4])
            work = self.set(parts[1], parts[2], now, ttl)
            return b"+OK\r\n", work
        if verb == b"DEL" and len(parts) == 2:
            removed, work = self.delete(parts[1])
            return b":%d\r\n" % int(removed), work
        if verb == b"INCR" and len(parts) == 2:
            value, work = self.get(parts[1], now)
            try:
                counter = int(value) if value is not None else 0
            except ValueError:
                return b"-ERR value is not an integer\r\n", work
            counter += 1
            work.merge(self.set(parts[1], b"%d" % counter, now))
            return b":%d\r\n" % counter, work
        if verb == b"APPEND" and len(parts) == 3:
            value, work = self.get(parts[1], now)
            combined = (value or b"") + parts[2]
            work.merge(self.set(parts[1], combined, now))
            return b":%d\r\n" % len(combined), work
        if verb == b"MGET" and len(parts) >= 2:
            work = WorkUnits()
            chunks = [b"*%d\r\n" % (len(parts) - 1)]
            for key in parts[1:]:
                value, item_work = self.get(key, now)
                work.merge(item_work)
                chunks.append(
                    b"$-1\r\n" if value is None
                    else b"$%d\r\n%s\r\n" % (len(value), value)
                )
            return b"".join(chunks), work
        if verb == b"EXPIRE" and len(parts) == 3:
            work = WorkUnits({"kv_op": 1.0, "hash_probe": 1.0})
            entry = self._data.get(parts[1])
            if entry is None:
                return b":0\r\n", work
            entry.expires_at = now + float(parts[2])
            return b":1\r\n", work
        if verb == b"TTL" and len(parts) == 2:
            work = WorkUnits({"kv_op": 1.0, "hash_probe": 1.0})
            entry = self._data.get(parts[1])
            if entry is None:
                return b":-2\r\n", work
            if entry.expires_at is None:
                return b":-1\r\n", work
            return b":%d\r\n" % max(0, int(entry.expires_at - now)), work
        raise ProtocolError(f"unsupported command {verb!r}")
