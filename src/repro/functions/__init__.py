"""The 13 network functions evaluated by the paper (Table 3 + §3.3)."""
