"""Remote storage over NVMe-oF with a fio-style I/O engine (§3.4).

The paper's fio benchmark reads/writes a remote RAMDisk through the
NVMe-over-Fabrics offload engine in ConnectX-6/BlueField-2.  We build the
stack for real:

* :class:`RamDisk` — a byte-addressable block device backed by memory;
* :class:`NvmeOfTarget` — command-level NVMe-oF target: admin (identify)
  and I/O (read/write) commands against namespaces;
* :class:`FioEngine` — generates randread/randwrite command streams at a
  queue depth, the way fio's ``iodepth`` works.

CPU work per command is small (the offload engine moves the data), which
is exactly why the SNIC CPU matches the host on fio throughput (Key
Observation 1's counterpoint).  Work units: ``io_request`` per command
plus ``io_block_byte`` per byte for the residual touch.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.work import WorkUnits

DEFAULT_BLOCK_BYTES = 64 * 1024  # the paper's 64 KB block I/O requests


class IoKind(str, Enum):
    READ = "read"
    WRITE = "write"


class StorageError(RuntimeError):
    pass


class RamDisk:
    """An in-memory block device (the paper's 16 GB RAMDisk, scaled)."""

    def __init__(self, capacity_bytes: int, block_bytes: int = 4096):
        if capacity_bytes % block_bytes:
            raise ValueError("capacity must be a multiple of the block size")
        self.block_bytes = block_bytes
        self.block_count = capacity_bytes // block_bytes
        self._data = bytearray(capacity_bytes)

    @property
    def capacity_bytes(self) -> int:
        return len(self._data)

    def read(self, lba: int, blocks: int) -> bytes:
        self._check(lba, blocks)
        start = lba * self.block_bytes
        return bytes(self._data[start : start + blocks * self.block_bytes])

    def write(self, lba: int, payload: bytes) -> None:
        if len(payload) % self.block_bytes:
            raise StorageError("payload not block aligned")
        blocks = len(payload) // self.block_bytes
        self._check(lba, blocks)
        start = lba * self.block_bytes
        self._data[start : start + len(payload)] = payload

    def _check(self, lba: int, blocks: int) -> None:
        if lba < 0 or blocks < 1 or lba + blocks > self.block_count:
            raise StorageError(f"I/O out of range: lba={lba} blocks={blocks}")


@dataclass(frozen=True)
class NvmeCommand:
    opcode: str  # "read" | "write" | "identify"
    namespace_id: int = 1
    lba: int = 0
    blocks: int = 0
    payload: bytes = b""


@dataclass
class NvmeCompletion:
    status: int  # 0 = success
    data: bytes = b""


class NvmeOfTarget:
    """Command-level NVMe-oF target over one or more namespaces."""

    def __init__(self):
        self.namespaces: Dict[int, RamDisk] = {}
        self.commands_processed = 0

    def add_namespace(self, namespace_id: int, disk: RamDisk) -> None:
        if namespace_id in self.namespaces:
            raise StorageError(f"namespace {namespace_id} exists")
        self.namespaces[namespace_id] = disk

    def submit(self, command: NvmeCommand) -> Tuple[NvmeCompletion, WorkUnits]:
        self.commands_processed += 1
        work = WorkUnits({"io_request": 1.0})
        if command.opcode == "identify":
            listing = ",".join(
                f"{nsid}:{disk.block_count}" for nsid, disk in sorted(self.namespaces.items())
            )
            return NvmeCompletion(0, listing.encode()), work
        disk = self.namespaces.get(command.namespace_id)
        if disk is None:
            return NvmeCompletion(status=1), work
        try:
            if command.opcode == "read":
                data = disk.read(command.lba, command.blocks)
                work.add("io_block_byte", float(len(data)))
                return NvmeCompletion(0, data), work
            if command.opcode == "write":
                disk.write(command.lba, command.payload)
                work.add("io_block_byte", float(len(command.payload)))
                return NvmeCompletion(0), work
        except StorageError:
            return NvmeCompletion(status=2), work
        return NvmeCompletion(status=3), work


@dataclass
class FioJobSpec:
    """A fio-style job: pattern, block size, depth, op mix."""

    kind: IoKind = IoKind.READ
    block_bytes: int = DEFAULT_BLOCK_BYTES
    iodepth: int = 4
    operations: int = 1000


class FioEngine:
    """Generates an NVMe command stream against a target namespace."""

    def __init__(self, target: NvmeOfTarget, namespace_id: int,
                 rng: np.random.Generator):
        self.target = target
        self.namespace_id = namespace_id
        self.rng = rng

    def run(self, job: FioJobSpec) -> Tuple[int, WorkUnits]:
        """Execute the whole job synchronously; returns (errors, work)."""
        disk = self.target.namespaces[self.namespace_id]
        blocks_per_op = job.block_bytes // disk.block_bytes
        if blocks_per_op < 1:
            raise StorageError("job block size below device block size")
        max_lba = disk.block_count - blocks_per_op
        errors = 0
        total = WorkUnits()
        pattern = bytes(self.rng.integers(0, 256, size=job.block_bytes, dtype=np.uint8))
        for _ in range(job.operations):
            lba = int(self.rng.integers(0, max_lba + 1))
            lba -= lba % blocks_per_op
            if job.kind is IoKind.READ:
                command = NvmeCommand("read", self.namespace_id, lba, blocks_per_op)
            else:
                command = NvmeCommand(
                    "write", self.namespace_id, lba, blocks_per_op, pattern
                )
            completion, work = self.target.submit(command)
            total.merge(work)
            if completion.status != 0:
                errors += 1
        return errors, total
