"""Hardware specifications (Tables 1 and 2 of the paper) as data.

These are *descriptive* records — physical parameters of the evaluated
testbed.  Performance coefficients (cycles per work unit, stack costs) live
separately in :mod:`repro.calibration` because they are measured/derived
quantities, not datasheet facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, FrozenSet, Optional, Tuple


class IsaFeature(str, Enum):
    """ISA extensions and hardware features that change function costs."""

    AES_NI = "aes-ni"
    AVX512 = "avx512"
    RDRAND = "rdrand"
    SSE42 = "sse4.2"
    NEON = "neon"


@dataclass(frozen=True)
class CacheSpec:
    l1d_kb: int
    l1i_kb: int
    l2_kb: int
    llc_kb: int


@dataclass(frozen=True)
class CpuSpec:
    model: str
    architecture: str  # "x86_64" | "aarch64"
    cores: int
    frequency_hz: float
    features: FrozenSet[IsaFeature]
    cache: CacheSpec
    tdp_watts: float


@dataclass(frozen=True)
class MemorySpec:
    capacity_gb: int
    technology: str
    channels: int
    bandwidth_gbs: float  # peak GB/s


@dataclass(frozen=True)
class PcieSpec:
    generation: int
    lanes: int
    # One-way latency of a posted transaction through the root complex.
    transaction_latency_s: float

    @property
    def bandwidth_gbs(self) -> float:
        """Usable unidirectional bandwidth in GB/s (after encoding)."""
        per_lane = {3: 0.985, 4: 1.969, 5: 3.938}[self.generation]
        return per_lane * self.lanes


@dataclass(frozen=True)
class AcceleratorSpec:
    """A fixed-function engine on the SNIC (REM / crypto / compression)."""

    name: str
    # Peak processed payload bytes per second (None for op-rate engines).
    peak_bytes_per_s: float
    # Per-task fixed overhead (DMA descriptor fetch, engine setup).
    setup_latency_s: float
    # Max buffers per submitted task (DOCA batching).
    max_batch: int
    # Op-rate engines (public-key crypto) express their peak in ops/s.
    peak_ops_per_s: float = 0.0


@dataclass(frozen=True)
class NicSpec:
    model: str
    port_gbps: float
    ports: int
    # eSwitch forwarding capacity (bump-in-the-wire, no CPU involved).
    eswitch_gbps: float
    # Hardware RDMA message rate (million messages/s, small messages).
    rdma_mpps: float


@dataclass(frozen=True)
class SnicSpec:
    """BlueField-2-class SmartNIC: NIC + Arm SoC + accelerators."""

    model: str
    nic: NicSpec
    cpu: CpuSpec
    memory: MemorySpec
    pcie: PcieSpec
    accelerators: Dict[str, AcceleratorSpec] = field(default_factory=dict)
    idle_power_w: float = 0.0
    max_active_power_w: float = 0.0


@dataclass(frozen=True)
class ServerSpec:
    name: str
    cpu: CpuSpec
    memory: MemorySpec
    pcie: PcieSpec
    idle_power_w: float = 0.0
    max_active_power_w: float = 0.0


# ---------------------------------------------------------------------------
# The paper's testbed (Tables 1 and 2)
# ---------------------------------------------------------------------------

BLUEFIELD2_CPU = CpuSpec(
    model="ARMv8 A72",
    architecture="aarch64",
    cores=8,
    frequency_hz=2.0e9,
    features=frozenset({IsaFeature.NEON}),
    cache=CacheSpec(l1d_kb=32, l1i_kb=48, l2_kb=512, llc_kb=6 * 1024),
    tdp_watts=16.0,
)

BLUEFIELD2_NIC = NicSpec(
    model="ConnectX-6 Dx",
    port_gbps=100.0,
    ports=2,
    eswitch_gbps=100.0,
    rdma_mpps=215.0,
)

BLUEFIELD2 = SnicSpec(
    model="NVIDIA BlueField-2 (MBF2M516A-CEEOT)",
    nic=BLUEFIELD2_NIC,
    cpu=BLUEFIELD2_CPU,
    memory=MemorySpec(capacity_gb=16, technology="DDR4-3200", channels=1, bandwidth_gbs=25.6),
    pcie=PcieSpec(generation=4, lanes=16, transaction_latency_s=300e-9),
    accelerators={
        "rem": AcceleratorSpec(
            name="regular-expression-matching",
            peak_bytes_per_s=50.0e9 / 8,  # ~50 Gbps (Key Observation 3)
            setup_latency_s=18e-6,
            max_batch=64,
        ),
        "compression": AcceleratorSpec(
            name="deflate-compression",
            peak_bytes_per_s=50.0e9 / 8,
            setup_latency_s=15e-6,
            max_batch=32,
        ),
        "crypto": AcceleratorSpec(
            name="public-key-acceleration",
            peak_bytes_per_s=4.6e9,  # bulk AES/SHA path
            setup_latency_s=6e-6,
            max_batch=16,
            peak_ops_per_s=22_000.0,  # RSA-2048 sign/s class
        ),
    },
    idle_power_w=29.0,
    max_active_power_w=34.4,  # idle + 5.4 W active ceiling (§4, Fig. 6)
)

HOST_CPU = CpuSpec(
    model="Intel Xeon Gold 6140 (Skylake)",
    architecture="x86_64",
    cores=18,  # package; experiments pin 8 to mirror the SNIC (§3.4)
    frequency_hz=2.1e9,  # userspace governor pin under TDP (§3.1)
    features=frozenset(
        {IsaFeature.AES_NI, IsaFeature.AVX512, IsaFeature.RDRAND, IsaFeature.SSE42}
    ),
    cache=CacheSpec(l1d_kb=32, l1i_kb=32, l2_kb=1024, llc_kb=25344),
    tdp_watts=140.0,
)

SERVER = ServerSpec(
    name="server (Table 2)",
    cpu=HOST_CPU,
    memory=MemorySpec(capacity_gb=128, technology="DDR4-2666", channels=6, bandwidth_gbs=128.0),
    pcie=PcieSpec(generation=3, lanes=16, transaction_latency_s=900e-9),
    idle_power_w=252.0,  # measured with the SNIC installed and idle (§4)
    max_active_power_w=252.0 + 150.6,
)

CLIENT_CPU = CpuSpec(
    model="Intel Xeon E5-2640 v3 (Broadwell)",
    architecture="x86_64",
    cores=8,
    frequency_hz=2.6e9,
    features=frozenset({IsaFeature.AES_NI, IsaFeature.SSE42}),
    cache=CacheSpec(l1d_kb=32, l1i_kb=32, l2_kb=256, llc_kb=20480),
    tdp_watts=90.0,
)

CLIENT = ServerSpec(
    name="client (Table 2)",
    cpu=CLIENT_CPU,
    memory=MemorySpec(capacity_gb=32, technology="DDR4-1866", channels=4, bandwidth_gbs=59.7),
    pcie=PcieSpec(generation=3, lanes=16, transaction_latency_s=900e-9),
    idle_power_w=180.0,
    max_active_power_w=280.0,
)

CONNECTX6_DX = NicSpec(
    model="ConnectX-6 Dx (MCX623106AC-CDAT)",
    port_gbps=100.0,
    ports=2,
    eswitch_gbps=100.0,
    rdma_mpps=215.0,
)

# Number of host cores used in all paper experiments unless noted.
PAPER_HOST_CORES = 8

# Component market prices used by the paper's TCO analysis (§5.2).
PRICES_USD: Dict[str, float] = {
    "server_without_nic": 6287.0,
    "snic_bluefield2": 1817.0,
    "nic_connectx6dx": 1478.0,
}

ELECTRICITY_USD_PER_KWH = 0.162
SERVER_LIFETIME_YEARS = 5


# ---------------------------------------------------------------------------
# Cluster node profiles (descriptive composition only)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodeSpec:
    """One cluster node: a chassis plus its network attachment.

    Purely compositional — which datasheet parts make up the node and what
    they cost.  How the node *behaves* (which platform serves requests,
    which stack carries the fabric transport) is a calibration question
    and lives in :data:`repro.calibration.NODE_PROFILES`.

    ``server`` is ``None`` for headless all-SNIC nodes (the Lovelock
    direction in PAPERS.md): the SmartNIC is the whole node.
    """

    name: str
    server: Optional[ServerSpec]
    snic: Optional[SnicSpec]
    nic: Optional[NicSpec]

    @property
    def nic_gbps(self) -> float:
        """Line rate of the node's fabric attachment."""
        if self.snic is not None:
            return self.snic.nic.port_gbps
        if self.nic is not None:
            return self.nic.port_gbps
        raise ValueError(f"node {self.name!r} has no network attachment")

    @property
    def price_usd(self) -> float:
        """Component capex from the paper's price table (§5.2)."""
        total = 0.0
        if self.server is not None:
            total += PRICES_USD["server_without_nic"]
        if self.snic is not None:
            total += PRICES_USD["snic_bluefield2"]
        if self.nic is not None:
            total += PRICES_USD["nic_connectx6dx"]
        return total


NODE_SPECS: Dict[str, NodeSpec] = {
    # The paper's testbed: a Xeon server with an on-path BlueField-2.
    "host+bf2": NodeSpec(
        name="host + BlueField-2",
        server=SERVER, snic=BLUEFIELD2, nic=None,
    ),
    # The TCO baseline: the same server with a plain ConnectX-6 Dx.
    "host-only": NodeSpec(
        name="host + ConnectX-6 Dx",
        server=SERVER, snic=None, nic=CONNECTX6_DX,
    ),
    # Headless SmartNIC node: no host behind the SNIC at all.
    "all-snic": NodeSpec(
        name="headless BlueField-2",
        server=None, snic=BLUEFIELD2, nic=None,
    ),
}


def operation_mode_paths() -> Dict[str, Tuple[str, ...]]:
    """Packet paths for the two BlueField-2 operation modes (§2.3).

    On-path: everything traverses the SNIC CPU complex first; off-path: the
    eSwitch forwards directly by destination MAC.  The paper (and this
    reproduction) evaluates on-path only — off-path support was
    discontinued and the accelerators need on-path.
    """
    return {
        "on-path": ("wire", "eswitch", "snic_cpu", "pcie", "host_cpu"),
        "off-path": ("wire", "eswitch", "host_cpu"),
    }
