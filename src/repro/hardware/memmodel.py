"""Memory-hierarchy latency model.

Several calibrated work-unit costs (NAT's cold lookups, MICA's cache-cold
value movement, hash probes) encode the gap between the host's deep cache
hierarchy + six DRAM channels and the BlueField-2's small caches + single
channel.  This model derives those costs from the hardware specs so the
calibration can be *checked* rather than trusted: given a working-set
size and an access pattern, it predicts average access latency in cycles
from per-level hit rates.

It is intentionally simple — inclusive caches, working-set-ratio hit
rates, no prefetching — but it reproduces the crossover structure that
matters: both platforms degrade as working sets grow, and the SNIC
degrades earlier and harder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core import trace
from .specs import BLUEFIELD2_CPU, CpuSpec, HOST_CPU, MemorySpec

# Representative load-to-use latencies (cycles).
_LEVEL_LATENCY_CYCLES = {"l1": 4.0, "l2": 14.0, "llc": 42.0}


@dataclass(frozen=True)
class MemoryLevel:
    name: str
    capacity_bytes: int
    latency_cycles: float


@dataclass(frozen=True)
class AccessPattern:
    """How a working set is touched."""

    working_set_bytes: int
    # 0 = perfectly sequential (prefetch-friendly), 1 = fully random.
    randomness: float = 1.0
    # Dependent loads cannot overlap; independent ones pipeline.
    dependent: bool = True

    def __post_init__(self):
        if self.working_set_bytes <= 0:
            raise ValueError("working set must be positive")
        if not 0.0 <= self.randomness <= 1.0:
            raise ValueError("randomness in [0, 1]")


class MemoryHierarchy:
    """Cache levels + DRAM for one platform."""

    def __init__(self, cpu: CpuSpec, memory: MemorySpec,
                 dram_latency_ns: float):
        cache = cpu.cache
        self.cpu = cpu
        self.levels: List[MemoryLevel] = [
            MemoryLevel("l1", cache.l1d_kb * 1024, _LEVEL_LATENCY_CYCLES["l1"]),
            MemoryLevel("l2", cache.l2_kb * 1024, _LEVEL_LATENCY_CYCLES["l2"]),
            MemoryLevel("llc", cache.llc_kb * 1024, _LEVEL_LATENCY_CYCLES["llc"]),
        ]
        self.dram_latency_cycles = dram_latency_ns * 1e-9 * cpu.frequency_hz
        self.memory = memory

    def hit_rates(self, pattern: AccessPattern) -> List[Tuple[str, float]]:
        """Per-level hit probability for the pattern, top-down."""
        rates: List[Tuple[str, float]] = []
        remaining = 1.0
        for level in self.levels:
            if pattern.working_set_bytes <= level.capacity_bytes:
                contained = 1.0
            else:
                contained = level.capacity_bytes / pattern.working_set_bytes
            # Sequential access hides misses behind prefetch: treat a
            # (1-randomness) share of would-be misses as hits.
            effective = contained + (1.0 - contained) * (1.0 - pattern.randomness)
            rates.append((level.name, remaining * effective))
            remaining *= 1.0 - effective
        rates.append(("dram", remaining))
        return rates

    def access_cycles(self, pattern: AccessPattern) -> float:
        """Expected cycles per access under the pattern."""
        total = 0.0
        for name, probability in self.hit_rates(pattern):
            latency = (
                self.dram_latency_cycles
                if name == "dram"
                else next(l.latency_cycles for l in self.levels if l.name == name)
            )
            total += probability * latency
        if not pattern.dependent:
            # Independent accesses overlap; a memory-level-parallelism
            # factor amortizes latency across in-flight misses.
            total /= min(4.0, max(self.memory.channels, 1))
        if trace.TRACING:
            trace.instant("mem.access", trace.PROBE,
                          track=trace.subtrack("memmodel"),
                          cpu=self.cpu.model,
                          working_set=pattern.working_set_bytes,
                          cycles=round(total, 3))
        return total

    def streaming_cycles_per_byte(self) -> float:
        """Cycles per byte of a bandwidth-bound sequential sweep."""
        bytes_per_cycle = self.memory.bandwidth_gbs * 1e9 / self.cpu.frequency_hz
        return 1.0 / bytes_per_cycle * self.cpu.cores  # per-core fair share


def host_hierarchy() -> MemoryHierarchy:
    from .specs import SERVER

    return MemoryHierarchy(HOST_CPU, SERVER.memory, dram_latency_ns=85.0)


def snic_hierarchy() -> MemoryHierarchy:
    return MemoryHierarchy(BLUEFIELD2_CPU, BLUEFIELD2.memory, dram_latency_ns=120.0)


# late import guard
from .specs import BLUEFIELD2  # noqa: E402


def lookup_cost_ratio(working_set_bytes: int) -> float:
    """SNIC/host cycle-cost ratio for one dependent random access into a
    working set — the quantity behind nat_lookup_cold and
    kv_value_byte_cold calibration."""
    pattern = AccessPattern(working_set_bytes=working_set_bytes, randomness=1.0)
    host_cycles = host_hierarchy().access_cycles(pattern)
    snic_cycles = snic_hierarchy().access_cycles(pattern)
    # normalize to seconds (different clocks)
    host_seconds = host_cycles / HOST_CPU.frequency_hz
    snic_seconds = snic_cycles / BLUEFIELD2_CPU.frequency_hz
    return snic_seconds / host_seconds
