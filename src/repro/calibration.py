"""Calibration: the measured anchors that price work on each platform.

A simulator cannot re-derive silicon performance from first principles, so
this module is the single place where *measured* quantities from the paper
(and, where the paper is silent, from public datasheets and common
microbenchmark lore) become model coefficients:

* per-packet / per-byte cycle costs of each networking stack on each CPU
  (Key Observation 1 lives here: the SNIC's Arm cores pay several times
  the host's cycles to run the kernel TCP/UDP stack),
* cycles per *work unit* for every operation kind the function
  implementations count (ISA-extension effects — AES-NI, AVX-512/ISA-L,
  SSE4.2 CRC — appear as per-kind host discounts, per Key Observation 2),
* accelerator engine rates (the ~50 Gbps REM/compression caps of Key
  Observation 3), and
* fixed round-trip latency floors per stack (interrupt coalescing,
  scheduling, wire and switch time) that dominate tail latency at low
  load.

Everything downstream — queueing knees, saturation throughputs, p99
hockey-sticks, energy-efficiency ratios — is computed, not asserted.
EXPERIMENTS.md records which side of each reported number is anchored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np


@dataclass(frozen=True)
class StackCost:
    """CPU cost and latency floor of one networking stack on one platform."""

    per_packet_cycles: float
    per_byte_cycles: float
    # Fixed round-trip components (client, wire, NIC, interrupts) that do
    # not scale with load; modeled lognormal with the given mean and p99.
    base_rtt_mean_s: float
    base_rtt_p99_s: float
    # Backlog bound of the stack's ingress buffering (socket buffers for
    # kernel stacks, descriptor rings / QP depth for DPDK and RDMA), in
    # seconds of unfinished work.  Overload beyond this becomes packet
    # loss rather than unbounded delay — which is why measured p99 at the
    # saturation knee stays within a few hundred microseconds on both
    # platforms (Fig. 4) while throughputs differ by up to 9x.  The
    # effective limit is max(queue_limit_s, QUEUE_LIMIT_SERVICES x mean
    # service) since buffers always hold at least tens of requests.
    queue_limit_s: float = 2e-3
    # Fraction of nominal multi-core capacity the stack can actually use.
    # Kernel stacks on the SNIC's A72 cores serialize in softirq/memory
    # paths well before the cores saturate — this, not per-packet latency,
    # is the main source of the paper's 4-7x UDP throughput gap (§4 KO1).
    # The serialized share is folded into per-request service time.
    parallel_efficiency: float = 1.0


@dataclass(frozen=True)
class PlatformCalibration:
    """Everything needed to turn WorkUnits + packets into seconds."""

    name: str
    frequency_hz: float
    cores: int
    stacks: Mapping[str, StackCost]
    work_cycles: Mapping[str, float]

    def seconds_per_cycle(self) -> float:
        return 1.0 / self.frequency_hz

    def work_seconds(self, units) -> float:
        """Price a WorkUnits tally in seconds on this platform."""
        total_cycles = 0.0
        for kind, count in units.items():
            try:
                total_cycles += self.work_cycles[kind] * count
            except KeyError:
                raise KeyError(
                    f"platform {self.name!r} has no cycle cost for work kind {kind!r}"
                ) from None
        return total_cycles / self.frequency_hz

    def stack_seconds(self, stack: str, packet_bytes: int) -> float:
        """Effective per-packet stack time, including the serialized
        (softirq / memory-path) share expressed by parallel_efficiency."""
        cost = self.stacks[stack]
        cycles = cost.per_packet_cycles + cost.per_byte_cycles * packet_bytes
        return cycles / self.frequency_hz / cost.parallel_efficiency


def lognormal_params(mean: float, p99: float):
    """(mu, sigma) of a lognormal with the given mean and 99th percentile."""
    if p99 <= mean:
        raise ValueError("p99 must exceed the mean")
    # mean = exp(mu + s^2/2); p99 = exp(mu + 2.326*s)
    # => ln(p99) - ln(mean) = 2.326*s - s^2/2 ; solve the quadratic in s.
    gap = np.log(p99) - np.log(mean)
    z = 2.326347874
    disc = z * z - 2.0 * gap
    if disc <= 0:
        sigma = z  # extremely skewed; clamp
    else:
        sigma = z - np.sqrt(disc)
    mu = np.log(mean) - sigma * sigma / 2.0
    return float(mu), float(sigma)


def base_rtt_sampler(cost: StackCost):
    """Sampler of the fixed RTT floor for a stack."""
    mu, sigma = lognormal_params(cost.base_rtt_mean_s, cost.base_rtt_p99_s)

    def sample(rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(mu, sigma, size=n)

    return sample


# ---------------------------------------------------------------------------
# Host: Intel Xeon Gold 6140, pinned at 2.1 GHz, 8 cores used (§3.1, §3.4)
# ---------------------------------------------------------------------------

HOST = PlatformCalibration(
    name="host",
    frequency_hz=2.1e9,
    cores=8,
    stacks={
        # Kernel stacks: syscall + skb + copy + interrupt amortization.
        "udp": StackCost(11_000, 2.5, base_rtt_mean_s=48e-6, base_rtt_p99_s=140e-6,
                         queue_limit_s=450e-6),
        "tcp": StackCost(15_000, 3.0, base_rtt_mean_s=60e-6, base_rtt_p99_s=180e-6,
                         queue_limit_s=500e-6),
        # Poll-mode userspace driver: no syscalls, no interrupts.
        "dpdk": StackCost(100, 0.04, base_rtt_mean_s=2.6e-6, base_rtt_p99_s=4.4e-6,
                          queue_limit_s=40e-6),
        # NIC-offloaded transport; host path crosses PCIe twice per RTT.
        "rdma": StackCost(800, 0.06, base_rtt_mean_s=3.6e-6, base_rtt_p99_s=6.0e-6,
                          queue_limit_s=20e-6),
    },
    work_cycles={
        "instr": 1.0,
        "mem_stream_byte": 0.06,
        "mem_random_access": 20.0,
        "hash_probe": 45.0,
        "kv_op": 1_200.0,
        "kv_value_byte": 0.08,
        "kv_value_byte_cold": 0.10,  # big working sets still fit the LLC
        "log_byte": 0.35,
        "dfa_byte": 1.6,  # Hyperscan-class SIMD scanning
        "dfa_deep_byte": 19.0,  # bytes spent in verification states
        "regex_report": 120.0,
        "lz_byte": 7.4,  # ISA-L-class vectorized DEFLATE level 9
        "lz_match_search": 0.52,
        "huffman_symbol": 0.5,
        "crc_byte": 0.15,  # SSE4.2 CRC32
        "aes_block": 42.0,  # AES-NI incl. OpenSSL per-call overhead
        "sha1_block": 520.0,  # no SHA-NI on Skylake-SP
        "rsa_limb_mul": 2.35,
        "bm25_posting": 36.0,
        "bm25_query_term": 260.0,
        "nat_lookup": 60.0,
        "nat_lookup_cold": 185.0,  # 1 M-entry table spills to DRAM
        "nat_rewrite": 35.0,
        "flow_lookup": 90.0,
        "flow_upcall": 12_000.0,
        "io_request": 28_000.0,  # block layer + initiator + IRQ per I/O
        "io_block_byte": 0.02,
        "pkt_touch_byte": 0.05,
    },
)

# ---------------------------------------------------------------------------
# SNIC CPU: 8x Arm Cortex-A72 @ 2.0 GHz on the BlueField-2 (Table 1)
# ---------------------------------------------------------------------------
#
# The per-kind ratios against the host encode three effects: scalar CPI gap
# (~2x), the missing ISA extensions (AES-NI, AVX-512, SSE4.2), and the much
# weaker memory subsystem (single DDR4-3200 channel vs six DDR4-2666).

SNIC_CPU = PlatformCalibration(
    name="snic-cpu",
    frequency_hz=2.0e9,
    cores=8,
    stacks={
        # Kernel stacks dominate the A72s (Key Observation 1): ~2x the
        # host's per-packet cycles AND a softirq/memory-path parallel
        # efficiency of ~0.30, which together reproduce the paper's UDP
        # microbenchmark (76.5-85.7 % lower throughput).
        "udp": StackCost(19_000, 5.0, base_rtt_mean_s=55e-6, base_rtt_p99_s=160e-6,
                         queue_limit_s=450e-6, parallel_efficiency=0.33),
        "tcp": StackCost(30_000, 6.0, base_rtt_mean_s=68e-6, base_rtt_p99_s=200e-6,
                         queue_limit_s=500e-6, parallel_efficiency=0.30),
        # DPDK is lean on both ISAs; the A72 still reaches 100 Gbps with
        # 1 KB packets on one core (§3.3).
        "dpdk": StackCost(112, 0.042, base_rtt_mean_s=3.0e-6, base_rtt_p99_s=5.2e-6,
                          queue_limit_s=40e-6),
        # The SNIC CPU sits next to the NIC: shorter path than the host
        # (the paper: up to 1.4x host throughput, 14.6-24.3 % lower p99).
        "rdma": StackCost(565, 0.05, base_rtt_mean_s=2.85e-6, base_rtt_p99_s=4.7e-6,
                          queue_limit_s=20e-6),
    },
    work_cycles={
        "instr": 2.0,
        "mem_stream_byte": 0.16,
        "mem_random_access": 46.0,
        "hash_probe": 105.0,
        "kv_op": 1_500.0,  # request dispatch leans on the nearby NIC
        "kv_value_byte": 0.20,
        "kv_value_byte_cold": 0.42,  # large working sets thrash the A72 caches
        "log_byte": 0.95,
        "dfa_byte": 4.4,  # scalar table-driven scanning
        "dfa_deep_byte": 42.0,
        "regex_report": 300.0,
        "lz_byte": 21.0,
        "lz_match_search": 70.0,
        "huffman_symbol": 3.0,
        "crc_byte": 1.1,
        "aes_block": 95.0,  # ARMv8 CE helps, still far from AES-NI
        "sha1_block": 1_150.0,
        "rsa_limb_mul": 6.0,
        "bm25_posting": 50.0,  # simple float math: the A72's best case
        "bm25_query_term": 400.0,
        "nat_lookup": 140.0,
        "nat_lookup_cold": 560.0,
        "nat_rewrite": 80.0,
        "flow_lookup": 210.0,
        "flow_upcall": 27_000.0,
        "io_request": 36_000.0,  # block layer + initiator per I/O
        "io_block_byte": 0.05,
        "pkt_touch_byte": 0.13,
    },
)

PLATFORMS: Dict[str, PlatformCalibration] = {
    "host": HOST,
    "snic-cpu": SNIC_CPU,
}


# ---------------------------------------------------------------------------
# Accelerator engine rates (§2.2 and Key Observations 2-3)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AcceleratorCalibration:
    """Measured engine rates for one BlueField-2 accelerator."""

    # Sustained payload bytes/second per algorithm or mode.
    bytes_per_s: Mapping[str, float] = field(default_factory=dict)
    # Sustained operations/second for op-rate modes (public-key crypto).
    ops_per_s: Mapping[str, float] = field(default_factory=dict)
    setup_latency_s: float = 10e-6
    max_batch: int = 32
    # SNIC CPU cores needed to stage buffers and submit tasks (§3.4).
    staging_cores: int = 2


ACCELERATORS: Dict[str, AcceleratorCalibration] = {
    # ~50 Gbps regardless of rule set (Key Observation 3 / Fig. 5).
    "rem": AcceleratorCalibration(
        bytes_per_s={"default": 7.2e9},
        setup_latency_s=2.5e-6,
        max_batch=64,
        staging_cores=2,
    ),
    # Deflate engine, also capped near 50 Gbps.
    "compression": AcceleratorCalibration(
        bytes_per_s={"deflate": 7.8e9, "inflate": 8.6e9},
        setup_latency_s=6e-6,
        max_batch=32,
        staging_cores=2,
    ),
    # PKA block: bulk rates chosen so the host's ISA-assisted OpenSSL wins
    # AES (+38.5 %) and RSA (+91.2 %) while the engine wins SHA-1 (host is
    # 47.2 % lower) — Key Observation 2.
    "crypto": AcceleratorCalibration(
        bytes_per_s={"aes": 5.05e9, "sha1": 4.12e9,
                     # ESP = AES pass + SHA-1 tag over the same bytes
                     "esp": 1.0 / (1 / 5.05e9 + 1 / 4.12e9)},
        ops_per_s={"rsa2048": 4_400.0},
        setup_latency_s=6e-6,
        max_batch=32,
        staging_cores=1,
    ),
}


# ---------------------------------------------------------------------------
# Cluster node profiles: which platform plays which role on each node kind
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class NodeProfile:
    """Calibrated behaviour of one :data:`repro.hardware.NODE_SPECS` entry.

    The descriptive spec says which parts make up the node; this record
    says how they are *used*: which measured platform serves application
    requests (and with how many cores), which platform and stack carry the
    cluster transport, whether ingress crosses PCIe before reaching the
    serving complex, and which fixed-function engines are available for
    tax offload.  The asymmetry is the paper's tax story at rack scale —
    an on-path SNIC runs the transport on its Arm cores and gives the
    host its cores back, a plain NIC spends host cores on the same work.
    """

    key: str
    spec_key: str
    serve_platform: str       # PLATFORMS key executing application work
    serve_cores: int
    transport_platform: str   # PLATFORMS key running the fabric transport
    transport_stack: str      # StackCost key pricing per-packet ingest
    transport_cores: int
    pcie_hop: bool            # ingress crosses PCIe after the transport
    accelerators: Tuple[str, ...] = ()
    # Wall power: floor when idle, additional span at full utilization.
    idle_w: float = 0.0
    active_span_w: float = 0.0

    @property
    def platform(self) -> PlatformCalibration:
        return PLATFORMS[self.serve_platform]

    def transport_packet_seconds(self, wire_bytes: int) -> float:
        """One-core per-packet ingest cost of the cluster transport."""
        platform = PLATFORMS[self.transport_platform]
        return platform.stack_seconds(self.transport_stack, wire_bytes)

    def power_w(self, utilization: float) -> float:
        u = min(max(utilization, 0.0), 1.0)
        return self.idle_w + u * self.active_span_w


NODE_PROFILES: Dict[str, NodeProfile] = {
    # Paper testbed at rack scale: on-path BlueField-2 runs the transport
    # on its Arm cores; all eight host cores serve requests.  Ingress pays
    # the PCIe hop (§2.3 on-path).  Idle wall power already includes the
    # installed SNIC (§4).
    "host+bf2": NodeProfile(
        key="host+bf2", spec_key="host+bf2",
        serve_platform="host", serve_cores=8,
        transport_platform="snic-cpu", transport_stack="dpdk",
        transport_cores=2, pcie_hop=True,
        accelerators=("rem", "compression", "crypto"),
        idle_w=252.0,
        active_span_w=8 * 10.5 + 28.0 + 8 * 0.50,
    ),
    # TCO baseline: a plain ConnectX-6 Dx; the transport competes with
    # the application for host cores (the datacenter tax, unpaid-for).
    "host-only": NodeProfile(
        key="host-only", spec_key="host-only",
        serve_platform="host", serve_cores=6,
        transport_platform="host", transport_stack="dpdk",
        transport_cores=2, pcie_hop=False,
        accelerators=(),
        idle_w=252.0 - 29.0 + 16.0,
        active_span_w=8 * 10.5 + 28.0,
    ),
    # Headless SNIC node (Lovelock direction): the Arm complex both
    # transports and serves; tiny power span, tiny capacity.
    "all-snic": NodeProfile(
        key="all-snic", spec_key="all-snic",
        serve_platform="snic-cpu", serve_cores=6,
        transport_platform="snic-cpu", transport_stack="dpdk",
        transport_cores=2, pcie_hop=False,
        accelerators=("rem", "compression", "crypto"),
        idle_w=29.0,
        active_span_w=8 * 0.50 + sum((1.3, 1.2, 0.9)),
    ),
}


# ---------------------------------------------------------------------------
# Power model anchors (§3.2, §4 Fig. 6)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PowerCalibration:
    # Whole-server wall power with the SNIC installed, everything idle.
    server_idle_w: float = 252.0
    # The SNIC alone, idle (custom riser measurement).
    snic_idle_w: float = 29.0
    # A comparable standard NIC (ConnectX-6 Dx), idle.
    nic_idle_w: float = 16.0
    # Host package active power per fully-busy core (incl. uncore share).
    host_core_active_w: float = 10.5
    # DRAM + fans + VRs scale mildly with host activity.
    host_platform_active_w: float = 28.0
    # SNIC Arm core active power (8 cores ~= 4 W, §4: SNIC active <= 5.4 W)
    snic_core_active_w: float = 0.50
    # Accelerator engines at full tilt.
    snic_accel_active_w: Mapping[str, float] = field(
        default_factory=lambda: {"rem": 1.3, "compression": 1.2, "crypto": 0.9}
    )
    # Host idle-power reduction when the ondemand governor parks it while
    # the SNIC serves traffic (§3.1).
    host_ondemand_savings_w: float = 6.0
    # A programmed accelerator engine draws static power even between
    # tasks (rules loaded, engine clocked) — visible in Table 4's 254.5 W
    # SNIC-processing figure at only 0.76 Gb/s of load.
    snic_accel_engaged_w: Mapping[str, float] = field(
        default_factory=lambda: {"rem": 2.2, "compression": 2.0, "crypto": 1.2}
    )
    # Poll-mode cores spin even when idle; empty polls hit cache and draw
    # a fraction of full-load core power (Table 4: host REM at ~1 % load
    # draws 26 W, not the ~110 W of 8 saturated cores).
    dpdk_spin_fraction: float = 0.25


POWER = PowerCalibration()


# ---------------------------------------------------------------------------
# Misc anchors
# ---------------------------------------------------------------------------

# Representative datacenter packet sizes (§3.3, citing Benson et al.).
PACKET_SIZES = {"small": 64, "large": 1024}

# The paper's line rate.
LINE_RATE_GBPS = 100.0
