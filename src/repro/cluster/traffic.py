"""Traffic mixes for cluster scenarios: incast, uniform, skewed.

A mix expands a :class:`TopologySpec` into concrete flows — (source
node, destination node, bytes, start time) — consuming randomness only
from the generator it is handed, so a scenario's flow set is a pure
function of its substream.  The skewed mix reuses the YCSB Zipfian
generator from :mod:`repro.workloads.ycsb` — hot destinations at the
front, the same skew law the KV workloads use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..workloads.ycsb import ZipfianGenerator
from .topology import TopologySpec

MIX_KINDS = ("incast", "uniform", "skewed")

# Flows start within this window: synchronized enough to collide (the
# incast pattern's whole point) without a physically-implausible zero
# spread.
START_JITTER_S = 20e-6


@dataclass(frozen=True)
class FlowSpec:
    src: int
    dst: int
    nbytes: int
    start_s: float


def expand_mix(kind: str, topo: TopologySpec, flow_bytes: int,
               rng: np.random.Generator,
               flows_per_node: int = 1) -> List[FlowSpec]:
    """All flows of one scenario, in deterministic (src, index) order."""
    if kind not in MIX_KINDS:
        raise ValueError(f"unknown mix {kind!r}; expected one of {MIX_KINDS}")
    if topo.n_nodes < 2:
        raise ValueError("traffic mixes need at least two nodes")
    if flow_bytes <= 0 or flows_per_node <= 0:
        raise ValueError("flow_bytes and flows_per_node must be positive")

    nodes = list(topo.node_ids())
    flows: List[FlowSpec] = []
    zipf = ZipfianGenerator(len(nodes), rng) if kind == "skewed" else None

    for src in nodes:
        for _ in range(flows_per_node):
            if kind == "incast":
                # Everyone converges on node 0; node 0 itself sits out.
                if src == 0:
                    continue
                dst = 0
            elif kind == "uniform":
                dst = int(rng.integers(0, len(nodes) - 1))
                if dst >= src:
                    dst += 1  # uniform over the *other* nodes
            else:  # skewed
                dst = zipf.next()
                if dst == src:
                    dst = (dst + 1) % len(nodes)
            start = float(rng.uniform(0.0, START_JITTER_S))
            flows.append(FlowSpec(src, dst, flow_bytes, start))
    return flows
