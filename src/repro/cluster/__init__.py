"""Cluster layer: racks of server+SNIC nodes behind a leaf-spine fabric.

The seed repo models one server and one optional SNIC; this package
composes N of them (DESIGN.md §15).  :mod:`topology` describes the
shape, :mod:`fabric` realizes switch ports with bounded queues and
RED/ECN marking on the event kernel, :mod:`node` wraps the single-node
testbed complexes behind one ``receive()``, :mod:`traffic` expands
incast/uniform/skewed mixes, and :mod:`scenario` runs a mix over a
topology into a picklable result.  A one-node, fabric-less topology is
the seed world — experiments reduce to byte-identical single-node
artifacts through that path.
"""

from .fabric import FabricPort, LeafSpineFabric, PortStats, RedConfig
from .node import Node
from .scenario import ScenarioResult, run_scenario
from .topology import TopologySpec, single_node_spec
from .traffic import MIX_KINDS, FlowSpec, expand_mix

__all__ = [
    "FabricPort",
    "FlowSpec",
    "LeafSpineFabric",
    "MIX_KINDS",
    "Node",
    "PortStats",
    "RedConfig",
    "ScenarioResult",
    "TopologySpec",
    "expand_mix",
    "run_scenario",
    "single_node_spec",
]
