"""A cluster node: the single-server testbed wrapped for fleet duty.

:class:`Node` composes the pieces the seed repo already trusts — a
:class:`~repro.testbed.server.ProcessorComplex` core pool for transport
ingest, the :class:`~repro.testbed.pcie.PcieLink` hop for on-path SNIC
profiles, and a :class:`~repro.netstack.tcp.TcpEndpoint` — behind one
``receive()`` entry point the fabric delivers into.  Which complex runs
the transport, with how many cores, at what per-packet cost, and whether
ingress crosses PCIe all come from the node's calibrated
:class:`~repro.calibration.NodeProfile`:

* ``host+bf2``  — the SNIC's Arm cores ingest, packets cross PCIe to the
  host TCP endpoint (the paper's on-path mode at rack scale);
* ``host-only`` — host cores ingest, no PCIe hop, but those cores are
  taken from the application (the unpaid datacenter tax);
* ``all-snic``  — the Arm complex is the whole node.

The wrap is deliberately thin: a one-node cluster with no fabric is the
seed testbed, byte for byte (DESIGN.md §15's reduction contract).
"""

from __future__ import annotations

from typing import Optional

from ..calibration import NODE_PROFILES, NodeProfile
from ..core.engine import Simulator
from ..hardware.specs import BLUEFIELD2, NODE_SPECS, NodeSpec
from ..netstack.link import Link
from ..netstack.packet import Packet
from ..netstack.tcp import TcpEndpoint
from ..testbed.pcie import PcieLink
from ..testbed.server import CONSUME, ProcessorComplex

# Per-packet transport cost is priced at a representative MTU-class
# frame; the complexes charge per packet, not per byte (testbed idiom).
TRANSPORT_PRICING_BYTES = 1500


class Node:
    """One rack slot: transport complex + optional PCIe hop + TCP stack."""

    def __init__(self, sim: Simulator, node_id: int, address: int,
                 profile: NodeProfile, egress: Link, ecn: bool = True):
        self.sim = sim
        self.node_id = node_id
        self.address = address
        self.profile = profile
        self.spec: NodeSpec = NODE_SPECS[profile.spec_key]
        self.endpoint = TcpEndpoint(sim, address, egress, ecn=ecn)
        service_s = profile.transport_packet_seconds(TRANSPORT_PRICING_BYTES)
        self.ingest = ProcessorComplex(
            sim, f"node{node_id}-{profile.transport_platform}",
            profile.transport_cores, service_s, self._ingest_handler,
        )
        self.pcie: Optional[PcieLink] = None
        if profile.pcie_hop:
            self.pcie = PcieLink(sim, BLUEFIELD2.pcie,
                                 name=f"node{node_id}-snic->host")
        self._egress = egress

    @classmethod
    def build(cls, sim: Simulator, node_id: int, address: int,
              profile_key: str, egress: Link, ecn: bool = True) -> "Node":
        return cls(sim, node_id, address, NODE_PROFILES[profile_key],
                   egress, ecn=ecn)

    # -- fabric-facing -----------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry point the fabric's access port delivers into."""
        self.ingest.submit(packet)

    def _ingest_handler(self, packet: Packet) -> str:
        if self.pcie is not None:
            event = self.pcie.transfer(packet.wire_bytes)
            event.add_callback(
                lambda _e, packet=packet: self.endpoint.deliver(packet))
        else:
            self.endpoint.deliver(packet)
        return CONSUME

    # -- fault-target protocol (repro.faults.injector) ---------------------

    def fault_begin(self, fault) -> None:
        if fault.spec.kind == "outage":
            self._egress.set_down(True)

    def fault_end(self, fault) -> None:
        if fault.spec.kind == "outage":
            self._egress.set_down(False)

    # -- accounting --------------------------------------------------------

    @property
    def packets_ingested(self) -> int:
        return self.ingest.stats.handled
