"""Cluster topology: racks of nodes under a two-tier leaf-spine fabric.

A :class:`TopologySpec` is a frozen, picklable description — rack count,
nodes per rack, spine count, per-tier link rates, queue/AQM settings and
the node profile every node runs.  The DES realization (ports, queues,
marking) lives in :mod:`repro.cluster.fabric`; this module only answers
structural questions: who is where, what is everyone's address, and what
canonical id names this topology in run manifests.

The degenerate spec — one rack, one node, no fabric — is the seed
repo's world: a single server+SNIC pair.  ``is_single_node`` gates the
N=1 reduction path, which must reproduce single-node artifacts byte for
byte (see DESIGN.md §15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..netstack.packet import ip

# Address plan: 10.<rack>.<slot>.10 — one /24 per rack, mirroring the
# one-subnet-per-rack convention of real leaf-spine deployments.
_NODE_HOST_OCTET = 10


@dataclass(frozen=True)
class TopologySpec:
    """Shape and dimensioning of one cluster."""

    racks: int = 2
    nodes_per_rack: int = 4
    spines: int = 2
    node_profile: str = "host+bf2"
    # Link rates per tier: node<->leaf access, leaf<->spine uplinks.
    access_gbps: float = 25.0
    uplink_gbps: float = 100.0
    # One-way propagation per hop (intra-building optics + switch pipeline).
    hop_propagation_s: float = 1e-6
    # Per-port buffering and RED/ECN thresholds, in bytes.  The defaults
    # are shallow-buffer leaf-switch numbers scaled to the access rate:
    # marking starts at ~20 MTUs, tail drop near ~100 MTUs.
    buffer_bytes: int = 150_000
    red_min_bytes: int = 30_000
    red_max_bytes: int = 90_000
    red_max_p: float = 0.6
    ecn: bool = True
    # No fabric at all (only meaningful for single-node clusters).
    fabric: bool = True

    def __post_init__(self) -> None:
        if self.racks < 1 or self.nodes_per_rack < 1:
            raise ValueError("need at least one rack and one node per rack")
        if self.spines < 1:
            raise ValueError("need at least one spine")
        if not 0 <= self.red_min_bytes <= self.red_max_bytes <= self.buffer_bytes:
            raise ValueError("need red_min <= red_max <= buffer_bytes")
        if self.racks > 200 or self.nodes_per_rack > 200:
            raise ValueError("topology exceeds the address plan (200 racks "
                             "of 200 nodes)")
        if not self.fabric and self.n_nodes > 1:
            raise ValueError("a fabric-less topology must be single-node")
        from ..calibration import NODE_PROFILES

        if self.node_profile not in NODE_PROFILES:
            raise ValueError(
                f"unknown node profile {self.node_profile!r} "
                f"(known: {sorted(NODE_PROFILES)})")

    # -- structure ---------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.racks * self.nodes_per_rack

    @property
    def is_single_node(self) -> bool:
        return self.n_nodes == 1 and not self.fabric

    def node_ids(self) -> Tuple[int, ...]:
        return tuple(range(self.n_nodes))

    def rack_of(self, node_id: int) -> int:
        self._check(node_id)
        return node_id // self.nodes_per_rack

    def slot_of(self, node_id: int) -> int:
        self._check(node_id)
        return node_id % self.nodes_per_rack

    def address_of(self, node_id: int) -> int:
        """The node's fabric address (10.<rack>.<slot>.10)."""
        return ip(10, self.rack_of(node_id), self.slot_of(node_id),
                  _NODE_HOST_OCTET)

    def node_of_address(self, address: int) -> int:
        rack = (address >> 16) & 0xFF
        slot = (address >> 8) & 0xFF
        node_id = rack * self.nodes_per_rack + slot
        self._check(node_id)
        return node_id

    def _check(self, node_id: int) -> None:
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside topology "
                             f"({self.n_nodes} nodes)")

    # -- identity ----------------------------------------------------------

    def topology_id(self) -> str:
        """Canonical id recorded in run-farm manifest headers.

        ``--resume`` compares this string; two invocations that resolve
        to different ids must not share a manifest.
        """
        if self.is_single_node:
            return f"single:{self.node_profile}"
        aqm = "ecn" if self.ecn else "droptail"
        return (f"leafspine:r{self.racks}xn{self.nodes_per_rack}"
                f":s{self.spines}:{self.node_profile}:{aqm}")


def single_node_spec(node_profile: str = "host+bf2") -> TopologySpec:
    """The seed world: one node, no fabric (the N=1 reduction)."""
    return TopologySpec(racks=1, nodes_per_rack=1, spines=1,
                        node_profile=node_profile, fabric=False)
