"""The leaf-spine fabric realized on the event kernel.

Every switch port is a :class:`FabricPort`: a unidirectional
:class:`~repro.netstack.link.Link` plus a bounded byte queue with
RED/ECN marking installed through the link's mark-on-enqueue seam
(``Link.on_enqueue``) — no link internals are touched.  Ports count
enqueues, marks and drops both locally (for scenario results) and in
the dotted-name metric registry (``fabric.port.depth``,
``fabric.ecn.marked``, ...) so per-port queue stats merge byte-
identically at any ``--jobs N`` like every other counter.

Routing is deterministic: minimal intra-rack paths, and inter-rack
flows pick their spine by a stable five-tuple hash (ECMP without
randomness), so a scenario replays identically from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.engine import Simulator
from ..netstack.link import Link
from ..netstack.packet import Packet
from ..obs import metrics
from .topology import TopologySpec

# Queue-depth histogram bounds: 1 KB .. 10 MB, 4 buckets per decade.
DEPTH_BUCKETS = metrics.log_buckets(1e3, 1e7, per_decade=4)

M_ENQUEUED = "fabric.port.enqueued"
M_DROPPED = "fabric.port.dropped"
M_MARKED = "fabric.ecn.marked"
M_DEPTH = "fabric.port.depth"


@dataclass(frozen=True)
class RedConfig:
    """RED thresholds in queue bytes (classic Floyd/Jacobson shape)."""

    min_bytes: int
    max_bytes: int
    max_p: float = 0.6
    # Mark ECT packets (ECN) instead of dropping them; non-ECT packets
    # are always dropped when RED fires.
    ecn: bool = True

    def decision(self, depth_bytes: float, rng: np.random.Generator) -> str:
        """"pass", "mark" or "drop" for a packet seeing this depth."""
        if depth_bytes < self.min_bytes:
            return "pass"
        if depth_bytes >= self.max_bytes:
            return "mark"
        span = self.max_bytes - self.min_bytes
        p = self.max_p * (depth_bytes - self.min_bytes) / span
        return "mark" if rng.random() < p else "pass"


@dataclass
class PortStats:
    name: str
    enqueued: int
    delivered: int
    marked: int
    dropped: int
    peak_depth_bytes: float


class FabricPort:
    """One switch output port: link + bounded queue + AQM."""

    def __init__(self, sim: Simulator, name: str, gbps: float,
                 propagation_s: float, buffer_bytes: int,
                 red: Optional[RedConfig],
                 rng: Optional[np.random.Generator]):
        if red is not None and rng is None:
            raise ValueError("RED marking needs an rng")
        self.name = name
        self.buffer_bytes = buffer_bytes
        self.red = red
        self.rng = rng
        self.link = Link(sim, gbps=gbps, propagation_s=propagation_s)
        self.link.on_enqueue = self._on_enqueue
        self.enqueued = 0
        self.marked = 0
        self.dropped = 0
        self.peak_depth_bytes = 0.0
        self._m_enqueued = metrics.counter(
            M_ENQUEUED, help="packets accepted into fabric port queues")
        self._m_dropped = metrics.counter(
            M_DROPPED, help="packets dropped at fabric ports (tail + RED)")
        self._m_marked = metrics.counter(
            M_MARKED, help="ECN CE marks set by fabric ports")
        self._m_depth = metrics.histogram(
            M_DEPTH, buckets=DEPTH_BUCKETS,
            help="queue depth in bytes observed at each enqueue")

    def send(self, packet: Packet) -> None:
        self.link.send(packet)

    def attach(self, receiver: Callable[[Packet], None]) -> None:
        self.link.attach(receiver)

    # -- the AQM policy, installed via the link's enqueue seam -------------

    def _on_enqueue(self, packet: Packet, depth_bytes: float) -> bool:
        self._m_depth.observe(depth_bytes)
        if depth_bytes > self.peak_depth_bytes:
            self.peak_depth_bytes = depth_bytes
        if depth_bytes + packet.wire_bytes > self.buffer_bytes:
            self.dropped += 1
            self._m_dropped.inc()
            return False
        if self.red is not None:
            verdict = self.red.decision(depth_bytes, self.rng)
            if verdict == "mark":
                if self.red.ecn and packet.ecn_capable:
                    packet.ce = True
                    self.marked += 1
                    self._m_marked.inc()
                else:
                    self.dropped += 1
                    self._m_dropped.inc()
                    return False
        self.enqueued += 1
        self._m_enqueued.inc()
        return True

    def stats(self) -> PortStats:
        return PortStats(self.name, self.enqueued, self.link.delivered,
                         self.marked, self.dropped, self.peak_depth_bytes)


def flow_spine(packet: Packet, spines: int) -> int:
    """Stable ECMP: the five-tuple hash that pins a flow to one spine."""
    h = (packet.src_ip * 1_000_003 + packet.dst_ip * 8_191
         + packet.src_port * 131 + packet.dst_port * 31 + packet.proto)
    return h % spines


class LeafSpineFabric:
    """Two-tier fabric: one leaf per rack, ``spines`` spine switches.

    Ports (all unidirectional):

    * ``up[node]``     — node NIC into its rack's leaf (the node's egress
      link; TCP endpoints transmit straight into it),
    * ``down[node]``   — leaf toward the node (the incast bottleneck),
    * ``leaf_up[r,s]`` — leaf *r* toward spine *s*,
    * ``spine_down[s,r]`` — spine *s* toward leaf *r*.

    Intra-rack traffic turns around at the leaf; inter-rack traffic
    crosses the spine chosen by the flow hash.
    """

    def __init__(self, sim: Simulator, topo: TopologySpec,
                 rng: np.random.Generator):
        if not topo.fabric:
            raise ValueError("TopologySpec has no fabric; use the "
                             "single-node reduction path instead")
        self.sim = sim
        self.topo = topo
        red = None
        if topo.red_max_bytes > 0:
            red = RedConfig(topo.red_min_bytes, topo.red_max_bytes,
                            topo.red_max_p, ecn=topo.ecn)
        self.red = red

        def port(name: str, gbps: float) -> FabricPort:
            return FabricPort(sim, name, gbps, topo.hop_propagation_s,
                              topo.buffer_bytes, red, rng)

        self.up: Dict[int, FabricPort] = {}
        self.down: Dict[int, FabricPort] = {}
        self.leaf_up: Dict[Tuple[int, int], FabricPort] = {}
        self.spine_down: Dict[Tuple[int, int], FabricPort] = {}
        self._addr_to_node = {topo.address_of(n): n for n in topo.node_ids()}

        for node in topo.node_ids():
            rack = topo.rack_of(node)
            self.up[node] = port(f"node{node}->leaf{rack}", topo.access_gbps)
            self.up[node].attach(
                lambda pkt, rack=rack: self._at_leaf(rack, pkt))
            self.down[node] = port(f"leaf{rack}->node{node}",
                                   topo.access_gbps)
        for rack in range(topo.racks):
            for spine in range(topo.spines):
                up = port(f"leaf{rack}->spine{spine}", topo.uplink_gbps)
                up.attach(lambda pkt, spine=spine: self._at_spine(spine, pkt))
                self.leaf_up[(rack, spine)] = up
                down = port(f"spine{spine}->leaf{rack}", topo.uplink_gbps)
                down.attach(lambda pkt, rack=rack: self._at_leaf(rack, pkt))
                self.spine_down[(spine, rack)] = down

    # -- node-facing wiring ------------------------------------------------

    def egress_link(self, node_id: int) -> Link:
        """The link a node's TCP endpoint transmits into."""
        return self.up[node_id].link

    def attach_node(self, node_id: int,
                    receiver: Callable[[Packet], None]) -> None:
        self.down[node_id].attach(receiver)

    # -- hop-by-hop forwarding --------------------------------------------

    def _dst_node(self, packet: Packet) -> int:
        try:
            return self._addr_to_node[packet.dst_ip]
        except KeyError:
            raise ValueError(
                f"packet for unknown fabric address {packet.dst_ip:#x}"
            ) from None

    def _at_leaf(self, rack: int, packet: Packet) -> None:
        dst = self._dst_node(packet)
        dst_rack = self.topo.rack_of(dst)
        if dst_rack == rack:
            self.down[dst].send(packet)
        else:
            spine = flow_spine(packet, self.topo.spines)
            self.leaf_up[(rack, spine)].send(packet)

    def _at_spine(self, spine: int, packet: Packet) -> None:
        dst_rack = self.topo.rack_of(self._dst_node(packet))
        self.spine_down[(spine, dst_rack)].send(packet)

    # -- fault-target protocol (rack/switch scope outages) -----------------

    def spine_ports(self, spine: int) -> List[FabricPort]:
        return [p for (s, _r), p in self.spine_down.items() if s == spine] + \
               [p for (_r, s), p in self.leaf_up.items() if s == spine]

    def rack_ports(self, rack: int) -> List[FabricPort]:
        nodes = [n for n in self.topo.node_ids()
                 if self.topo.rack_of(n) == rack]
        return [self.up[n] for n in nodes] + [self.down[n] for n in nodes]

    # -- accounting --------------------------------------------------------

    def ports(self) -> List[FabricPort]:
        return (list(self.up.values()) + list(self.down.values())
                + list(self.leaf_up.values())
                + list(self.spine_down.values()))

    def port_stats(self) -> List[PortStats]:
        return [p.stats() for p in self.ports()]

    def totals(self) -> Dict[str, float]:
        stats = self.port_stats()
        return {
            "enqueued": sum(s.enqueued for s in stats),
            "delivered": sum(s.delivered for s in stats),
            "marked": sum(s.marked for s in stats),
            "dropped": sum(s.dropped for s in stats),
            "peak_depth_bytes": max(
                (s.peak_depth_bytes for s in stats), default=0.0),
        }
