"""Run one traffic mix over one topology and measure flow completion.

The driver builds the whole cluster on a fresh event kernel — fabric
ports, nodes, TCP endpoints — expands the mix into flows, and runs to
completion.  Everything observable comes out in a picklable
:class:`ScenarioResult`: flow-completion-time statistics, goodput,
TCP-level ECN/retransmission counts, and the fabric's per-port queue
accounting (hottest ports first).

Determinism contract: given (topology, mix, flow size, substream) the
result is bit-identical — the kernel is deterministic and the only
randomness (RED coin flips, destination draws, start jitter) comes from
the substream the caller hands in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..core.engine import Simulator
from ..netstack.tcp import TcpConnection
from .fabric import LeafSpineFabric, PortStats
from .node import Node
from .topology import TopologySpec
from .traffic import FlowSpec, expand_mix

SERVER_PORT = 5001
CLIENT_PORT_BASE = 40_000
# Generous ceiling: RTO backoff caps at 1 s, so even a drop-tail incast
# that stalls repeatedly finishes well inside this horizon.
HORIZON_S = 300.0
HOT_PORTS = 4


@dataclass(frozen=True)
class ScenarioResult:
    kind: str
    topology_id: str
    n_nodes: int
    ecn: bool
    flow_bytes: int
    flows: int
    completed: int
    # Flow completion times (connect-to-last-byte), seconds.
    fct_mean_s: float
    fct_p99_s: float
    fct_max_s: float
    goodput_gbps: float
    makespan_s: float
    # TCP accounting, summed over every connection on every node.
    retransmissions: int
    ecn_marks_seen: int
    ecn_responses: int
    # Fabric accounting.
    fabric_enqueued: int
    fabric_marked: int
    fabric_dropped: int
    peak_depth_bytes: float
    packets_ingested: int
    hot_ports: Tuple[PortStats, ...] = field(default_factory=tuple)


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile (matches obs.metrics.Histogram.quantile)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered), max(1, int(np.ceil(q * len(ordered)))))
    return ordered[rank - 1]


def run_scenario(topo: TopologySpec, kind: str, flow_bytes: int,
                 rng: np.random.Generator,
                 flows_per_node: int = 1) -> ScenarioResult:
    sim = Simulator()
    fabric = LeafSpineFabric(sim, topo, rng)
    nodes: Dict[int, Node] = {}
    for node_id in topo.node_ids():
        node = Node.build(sim, node_id, topo.address_of(node_id),
                          topo.node_profile, fabric.egress_link(node_id),
                          ecn=topo.ecn)
        fabric.attach_node(node_id, node.receive)
        nodes[node_id] = node

    flows = expand_mix(kind, topo, flow_bytes, rng,
                       flows_per_node=flows_per_node)
    # Unique client port per flow so the receive side can attribute a
    # connection to its flow by (remote address, remote port).
    flow_by_peer: Dict[Tuple[int, int], FlowSpec] = {}
    ports: Dict[int, int] = {}  # per-src next port offset
    flow_ports: List[int] = []
    for flow in flows:
        offset = ports.get(flow.src, 0)
        ports[flow.src] = offset + 1
        port = CLIENT_PORT_BASE + offset
        flow_ports.append(port)
        flow_by_peer[(topo.address_of(flow.src), port)] = flow

    completions: List[float] = []
    finished_at: List[float] = []

    expecting: Dict[int, int] = {}
    for flow in flows:
        expecting[flow.dst] = expecting.get(flow.dst, 0) + 1

    def server(node: Node, count: int):
        listener = node.endpoint.listen(SERVER_PORT)

        def serve_one(conn: TcpConnection):
            yield conn.established()
            flow = flow_by_peer[(conn.remote_ip, conn.remote_port)]
            yield conn.recv(flow.nbytes)
            completions.append(sim.now - flow.start_s)
            finished_at.append(sim.now)

        for _ in range(count):
            conn = yield listener.accept()
            sim.process(serve_one(conn), name=f"serve-{node.node_id}")

    def client(flow: FlowSpec, port: int):
        yield sim.timeout(flow.start_s)
        conn = nodes[flow.src].endpoint.connect(
            port, topo.address_of(flow.dst), SERVER_PORT)
        yield conn.established()
        conn.send(bytes(flow.nbytes))

    for dst, count in sorted(expecting.items()):
        sim.process(server(nodes[dst], count), name=f"listen-{dst}")
    for flow, port in zip(flows, flow_ports):
        sim.process(client(flow, port), name=f"flow-{flow.src}->{flow.dst}")

    sim.run(until=HORIZON_S)

    retrans = marks = responses = 0
    for node in nodes.values():
        for conn in node.endpoint.connections.values():
            retrans += conn.retransmissions
            marks += conn.ecn_marks_seen
            responses += conn.ecn_responses

    total_payload = sum(f.nbytes for f in flows)
    makespan = max(finished_at) if finished_at else 0.0
    goodput = (8.0 * total_payload / makespan / 1e9) if makespan else 0.0
    totals = fabric.totals()
    hot = tuple(sorted(fabric.port_stats(),
                       key=lambda s: (-s.peak_depth_bytes, s.name))[:HOT_PORTS])
    return ScenarioResult(
        kind=kind,
        topology_id=topo.topology_id(),
        n_nodes=topo.n_nodes,
        ecn=topo.ecn,
        flow_bytes=flow_bytes,
        flows=len(flows),
        completed=len(completions),
        fct_mean_s=float(np.mean(completions)) if completions else 0.0,
        fct_p99_s=_percentile(completions, 0.99),
        fct_max_s=max(completions) if completions else 0.0,
        goodput_gbps=goodput,
        makespan_s=makespan,
        retransmissions=retrans,
        ecn_marks_seen=marks,
        ecn_responses=responses,
        fabric_enqueued=int(totals["enqueued"]),
        fabric_marked=int(totals["marked"]),
        fabric_dropped=int(totals["dropped"]),
        peak_depth_bytes=float(totals["peak_depth_bytes"]),
        packets_ingested=sum(n.packets_ingested for n in nodes.values()),
        hot_ports=hot,
    )
