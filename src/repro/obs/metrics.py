"""Typed metric registry with deterministic cross-process merging.

The flat integer counters of :mod:`repro.core.instrument` answered "how
many", but the observability questions the run farm actually asks —
"what is the p99 unit wall time", "how uneven is events/s across the
fleet" — need distributions and point-in-time values.  This module adds
the missing metric kinds behind one registry:

* :class:`Counter` — a monotone integer (the existing counters, now
  typed);
* :class:`Gauge` — a last-written float (queue depth, ETA, SLO
  measurements);
* :class:`Histogram` — deterministic log-spaced buckets *plus* the raw
  observations, so bucket counts and exact nearest-rank quantiles are
  both available.  Harness-level distributions are small (thousands of
  per-unit timings, not per-request samples), so keeping the values is
  cheap and buys exactness;
* :class:`Timer` — a context manager observing wall seconds into a
  histogram.

The determinism contract
------------------------

Everything merges exactly like the flat counters always have: a worker
snapshots the registry before a unit (:func:`snapshot`), computes the
delta after (:func:`delta_since`), and ships the delta — a plain
picklable dict — back to the parent, which folds deltas in **submission
order** (:func:`merge`).  Histogram deltas carry the raw values observed
during the unit and the parent *re-observes them in order*, so bucket
counts, float sums, and quantiles are bit-identical between ``--jobs 1``
and ``--jobs N``.  Gauges merge last-write-wins in merge order, which is
submission order, which is the serial order.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> Tuple[float, ...]:
    """Deterministic log-spaced histogram bucket bounds covering [lo, hi].

    Bounds are ``10**(i / per_decade)`` for every ``i`` whose value lands
    in ``[lo, hi]`` (endpoints included), each rounded to six significant
    digits so the spec is stable across platforms and serialization.
    """
    if not (lo > 0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ValueError("per_decade must be >= 1")
    bounds: List[float] = []
    # Walk exponent indices upward from the first at or below lo.
    i = math.floor(math.log10(lo) * per_decade)
    while True:
        bound = float(f"{10 ** (i / per_decade):.6g}")
        if bound > hi * (1 + 1e-9):
            break
        if bound >= lo * (1 - 1e-9):
            bounds.append(bound)
        i += 1
    return tuple(bounds)


# Default buckets for wall-clock timers: 100 us .. 100 s.
DEFAULT_SECONDS_BUCKETS = log_buckets(1e-4, 100.0, per_decade=2)


class Counter:
    """A monotone integer metric."""

    kind = COUNTER

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-written float metric.

    ``updates`` counts writes — the delta layer uses it to detect that a
    worker touched the gauge (a gauge re-set to the same value still
    ships, matching serial last-write-wins semantics).
    """

    kind = GAUGE

    __slots__ = ("name", "help", "value", "updates")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value = 0.0
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.updates += 1

    def add(self, amount: float) -> None:
        self.set(self.value + amount)


class Histogram:
    """Log-bucketed counts plus raw values for exact quantiles.

    ``buckets`` are ascending upper bounds (``le`` semantics, matching
    OpenMetrics); observations above the last bound land in the implicit
    ``+Inf`` bucket.  The raw observation list is retained — harness
    distributions are thousands of points, and exactness (bit-identical
    sums and nearest-rank quantiles at any ``--jobs``) is the contract.
    """

    kind = HISTOGRAM

    __slots__ = ("name", "help", "buckets", "counts", "values", "sum")

    def __init__(self, name: str, buckets: Sequence[float] = (),
                 help: str = ""):
        bounds = tuple(float(b) for b in (buckets or DEFAULT_SECONDS_BUCKETS))
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name!r} buckets must be strictly "
                             f"ascending: {bounds}")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.values: List[float] = []
        self.sum = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.values.append(value)
        self.sum += value

    @property
    def count(self) -> int:
        return len(self.values)

    def quantile(self, q: float) -> Optional[float]:
        """Exact nearest-rank quantile over every observation."""
        if not self.values:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        ordered = sorted(self.values)
        # Nearest-rank: ceil(q * n), clamped to [1, n].
        rank = min(len(ordered), max(1, math.ceil(q * len(ordered))))
        return ordered[rank - 1]

    def cumulative_counts(self) -> List[int]:
        """Per-bound cumulative counts (OpenMetrics ``le`` exposition)."""
        total = 0
        out: List[int] = []
        for count in self.counts:
            total += count
            out.append(total)
        return out


class Timer:
    """Context manager observing elapsed wall seconds into a histogram."""

    def __init__(self, histogram: Histogram):
        self.histogram = histogram
        self._started: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc: Any) -> None:
        if self._started is not None:
            self.histogram.observe(time.perf_counter() - self._started)
            self._started = None


Metric = Any  # Counter | Gauge | Histogram


class MetricRegistry:
    """Name -> typed metric, with snapshot/delta/merge for workers.

    Accessors are get-or-create and enforce the kind: asking for a
    counter under a name registered as a gauge is a bug, not a new
    metric.  Creation is locked (worker heartbeat threads and the main
    thread may race on first touch); single increments/observes rely on
    the GIL exactly as the flat counters did.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- typed access -------------------------------------------------------

    def _get_or_create(self, name: str, kind: str,
                       factory: Callable[[], Metric]) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, COUNTER,
                                   lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, GAUGE, lambda: Gauge(name, help))

    def histogram(self, name: str, buckets: Sequence[float] = (),
                  help: str = "") -> Histogram:
        return self._get_or_create(name, HISTOGRAM,
                                   lambda: Histogram(name, buckets, help))

    def timer(self, name: str, buckets: Sequence[float] = (),
              help: str = "") -> Timer:
        return Timer(self.histogram(name, buckets, help))

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> List[Metric]:
        """Every registered metric, sorted by name (stable exposition)."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def counter_values(self) -> Dict[str, int]:
        return {m.name: m.value for m in self._metrics.values()
                if m.kind == COUNTER}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- worker delta protocol ----------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A cheap marker of current state, for :meth:`delta_since`.

        Counters record their value, gauges their update count (so a
        rewrite to the same value still registers), histograms their
        observation count (the delta ships only the new tail).
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, int] = {}
        hists: Dict[str, int] = {}
        for name, metric in self._metrics.items():
            if metric.kind == COUNTER:
                counters[name] = metric.value
            elif metric.kind == GAUGE:
                gauges[name] = metric.updates
            else:
                hists[name] = len(metric.values)
        return {"counters": counters, "gauges": gauges, "hists": hists}

    def delta_since(self, before: Dict[str, Dict[str, Any]]
                    ) -> Dict[str, Dict[str, Any]]:
        """Changes since ``before`` as a plain picklable dict."""
        b_counters = before.get("counters", {})
        b_gauges = before.get("gauges", {})
        b_hists = before.get("hists", {})
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        hists: Dict[str, Dict[str, Any]] = {}
        for name, metric in self._metrics.items():
            if metric.kind == COUNTER:
                diff = metric.value - b_counters.get(name, 0)
                if diff:
                    counters[name] = diff
            elif metric.kind == GAUGE:
                if metric.updates != b_gauges.get(name, 0):
                    gauges[name] = metric.value
            else:
                start = b_hists.get(name, 0)
                if len(metric.values) > start:
                    hists[name] = {
                        "buckets": list(metric.buckets),
                        "values": metric.values[start:],
                    }
        return {"counters": counters, "gauges": gauges, "hists": hists}

    def merge(self, delta: Dict[str, Dict[str, Any]]) -> None:
        """Fold a worker delta in; call strictly in submission order.

        Histogram values are re-observed in their original order, so
        float sums and quantiles reproduce the serial run bit for bit.
        """
        for name, amount in delta.get("counters", {}).items():
            self.counter(name).inc(amount)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, payload in delta.get("hists", {}).items():
            hist = self.histogram(name, buckets=payload.get("buckets", ()))
            for value in payload.get("values", ()):
                hist.observe(value)

    def summary_line(self) -> str:
        """The footer's ``metrics:`` one-liner."""
        kinds = {COUNTER: 0, GAUGE: 0, HISTOGRAM: 0}
        for metric in self._metrics.values():
            kinds[metric.kind] += 1
        return (f"metrics: {kinds[COUNTER]} counters / {kinds[GAUGE]} gauges"
                f" / {kinds[HISTOGRAM]} histograms")


def counter_delta(delta: Dict[str, Dict[str, Any]], name: str) -> int:
    """One counter's increment inside a :meth:`MetricRegistry.delta_since`
    payload (0 when untouched)."""
    return int(delta.get("counters", {}).get(name, 0))


# ---------------------------------------------------------------------------
# The process-wide default registry (what the CLI footer and exporters read)
# ---------------------------------------------------------------------------

_DEFAULT = MetricRegistry()


def registry() -> MetricRegistry:
    return _DEFAULT


def counter(name: str, help: str = "") -> Counter:
    return _DEFAULT.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    return _DEFAULT.gauge(name, help)


def histogram(name: str, buckets: Sequence[float] = (),
              help: str = "") -> Histogram:
    return _DEFAULT.histogram(name, buckets, help)


def timer(name: str, buckets: Sequence[float] = (), help: str = "") -> Timer:
    return _DEFAULT.timer(name, buckets, help)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return _DEFAULT.snapshot()


def delta_since(before: Dict[str, Dict[str, Any]]) -> Dict[str, Dict[str, Any]]:
    return _DEFAULT.delta_since(before)


def merge(delta: Dict[str, Dict[str, Any]]) -> None:
    _DEFAULT.merge(delta)


def reset() -> None:
    _DEFAULT.reset()


def summary_line() -> str:
    return _DEFAULT.summary_line()
