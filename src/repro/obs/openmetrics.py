"""OpenMetrics exposition, JSONL export, and a localhost /metrics server.

Three consumers of the metric registry:

* :func:`render` — the OpenMetrics text format (``# TYPE`` declarations,
  ``_total`` counters, ``_bucket{le=...}``/``_sum``/``_count``
  histograms, terminal ``# EOF``), written to ``metrics.prom`` by
  ``--metrics-out`` and served live by :class:`MetricsServer`;
* :func:`export_jsonl` — one JSON object per metric (raw name, type,
  value or full distribution with exact quantiles), the
  machine-readable sibling CI and notebooks consume;
* :func:`parse_openmetrics` — a deliberately strict parser used by the
  ``metrics-smoke`` CI job: malformed exposition (missing ``# EOF``,
  samples before their ``# TYPE``, counters without ``_total``,
  non-monotone bucket counts) raises ``ValueError`` instead of being
  shrugged off.

Metric names are sanitized into the ``repro_`` namespace
(``[^a-zA-Z0-9_]`` becomes ``_``), so the dotted internal names
(``runfarm.timeout``) expose as ``repro_runfarm_timeout``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import IO, Any, Dict, List, Optional, Tuple

from . import metrics as metrics_mod
from .metrics import COUNTER, GAUGE, HISTOGRAM, MetricRegistry

CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def metric_name(name: str) -> str:
    """The OpenMetrics name for an internal dotted metric name."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = f"repro_{sanitized}"
    return sanitized


def _fmt(value: float) -> str:
    """Stable numeric formatting (integers render without exponent)."""
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.10g}"


def render(registry: Optional[MetricRegistry] = None) -> str:
    """The full OpenMetrics text exposition of a registry."""
    registry = registry if registry is not None else metrics_mod.registry()
    lines: List[str] = []
    for metric in registry.metrics():
        name = metric_name(metric.name)
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if metric.kind == COUNTER:
            lines.append(f"{name}_total {_fmt(metric.value)}")
        elif metric.kind == GAUGE:
            lines.append(f"{name} {_fmt(metric.value)}")
        else:
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative[:-1]):
                lines.append(
                    f'{name}_bucket{{le="{_fmt(bound)}"}} {count}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {metric.count}')
            lines.append(f"{name}_sum {_fmt(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def export_jsonl(stream: IO[str], registry: Optional[MetricRegistry] = None
                 ) -> int:
    """One JSON object per metric; returns the number of lines written."""
    registry = registry if registry is not None else metrics_mod.registry()
    count = 0
    for metric in registry.metrics():
        doc: Dict[str, Any] = {
            "name": metric.name,
            "om_name": metric_name(metric.name),
            "type": metric.kind,
        }
        if metric.help:
            doc["help"] = metric.help
        if metric.kind in (COUNTER, GAUGE):
            doc["value"] = metric.value
        else:
            doc["count"] = metric.count
            doc["sum"] = metric.sum
            doc["buckets"] = [
                [bound, cum] for bound, cum
                in zip(metric.buckets, metric.cumulative_counts()[:-1])
            ]
            doc["p50"] = metric.quantile(0.50)
            doc["p90"] = metric.quantile(0.90)
            doc["p99"] = metric.quantile(0.99)
        stream.write(json.dumps(doc, sort_keys=True) + "\n")
        count += 1
    return count


# ---------------------------------------------------------------------------
# Strict parsing (the CI validation side)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(?:\{([^}]*)\})?"                     # optional label set
    r" (-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|[+-]Inf|NaN)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"')


def _family_of(sample_name: str, families: Dict[str, Dict[str, Any]]
               ) -> Optional[Tuple[str, str]]:
    """Resolve a sample name to (family, suffix) against declared types."""
    for suffix in ("_total", "_bucket", "_sum", "_count", ""):
        if suffix and not sample_name.endswith(suffix):
            continue
        base = sample_name[:-len(suffix)] if suffix else sample_name
        if base in families:
            return base, suffix
    return None


def parse_openmetrics(text: str) -> Dict[str, Dict[str, Any]]:
    """Parse (and validate) an OpenMetrics exposition; strict on purpose.

    Returns ``{family: {"type": ..., "samples": [(name, labels, value)],
    ...}}``.  Raises ``ValueError`` on any structural violation: no
    terminal ``# EOF``, a sample with no preceding ``# TYPE``, a counter
    sample without the ``_total`` suffix, histogram bucket counts that
    are not monotone or whose ``+Inf`` bucket disagrees with ``_count``.
    """
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        raise ValueError("exposition does not end with '# EOF'")
    families: Dict[str, Dict[str, Any]] = {}
    for lineno, line in enumerate(lines[:-1], start=1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            _, _, name, kind = parts
            if kind not in (COUNTER, GAUGE, HISTOGRAM):
                raise ValueError(f"line {lineno}: unknown type {kind!r}")
            if name in families:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            families[name] = {"type": kind, "samples": []}
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unexpected comment: {line!r}")
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        sample_name, label_text, value_text = match.groups()
        resolved = _family_of(sample_name, families)
        if resolved is None:
            raise ValueError(
                f"line {lineno}: sample {sample_name!r} has no preceding "
                f"# TYPE declaration")
        family, suffix = resolved
        kind = families[family]["type"]
        if kind == COUNTER and suffix != "_total":
            raise ValueError(
                f"line {lineno}: counter sample {sample_name!r} must use "
                f"the _total suffix")
        if kind == GAUGE and suffix != "":
            raise ValueError(
                f"line {lineno}: gauge sample {sample_name!r} must not "
                f"carry a suffix")
        if kind == HISTOGRAM and suffix not in ("_bucket", "_sum", "_count"):
            raise ValueError(
                f"line {lineno}: histogram sample {sample_name!r} must use "
                f"_bucket/_sum/_count")
        labels = dict(_LABEL_RE.findall(label_text or ""))
        if suffix == "_bucket" and "le" not in labels:
            raise ValueError(f"line {lineno}: bucket sample lacks an 'le' "
                             f"label: {line!r}")
        families[family]["samples"].append(
            (sample_name, labels, float(value_text)))

    for family, info in families.items():
        if info["type"] != HISTOGRAM:
            continue
        buckets = [(float(labels["le"]), value)
                   for name, labels, value in info["samples"]
                   if name == f"{family}_bucket"]
        counts = [value for name, _labels, value in info["samples"]
                  if name == f"{family}_count"]
        if not buckets:
            raise ValueError(f"histogram {family} has no _bucket samples")
        if not counts:
            raise ValueError(f"histogram {family} has no _count sample")
        bounds = [b for b, _ in buckets]
        if bounds != sorted(bounds):
            raise ValueError(f"histogram {family} bucket bounds are not "
                             f"ascending: {bounds}")
        if bounds[-1] != float("inf"):
            raise ValueError(f"histogram {family} lacks a +Inf bucket")
        values = [v for _, v in buckets]
        if any(b > a for a, b in zip(values[1:], values)):
            raise ValueError(f"histogram {family} bucket counts are not "
                             f"monotone: {values}")
        if values[-1] != counts[0]:
            raise ValueError(
                f"histogram {family}: +Inf bucket {values[-1]} != _count "
                f"{counts[0]}")
    return families


# ---------------------------------------------------------------------------
# Live scraping (opt-in, localhost only)
# ---------------------------------------------------------------------------


class MetricsServer:
    """A localhost HTTP server exposing ``GET /metrics`` for live scrapes.

    Opt-in via ``--metrics-port`` (0 picks an ephemeral port).  Binds
    127.0.0.1 only — this is an operator convenience for watching long
    farm runs, not a network service.  The handler renders the registry
    at request time, so a scrape always sees current totals.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1",
                 registry: Optional[MetricRegistry] = None):
        self._registry = registry
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    def start(self) -> "MetricsServer":
        registry = self._registry

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — http.server API
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_error(404)
                    return
                body = render(registry).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *_args: Any) -> None:
                pass  # scrapes must not spam stderr

        self._server = ThreadingHTTPServer(
            (self._host, self._requested_port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-metrics",
            daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def write_metrics_files(metrics_dir: str,
                        registry: Optional[MetricRegistry] = None
                        ) -> Tuple[str, str, int]:
    """Write ``metrics.prom`` + ``metrics.jsonl`` into ``metrics_dir``.

    Returns ``(prom_path, jsonl_path, n_metrics)``.
    """
    import os

    os.makedirs(metrics_dir, exist_ok=True)
    prom_path = os.path.join(metrics_dir, "metrics.prom")
    jsonl_path = os.path.join(metrics_dir, "metrics.jsonl")
    with open(prom_path, "w", encoding="utf-8") as handle:
        handle.write(render(registry))
    with open(jsonl_path, "w", encoding="utf-8") as handle:
        count = export_jsonl(handle, registry)
    return prom_path, jsonl_path, count
