"""SLO burn monitor: is this run drifting off its anchors and SLOs?

Every registered experiment has headline quantities the paper (and
EXPERIMENTS.md) anchor: throughput ratios, efficiency ratios, p99
latencies, TCO savings.  This module evaluates them *during* a run —
each successful ``ctx.run(name)`` result is checked against a band
derived from the measured values recorded in EXPERIMENTS.md (``anchor``
targets) or against an absolute p99 ceiling (``p99-slo`` targets) — and:

* records each measurement as a ``slo.<experiment>.<target>`` gauge
  (so it lands in ``--metrics-out`` exposition and live scrapes);
* counts evaluations and breaches (``slo.evaluated``/``slo.breaches``);
* logs a structured warning per breach on the ``repro.slo`` logger
  (downgraded to *info* at smoke fidelity, where low sample counts make
  drift expected rather than alarming);
* surfaces the findings as a non-verdict ``slo`` block in the ``--json``
  artifact envelope.

**Drift never changes a verdict or an exit code.**  The Key-Observation
gates remain the only science gates; this is an early-warning channel
for operators watching long runs, not a second judge.

Bands are deliberately generous (roughly ±30-40% around the measured
default-fidelity values): they should stay quiet on any healthy run of
the current model and fire only when a code or calibration change moves
a headline quantity materially.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from . import metrics

logger = logging.getLogger("repro.slo")

ANCHOR = "anchor"    # band around an EXPERIMENTS.md measured value
P99_SLO = "p99-slo"  # absolute ceiling on a tail-latency quantity

EVALUATED = "slo.evaluated"
BREACHES = "slo.breaches"


@dataclass(frozen=True)
class SloTarget:
    """One quantity to watch: an extractor plus its allowed band."""

    name: str
    kind: str  # ANCHOR | P99_SLO
    description: str
    extract: Callable[[Any], Optional[float]]
    lo: Optional[float] = None
    hi: Optional[float] = None

    def check(self, measured: float) -> bool:
        if self.lo is not None and measured < self.lo:
            return False
        if self.hi is not None and measured > self.hi:
            return False
        return True


@dataclass(frozen=True)
class SloFinding:
    """One evaluated target: the measurement and whether it is in band."""

    experiment: str
    target: str
    kind: str
    description: str
    measured: float
    lo: Optional[float]
    hi: Optional[float]
    ok: bool

    def describe(self) -> str:
        lo = "-inf" if self.lo is None else f"{self.lo:g}"
        hi = "+inf" if self.hi is None else f"{self.hi:g}"
        state = "in band" if self.ok else "BREACH"
        return (f"{self.experiment}.{self.target} = {self.measured:.4g} "
                f"[{lo}, {hi}] {state} ({self.description})")


# -- extractors --------------------------------------------------------------
# All defensive: a missing key (smoke subsets), attribute, or row simply
# yields None and the target is skipped — observability never breaks a run.


def _fig4(key: str, attr: str) -> Callable[[Any], Optional[float]]:
    def extract(rows: Any) -> Optional[float]:
        for row in rows:
            if getattr(row, "key", None) == key:
                return float(getattr(row, attr))
        return None
    return extract


def _fig6(key: str) -> Callable[[Any], Optional[float]]:
    def extract(rows: Any) -> Optional[float]:
        for row in rows:
            if getattr(row, "key", None) == key:
                return float(row.efficiency_ratio)
        return None
    return extract


def _fig5_max_gbps(ruleset: str, label: str) -> Callable[[Any], Optional[float]]:
    def extract(figure: Any) -> Optional[float]:
        for curve in figure.get(ruleset, ()):
            if curve.label == label:
                return float(curve.max_achieved_gbps())
        return None
    return extract


def _fig5_p99_floor_us(ruleset: str, label: str
                       ) -> Callable[[Any], Optional[float]]:
    def extract(figure: Any) -> Optional[float]:
        for curve in figure.get(ruleset, ()):
            if curve.label == label and curve.points:
                return min(p.p99_latency_s for p in curve.points) * 1e6
        return None
    return extract


def _table4(cell: str, attr: str) -> Callable[[Any], Optional[float]]:
    def extract(result: Any) -> Optional[float]:
        return float(getattr(getattr(result, cell), attr))
    return extract


def _table5_savings(app: str) -> Callable[[Any], Optional[float]]:
    def extract(result: Any) -> Optional[float]:
        comparison = result.by_application().get(app)
        if comparison is None:
            return None
        return float(comparison.savings_fraction)
    return extract


# -- the target table --------------------------------------------------------
# Bands bracket the measured default-fidelity values in EXPERIMENTS.md;
# p99-slo ceilings sit well above the measured tails but below anything a
# broken queueing model would produce.

TARGETS: Dict[str, Tuple[SloTarget, ...]] = {
    "fig4": (
        SloTarget("udp64_throughput_ratio", ANCHOR,
                  "UDP micro (64B) SNIC/host throughput ratio "
                  "(measured ~0.18: 82% lower on the SNIC kernel stack)",
                  _fig4("udp:64", "throughput_ratio"), lo=0.10, hi=0.30),
        SloTarget("sha1_throughput_ratio", ANCHOR,
                  "SHA-1 accelerator speedup over host (measured ~1.84x)",
                  _fig4("crypto:sha1", "throughput_ratio"), lo=1.4, hi=2.4),
        SloTarget("rem_image_throughput_ratio", ANCHOR,
                  "REM file_image accelerator speedup (measured ~1.73x)",
                  _fig4("rem:file_image", "throughput_ratio"),
                  lo=1.3, hi=2.3),
        SloTarget("compression_txt_throughput_ratio", ANCHOR,
                  "Compression (txt) accelerator speedup (measured ~2.86x)",
                  _fig4("compression:txt", "throughput_ratio"),
                  lo=2.2, hi=3.6),
        SloTarget("udp64_p99_ratio", P99_SLO,
                  "UDP micro SNIC/host p99 penalty must stay under 4x",
                  _fig4("udp:64", "p99_ratio"), hi=4.0),
        SloTarget("rdma1024_p99_ratio", P99_SLO,
                  "RDMA micro p99 on the SNIC must not exceed the host's",
                  _fig4("rdma:1024", "p99_ratio"), hi=1.05),
    ),
    "fig6": (
        SloTarget("rem_image_efficiency_ratio", ANCHOR,
                  "REM file_image energy-efficiency ratio (measured ~2.40x)",
                  _fig6("rem:file_image"), lo=1.9, hi=3.1),
        SloTarget("compression_txt_efficiency_ratio", ANCHOR,
                  "Compression (txt) energy-efficiency ratio "
                  "(measured ~3.45x)",
                  _fig6("compression:txt"), lo=2.8, hi=4.2),
    ),
    "fig5": (
        SloTarget("accel_capacity_gbps", ANCHOR,
                  "regex accelerator throughput cap (engine calibrated "
                  "to ~50 Gb/s)",
                  _fig5_max_gbps("file_executable", "snic-accel"),
                  lo=45.0, hi=55.0),
        SloTarget("host8c_p99_floor_us", P99_SLO,
                  "host 8-core p99 below the knee (measured ~5.7 us) must "
                  "stay under 9 us",
                  _fig5_p99_floor_us("file_executable", "host-8c"), hi=9.0),
        SloTarget("accel_p99_floor_us", P99_SLO,
                  "accelerator p99 at capacity (batching latency, measured "
                  "~23.5 us) must stay under 35 us",
                  _fig5_p99_floor_us("file_executable", "snic-accel"),
                  hi=35.0),
    ),
    "table4": (
        SloTarget("host_p99_us", P99_SLO,
                  "OVS host p99 (measured 5.61 us, paper 5.07) must stay "
                  "under 9 us",
                  _table4("host", "p99_latency_us"), hi=9.0),
        SloTarget("snic_p99_us", P99_SLO,
                  "OVS SNIC p99 (measured 22.86 us, paper 17.43) must stay "
                  "under 35 us",
                  _table4("snic", "p99_latency_us"), hi=35.0),
        SloTarget("snic_power_w", ANCHOR,
                  "OVS-offloaded server power (measured ~254.5 W)",
                  _table4("snic", "average_power_w"), lo=230.0, hi=280.0),
    ),
    "table5": (
        SloTarget("compress_savings_fraction", ANCHOR,
                  "Compression TCO savings (measured ~0.66, paper 0.707)",
                  _table5_savings("Compress"), lo=0.50, hi=0.85),
    ),
}


def targets_for(experiment: str) -> Tuple[SloTarget, ...]:
    return TARGETS.get(experiment, ())


def evaluate(experiment: str, result: Any) -> List[SloFinding]:
    """Check every target of ``experiment`` against ``result``.

    Targets whose extractor returns ``None`` (smoke subsets dropped the
    key) or raises (result shape changed) are skipped, not failed.
    """
    findings: List[SloFinding] = []
    for target in targets_for(experiment):
        try:
            measured = target.extract(result)
        except Exception:  # noqa: BLE001 — observability must not break runs
            logger.debug("slo extractor %s.%s failed", experiment,
                         target.name, exc_info=True)
            continue
        if measured is None:
            continue
        findings.append(SloFinding(
            experiment=experiment,
            target=target.name,
            kind=target.kind,
            description=target.description,
            measured=measured,
            lo=target.lo,
            hi=target.hi,
            ok=target.check(measured),
        ))
    return findings


def observe(experiment: str, result: Any, *,
            smoke: bool = False) -> List[SloFinding]:
    """Evaluate, record as metrics, and log breaches; returns findings.

    Each measurement becomes a ``slo.<experiment>.<target>`` gauge;
    ``slo.evaluated``/``slo.breaches`` count totals.  Breaches log a
    structured warning (info at smoke fidelity, where drift is expected
    at tiny sample counts).  Never raises, never alters exit codes.
    """
    findings = evaluate(experiment, result)
    if not findings:
        return findings
    registry = metrics.registry()
    registry.counter(EVALUATED).inc(len(findings))
    breaches = [f for f in findings if not f.ok]
    if breaches:
        registry.counter(BREACHES).inc(len(breaches))
    for finding in findings:
        registry.gauge(f"slo.{experiment}.{finding.target}").set(
            finding.measured)
    level = logging.INFO if smoke else logging.WARNING
    for finding in breaches:
        logger.log(level, "SLO drift: %s", finding.describe())
    return findings


def block(findings: Sequence[SloFinding]) -> Optional[Dict[str, Any]]:
    """The non-verdict ``slo`` block for the JSON artifact envelope."""
    findings = list(findings)
    if not findings:
        return None
    return {
        "evaluated": len(findings),
        "breaches": sum(1 for f in findings if not f.ok),
        "targets": [
            {
                "name": f.target,
                "kind": f.kind,
                "measured": f.measured,
                "lo": f.lo,
                "hi": f.hi,
                "ok": f.ok,
                "description": f.description,
            }
            for f in findings
        ],
    }
