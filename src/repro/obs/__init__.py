"""Observability plane: typed metrics, exposition, fleet status, SLO burn.

The telemetry subsystem every experiment reports through:

* :mod:`metrics` — a typed metric registry (Counter, Gauge, Histogram
  with deterministic log-spaced buckets and exact quantiles, Timer).
  Worker-side delta snapshots merge parent-side in submission order,
  exactly like the flat counters always have, so every total is
  byte-identical at any ``--jobs N``.  :mod:`repro.core.instrument` is
  now a thin back-compat shim over the default registry.
* :mod:`openmetrics` — OpenMetrics text exposition and JSONL export
  (``--metrics-out`` on every verb), a strict exposition parser for CI,
  and an opt-in localhost ``/metrics`` HTTP endpoint
  (``--metrics-port``) so a long farm run can be scraped live.
* :mod:`slo` — the SLO burn monitor: evaluates each experiment's
  p99-vs-SLO targets and EXPERIMENTS.md anchor bands as metrics during
  a run, emitting structured warnings (and a non-verdict ``slo`` block
  in the JSON envelope) on drift.  Drift never changes an exit code or
  verdict.

Fleet progress rendering lives with the run farm in
:mod:`repro.runfarm.status` (the ``repro status`` verb).
"""

from . import metrics
from .metrics import Counter, Gauge, Histogram, MetricRegistry, Timer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Timer",
    "metrics",
]
