"""The declarative experiment registry: one spec layer for every artifact.

The paper's value is its *matrix* of artifacts — Figs. 4-7, Tables 4-5,
the five Key Observations — measured under one methodology.  Before this
module the repo re-encoded that matrix in four places (the CLI dispatch,
the report generator, the trace verb's smoke shrinking, and hand-kept
capability sets like ``CSV_COMMANDS``).  Now each experiment registers a
single :class:`Experiment` spec and every consumer — CLI verbs, the
EXPERIMENTS.md report, the flight-recorder ``trace`` verb, the CI smoke
matrix, and the CSV/JSON exporters — is a generic walk over the registry.

Adding an experiment is one registration::

    register(Experiment(
        name="myexp",
        title="My new study",
        runner=lambda ctx: run_myexp(samples=ctx.fidelity().samples,
                                     streams=ctx.streams,
                                     executor=ctx.executor),
        formatter=format_myexp,
        tiers=smoke_tier(samples=40, requests=2_500),
    ))

and ``python -m repro myexp`` (with ``--smoke``, ``--json``, ``--trace``,
``--jobs`` ...) plus the CI smoke matrix all exist with no further edits.

Fidelity tiers
--------------

Every spec declares at least the ``default`` and ``smoke`` tiers.  A
tier's ``samples``/``requests`` act as *caps* on the invocation-wide
``--samples``/``--requests`` values: the default tier usually leaves
them ``None`` (CLI fidelity passes through untouched, which keeps verb
output byte-identical to the pre-registry CLI), while the smoke tier
pins small caps plus optional ``keys``/``rates_gbps`` subsets so CI can
exercise the full path in seconds.

Dependencies
------------

Specs declare what they consume (``fig6`` consumes ``fig4``'s rows;
``observations`` consumes fig4+fig5+fig6; ``table5`` consumes
``table4``) and runners fetch those results with ``ctx.run(name)``.
Each :class:`ExperimentContext` memoizes results per invocation, so a
registry walk like ``repro report`` simulates each (function, platform,
fidelity) operating point at most once, no matter how many artifacts
consume it.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass, field
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.executor import ParallelExecutor
    from ..core.rng import RandomStreams

logger = logging.getLogger("repro.registry")

DEFAULT_TIER = "default"
SMOKE_TIER = "smoke"

# Degradation policies: what happens when the run farm quarantines some
# of an experiment's work units as poison pills.  ``abort`` experiments
# are load-bearing (their numbers feed other artifacts and the paper
# anchors) and must fail loudly; ``partial`` experiments complete the
# invocation with a partial-results verdict instead.
DEGRADE_ABORT = "abort"
DEGRADE_PARTIAL = "partial"

# The invocation-wide fidelity the CLI has always defaulted to; contexts
# built without explicit values (library use, tests) get the same numbers
# so `ctx.run("fig4")` reproduces `python -m repro fig4` exactly.
DEFAULT_SAMPLES = 200
DEFAULT_REQUESTS = 12_000


@dataclass(frozen=True)
class Fidelity:
    """One tier's fidelity knobs.

    ``samples``/``requests`` are *caps*: the resolved value is
    ``min(invocation value, cap)``, so ``--samples 20`` still shrinks a
    smoke run further, and ``None`` passes the invocation value through.
    ``keys``/``rates_gbps`` restrict an experiment's sweep axes (the
    Fig. 4 function list, the Fig. 5 rate ladder); ``params`` carries
    experiment-specific extras (e.g. ``n_packets`` for the mode study).
    ``engine`` optionally pins a tier to one probe engine
    (:mod:`repro.core.hybrid`); ``None`` inherits the invocation's
    ``--engine`` choice.
    """

    samples: Optional[int] = None
    requests: Optional[int] = None
    keys: Optional[Tuple[str, ...]] = None
    rates_gbps: Optional[Tuple[float, ...]] = None
    params: Mapping[str, Any] = field(default_factory=dict)
    engine: Optional[str] = None

    def resolve(self, samples: int, requests: int, smoke: bool,
                engine: Optional[str] = None) -> "ResolvedFidelity":
        from ..core import hybrid

        return ResolvedFidelity(
            samples=min(samples, self.samples) if self.samples else samples,
            requests=(min(requests, self.requests)
                      if self.requests else requests),
            keys=self.keys,
            rates_gbps=self.rates_gbps,
            smoke=smoke,
            params=dict(self.params),
            engine=hybrid.resolve_engine(self.engine or engine),
        )


@dataclass(frozen=True)
class ResolvedFidelity:
    """A tier resolved against the invocation's ``--samples/--requests``."""

    samples: int
    requests: int
    keys: Optional[Tuple[str, ...]]
    rates_gbps: Optional[Tuple[float, ...]]
    smoke: bool
    params: Dict[str, Any]
    engine: str = "hybrid"


def smoke_tier(samples: int = 40, requests: int = 2_500,
               **smoke_fields: Any) -> Dict[str, Fidelity]:
    """The common two-tier layout: untouched default + capped smoke."""
    return {
        DEFAULT_TIER: Fidelity(),
        SMOKE_TIER: Fidelity(samples=samples, requests=requests,
                             **smoke_fields),
    }


@dataclass(frozen=True)
class Experiment:
    """Everything the system needs to know about one artifact.

    ``runner`` takes an :class:`ExperimentContext` and returns the result
    object; ``formatter`` renders it as the verb's text output; ``chart``
    optionally appends an ASCII figure; ``csv_writer``/``to_json`` give
    the artifact machine-readable exports (``--csv`` support is *derived*
    from ``csv_writer`` being present); ``schema`` declares the JSON
    artifact's shape for CI validation; ``depends`` names the registered
    experiments whose results the runner consumes via ``ctx.run``;
    ``verdict`` maps a result to a process exit code (the observations
    gate) — applied only at default fidelity, since smoke runs validate
    plumbing, not science.

    Run-farm fields: ``unit_granularity`` documents what one schedulable
    work unit of this experiment is (manifest rows and timeouts apply at
    that granularity), and ``degradation`` declares the policy when the
    supervisor quarantines units — :data:`DEGRADE_ABORT` propagates the
    failure (load-bearing artifacts), :data:`DEGRADE_PARTIAL` lets the
    invocation complete with a :class:`PartialResult` verdict.
    """

    name: str
    title: str
    runner: Callable[["ExperimentContext"], Any]
    formatter: Callable[[Any], str]
    tiers: Mapping[str, Fidelity] = field(default_factory=smoke_tier)
    chart: Optional[Callable[[Any], str]] = None
    csv_writer: Optional[Callable[[IO[str], Any], int]] = None
    to_json: Optional[Callable[[Any], Any]] = None
    schema: Optional[Mapping[str, Any]] = None
    depends: Tuple[str, ...] = ()
    verdict: Optional[Callable[[Any], int]] = None
    description: str = ""
    unit_granularity: str = ""
    degradation: str = DEGRADE_ABORT

    def __post_init__(self) -> None:
        missing = {DEFAULT_TIER, SMOKE_TIER} - set(self.tiers)
        if missing:
            raise ValueError(
                f"experiment {self.name!r} must declare tiers "
                f"{sorted(missing)} (has {sorted(self.tiers)})"
            )
        if self.degradation not in (DEGRADE_ABORT, DEGRADE_PARTIAL):
            raise ValueError(
                f"experiment {self.name!r} has unknown degradation "
                f"policy {self.degradation!r} "
                f"(expected {DEGRADE_ABORT!r} or {DEGRADE_PARTIAL!r})"
            )

    @property
    def supports_csv(self) -> bool:
        return self.csv_writer is not None

    def tier(self, name: str) -> Fidelity:
        try:
            return self.tiers[name]
        except KeyError:
            raise KeyError(
                f"experiment {self.name!r} has no fidelity tier {name!r} "
                f"(tiers: {sorted(self.tiers)})"
            ) from None

    def render(self, result: Any) -> str:
        """The verb's full stdout: formatted text plus optional chart."""
        text = self.formatter(result)
        if self.chart is not None:
            text = f"{text}\n\n{self.chart(result)}"
        return text


@dataclass(frozen=True)
class PartialResult:
    """Sentinel result for an experiment degraded by quarantined units.

    When the run-farm supervisor benches poison-pill units and the
    spec's policy is :data:`DEGRADE_PARTIAL`, ``ctx.run`` resolves to
    this instead of raising — the invocation (a CLI verb, the report
    walk) completes, renders :meth:`notice` where the artifact would
    have gone, and the JSON artifact is flagged ``partial``.
    """

    experiment: str
    quarantined: Tuple[str, ...]
    total_units: int
    message: str

    def notice(self) -> str:
        units = ", ".join(self.quarantined[:8])
        more = ("" if len(self.quarantined) <= 8
                else f" (+{len(self.quarantined) - 8} more)")
        return (
            f"PARTIAL RESULTS: experiment '{self.experiment}' could not "
            f"complete {len(self.quarantined)}/{self.total_units} work "
            f"units;\nquarantined after exhausting retry attempts: "
            f"{units}{more}.\nCompleted units are preserved in the run "
            f"directory's artifact store — fix the cause and re-run with "
            f"--resume to fill the gaps."
        )


class ExperimentContext:
    """Threads streams/executor/fidelity uniformly into every runner and
    memoizes results per invocation.

    One context is built per CLI invocation (and one per report/trace
    walk), so anything two artifacts share — fig4's rows feeding fig6,
    table4 feeding table5's REM line — is computed exactly once.  The
    measurement-level content-addressed cache still sits underneath for
    cross-verb and cross-process reuse; this layer removes even the
    cache lookups for whole-artifact reuse within one invocation.
    """

    def __init__(
        self,
        streams: Optional["RandomStreams"] = None,
        executor: Optional["ParallelExecutor"] = None,
        tier: str = DEFAULT_TIER,
        samples: int = DEFAULT_SAMPLES,
        requests: int = DEFAULT_REQUESTS,
        engine: Optional[str] = None,
    ):
        from ..core import hybrid
        from ..core.executor import ParallelExecutor
        from ..core.rng import RandomStreams

        self.streams = streams if streams is not None else RandomStreams(2023)
        self.executor = executor if executor is not None else ParallelExecutor(1)
        self.tier = tier
        self.samples = samples
        self.requests = requests
        self.engine = hybrid.resolve_engine(engine)
        self._results: Dict[str, Any] = {}
        self._running: List[str] = []
        self._current: List[Experiment] = []
        # SLO-drift findings per completed experiment (repro.obs.slo).
        # Purely observational: warnings and JSON-artifact annotations,
        # never verdicts or exit codes.
        self.slo_findings: Dict[str, List[Any]] = {}

    @property
    def seed(self) -> int:
        return self.streams.root_seed

    @property
    def smoke(self) -> bool:
        return self.tier == SMOKE_TIER

    def fidelity(self, spec: Optional[Experiment] = None) -> ResolvedFidelity:
        """The active tier of ``spec`` (default: the running experiment)
        resolved against the invocation fidelity."""
        if spec is None:
            if not self._current:
                raise RuntimeError(
                    "ctx.fidelity() without an experiment only works "
                    "inside a runner"
                )
            spec = self._current[-1]
        return spec.tier(self.tier).resolve(self.samples, self.requests,
                                            smoke=self.smoke,
                                            engine=self.engine)

    def run(self, name: str) -> Any:
        """The (memoized) result of the registered experiment ``name``.

        If the run-farm supervisor quarantined units under this runner
        and the spec's degradation policy is :data:`DEGRADE_PARTIAL`,
        the memoized result is a :class:`PartialResult` instead of a
        raised error; :data:`DEGRADE_ABORT` specs propagate.
        """
        if name in self._results:
            return self._results[name]
        spec = get(name)
        if name in self._running:
            cycle = " -> ".join(self._running + [name])
            raise RuntimeError(f"experiment dependency cycle: {cycle}")
        self._running.append(name)
        self._current.append(spec)
        try:
            result = spec.runner(self)
        except Exception as exc:
            from ..runfarm.supervisor import QuarantinedUnitError

            if (isinstance(exc, QuarantinedUnitError)
                    and spec.degradation == DEGRADE_PARTIAL):
                result = PartialResult(
                    experiment=name,
                    quarantined=tuple(exc.quarantined_units()),
                    total_units=exc.total,
                    message=str(exc),
                )
            else:
                raise
        finally:
            self._running.pop()
            self._current.pop()
        self._results[name] = result
        if not isinstance(result, PartialResult):
            # SLO burn check on the completed artifact.  Best-effort by
            # design: a telemetry bug must never take down a run.
            try:
                from ..obs import slo

                findings = slo.observe(name, result, smoke=self.smoke)
            except Exception:  # pragma: no cover — defensive
                logger.debug("slo evaluation failed for %s", name,
                             exc_info=True)
                findings = []
            if findings:
                self.slo_findings[name] = list(findings)
        return result

    def has_result(self, name: str) -> bool:
        return name in self._results


# ---------------------------------------------------------------------------
# The registry proper
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Experiment] = {}
_ORDER: List[str] = []
_LOCK = threading.Lock()
_LOADED = False


def register(spec: Experiment) -> Experiment:
    """Add ``spec`` to the registry (idempotent re-registration allowed,
    so test reloads don't trip duplicate checks)."""
    with _LOCK:
        if spec.name not in _REGISTRY:
            _ORDER.append(spec.name)
        _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no registered experiment {name!r} (registered: {names()})"
        ) from None


# The paper's artifact order, used by the CLI verb list, the report
# walk, and the CI smoke matrix.  Registration order can't serve here:
# it follows module-import side effects (the experiments package imports
# fig4 before table4 regardless of artifact numbering).  Experiments not
# named below sort after these, in registration order.
ARTIFACT_ORDER = (
    "fig4", "fig5", "fig6", "fig7", "table4", "table5", "observations",
    "tables", "strategy1", "modes", "sensitivity", "microburst", "faults",
    "cluster",
)


def names() -> List[str]:
    """Registered experiment names in canonical artifact order."""
    load_all()
    rank = {name: index for index, name in enumerate(ARTIFACT_ORDER)}
    known = [name for name in ARTIFACT_ORDER if name in _REGISTRY]
    extra = [name for name in _ORDER if name not in rank]
    return known + extra


def all_experiments() -> List[Experiment]:
    return [_REGISTRY[name] for name in names()]


def csv_capable() -> List[str]:
    """Verbs whose spec carries a CSV writer (replaces ``CSV_COMMANDS``)."""
    return [spec.name for spec in all_experiments() if spec.supports_csv]


def load_all() -> None:
    """Import every module that registers specs (idempotent).

    Registration happens at import time in each experiment module; this
    just guarantees they have all been imported before a registry walk.
    """
    global _LOADED
    if _LOADED:
        return
    with _LOCK:
        if _LOADED:
            return
        _LOADED = True
    # Import order is registration order: the paper's artifact order.
    from . import fig4, fig5, fig6, fig7, table4, table5  # noqa: F401
    from . import observations  # noqa: F401
    from ..analysis import tables  # noqa: F401
    from . import strategy1, modes, sensitivity, microburst  # noqa: F401
    from . import faults  # noqa: F401
    from . import cluster  # noqa: F401


def reset_for_tests() -> None:
    """Drop all registrations so a test can exercise load_all afresh."""
    global _LOADED
    with _LOCK:
        _REGISTRY.clear()
        _ORDER.clear()
        _LOADED = False


def dependency_order(targets: Optional[Sequence[str]] = None) -> List[str]:
    """Topologically sorted experiment names (dependencies first)."""
    load_all()
    order: List[str] = []
    seen: Dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(name: str, chain: Tuple[str, ...]) -> None:
        state = seen.get(name)
        if state == 1:
            return
        if state == 0:
            cycle = " -> ".join(chain + (name,))
            raise RuntimeError(f"experiment dependency cycle: {cycle}")
        seen[name] = 0
        for dep in get(name).depends:
            visit(dep, chain + (name,))
        seen[name] = 1
        order.append(name)

    for name in (targets if targets is not None else names()):
        visit(name, ())
    return order
