"""Table 4 and Figure 7: replaying the hyperscaler trace through REM.

The trace averages 0.76 Gb/s (Fig. 7); both platforms sustain it, but the
accelerator's batching adds ~3x p99 latency, and offloading saves only a
handful of watts because the server's idle power dominates (§5.1) — the
SLO-vs-TCO tension in one table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..core.cache import cache_key, get_cache
from ..core.executor import ParallelExecutor, WorkUnit
from ..core.rng import RandomStreams
from ..core.units import gbps_to_bytes_per_second
from ..power.models import ServerPowerModel, SnicPowerModel
from ..workloads.traces import RateTrace, hyperscaler_trace
from .measurement import (
    ACCEL_PLATFORM,
    component_load,
    run_fixed_rate,
)
from .profiles import get_profile
from .registry import Experiment, ExperimentContext, register, smoke_tier


@dataclass
class Table4Cell:
    platform: str
    throughput_gbps: float
    p99_latency_us: float
    average_power_w: float


@dataclass
class Table4Result:
    host: Table4Cell
    snic: Table4Cell
    trace_average_gbps: float

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            cell.platform: {
                "throughput_gbps": cell.throughput_gbps,
                "p99_latency_us": cell.p99_latency_us,
                "average_power_w": cell.average_power_w,
            }
            for cell in (self.host, self.snic)
        }


def _measure_platform(
    profile, platform: str, trace: RateTrace, streams: RandomStreams,
    n_requests: int,
) -> Table4Cell:
    """Replay the trace: weight fixed-rate runs by the trace's rate mix.

    The trace is bucketed into rate bins; each bin contributes its time
    share to throughput/power and its packet share to the latency mix —
    equivalent to a full replay at far lower cost.
    """
    bins = np.percentile(trace.gbps, [10, 30, 50, 70, 90, 99])
    rates_gbps = np.unique(np.round(bins, 3))
    # Assign each trace interval to its nearest bin; the bin weight is the
    # fraction of trace time it represents.
    assignment = np.argmin(np.abs(trace.gbps[:, None] - rates_gbps[None, :]), axis=1)
    weights = np.array(
        [np.mean(assignment == index) for index in range(len(rates_gbps))]
    )
    weights = np.maximum(weights, 1e-9)
    weights = weights / weights.sum()
    cells = []
    for gbps in rates_gbps:
        rate = gbps_to_bytes_per_second(float(gbps)) / profile.wire_bytes
        metrics = run_fixed_rate(profile, platform, rate, streams, n_requests)
        cells.append(metrics)
    throughput = float(sum(w * m.goodput_gbps for w, m in zip(weights, cells)))
    # p99 of the pooled latency mix ~ weighted by packet share
    packet_weights = weights * np.array([m.completed_rate for m in cells])
    packet_weights = packet_weights / packet_weights.sum()
    p99 = float(sum(w * m.latency_p99 for w, m in zip(packet_weights, cells)))
    mean_rate = float(sum(w * m.completed_rate for w, m in zip(weights, cells)))
    load = component_load(profile, platform, mean_rate)
    power = ServerPowerModel().power(load)
    return Table4Cell(
        platform=platform,
        throughput_gbps=throughput,
        p99_latency_us=p99 * 1e6,
        average_power_w=power,
    )


def run_table4(
    trace: Optional[RateTrace] = None,
    samples: int = 200,
    n_requests: int = 8_000,
    streams: Optional[RandomStreams] = None,
    executor: Optional[ParallelExecutor] = None,
) -> Table4Result:
    """REM on the hyperscaler trace: host CPU vs SNIC accelerator.

    Default-trace replays are memoized on (fidelity, seed) — the report
    generator and Table 5 both need this result, and it is a pure
    function of those inputs (all substreams derive from the root seed).
    The two platform replays are independent work units, so a shared
    ``executor`` fans them out with output identical to the serial run.
    """
    streams = streams or RandomStreams()
    if trace is not None:
        return _compute_table4(trace, samples, n_requests, streams, executor)
    store = get_cache()
    key = cache_key("table4", samples, n_requests, streams.root_seed)
    found, result = store.get(key)
    if found:
        return result
    result = _compute_table4(
        hyperscaler_trace(), samples, n_requests,
        RandomStreams(streams.root_seed), executor,
    )
    store.put(key, result)
    return result


def _compute_platform_cell(
    platform: str, trace: RateTrace, samples: int, n_requests: int, seed: int
) -> Table4Cell:
    """Picklable work unit: one platform's trace replay.

    Rebuilds the profile and a fresh ``RandomStreams(seed)``; every rate
    bin derives its substream from ``(seed, key:platform:rate)``, so the
    cell is independent of which process computes it.
    """
    profile = get_profile("rem:file_executable@mtu", samples=samples)
    return _measure_platform(profile, platform, trace, RandomStreams(seed),
                             n_requests)


def _compute_table4(
    trace: RateTrace,
    samples: int,
    n_requests: int,
    streams: RandomStreams,
    executor: Optional[ParallelExecutor] = None,
) -> Table4Result:
    executor = executor or ParallelExecutor(1)
    units = [
        WorkUnit(name=f"table4:{platform}", fn=_compute_platform_cell,
                 args=(platform, trace, samples, n_requests,
                       streams.root_seed))
        for platform in ("host", ACCEL_PLATFORM)
    ]
    host, snic = executor.map(units)
    host.platform, snic.platform = "host", "snic"
    return Table4Result(host=host, snic=snic, trace_average_gbps=trace.average_gbps())


def format_table4(result: Table4Result) -> str:
    lines = [
        f"{'':<22} {'Host Processing':>16} {'SNIC Processing':>16}",
        f"{'Throughput (Gb/s)':<22} {result.host.throughput_gbps:>16.2f} "
        f"{result.snic.throughput_gbps:>16.2f}",
        f"{'p99 Latency (us)':<22} {result.host.p99_latency_us:>16.2f} "
        f"{result.snic.p99_latency_us:>16.2f}",
        f"{'Average Power (W)':<22} {result.host.average_power_w:>16.2f} "
        f"{result.snic.average_power_w:>16.2f}",
    ]
    return "\n".join(lines)


def _table4_runner(ctx: ExperimentContext) -> Table4Result:
    fid = ctx.fidelity()
    return run_table4(samples=fid.samples, n_requests=fid.requests,
                      streams=ctx.streams, executor=ctx.executor)


_TABLE4_CELL_SCHEMA = {
    "type": "object",
    "required": ["throughput_gbps", "p99_latency_us", "average_power_w"],
    "properties": {
        "throughput_gbps": {"type": "number"},
        "p99_latency_us": {"type": "number"},
        "average_power_w": {"type": "number"},
    },
}

register(Experiment(
    name="table4",
    title="Table 4: REM replaying the hyperscaler trace",
    description="host CPU vs SNIC accelerator sustaining the Fig. 7 "
                "trace: throughput, p99 latency, and average power",
    runner=_table4_runner,
    formatter=format_table4,
    to_json=lambda result: {
        "cells": result.as_dict(),
        "trace_average_gbps": result.trace_average_gbps,
    },
    schema={
        "type": "object",
        "required": ["cells", "trace_average_gbps"],
        "properties": {
            "cells": {
                "type": "object",
                "required": ["host", "snic"],
                "properties": {"host": _TABLE4_CELL_SCHEMA,
                               "snic": _TABLE4_CELL_SCHEMA},
            },
            "trace_average_gbps": {"type": "number"},
        },
    },
    tiers=smoke_tier(),
    unit_granularity="one platform's full trace replay",
))
