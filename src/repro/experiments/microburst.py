"""Microburst tolerance study (extension of §5.1).

The Fig. 7 trace is bursty: its p99 rate is several times its mean, and
Zhang et al. (cited by the paper) show datacenter traffic microbursts at
sub-millisecond scales.  Average-rate provisioning therefore understates
tail latency.  This study drives REM with on/off traffic — a fixed mean
rate delivered in bursts of increasing peak-to-mean ratio — and measures
how the host software path and the accelerator path absorb them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.executor import ParallelExecutor, WorkUnit
from ..core.queueing import outcome_to_metrics, simulate_batch_server, simulate_sharded
from ..core.rng import RandomStreams
from ..core.units import gbps_to_bytes_per_second
from ..calibration import ACCELERATORS, PLATFORMS
from .measurement import (
    ACCEL_PLATFORM,
    BATCH_TIMEOUT_S,
    _add_fixed_latency,
    accel_per_item_seconds,
    cpu_cores,
    cpu_service_seconds,
)
from .profiles import FunctionProfile, get_profile
from .registry import (
    DEGRADE_PARTIAL,
    Experiment,
    ExperimentContext,
    register,
    smoke_tier,
)


@dataclass
class BurstPoint:
    platform: str
    peak_to_mean: float
    mean_gbps: float
    p99_latency_s: float
    loss_fraction: float


def _burst_arrivals(
    mean_rate: float,
    peak_to_mean: float,
    n: int,
    rng: np.random.Generator,
    burst_period_s: float = 200e-6,
) -> np.ndarray:
    """On/off arrival times with the given mean rate and burst intensity.

    During the 'on' share (1/peak_to_mean of each period) packets arrive
    at peak_to_mean x the mean rate; the rest of the period is silent.
    """
    if peak_to_mean < 1.0:
        raise ValueError("peak-to-mean must be >= 1")
    on_fraction = 1.0 / peak_to_mean
    peak_rate = mean_rate * peak_to_mean
    arrivals = np.empty(n)
    period_start = 0.0
    index = 0
    while index < n:
        on_end = period_start + burst_period_s * on_fraction
        t = period_start
        while index < n:
            t += float(rng.exponential(1.0 / peak_rate))
            if t >= on_end:
                break
            arrivals[index] = t
            index += 1
        period_start += burst_period_s
    return arrivals[:n]


def _measure(
    profile: FunctionProfile,
    platform: str,
    mean_gbps: float,
    peak_to_mean: float,
    streams: RandomStreams,
    n_requests: int,
) -> BurstPoint:
    rng = streams.stream(f"burst:{platform}:{peak_to_mean}")
    mean_rate = gbps_to_bytes_per_second(mean_gbps) / profile.wire_bytes
    arrivals = _burst_arrivals(mean_rate, peak_to_mean, n_requests, rng)
    gaps = np.diff(np.concatenate([[0.0], arrivals]))

    if platform == ACCEL_PLATFORM:
        # reuse the batch server against the bursty gap sequence by
        # resampling its arrival machinery: emulate with per-gap pacing
        engine = ACCELERATORS[profile.accel_engine]
        per_item = accel_per_item_seconds(profile)
        # batch simulation over explicit arrivals
        from ..core.queueing import QueueOutcome

        sojourns = np.empty(n_requests)
        services = np.full(n_requests, per_item)
        free_at = 0.0
        i = 0
        while i < n_requests:
            deadline = arrivals[i] + BATCH_TIMEOUT_S
            end = i + 1
            while (end < n_requests and end - i < engine.max_batch
                   and arrivals[end] <= deadline):
                end += 1
            dispatch = max(deadline if end - i < engine.max_batch
                           else arrivals[end - 1], free_at)
            finish = dispatch + engine.setup_latency_s + (end - i) * per_item
            sojourns[i:end] = finish - arrivals[i:end]
            free_at = finish
            i = end
        outcome = QueueOutcome(sojourns=sojourns, services=services,
                               arrivals=arrivals)
        outcome = _add_fixed_latency(outcome, profile, platform, rng)
        metrics = outcome_to_metrics(outcome, mean_rate, profile.wire_bytes)
        loss = 0.0
    else:
        services = cpu_service_seconds(profile, platform)
        cores = cpu_cores(profile, platform)
        calibration = PLATFORMS[platform]
        limit = calibration.stacks[profile.stack].queue_limit_s if profile.stack else 2e-3
        # shard the bursty arrivals round-robin
        shard_gaps = gaps * cores  # thinned stream approximation
        from ..core.queueing import QueueOutcome

        service_draw = rng.choice(services, size=n_requests)
        kept_s, kept_a, dropped = [], [], 0
        backlog, prev = 0.0, 0.0
        t = 0.0
        for k in range(n_requests):
            t += shard_gaps[k]
            backlog = max(0.0, backlog - (t - prev))
            prev = t
            if backlog > limit:
                dropped += 1
                continue
            kept_s.append(backlog + service_draw[k])
            kept_a.append(t)
            backlog += service_draw[k]
        outcome = QueueOutcome(
            sojourns=np.asarray(kept_s), services=service_draw[: len(kept_s)],
            arrivals=np.asarray(kept_a), dropped=dropped,
        )
        outcome = _add_fixed_latency(outcome, profile, platform, rng)
        metrics = outcome_to_metrics(outcome, mean_rate, profile.wire_bytes,
                                     cores=cores)
        loss = dropped / n_requests

    return BurstPoint(
        platform=platform,
        peak_to_mean=peak_to_mean,
        mean_gbps=mean_gbps,
        p99_latency_s=metrics.latency_p99,
        loss_fraction=loss,
    )


def _burst_point(
    platform: str,
    mean_gbps: float,
    peak_to_mean: float,
    seed: int,
    samples: int,
    n_requests: int,
) -> BurstPoint:
    """Picklable work unit: one (platform, burst-intensity) cell.

    Rebuilds the profile and a fresh ``RandomStreams(seed)``; the cell's
    draws come from the ``burst:{platform}:{ratio}`` substream, a name no
    other cell uses, so results are schedule-independent.
    """
    profile = get_profile("rem:file_executable@mtu", samples=samples)
    return _measure(profile, platform, mean_gbps, peak_to_mean,
                    RandomStreams(seed), n_requests)


def run_microburst_study(
    mean_gbps: float = 20.0,
    peak_to_mean_ratios: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    samples: int = 150,
    n_requests: int = 12_000,
    streams: Optional[RandomStreams] = None,
    executor: Optional[ParallelExecutor] = None,
) -> Dict[str, List[BurstPoint]]:
    """REM under bursty load: host (8 cores) vs the accelerator.

    Every (ratio, platform) cell is an independent work unit, so a
    shared ``executor`` fans them out with output identical to the
    serial run.
    """
    streams = streams or RandomStreams(77)
    seed = streams.root_seed
    executor = executor or ParallelExecutor(1)
    grid = [(float(ratio), platform)
            for ratio in peak_to_mean_ratios
            for platform in ("host", ACCEL_PLATFORM)]
    units = [
        WorkUnit(name=f"microburst:{platform}:{ratio:g}", fn=_burst_point,
                 args=(platform, mean_gbps, ratio, seed, samples, n_requests))
        for ratio, platform in grid
    ]
    points = executor.map(units)
    results: Dict[str, List[BurstPoint]] = {"host": [], ACCEL_PLATFORM: []}
    for (_, platform), point in zip(grid, points):
        results[platform].append(point)
    return results


def format_microburst(results: Dict[str, List[BurstPoint]]) -> str:
    lines = [
        f"{'peak/mean':>10} {'host p99 us':>12} {'host loss':>10} "
        f"{'accel p99 us':>13}"
    ]
    for host_point, accel_point in zip(results["host"], results[ACCEL_PLATFORM]):
        lines.append(
            f"{host_point.peak_to_mean:>10.0f} "
            f"{host_point.p99_latency_s*1e6:>12.1f} "
            f"{host_point.loss_fraction:>10.2%} "
            f"{accel_point.p99_latency_s*1e6:>13.1f}"
        )
    return "\n".join(lines)


def _microburst_runner(ctx: ExperimentContext) -> Dict[str, List[BurstPoint]]:
    fid = ctx.fidelity()
    return run_microburst_study(samples=fid.samples, n_requests=fid.requests,
                                streams=ctx.streams, executor=ctx.executor)


register(Experiment(
    name="microburst",
    title="Microburst tolerance: bursty REM load, host vs accelerator",
    description="REM at a fixed mean rate delivered in on/off bursts of "
                "increasing peak-to-mean ratio",
    runner=_microburst_runner,
    formatter=format_microburst,
    to_json=lambda results: {
        platform: [
            {"peak_to_mean": p.peak_to_mean, "mean_gbps": p.mean_gbps,
             "p99_latency_s": p.p99_latency_s,
             "loss_fraction": p.loss_fraction}
            for p in points
        ]
        for platform, points in results.items()
    },
    schema={
        "type": "object",
        "required": ["host", ACCEL_PLATFORM],
        "properties": {
            platform: {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["peak_to_mean", "mean_gbps",
                                 "p99_latency_s", "loss_fraction"],
                },
            }
            for platform in ("host", ACCEL_PLATFORM)
        },
    },
    tiers=smoke_tier(),
    unit_granularity="one (platform, peak-to-mean) burst run",
    degradation=DEGRADE_PARTIAL,
))
