"""Figure 5: REM throughput and p99 latency versus offered packet rate.

MTU-size packets; the host software matcher at 1, 4, and 8 cores, and the
SNIC REM accelerator, for the file_image and file_executable rule sets.
This is where Key Observation 3 (the accelerator's ~50 Gbps cap) and the
host's rule-set-dependent latency wall (file_image's p99 explodes past
~40 Gbps, Key Observation 4) come from.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core import hybrid
from ..core.cache import cache_key
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from ..core.units import gbps_to_bytes_per_second
from .measurement import ACCEL_PLATFORM, run_fixed_rate, run_validated_ladder
from .profiles import FunctionProfile, get_profile
from .registry import Experiment, ExperimentContext, register, smoke_tier

logger = logging.getLogger("repro.fig5")

DEFAULT_RATES_GBPS = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 60, 70, 80, 90, 100)
HOST_CORE_COUNTS = (1, 4, 8)


@dataclass
class Fig5Point:
    offered_gbps: float
    achieved_gbps: float
    p99_latency_s: float
    saturated: bool


@dataclass
class Fig5Series:
    label: str
    ruleset: str
    platform: str
    cores: Optional[int]
    points: List[Fig5Point] = field(default_factory=list)

    def max_achieved_gbps(self) -> float:
        return max((p.achieved_gbps for p in self.points), default=0.0)

    def p99_at_max(self) -> float:
        best = max(self.points, key=lambda p: p.achieved_gbps)
        return best.p99_latency_s

    def knee_gbps(self, p99_wall_s: float = 100e-6) -> float:
        """Highest offered rate whose p99 stays under the wall."""
        good = [p.offered_gbps for p in self.points if p.p99_latency_s <= p99_wall_s]
        return max(good, default=0.0)


def _rate_for_gbps(profile: FunctionProfile, gbps: float) -> float:
    return gbps_to_bytes_per_second(gbps) / profile.wire_bytes


def measure_series(
    profile: FunctionProfile,
    platform: str,
    label: str,
    rates_gbps: Sequence[float],
    streams: RandomStreams,
    cores: Optional[int] = None,
    n_requests: int = 12_000,
    engine: Optional[str] = None,
) -> Fig5Series:
    if cores is not None:
        profile = replace(profile, cores={**profile.cores, platform: cores})
    series = Fig5Series(
        label=label, ruleset=profile.key, platform=platform, cores=cores
    )
    rates = [_rate_for_gbps(profile, float(gbps)) for gbps in rates_gbps]
    if hybrid.resolve_engine(engine) == hybrid.ENGINE_HYBRID:
        # One batched kernel call per curve covering the knee window and
        # the low/high spot checks; far-from-knee rates are answered
        # analytically once the spot checks validate within tolerance
        # (see measurement.run_validated_ladder).
        per_rate = run_validated_ladder(profile, platform, rates, streams,
                                        n_requests)
    else:
        # Legacy per-probe loop: each rate draws its own substream, which
        # is the byte-identical pre-hybrid behaviour.
        per_rate = [
            run_fixed_rate(profile, platform, rate, streams, n_requests)
            for rate in rates
        ]
    for gbps, metrics in zip(rates_gbps, per_rate):
        series.points.append(
            Fig5Point(
                offered_gbps=float(gbps),
                achieved_gbps=metrics.goodput_gbps,
                p99_latency_s=metrics.latency_p99,
                saturated=not metrics.sustained,
            )
        )
    return series


def compute_series(
    ruleset: str,
    platform: str,
    label: str,
    cores: Optional[int],
    rates_gbps: Sequence[float],
    samples: int,
    n_requests: int,
    seed: int,
    engine: Optional[str] = None,
) -> Fig5Series:
    """Picklable work unit: one Fig. 5 curve from primitives.

    Rebuilds the profile and a fresh ``RandomStreams(seed)``; every rate
    point derives its substream from ``(seed, key:platform:rate)`` (or a
    single shared ladder substream under the hybrid engine), so the
    curve is independent of which process — or position in the batch —
    computes it.
    """
    profile = get_profile(f"rem:{ruleset}@mtu", samples=samples)
    return measure_series(
        profile, platform, label, tuple(rates_gbps), RandomStreams(seed),
        cores=cores, n_requests=n_requests, engine=engine,
    )


def _series_cache_key(
    ruleset: str,
    platform: str,
    cores: Optional[int],
    rates_gbps: Sequence[float],
    samples: int,
    n_requests: int,
    seed: int,
    engine: str,
) -> str:
    return cache_key("fig5-series", ruleset, platform, cores,
                     tuple(float(r) for r in rates_gbps), samples,
                     n_requests, seed, engine)


def run_fig5(
    rulesets: Sequence[str] = ("file_image", "file_executable"),
    rates_gbps: Sequence[float] = DEFAULT_RATES_GBPS,
    samples: int = 200,
    n_requests: int = 12_000,
    streams: Optional[RandomStreams] = None,
    jobs: int = 1,
    executor: Optional[ParallelExecutor] = None,
    engine: Optional[str] = None,
) -> Dict[str, List[Fig5Series]]:
    """All Fig. 5 curves, keyed by rule set.

    Each (ruleset, platform, cores) curve is an independent work unit;
    ``jobs=N`` fans them out with output identical to the serial run,
    and whole curves are memoized in the result cache.  The probe engine
    is resolved here and travels inside the unit args so workers never
    depend on an inherited process global.
    """
    streams = streams or RandomStreams()
    seed = streams.root_seed
    executor = executor or ParallelExecutor(jobs)
    engine = hybrid.resolve_engine(engine)

    specs = []  # (ruleset, platform, label, cores)
    for ruleset in rulesets:
        for cores in HOST_CORE_COUNTS:
            specs.append((ruleset, "host", f"host-{cores}c", cores))
        specs.append((ruleset, ACCEL_PLATFORM, "snic-accel", None))
    units = [
        WorkUnit(
            name=f"fig5:{ruleset}:{label}",
            fn=compute_series,
            args=(ruleset, platform, label, cores, tuple(rates_gbps),
                  samples, n_requests, seed, engine),
        )
        for ruleset, platform, label, cores in specs
    ]
    keys = [
        _series_cache_key(ruleset, platform, cores, rates_gbps, samples,
                          n_requests, seed, engine)
        for ruleset, platform, _, cores in specs
    ]
    logger.info("fig5: measuring %d curves x %d rates (jobs=%d)",
                len(units), len(rates_gbps), executor.jobs)
    series = map_cached(executor, units, keys)

    figure: Dict[str, List[Fig5Series]] = {ruleset: [] for ruleset in rulesets}
    for (ruleset, _, _, _), curve in zip(specs, series):
        figure[ruleset].append(curve)
    return figure


def format_fig5(figure: Dict[str, List[Fig5Series]]) -> str:
    lines = []
    for ruleset, curves in figure.items():
        lines.append(f"== {ruleset} ==")
        header = "offered_gbps " + " ".join(f"{c.label:>22}" for c in curves)
        lines.append(header + "   (achieved_gbps / p99_us)")
        for index, point in enumerate(curves[0].points):
            cells = []
            for curve in curves:
                p = curve.points[index]
                cells.append(f"{p.achieved_gbps:>10.1f}/{p.p99_latency_s*1e6:>9.1f}")
            lines.append(f"{point.offered_gbps:>12.0f} " + " ".join(c for c in cells))
    return "\n".join(lines)


# A short rate ladder that still brackets the accelerator's ~50 Gb/s cap.
SMOKE_RATES_GBPS = (10, 30, 50)


def _fig5_runner(ctx: ExperimentContext) -> Dict[str, List[Fig5Series]]:
    fid = ctx.fidelity()
    kwargs = dict(samples=fid.samples, n_requests=fid.requests,
                  streams=ctx.streams, executor=ctx.executor,
                  engine=fid.engine)
    if fid.rates_gbps is not None:
        kwargs["rates_gbps"] = fid.rates_gbps
    return run_fig5(**kwargs)


def _fig5_chart(figure: Dict[str, List[Fig5Series]]) -> str:
    from ..analysis.plots import fig5_chart

    return "\n\n".join(
        f"[{ruleset}]\n{fig5_chart(curves)}"
        for ruleset, curves in figure.items()
    )


def _write_fig5_csv(stream, figure: Dict[str, List[Fig5Series]]) -> int:
    from ..analysis.export import write_fig5_csv

    return write_fig5_csv(stream, figure)


FIG5_SERIES_SCHEMA = {
    "type": "object",
    "required": ["label", "ruleset", "platform", "points"],
    "properties": {
        "label": {"type": "string"},
        "ruleset": {"type": "string"},
        "platform": {"type": "string"},
        "cores": {"type": ["integer", "null"]},
        "points": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["offered_gbps", "achieved_gbps",
                             "p99_latency_s", "saturated"],
                "properties": {
                    "offered_gbps": {"type": "number"},
                    "achieved_gbps": {"type": "number"},
                    "p99_latency_s": {"type": ["number", "null"]},
                    "saturated": {"type": "boolean"},
                },
            },
        },
    },
}

register(Experiment(
    name="fig5",
    title="Fig. 5: REM throughput and p99 latency vs offered rate",
    description="host matcher at 1/4/8 cores and the REM accelerator "
                "swept over offered packet rates, per rule set",
    runner=_fig5_runner,
    formatter=format_fig5,
    chart=_fig5_chart,
    csv_writer=_write_fig5_csv,
    # Fig5Series dataclasses serialize field-for-field; no custom mapper.
    schema={
        "type": "object",
        "required": ["file_image", "file_executable"],
        "properties": {
            "file_image": {"type": "array", "minItems": 1,
                           "items": FIG5_SERIES_SCHEMA},
            "file_executable": {"type": "array", "minItems": 1,
                                "items": FIG5_SERIES_SCHEMA},
        },
    },
    tiers=smoke_tier(rates_gbps=SMOKE_RATES_GBPS),
    unit_granularity="one (rule set, series, offered rate) sweep point",
))
