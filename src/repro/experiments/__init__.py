"""Experiment harnesses: one module per paper table/figure.

Each module registers a declarative :class:`~repro.experiments.registry.
Experiment` spec at import time; the CLI, the report generator, the CI
smoke matrix, and the exporters are generic walks over that registry.
"""

from .registry import (
    Experiment,
    ExperimentContext,
    Fidelity,
    register,
    smoke_tier,
)
from .fig4 import FIG4_KEYS, Fig4Row, format_fig4, run_fig4
from .fig5 import Fig5Series, format_fig5, run_fig5
from .fig6 import Fig6Row, format_fig6, rows_from_fig4, run_fig6
from .fig7 import Fig7Result, format_fig7, run_fig7
from .measurement import (
    ACCEL_PLATFORM,
    OperatingPoint,
    measure_operating_point,
    run_fixed_rate,
)
from .observations import (
    Verdict,
    format_verdicts,
    observation_1,
    observation_2,
    observation_3,
    observation_4,
    observation_5,
)
from .faults import (
    FaultStudyResult,
    FunctionFaultReport,
    ScenarioResult,
    format_faults,
    run_faults_study,
)
from .cluster import (
    ClusterStudy,
    SingleNodeReduction,
    format_cluster,
    run_cluster_study,
)
from .profiles import ALL_PROFILE_KEYS, FunctionProfile, get_profile
from .modes import format_mode_study, run_mode_study
from .sensitivity import format_sensitivity, run_sensitivity
from .strategy1 import format_strategy1, run_strategy1
from .table4 import Table4Result, format_table4, run_table4
from .table5 import Table5Result, run_table5

__all__ = [
    "FIG4_KEYS",
    "Fig4Row",
    "format_fig4",
    "run_fig4",
    "Fig5Series",
    "format_fig5",
    "run_fig5",
    "Fig6Row",
    "format_fig6",
    "rows_from_fig4",
    "run_fig6",
    "Fig7Result",
    "format_fig7",
    "run_fig7",
    "ACCEL_PLATFORM",
    "OperatingPoint",
    "measure_operating_point",
    "run_fixed_rate",
    "Verdict",
    "format_verdicts",
    "observation_1",
    "observation_2",
    "observation_3",
    "observation_4",
    "observation_5",
    "ALL_PROFILE_KEYS",
    "FunctionProfile",
    "get_profile",
    "Table4Result",
    "format_table4",
    "run_table4",
    "Table5Result",
    "run_table5",
    "format_mode_study",
    "run_mode_study",
    "format_sensitivity",
    "run_sensitivity",
    "format_strategy1",
    "run_strategy1",
    "FaultStudyResult",
    "FunctionFaultReport",
    "ScenarioResult",
    "format_faults",
    "run_faults_study",
    "ClusterStudy",
    "SingleNodeReduction",
    "format_cluster",
    "run_cluster_study",
    "Experiment",
    "ExperimentContext",
    "Fidelity",
    "register",
    "smoke_tier",
]
