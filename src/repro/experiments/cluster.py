"""Cluster-scale study: racks of server+SNIC nodes behind a leaf-spine
fabric (DESIGN.md §15).

The paper measures one server and one SNIC; this experiment asks what
the same calibrated components do *in aggregate*: incast onto one
node's access link (the classic partition/aggregate pattern), uniform
and skewed all-to-all traffic, ECN marking versus drop-tail under the
same buffers, fleet sizing/TCO across the three node profiles, and
JSQ failover through a correlated whole-rack outage.

Every flow scenario is an independent work unit (a pure function of
``(topology, mix, flow size, seed)``), so ``--jobs N`` fans them across
processes with output — including the ``fabric.*`` metric counters —
identical to the serial run.

The ``single`` fidelity tier is the reduction contract: a one-node,
fabric-less "cluster" delegates straight to the registered fig4/fig5
runners, producing byte-identical single-node artifacts (no fabric code
on that path at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import TopologySpec, run_scenario, single_node_spec
from ..cluster.scenario import ScenarioResult
from ..core.executor import ParallelExecutor, WorkUnit
from ..core.rng import RandomStreams
from ..faults import FaultTimeline, outage_windows, rack_outage, rack_targets
from ..offload.advisor import FleetPlacement, recommend_fleet
from ..offload.loadbalancer import FleetOutcome, NodePathConfig, simulate_fleet
from .measurement import cpu_service_seconds
from .profiles import get_profile
from .registry import (
    DEFAULT_TIER,
    SMOKE_TIER,
    DEGRADE_PARTIAL,
    Experiment,
    ExperimentContext,
    Fidelity,
    register,
)

# (label, mix kind, ecn) — the sweep axis.  Drop-tail incast is the
# control: same buffers, no marking, recovery by RTO only.
SCENARIO_TABLE: Tuple[Tuple[str, str, bool], ...] = (
    ("incast-ecn", "incast", True),
    ("incast-droptail", "incast", False),
    ("uniform-ecn", "uniform", True),
    ("skewed-ecn", "skewed", True),
)
DEFAULT_SCENARIOS = tuple(label for label, _, _ in SCENARIO_TABLE)
SMOKE_SCENARIOS = ("incast-ecn", "incast-droptail")

DEFAULT_FLOW_BYTES = 262_144
SMOKE_FLOW_BYTES = 65_536

# Fleet sizing operating point: a hot kernel-stack KV function and an
# accelerator-friendly one, so both sides of the TCO story show up.
FLEET_PROFILE_KEYS = ("redis:a", "rem:file_image")
FLEET_REQUIRED_RPS = 1_000_000.0
FLEET_SLO_P99_S = 1e-3
NODE_PROFILE_ORDER = ("host+bf2", "host-only", "all-snic")

# Rack-outage failover study: offered load as a fraction of fleet
# capacity (losing half the fleet makes the survivors transiently
# overloaded), telemetry staleness, and the outage's share of the run.
OUTAGE_LOAD_FRACTION = 0.6
OUTAGE_REACTION_S = 100e-6
OUTAGE_SPAN = (0.4, 0.6)  # fraction of the run the rack is dark


@dataclass(frozen=True)
class RackOutageStudy:
    """JSQ failover through a correlated whole-rack power event."""

    nodes: int
    rack_nodes: int  # how many the outage takes down together
    rate_rps: float
    outage_start_s: float
    outage_end_s: float
    outcome: FleetOutcome


@dataclass(frozen=True)
class ClusterStudy:
    topology_id: str
    racks: int
    nodes_per_rack: int
    spines: int
    n_nodes: int
    node_profile: str
    flow_bytes: int
    scenarios: Tuple[Tuple[str, ScenarioResult], ...]
    fleet: Tuple[FleetPlacement, ...]
    outage: Optional[RackOutageStudy]


@dataclass(frozen=True)
class SingleNodeReduction:
    """The N=1, fabric-less tier: the seed repo's own artifacts.

    Carries the registered fig4/fig5 results verbatim — formatted output
    and JSON rows are byte-identical to ``python -m repro fig4``/``fig5``
    at the same fidelity, which is the reduction guarantee the cluster
    layer is held to (tests/cluster/test_single_node_reduction.py).
    """

    topology_id: str
    fig4_rows: Any
    fig5_curves: Any


def _scenario_unit(label: str, kind: str, ecn: bool, racks: int,
                   nodes_per_rack: int, spines: int, node_profile: str,
                   flow_bytes: int, flows_per_node: int,
                   seed: int) -> ScenarioResult:
    """Picklable work unit: one (mix, AQM) cell.

    Rebuilds the topology and draws from the ``cluster:{label}``
    substream re-created from ``seed`` — a pure function of its
    arguments, so results are schedule- and process-independent.
    """
    topo = TopologySpec(racks=racks, nodes_per_rack=nodes_per_rack,
                        spines=spines, node_profile=node_profile, ecn=ecn)
    rng = RandomStreams(seed).fresh(f"cluster:{label}")
    return run_scenario(topo, kind, flow_bytes, rng,
                        flows_per_node=flows_per_node)


def run_rack_outage(topo: TopologySpec, samples: int, n_packets: int,
                    streams: RandomStreams) -> RackOutageStudy:
    """Drive the fleet JSQ balancer through a correlated rack outage.

    The outage comes from the faults layer — a :func:`rack_outage`
    family materialized into a timeline, flattened back to per-node
    windows by :func:`outage_windows` — so the same schedule machinery
    the availability study uses scales to rack scope.
    """
    profile = get_profile(FLEET_PROFILE_KEYS[0], samples=samples)
    service_s = float(np.mean(cpu_service_seconds(profile, "host")))
    from ..calibration import NODE_PROFILES

    cores = NODE_PROFILES[topo.node_profile].serve_cores
    capacity = topo.n_nodes * cores / service_s
    rate = OUTAGE_LOAD_FRACTION * capacity
    run_s = n_packets / rate
    start_s = OUTAGE_SPAN[0] * run_s
    duration_s = (OUTAGE_SPAN[1] - OUTAGE_SPAN[0]) * run_s
    specs = rack_outage(topo, 0, start_s=start_s, duration_s=duration_s)
    windows = outage_windows(FaultTimeline(specs, horizon_s=run_s))
    nodes = [
        NodePathConfig(
            name=f"node:{node_id}",
            service_s=service_s,
            cores=cores,
            outages=tuple(windows.get(f"node:{node_id}", ())),
        )
        for node_id in topo.node_ids()
    ]
    outcome = simulate_fleet(
        nodes, rate, n_packets, streams.fresh("cluster:rack-outage"),
        reaction_delay_s=OUTAGE_REACTION_S, deadline_s=FLEET_SLO_P99_S,
    )
    return RackOutageStudy(
        nodes=topo.n_nodes,
        rack_nodes=len(rack_targets(topo, 0)),
        rate_rps=rate,
        outage_start_s=start_s,
        outage_end_s=start_s + duration_s,
        outcome=outcome,
    )


def run_cluster_study(
    racks: int = 2,
    nodes_per_rack: int = 4,
    spines: int = 2,
    node_profile: str = "host+bf2",
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    flow_bytes: int = DEFAULT_FLOW_BYTES,
    flows_per_node: int = 1,
    samples: int = 200,
    n_packets: int = 12_000,
    streams: Optional[RandomStreams] = None,
    executor: Optional[ParallelExecutor] = None,
) -> ClusterStudy:
    """The full sweep: flow scenarios, fleet TCO, rack-outage failover."""
    streams = streams or RandomStreams(2023)
    executor = executor or ParallelExecutor(1)
    seed = streams.root_seed
    by_label = {label: (kind, ecn) for label, kind, ecn in SCENARIO_TABLE}
    unknown = [label for label in scenarios if label not in by_label]
    if unknown:
        raise ValueError(f"unknown cluster scenarios {unknown} "
                         f"(known: {sorted(by_label)})")
    units = [
        WorkUnit(
            name=f"cluster:{label}",
            fn=_scenario_unit,
            args=(label, *by_label[label], racks, nodes_per_rack, spines,
                  node_profile, flow_bytes, flows_per_node, seed),
        )
        for label in scenarios
    ]
    results = executor.map(units)
    topo = TopologySpec(racks=racks, nodes_per_rack=nodes_per_rack,
                        spines=spines, node_profile=node_profile)
    fleet = tuple(
        recommend_fleet(get_profile(key, samples=samples),
                        FLEET_REQUIRED_RPS, slo_p99=FLEET_SLO_P99_S,
                        node_profiles=NODE_PROFILE_ORDER)
        for key in FLEET_PROFILE_KEYS
    )
    outage = run_rack_outage(topo, samples, n_packets, streams)
    return ClusterStudy(
        topology_id=topo.topology_id(),
        racks=racks,
        nodes_per_rack=nodes_per_rack,
        spines=spines,
        n_nodes=topo.n_nodes,
        node_profile=node_profile,
        flow_bytes=flow_bytes,
        scenarios=tuple(zip(scenarios, results)),
        fleet=fleet,
        outage=outage,
    )


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def format_cluster(study) -> str:
    if isinstance(study, SingleNodeReduction):
        return _format_reduction(study)
    lines = [
        f"topology {study.topology_id}: {study.racks} racks x "
        f"{study.nodes_per_rack} nodes, {study.spines} spines, "
        f"{study.node_profile} nodes, "
        f"{study.flow_bytes // 1024} KiB flows",
        "",
        f"{'scenario':<16} {'flows':>5} {'done':>4} {'p99 FCT ms':>10} "
        f"{'mean ms':>8} {'Gb/s':>6} {'marks':>6} {'backoff':>7} "
        f"{'drops':>6} {'retx':>5} {'peak KB':>8}",
    ]
    for label, result in study.scenarios:
        lines.append(
            f"{label:<16} {result.flows:>5} {result.completed:>4} "
            f"{result.fct_p99_s * 1e3:>10.3f} "
            f"{result.fct_mean_s * 1e3:>8.3f} "
            f"{result.goodput_gbps:>6.1f} {result.ecn_marks_seen:>6} "
            f"{result.ecn_responses:>7} {result.fabric_dropped:>6} "
            f"{result.retransmissions:>5} "
            f"{result.peak_depth_bytes / 1024:>8.1f}"
        )
    hot = dict(study.scenarios).get("incast-ecn")
    if hot is not None and hot.hot_ports:
        lines.append("")
        lines.append("hottest fabric ports (incast-ecn):")
        for stats in hot.hot_ports:
            lines.append(
                f"  {stats.name:<20} peak {stats.peak_depth_bytes/1024:>7.1f}"
                f" KB  enq {stats.enqueued:>5}  marked {stats.marked:>4}  "
                f"dropped {stats.dropped:>3}"
            )
    lines.append("")
    lines.append(
        f"fleet placement @ {FLEET_REQUIRED_RPS:,.0f} rps, "
        f"SLO p99 <= {FLEET_SLO_P99_S * 1e3:.1f} ms:"
    )
    lines.append(
        f"{'function':<16} {'node profile':<12} {'platform':<10} "
        f"{'nodes':>5} {'capex $':>10} {'energy $':>10} {'$/krps':>8} "
        f"{'SLO':>4} {'pick':>5}"
    )
    for placement in study.fleet:
        for key in NODE_PROFILE_ORDER:
            if key not in placement.options:
                continue
            option = placement.options[key]
            lines.append(
                f"{placement.profile_key:<16} {key:<12} "
                f"{option.platform:<10} {option.nodes:>5} "
                f"{option.capex_usd:>10,.0f} {option.energy_usd:>10,.0f} "
                f"{option.usd_per_krps:>8.1f} "
                f"{'ok' if option.meets_slo else 'miss':>4} "
                f"{'<--' if key == placement.chosen else '':>5}"
            )
    if study.outage is not None:
        o = study.outage
        lines += [
            "",
            f"rack-outage failover: JSQ over {o.nodes} nodes at "
            f"{o.rate_rps:,.0f} rps "
            f"({OUTAGE_LOAD_FRACTION:.0%} of fleet capacity), rack 0 "
            f"({o.rack_nodes} nodes) dark "
            f"t=[{o.outage_start_s * 1e3:.1f}, "
            f"{o.outage_end_s * 1e3:.1f}) ms:",
            f"  availability {o.outcome.availability:.2%} (deadline "
            f"{FLEET_SLO_P99_S * 1e3:.1f} ms), dropped "
            f"{o.outcome.dropped}/{o.outcome.offered}, p99 "
            f"{o.outcome.p99_latency_s * 1e6:.1f} us",
        ]
    return "\n".join(lines)


def _format_reduction(study: SingleNodeReduction) -> str:
    from .fig4 import format_fig4
    from .fig5 import format_fig5

    return "\n".join([
        f"topology {study.topology_id}: single node, no fabric — "
        "delegating to the single-node artifacts",
        "",
        format_fig4(study.fig4_rows),
        "",
        format_fig5(study.fig5_curves),
    ])


# ---------------------------------------------------------------------------
# JSON artifact
# ---------------------------------------------------------------------------


def _scenario_json(label: str, result: ScenarioResult) -> Dict[str, Any]:
    return {
        "label": label,
        "kind": result.kind,
        "ecn": result.ecn,
        "flows": result.flows,
        "completed": result.completed,
        "fct_mean_s": result.fct_mean_s,
        "fct_p99_s": result.fct_p99_s,
        "fct_max_s": result.fct_max_s,
        "goodput_gbps": result.goodput_gbps,
        "makespan_s": result.makespan_s,
        "retransmissions": result.retransmissions,
        "ecn_marks_seen": result.ecn_marks_seen,
        "ecn_responses": result.ecn_responses,
        "fabric_enqueued": result.fabric_enqueued,
        "fabric_marked": result.fabric_marked,
        "fabric_dropped": result.fabric_dropped,
        "peak_depth_bytes": result.peak_depth_bytes,
        "hot_ports": [
            {"name": s.name, "peak_depth_bytes": s.peak_depth_bytes,
             "enqueued": s.enqueued, "marked": s.marked,
             "dropped": s.dropped}
            for s in result.hot_ports
        ],
    }


def cluster_json(study) -> Dict[str, Any]:
    if isinstance(study, SingleNodeReduction):
        from .fig4 import fig4_row_json

        return {
            "topology_id": study.topology_id,
            "n_nodes": 1,
            "scenarios": [],
            "single_node_fig4": [fig4_row_json(r) for r in study.fig4_rows],
        }
    doc: Dict[str, Any] = {
        "topology_id": study.topology_id,
        "n_nodes": study.n_nodes,
        "node_profile": study.node_profile,
        "flow_bytes": study.flow_bytes,
        "scenarios": [_scenario_json(label, result)
                      for label, result in study.scenarios],
        "fleet": [
            {
                "function": placement.profile_key,
                "required_rps": placement.required_rps,
                "chosen": placement.chosen,
                "options": {
                    key: {
                        "platform": option.platform,
                        "nodes": option.nodes,
                        "capex_usd": option.capex_usd,
                        "energy_usd": option.energy_usd,
                        "tco_usd": option.tco_usd,
                        "usd_per_krps": option.usd_per_krps,
                        "meets_slo": option.meets_slo,
                    }
                    for key, option in placement.options.items()
                },
            }
            for placement in study.fleet
        ],
    }
    if study.outage is not None:
        o = study.outage
        doc["rack_outage"] = {
            "nodes": o.nodes,
            "rack_nodes": o.rack_nodes,
            "rate_rps": o.rate_rps,
            "outage_start_s": o.outage_start_s,
            "outage_end_s": o.outage_end_s,
            "availability": o.outcome.availability,
            "dropped": o.outcome.dropped,
            "offered": o.outcome.offered,
            "p99_latency_s": o.outcome.p99_latency_s,
        }
    return doc


CLUSTER_SCHEMA = {
    "type": "object",
    "required": ["topology_id", "n_nodes", "scenarios"],
    "properties": {
        "topology_id": {"type": "string"},
        "n_nodes": {"type": "number"},
        "scenarios": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["label", "kind", "ecn", "flows", "completed",
                             "fct_p99_s", "goodput_gbps", "fabric_marked",
                             "fabric_dropped"],
            },
        },
    },
}


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def _single_tier() -> Fidelity:
    """The ``single`` tier: N=1 reduction at fig4/fig5 smoke fidelity."""
    from .fig4 import FIG4_SMOKE_KEYS
    from .fig5 import SMOKE_RATES_GBPS

    return Fidelity(samples=40, requests=2_500, keys=FIG4_SMOKE_KEYS,
                    rates_gbps=tuple(SMOKE_RATES_GBPS),
                    params={"single_node": True})


def tier_topology_id(tier: str) -> str:
    """The topology a ``cluster`` run at ``tier`` will realize.

    Run-farm manifest headers record this id so ``--resume`` can reject
    a manifest written under a different cluster shape (resuming a 2x4
    incast study into a single-node reduction would silently mix
    incompatible artifacts).
    """
    from .registry import get

    params = get("cluster").tiers[tier].params
    if params.get("single_node"):
        return single_node_spec(
            params.get("node_profile", "host+bf2")).topology_id()
    return TopologySpec(
        racks=params.get("racks", 2),
        nodes_per_rack=params.get("nodes_per_rack", 4),
        spines=params.get("spines", 2),
        node_profile=params.get("node_profile", "host+bf2"),
    ).topology_id()


def _cluster_runner(ctx: ExperimentContext):
    fid = ctx.fidelity()
    params = fid.params
    if params.get("single_node"):
        # The N=1, fabric-less reduction: call the single-node runners
        # exactly as their own specs would — same fidelity knobs, same
        # streams/executor — so the artifacts are byte-identical to the
        # direct fig4/fig5 verbs.  No cluster machinery on this path.
        from .fig4 import run_fig4
        from .fig5 import run_fig5

        common = dict(samples=fid.samples, n_requests=fid.requests,
                      streams=ctx.streams, executor=ctx.executor,
                      engine=fid.engine)
        fig4_kwargs = dict(common)
        if fid.keys is not None:
            fig4_kwargs["keys"] = fid.keys
        fig5_kwargs = dict(common)
        if fid.rates_gbps is not None:
            fig5_kwargs["rates_gbps"] = fid.rates_gbps
        return SingleNodeReduction(
            topology_id=single_node_spec(
                params.get("node_profile", "host+bf2")).topology_id(),
            fig4_rows=run_fig4(**fig4_kwargs),
            fig5_curves=run_fig5(**fig5_kwargs),
        )
    return run_cluster_study(
        racks=params.get("racks", 2),
        nodes_per_rack=params.get("nodes_per_rack", 4),
        spines=params.get("spines", 2),
        node_profile=params.get("node_profile", "host+bf2"),
        scenarios=params.get("scenarios", DEFAULT_SCENARIOS),
        flow_bytes=params.get("flow_bytes", DEFAULT_FLOW_BYTES),
        flows_per_node=params.get("flows_per_node", 1),
        samples=fid.samples,
        n_packets=fid.requests,
        streams=ctx.streams,
        executor=ctx.executor,
    )


register(Experiment(
    name="cluster",
    title="Cluster: leaf-spine fabric, ECN vs drop-tail, fleet TCO",
    description="racks of calibrated server+SNIC nodes behind a two-tier "
                "fabric: incast/uniform/skewed flow scenarios, fleet "
                "sizing across node profiles, rack-outage failover",
    runner=_cluster_runner,
    formatter=format_cluster,
    to_json=cluster_json,
    schema=CLUSTER_SCHEMA,
    tiers={
        DEFAULT_TIER: Fidelity(),
        SMOKE_TIER: Fidelity(
            samples=40, requests=2_500,
            params={"flow_bytes": SMOKE_FLOW_BYTES,
                    "scenarios": SMOKE_SCENARIOS},
        ),
        # The N=1 reduction contract (no fabric, no cluster code paths):
        # exercised by tests/cluster/, not by the CLI smoke matrix.  Its
        # caps/keys/rates mirror fig4/fig5's smoke tiers exactly, so the
        # reduction has a byte-identical direct counterpart to test
        # against without a full-fidelity measurement.
        "single": _single_tier(),
    },
    unit_granularity="one (traffic mix, AQM) cluster scenario",
    degradation=DEGRADE_PARTIAL,
))
