"""Figure 6: average power and system-wide energy efficiency.

For every Fig. 4 function this measures, at each platform's operating
point: the average server wall power (BMC scope), the (S)NIC device power
(riser-card scope), the breakdown between the two, and energy efficiency
(throughput / system energy) of SNIC processing normalized to host
processing — Key Observation 5's data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..calibration import POWER
from ..core.rng import RandomStreams
from ..power.energy import EnergyReport, efficiency_ratio
from .fig4 import FIG4_KEYS, Fig4Row, run_fig4
from .registry import Experiment, ExperimentContext, register, smoke_tier


@dataclass
class Fig6Row:
    key: str
    display: str
    snic_platform: str
    host_power_w: float
    snic_power_w: float  # server power while the SNIC processes
    host_device_w: float  # the SNIC sitting idle in the host run
    snic_device_w: float  # the SNIC while processing
    host_goodput_gbps: float
    snic_goodput_gbps: float

    @property
    def host_active_w(self) -> float:
        return self.host_power_w - POWER.server_idle_w

    @property
    def snic_active_w(self) -> float:
        return self.snic_power_w - POWER.server_idle_w

    @property
    def snic_device_active_w(self) -> float:
        return self.snic_device_w - POWER.snic_idle_w

    @property
    def efficiency_ratio(self) -> float:
        """SNIC-processing efficiency normalized to host-processing."""
        host = EnergyReport("host", self.host_goodput_gbps, self.host_power_w)
        snic = EnergyReport("snic", self.snic_goodput_gbps, self.snic_power_w)
        return efficiency_ratio(snic, host)


def rows_from_fig4(fig4_rows: Sequence[Fig4Row]) -> List[Fig6Row]:
    """Derive the power/efficiency figure from measured operating points."""
    rows = []
    for row in fig4_rows:
        rows.append(
            Fig6Row(
                key=row.key,
                display=row.display,
                snic_platform=row.snic.platform,
                host_power_w=row.host.server_power_w,
                snic_power_w=row.snic.server_power_w,
                host_device_w=row.host.device_power_w,
                snic_device_w=row.snic.device_power_w,
                host_goodput_gbps=row.host.goodput_gbps,
                snic_goodput_gbps=row.snic.goodput_gbps,
            )
        )
    return rows


def run_fig6(
    keys: Sequence[str] = FIG4_KEYS,
    samples: int = 300,
    n_requests: int = 20_000,
    streams: Optional[RandomStreams] = None,
    engine: Optional[str] = None,
) -> List[Fig6Row]:
    return rows_from_fig4(
        run_fig4(keys, samples, n_requests, streams, engine=engine))


def format_fig6(rows: List[Fig6Row]) -> str:
    lines = [
        f"{'function':<24} {'hostW':>7} {'snicW':>7} "
        f"{'snic devW':>9} {'eff ratio':>9}"
    ]
    for row in rows:
        lines.append(
            f"{row.display:<24} {row.host_power_w:>7.1f} {row.snic_power_w:>7.1f} "
            f"{row.snic_device_w:>9.1f} {row.efficiency_ratio:>9.2f}"
        )
    return "\n".join(lines)


def _fig6_chart(rows: List[Fig6Row]) -> str:
    from ..analysis.plots import fig6_chart

    return fig6_chart(rows)


def _write_fig6_csv(stream, rows: List[Fig6Row]) -> int:
    from ..analysis.export import write_fig6_csv

    return write_fig6_csv(stream, rows)


def fig6_row_json(row: Fig6Row) -> dict:
    return {
        "key": row.key,
        "display": row.display,
        "snic_platform": row.snic_platform,
        "host_power_w": row.host_power_w,
        "snic_power_w": row.snic_power_w,
        "host_device_w": row.host_device_w,
        "snic_device_w": row.snic_device_w,
        "host_goodput_gbps": row.host_goodput_gbps,
        "snic_goodput_gbps": row.snic_goodput_gbps,
        "efficiency_ratio": row.efficiency_ratio,
    }


register(Experiment(
    name="fig6",
    title="Fig. 6: average power and energy efficiency",
    description="server and device power at each Fig. 4 operating point "
                "plus SNIC-over-host energy-efficiency ratios",
    depends=("fig4",),
    runner=lambda ctx: rows_from_fig4(ctx.run("fig4")),
    formatter=format_fig6,
    chart=_fig6_chart,
    csv_writer=_write_fig6_csv,
    to_json=lambda rows: [fig6_row_json(row) for row in rows],
    schema={
        "type": "array",
        "minItems": 1,
        "items": {
            "type": "object",
            "required": ["key", "snic_platform", "host_power_w",
                         "snic_power_w", "efficiency_ratio"],
            "properties": {
                "key": {"type": "string"},
                "host_power_w": {"type": "number"},
                "snic_power_w": {"type": "number"},
                "efficiency_ratio": {"type": ["number", "null"]},
            },
        },
    },
    tiers=smoke_tier(),
))
