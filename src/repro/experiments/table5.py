"""Table 5: five-year TCO of SNIC vs standard-NIC fleets for fio, OvS,
REM, and Compress.

Fleet sizing and power draw come from our measured operating points; the
component prices and electricity cost are the paper's.  Expected shape:
small savings for fio and OvS, a small loss for REM (the SNIC's purchase
premium isn't recovered at trace-like loads), and a dominant ~70 % saving
for Compress where one accelerator replaces ~3.5 servers' worth of CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.tco import TcoComparison, compare
from ..core import hybrid
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from .fig4 import snic_platform_for
from .measurement import compute_operating_point, operating_point_cache_key
from .profiles import get_profile
from .registry import Experiment, ExperimentContext, register, smoke_tier
from .table4 import Table4Result, run_table4

# Table 5's four applications mapped to our benchmark configs.
TABLE5_APPS = {
    "fio": "fio:read",
    "OVS": "ovs:100",
    "REM": "rem:file_executable",
    "Compress": "compression:txt",
}


@dataclass
class Table5Result:
    comparisons: List[TcoComparison]

    def by_application(self) -> Dict[str, TcoComparison]:
        return {c.application: c for c in self.comparisons}


def run_table5(
    samples: int = 200,
    n_requests: int = 10_000,
    streams: Optional[RandomStreams] = None,
    snic_servers: int = 10,
    executor: Optional[ParallelExecutor] = None,
    table4: Optional[Table4Result] = None,
    engine: Optional[str] = None,
) -> Table5Result:
    """Five-year TCO per application from measured operating points.

    The non-REM operating points are independent work units fanned
    through ``executor`` and memoized in the result cache — after a fig4
    run at the same fidelity and seed they are free, which is how
    ``repro report`` computes each (function, platform) pair at most
    once.  REM's trace replay comes from Table 4: pass a pre-computed
    ``table4`` (the registry's dependency resolution does) to avoid even
    the cache lookup.
    """
    streams = streams or RandomStreams()
    seed = streams.root_seed
    executor = executor or ParallelExecutor(1)
    engine = hybrid.resolve_engine(engine)
    if table4 is None:
        table4 = run_table4(samples=samples, n_requests=n_requests,
                            streams=streams, executor=executor)

    point_apps = [(app, key) for app, key in TABLE5_APPS.items()
                  if app != "REM"]
    units: List[WorkUnit] = []
    keys: List[str] = []
    for _, key in point_apps:
        profile = get_profile(key, samples=samples)
        for platform in ("host", snic_platform_for(profile)):
            args = (key, platform, seed, samples, n_requests, None, engine)
            units.append(WorkUnit(name=f"table5:{key}:{platform}",
                                  fn=compute_operating_point, args=args))
            keys.append(operating_point_cache_key(*args))
    points = map_cached(executor, units, keys)

    comparisons: List[TcoComparison] = []
    index = 0
    for application, key in TABLE5_APPS.items():
        if application == "REM":
            # The paper evaluates REM's TCO at the hyperscaler-trace load
            # (§5.1-5.2): both platforms sustain the trace, so the fleets
            # stay equal and only the power and purchase price differ.
            comparisons.append(
                compare(
                    application,
                    snic_power_w=table4.snic.average_power_w,
                    nic_power_w=table4.host.average_power_w,
                    throughput_ratio_snic_over_host=1.0,
                    snic_servers=snic_servers,
                )
            )
            continue
        host, snic = points[2 * index], points[2 * index + 1]
        index += 1
        ratio = (
            snic.throughput_rps / host.throughput_rps
            if host.throughput_rps > 0
            else 1.0
        )
        comparisons.append(
            compare(
                application,
                snic_power_w=snic.server_power_w,
                nic_power_w=host.server_power_w,
                throughput_ratio_snic_over_host=ratio,
                snic_servers=snic_servers,
            )
        )
    return Table5Result(comparisons=comparisons)


def _table5_runner(ctx: ExperimentContext) -> Table5Result:
    fid = ctx.fidelity()
    return run_table5(samples=fid.samples, n_requests=fid.requests,
                      streams=ctx.streams, executor=ctx.executor,
                      table4=ctx.run("table4"), engine=fid.engine)


def _format_table5(result: Table5Result) -> str:
    from ..analysis.tco import format_comparison

    return format_comparison(result.comparisons)


def _write_table5_csv(stream, result: Table5Result) -> int:
    from ..analysis.export import write_table5_csv

    return write_table5_csv(stream, result.comparisons)


def _fleet_json(fleet) -> dict:
    return {
        "servers": fleet.servers,
        "power_per_server_w": fleet.power_per_server_w,
        "server_cost_usd": fleet.server_cost_usd,
        "tco_usd": fleet.tco_usd,
    }


def table5_json(result: Table5Result) -> list:
    return [
        {
            "application": c.application,
            "snic_fleet": _fleet_json(c.snic_fleet),
            "nic_fleet": _fleet_json(c.nic_fleet),
            "savings_fraction": c.savings_fraction,
        }
        for c in result.comparisons
    ]


_FLEET_SCHEMA = {
    "type": "object",
    "required": ["servers", "power_per_server_w", "tco_usd"],
    "properties": {
        "servers": {"type": "integer"},
        "power_per_server_w": {"type": "number"},
        "tco_usd": {"type": "number"},
    },
}

register(Experiment(
    name="table5",
    title="Table 5: five-year TCO, SNIC vs standard-NIC fleets",
    description="fleet sizing, power, and total cost of ownership for "
                "fio, OvS, REM, and Compress from measured points",
    depends=("table4",),
    runner=_table5_runner,
    formatter=_format_table5,
    csv_writer=_write_table5_csv,
    to_json=table5_json,
    schema={
        "type": "array",
        "minItems": 4,
        "items": {
            "type": "object",
            "required": ["application", "snic_fleet", "nic_fleet",
                         "savings_fraction"],
            "properties": {
                "application": {"type": "string"},
                "snic_fleet": _FLEET_SCHEMA,
                "nic_fleet": _FLEET_SCHEMA,
                "savings_fraction": {"type": "number"},
            },
        },
    },
    tiers=smoke_tier(),
))
