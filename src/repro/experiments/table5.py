"""Table 5: five-year TCO of SNIC vs standard-NIC fleets for fio, OvS,
REM, and Compress.

Fleet sizing and power draw come from our measured operating points; the
component prices and electricity cost are the paper's.  Expected shape:
small savings for fio and OvS, a small loss for REM (the SNIC's purchase
premium isn't recovered at trace-like loads), and a dominant ~70 % saving
for Compress where one accelerator replaces ~3.5 servers' worth of CPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..analysis.tco import TcoComparison, compare
from ..core.rng import RandomStreams
from .fig4 import snic_platform_for
from .measurement import measure_operating_point_cached
from .profiles import get_profile
from .table4 import run_table4

# Table 5's four applications mapped to our benchmark configs.
TABLE5_APPS = {
    "fio": "fio:read",
    "OVS": "ovs:100",
    "REM": "rem:file_executable",
    "Compress": "compression:txt",
}


@dataclass
class Table5Result:
    comparisons: List[TcoComparison]

    def by_application(self) -> Dict[str, TcoComparison]:
        return {c.application: c for c in self.comparisons}


def run_table5(
    samples: int = 200,
    n_requests: int = 10_000,
    streams: Optional[RandomStreams] = None,
    snic_servers: int = 10,
) -> Table5Result:
    streams = streams or RandomStreams()
    comparisons: List[TcoComparison] = []
    for application, key in TABLE5_APPS.items():
        if application == "REM":
            # The paper evaluates REM's TCO at the hyperscaler-trace load
            # (§5.1-5.2): both platforms sustain the trace, so the fleets
            # stay equal and only the power and purchase price differ.
            table4 = run_table4(samples=samples, n_requests=n_requests,
                                streams=streams)
            comparisons.append(
                compare(
                    application,
                    snic_power_w=table4.snic.average_power_w,
                    nic_power_w=table4.host.average_power_w,
                    throughput_ratio_snic_over_host=1.0,
                    snic_servers=snic_servers,
                )
            )
            continue
        # Cached operating points: after a fig4 run at the same fidelity
        # and seed these are free, which is how `repro report` computes
        # each (function, platform) pair at most once.
        profile = get_profile(key, samples=samples)
        seed = streams.root_seed
        host = measure_operating_point_cached(key, "host", seed, samples,
                                              n_requests)
        snic = measure_operating_point_cached(
            key, snic_platform_for(profile), seed, samples, n_requests
        )
        ratio = (
            snic.throughput_rps / host.throughput_rps
            if host.throughput_rps > 0
            else 1.0
        )
        comparisons.append(
            compare(
                application,
                snic_power_w=snic.server_power_w,
                nic_power_w=host.server_power_w,
                throughput_ratio_snic_over_host=ratio,
                snic_servers=snic_servers,
            )
        )
    return Table5Result(comparisons=comparisons)
