"""Future-SNIC sensitivity study.

Key Observation 4 speculates: "If the SNIC CPU becomes more powerful in
the future, it may outperform the host CPU for certain input and batch
sizes."  This study makes that quantitative: sweep hypothetical SNIC
designs (more cores, faster cores, better memory, deeper stack offload,
faster engines) and report where each Fig. 4 conclusion flips.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from .. import calibration
from ..core import hybrid
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from .fig4 import snic_platform_for
from .measurement import (
    ACCEL_PLATFORM,
    compute_operating_point,
    measure_operating_point,
    operating_point_cache_key,
)
from .profiles import get_profile
from .registry import (
    DEGRADE_PARTIAL,
    Experiment,
    ExperimentContext,
    register,
    smoke_tier,
)


@dataclass(frozen=True)
class SnicDesign:
    """A hypothetical future SmartNIC."""

    name: str
    core_count_scale: float = 1.0  # 2.0 = 16 Arm cores
    frequency_scale: float = 1.0  # 1.25 = 2.5 GHz
    memory_scale: float = 1.0  # cuts memory-bound work-unit cycles
    engine_rate_scale: float = 1.0  # faster REM/compression engines

    def __post_init__(self):
        for value in (self.core_count_scale, self.frequency_scale,
                      self.memory_scale, self.engine_rate_scale):
            if value <= 0:
                raise ValueError("scales must be positive")


TODAY = SnicDesign("bluefield-2")
NEXT_GEN = SnicDesign("next-gen", core_count_scale=2.0, frequency_scale=1.25,
                      memory_scale=1.6)
ENGINE_UPGRADE = SnicDesign("line-rate-engines", engine_rate_scale=2.2)
ALL_IN = SnicDesign("all-in", core_count_scale=2.0, frequency_scale=1.25,
                    memory_scale=1.6, engine_rate_scale=2.2)

DESIGNS = (TODAY, NEXT_GEN, ENGINE_UPGRADE, ALL_IN)

_MEMORY_BOUND_KINDS = (
    "mem_stream_byte", "mem_random_access", "hash_probe", "kv_value_byte",
    "kv_value_byte_cold", "nat_lookup_cold",
)


def _apply_design(design: SnicDesign) -> None:
    base = calibration.SNIC_CPU
    work = dict(base.work_cycles)
    for kind in _MEMORY_BOUND_KINDS:
        work[kind] = work[kind] / design.memory_scale
    calibration.PLATFORMS["snic-cpu"] = replace(
        base,
        cores=int(round(base.cores * design.core_count_scale)),
        frequency_hz=base.frequency_hz * design.frequency_scale,
        work_cycles=work,
    )
    engines = {}
    for name, engine in calibration.ACCELERATORS.items():
        engines[name] = replace(
            engine,
            bytes_per_s={k: v * design.engine_rate_scale
                         for k, v in engine.bytes_per_s.items()},
            ops_per_s={k: v * design.engine_rate_scale
                       for k, v in engine.ops_per_s.items()},
        )
    calibration.ACCELERATORS.clear()
    calibration.ACCELERATORS.update(engines)


@dataclass
class SensitivityRow:
    key: str
    design: str
    ratio: float  # SNIC/host max throughput


def _snic_point_under_design(
    key: str,
    design: SnicDesign,
    salt: int,
    seed: int,
    samples: int,
    n_requests: int,
    engine: Optional[str] = None,
) -> float:
    """Picklable work unit: SNIC throughput under a hypothetical design.

    Applies the design to the global calibration for the duration of the
    measurement and always restores it (workers keep module state across
    units).  Substreams rebuild from ``(seed, salt)`` exactly as the
    serial loop's ``streams.fork(salt)`` derived them.
    """
    profile = get_profile(key, samples=samples)
    original_platform = calibration.PLATFORMS["snic-cpu"]
    original_engines = dict(calibration.ACCELERATORS)
    _apply_design(design)
    try:
        point = measure_operating_point(
            profile, snic_platform_for(profile), RandomStreams(seed).fork(salt),
            n_requests, engine=engine,
        )
    finally:
        calibration.PLATFORMS["snic-cpu"] = original_platform
        calibration.ACCELERATORS.clear()
        calibration.ACCELERATORS.update(original_engines)
    return point.throughput_rps


def run_sensitivity(
    keys: Sequence[str] = ("redis:a", "mica:32", "bm25:1k",
                           "rem:file_executable", "compression:txt"),
    designs: Sequence[SnicDesign] = DESIGNS,
    samples: int = 150,
    n_requests: int = 8_000,
    streams: Optional[RandomStreams] = None,
    executor: Optional[ParallelExecutor] = None,
    engine: Optional[str] = None,
) -> List[SensitivityRow]:
    """Sweep hypothetical SNIC designs over representative functions.

    Host baselines go through the content-addressed operating-point
    cache; each (key, design) what-if is an independent work unit fanned
    through ``executor`` with output identical to the serial run.
    """
    streams = streams or RandomStreams(41)
    seed = streams.root_seed
    executor = executor or ParallelExecutor(1)
    engine = hybrid.resolve_engine(engine)

    host_args = [(key, "host", seed, samples, n_requests, None, engine)
                 for key in keys]
    host_points = map_cached(
        executor,
        [WorkUnit(name=f"sensitivity:{key}:host", fn=compute_operating_point,
                  args=args) for key, args in zip(keys, host_args)],
        [operating_point_cache_key(*args) for args in host_args],
    )
    snic_units = [
        WorkUnit(
            name=f"sensitivity:{key}:{design.name}",
            fn=_snic_point_under_design,
            args=(key, design, 100 + index, seed, samples, n_requests,
                  engine),
        )
        for key in keys
        for index, design in enumerate(designs)
    ]
    snic_rps = executor.map(snic_units)

    rows: List[SensitivityRow] = []
    cell = 0
    for key, host in zip(keys, host_points):
        for design in designs:
            rows.append(
                SensitivityRow(
                    key=key,
                    design=design.name,
                    ratio=snic_rps[cell] / max(host.throughput_rps, 1e-9),
                )
            )
            cell += 1
    return rows


def rows_by_design(rows: List[SensitivityRow]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    for row in rows:
        out.setdefault(row.design, {})[row.key] = row.ratio
    return out


def format_sensitivity(rows: List[SensitivityRow]) -> str:
    by_design = rows_by_design(rows)
    keys = sorted({row.key for row in rows})
    names = [d.name for d in DESIGNS if d.name in by_design]
    header = f"{'function':<24}" + "".join(f"{n:>20}" for n in names)
    lines = [header, "-" * len(header)]
    for key in keys:
        cells = "".join(f"{by_design[n].get(key, float('nan')):>20.2f}" for n in names)
        flip = any(by_design[n].get(key, 0) > 1.0 for n in names[1:]) and by_design[
            names[0]
        ].get(key, 2) < 1.0
        lines.append(f"{key:<24}" + cells + ("   << flips" if flip else ""))
    lines.append("\n(cells: SNIC/host max-throughput ratio; >1 means the SNIC wins)")
    return "\n".join(lines)


def _sensitivity_runner(ctx: ExperimentContext) -> List[SensitivityRow]:
    fid = ctx.fidelity()
    return run_sensitivity(samples=fid.samples, n_requests=fid.requests,
                           streams=ctx.streams, executor=ctx.executor,
                           engine=fid.engine)


register(Experiment(
    name="sensitivity",
    title="Future-SNIC sensitivity: where Fig. 4 conclusions flip",
    description="hypothetical SNIC designs (more/faster cores, better "
                "memory, faster engines) swept over representative keys",
    runner=_sensitivity_runner,
    formatter=format_sensitivity,
    to_json=lambda rows: [
        {"key": r.key, "design": r.design, "ratio": r.ratio} for r in rows
    ],
    schema={
        "type": "array",
        "minItems": 1,
        "items": {
            "type": "object",
            "required": ["key", "design", "ratio"],
            "properties": {
                "key": {"type": "string"},
                "design": {"type": "string"},
                "ratio": {"type": ["number", "null"]},
            },
        },
    },
    tiers=smoke_tier(),
    unit_granularity="one (key, hypothetical-design) probe",
    degradation=DEGRADE_PARTIAL,
))
