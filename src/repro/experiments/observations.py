"""The paper's five Key Observations as machine-checkable claims.

Each observation is evaluated against measured Fig. 4/5/6 results and
returns a verdict with the supporting numbers, so the reproduction can
assert — not merely narrate — that the paper's conclusions hold in this
build.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .fig4 import Fig4Row, rows_by_key
from .fig5 import Fig5Series
from .fig6 import Fig6Row
from .registry import Experiment, ExperimentContext, register, smoke_tier

TCP_UDP_KEYS = (
    "redis:a", "redis:b", "redis:c",
    "snort:file_image", "snort:file_flash", "snort:file_executable",
    "nat:10k", "nat:1m", "bm25:100", "bm25:1k",
)
RDMA_SIMPLE_KEYS = ("fio:read", "fio:write")
ACCEL_KEYS = (
    "crypto:aes", "crypto:rsa", "crypto:sha1",
    "rem:file_image", "rem:file_flash", "rem:file_executable",
    "compression:app", "compression:txt",
)


@dataclass
class Verdict:
    observation: str
    holds: bool
    evidence: Dict[str, float] = field(default_factory=dict)
    summary: str = ""


def observation_1(rows: Sequence[Fig4Row]) -> Verdict:
    """O1: the SNIC CPU loses to the host on TCP/UDP functions (lower
    throughput, higher p99), but matches it on simple RDMA functions."""
    by_key = rows_by_key(list(rows))
    tcp_udp = [by_key[k] for k in TCP_UDP_KEYS if k in by_key]
    rdma = [by_key[k] for k in RDMA_SIMPLE_KEYS if k in by_key]
    tcp_udp_lose = all(
        r.throughput_ratio < 0.85 and r.p99_ratio > 1.0 for r in tcp_udp
    )
    rdma_match = all(0.9 <= r.throughput_ratio <= 1.15 for r in rdma)
    evidence = {
        "tcp_udp_throughput_ratio_max": max(r.throughput_ratio for r in tcp_udp),
        "tcp_udp_p99_ratio_min": min(r.p99_ratio for r in tcp_udp),
        "fio_throughput_ratio_min": min(r.throughput_ratio for r in rdma),
    }
    return Verdict(
        "O1",
        tcp_udp_lose and rdma_match,
        evidence,
        "SNIC CPU loses on kernel-stack functions; matches host on fio",
    )


def observation_2(rows: Sequence[Fig4Row]) -> Verdict:
    """O2: accelerators don't always win — the host's ISA extensions win
    AES and RSA while the engines win SHA-1, REM(image), compression."""
    by_key = rows_by_key(list(rows))
    host_wins = [by_key["crypto:aes"], by_key["crypto:rsa"],
                 by_key["rem:file_flash"], by_key["rem:file_executable"]]
    accel_wins = [by_key["crypto:sha1"], by_key["rem:file_image"],
                  by_key["compression:app"], by_key["compression:txt"]]
    holds = all(r.throughput_ratio < 1.0 for r in host_wins) and all(
        r.throughput_ratio > 1.0 for r in accel_wins
    )
    return Verdict(
        "O2",
        holds,
        {r.key: r.throughput_ratio for r in host_wins + accel_wins},
        "host ISA extensions win AES/RSA; engines win SHA-1/REM(img)/compress",
    )


def observation_3(fig5: Dict[str, List[Fig5Series]], line_rate_gbps: float = 100.0) -> Verdict:
    """O3: the accelerator never reaches line rate (caps near 50 Gbps)."""
    accel_maxima = {}
    for ruleset, curves in fig5.items():
        for series in curves:
            if series.platform == "snic-accel":
                accel_maxima[ruleset] = series.max_achieved_gbps()
    holds = all(35.0 <= v <= 0.62 * line_rate_gbps for v in accel_maxima.values())
    return Verdict(
        "O3",
        holds and bool(accel_maxima),
        accel_maxima,
        "REM accelerator caps near 50 Gb/s for every rule set",
    )


def observation_4(rows: Sequence[Fig4Row]) -> Verdict:
    """O4: the winner flips with inputs/configurations of the *same*
    function — REM by rule set, crypto by algorithm, fio p99 by op type,
    MICA by batch size."""
    by_key = rows_by_key(list(rows))
    rem_flips = (
        by_key["rem:file_image"].throughput_ratio > 1.0
        and by_key["rem:file_executable"].throughput_ratio < 1.0
    )
    crypto_flips = (
        by_key["crypto:sha1"].throughput_ratio > 1.0
        and by_key["crypto:rsa"].throughput_ratio < 1.0
    )
    fio_flips = (
        by_key["fio:read"].p99_ratio > 1.0 and by_key["fio:write"].p99_ratio < 1.0
    )
    mica_varies = (
        abs(by_key["mica:4"].throughput_ratio - by_key["mica:32"].throughput_ratio)
        > 0.1
    )
    holds = rem_flips and crypto_flips and fio_flips and mica_varies
    return Verdict(
        "O4",
        holds,
        {
            "rem_image": by_key["rem:file_image"].throughput_ratio,
            "rem_exe": by_key["rem:file_executable"].throughput_ratio,
            "sha1": by_key["crypto:sha1"].throughput_ratio,
            "rsa": by_key["crypto:rsa"].throughput_ratio,
            "fio_read_p99": by_key["fio:read"].p99_ratio,
            "fio_write_p99": by_key["fio:write"].p99_ratio,
            "mica4": by_key["mica:4"].throughput_ratio,
            "mica32": by_key["mica:32"].throughput_ratio,
        },
        "winner depends on rule set, algorithm, op type, batch size",
    )


def observation_5(fig6: Sequence[Fig6Row]) -> Verdict:
    """O5: energy efficiency improves for some functions (fio, REM image,
    SHA-1, compression) but not universally, and idle power dominates."""
    by_key = {r.key: r for r in fig6}
    improves = ["fio:read", "rem:file_image", "crypto:sha1",
                "compression:app", "compression:txt"]
    does_not = ["redis:a", "nat:10k", "crypto:rsa", "rem:file_executable"]
    improve_ok = all(by_key[k].efficiency_ratio > 1.0 for k in improves if k in by_key)
    not_ok = all(by_key[k].efficiency_ratio < 1.0 for k in does_not if k in by_key)
    # Idle domination: every total power within ~1.75x of the idle floor.
    from ..calibration import POWER

    idle_dominates = all(
        r.host_power_w < 1.75 * POWER.server_idle_w
        and r.snic_power_w < 1.25 * POWER.server_idle_w
        for r in fig6
    )
    return Verdict(
        "O5",
        improve_ok and not_ok and idle_dominates,
        {r.key: r.efficiency_ratio for r in fig6},
        "efficiency gains exist but are bounded by idle-power domination",
    )


def format_verdicts(verdicts: Sequence[Verdict]) -> str:
    lines = []
    for verdict in verdicts:
        flag = "HOLDS" if verdict.holds else "FAILS"
        lines.append(f"[{flag}] {verdict.observation}: {verdict.summary}")
        for name, value in verdict.evidence.items():
            lines.append(f"    {name} = {value:.3f}")
    return "\n".join(lines)


def _observations_runner(ctx: ExperimentContext) -> List[Verdict]:
    # All three inputs come from the shared per-invocation result cache:
    # fig4 is measured once and feeds fig6 directly, and fig5 runs at the
    # invocation-wide fidelity (no more private hard-coded 150/8000).
    fig4_rows = ctx.run("fig4")
    fig5_curves = ctx.run("fig5")
    fig6_rows = ctx.run("fig6")
    return [
        observation_1(fig4_rows),
        observation_2(fig4_rows),
        observation_3(fig5_curves),
        observation_4(fig4_rows),
        observation_5(fig6_rows),
    ]


register(Experiment(
    name="observations",
    title="Key Observations 1-5 as machine-checked verdicts",
    description="the paper's five Key Observations evaluated against "
                "measured Fig. 4/5/6 results",
    depends=("fig4", "fig5", "fig6"),
    runner=_observations_runner,
    formatter=format_verdicts,
    to_json=lambda verdicts: [
        {"observation": v.observation, "holds": v.holds,
         "summary": v.summary, "evidence": dict(v.evidence)}
        for v in verdicts
    ],
    schema={
        "type": "array",
        "minItems": 5,
        "items": {
            "type": "object",
            "required": ["observation", "holds", "summary", "evidence"],
            "properties": {
                "observation": {"type": "string"},
                "holds": {"type": "boolean"},
                "summary": {"type": "string"},
                "evidence": {"type": "object"},
            },
        },
    },
    # The observation gate is science, not plumbing: only a default-tier
    # run may fail the process over a FAILS verdict.
    verdict=lambda verdicts: 0 if all(v.holds for v in verdicts) else 1,
    tiers=smoke_tier(),
))
