"""The measurement methodology of §4.

For each (function, platform) pair the paper (1) finds the packet rate at
which throughput saturates, (2) reports the throughput there and the p99
latency measured at that operating point, and (3) measures average wall
power at the same point.  This module reproduces that procedure against
the calibrated platform models:

* CPU platforms (host / SNIC CPU) serve requests on RSS-sharded cores;
  per-request service time = stack cycles + priced work units; latency =
  queueing sojourn + the stack's fixed RTT floor.
* The accelerator platform serves requests through a batch engine with a
  throughput cap (Key Observation 3), staged by SNIC CPU cores over DPDK.
* The NIC line rate bounds every networked function.

Power at the operating point comes from the component power model, with
poll-mode spin accounting (a DPDK core burns power even when idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..calibration import (
    ACCELERATORS,
    LINE_RATE_GBPS,
    PLATFORMS,
    POWER,
    base_rtt_sampler,
)
from ..core import analytic, instrument, trace
from ..core.cache import cache_key, get_cache
from ..core.metrics import RunMetrics
from ..core.queueing import (
    COMP_STACK_RTT,
    outcome_to_metrics,
    simulate_batch_server,
    simulate_sharded,
)
from ..core.rng import RandomStreams
from ..core.sweep import SweepResult, find_max_sustainable_rate
from ..core.units import gbps_to_bytes_per_second
from ..power.energy import EnergyReport
from ..power.models import ComponentLoad, ServerPowerModel, SnicPowerModel
from .profiles import FunctionProfile, get_profile

ACCEL_PLATFORM = "snic-accel"
CPU_PLATFORMS = ("host", "snic-cpu")
BATCH_TIMEOUT_S = 15e-6
QUEUE_LIMIT_S = 2e-3  # socket/ring buffering bound: overload becomes loss
# Buffers always hold at least a few tens of requests, so the backlog
# bound never drops below this many mean service times.
QUEUE_LIMIT_SERVICES = 8.0


class MeasurementError(RuntimeError):
    pass


@dataclass
class OperatingPoint:
    """One platform's Fig. 4 data point, with the Fig. 6 power numbers."""

    profile_key: str
    platform: str
    capacity_rps: float
    metrics: RunMetrics
    load: ComponentLoad
    server_power_w: float
    device_power_w: float  # the (S)NIC alone

    @property
    def throughput_rps(self) -> float:
        return self.metrics.completed_rate

    @property
    def goodput_gbps(self) -> float:
        return self.metrics.goodput_gbps

    @property
    def p99_latency_s(self) -> float:
        return self.metrics.latency_p99

    @property
    def energy_efficiency(self) -> float:
        if self.server_power_w <= 0:
            return 0.0
        return self.goodput_gbps / self.server_power_w

    def energy_report(self, label: str = "") -> EnergyReport:
        return EnergyReport(
            label=label or f"{self.profile_key}@{self.platform}",
            throughput=self.goodput_gbps,
            total_power_w=self.server_power_w,
            device_power_w=self.device_power_w,
            idle_power_w=POWER.server_idle_w,
        )


def operating_point_json(point: "OperatingPoint") -> Dict[str, object]:
    """The stable machine-readable view of one operating point, shared
    by every experiment's ``--json`` artifact."""
    return {
        "platform": point.platform,
        "capacity_rps": point.capacity_rps,
        "throughput_rps": point.throughput_rps,
        "goodput_gbps": point.goodput_gbps,
        "p99_latency_s": point.p99_latency_s,
        "server_power_w": point.server_power_w,
        "device_power_w": point.device_power_w,
    }


# Schema fragment for :func:`operating_point_json` payloads.
OPERATING_POINT_SCHEMA = {
    "type": "object",
    "required": ["platform", "capacity_rps", "throughput_rps",
                 "goodput_gbps", "p99_latency_s", "server_power_w"],
    "properties": {
        "platform": {"type": "string"},
        "capacity_rps": {"type": "number"},
        "throughput_rps": {"type": "number"},
        "goodput_gbps": {"type": "number"},
        "p99_latency_s": {"type": "number"},
        "server_power_w": {"type": "number"},
        "device_power_w": {"type": "number"},
    },
}


# ---------------------------------------------------------------------------
# Service samplers
# ---------------------------------------------------------------------------


def cpu_service_seconds(profile: FunctionProfile, platform: str) -> np.ndarray:
    """Per-request service times (seconds) for a CPU platform."""
    calibration = PLATFORMS[platform]
    work_seconds = np.array(
        [calibration.work_seconds(sample) for sample in profile.work_samples]
    )
    if profile.stack is not None and profile.stack_packets > 0:
        per_packet = calibration.stack_seconds(profile.stack, int(profile.wire_bytes))
        work_seconds = work_seconds + per_packet * profile.stack_packets
    return work_seconds


def cpu_cores(profile: FunctionProfile, platform: str) -> int:
    return profile.cores.get(platform, PLATFORMS[platform].cores)


def _nic_cap_rps(profile: FunctionProfile) -> float:
    if profile.stack is None:
        return float("inf")
    return gbps_to_bytes_per_second(LINE_RATE_GBPS) / profile.wire_bytes


def accel_per_item_seconds(profile: FunctionProfile) -> float:
    engine = ACCELERATORS[profile.accel_engine]
    if profile.accel_op_based:
        return 1.0 / engine.ops_per_s[profile.accel_mode]
    return profile.payload_bytes / engine.bytes_per_s[profile.accel_mode]


# ---------------------------------------------------------------------------
# Fixed-rate runs
# ---------------------------------------------------------------------------


def run_fixed_rate(
    profile: FunctionProfile,
    platform: str,
    rate: float,
    streams: RandomStreams,
    n_requests: int = 20_000,
) -> RunMetrics:
    """Offer ``rate`` requests/s and measure (the inner loop of a sweep)."""
    instrument.increment(instrument.PROBES)
    if not trace.TRACING:
        return _run_fixed_rate(profile, platform, rate, streams, n_requests)
    # Each probe records onto its own sub-track, so its queue-depth
    # series and the probe summary stay grouped in the trace viewer.
    with trace.track(trace.subtrack(f"{profile.key}:{platform}:{rate:.6g}")):
        trace.instant("probe", trace.PROBE, function=profile.key,
                      platform=platform, rate=rate, n_requests=n_requests)
        metrics = _run_fixed_rate(profile, platform, rate, streams, n_requests)
        trace.instant("probe.done", trace.PROBE,
                      completed_rate=metrics.completed_rate,
                      p99_us=metrics.latency_p99 * 1e6,
                      dropped=metrics.dropped)
        return metrics


def _run_fixed_rate(
    profile: FunctionProfile,
    platform: str,
    rate: float,
    streams: RandomStreams,
    n_requests: int,
) -> RunMetrics:
    if platform == ACCEL_PLATFORM:
        return _run_accelerator(profile, rate, streams, n_requests)
    if platform not in CPU_PLATFORMS:
        raise MeasurementError(f"unknown platform {platform!r}")
    if platform not in profile.platforms:
        raise MeasurementError(f"{profile.key} does not run on {platform}")

    rng = streams.stream(f"{profile.key}:{platform}:{rate:.6g}")
    calibration = PLATFORMS[platform]
    services = cpu_service_seconds(profile, platform)
    cores = cpu_cores(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    effective_rate = min(rate, nic_cap)
    queue_limit = QUEUE_LIMIT_S
    if profile.stack is not None:
        queue_limit = calibration.stacks[profile.stack].queue_limit_s
    queue_limit = max(queue_limit, QUEUE_LIMIT_SERVICES * float(np.mean(services)))

    def sampler(sampler_rng: np.random.Generator, n: int) -> np.ndarray:
        return sampler_rng.choice(services, size=n)

    outcome = simulate_sharded(
        effective_rate, cores, sampler, n_requests, rng, queue_limit=queue_limit
    )
    outcome = _add_fixed_latency(outcome, profile, platform, rng)
    metrics = outcome_to_metrics(
        outcome, offered_rate=rate, bytes_per_request=profile.wire_bytes, cores=cores
    )
    if rate > nic_cap:
        # Wire-rate clipping: the excess never reaches the server.
        metrics.completed_rate = min(metrics.completed_rate, nic_cap)
        metrics.dropped += int((rate - nic_cap) / rate * n_requests)
    return metrics


def _add_fixed_latency(outcome, profile, platform, rng):
    n = len(outcome.sojourns)
    if n == 0:
        return outcome
    extra = np.zeros(n)
    stack = profile.stack
    if platform == ACCEL_PLATFORM:
        stack = profile.accel_staging_stack or profile.stack
    if stack is not None:
        calibration = PLATFORMS[platform] if platform != ACCEL_PLATFORM else PLATFORMS["snic-cpu"]
        cost = calibration.stacks[stack]
        extra = extra + base_rtt_sampler(cost)(rng, n)
    adder = profile.latency_extra.get(platform, 0.0)
    # add_component keeps sojourns and the attribution arrays in sync.
    outcome.add_component(COMP_STACK_RTT, extra + adder)
    return outcome


def _run_accelerator(
    profile: FunctionProfile,
    rate: float,
    streams: RandomStreams,
    n_requests: int,
) -> RunMetrics:
    if profile.accel_engine is None:
        raise MeasurementError(f"{profile.key} has no accelerator path")
    rng = streams.stream(f"{profile.key}:accel:{rate:.6g}")
    engine = ACCELERATORS[profile.accel_engine]
    per_item = accel_per_item_seconds(profile)

    # Staging: SNIC CPU cores feed the engine over DPDK (§3.4).  They cap
    # the submission rate but their per-packet time is tiny.
    staging_cap = float("inf")
    staging_stack = profile.accel_staging_stack or profile.stack
    if staging_stack is not None:
        snic = PLATFORMS["snic-cpu"]
        staging_per_packet = snic.stack_seconds(staging_stack, int(profile.wire_bytes))
        staging_cap = engine.staging_cores / staging_per_packet
    nic_cap = _nic_cap_rps(profile)
    effective_rate = min(rate, staging_cap, nic_cap)

    outcome = simulate_batch_server(
        effective_rate,
        n_requests,
        rng,
        batch_size=engine.max_batch,
        batch_timeout=BATCH_TIMEOUT_S,
        setup_time=engine.setup_latency_s,
        per_item_time=per_item,
    )
    outcome = _add_fixed_latency(outcome, profile, ACCEL_PLATFORM, rng)
    metrics = outcome_to_metrics(
        outcome, offered_rate=rate, bytes_per_request=profile.wire_bytes
    )
    cap = min(staging_cap, nic_cap)
    if rate > cap:
        metrics.completed_rate = min(metrics.completed_rate, cap)
        metrics.dropped += int((rate - cap) / rate * n_requests)
    return metrics


# ---------------------------------------------------------------------------
# Operating points (capacity search + measurement at the knee)
# ---------------------------------------------------------------------------


def estimate_capacity_rps(
    profile: FunctionProfile, platform: str, slo_p99: Optional[float] = None
) -> float:
    """Analytic capacity estimate (see :mod:`repro.core.analytic`).

    Used both to anchor the deterministic knee ladder and to warm-start
    rate sweeps.  With ``slo_p99`` the M/G/1 tail approximation lowers
    the estimate to the rate whose analytic p99 meets the SLO.
    """
    if platform == ACCEL_PLATFORM:
        engine = ACCELERATORS[profile.accel_engine]
        return analytic.batch_capacity(
            engine.setup_latency_s, accel_per_item_seconds(profile),
            engine.max_batch,
        )
    services = cpu_service_seconds(profile, platform)
    mean_service = float(np.mean(services))
    if mean_service <= 0:
        raise MeasurementError(f"degenerate service time for {profile.key}")
    scv = float(np.var(services)) / (mean_service**2)
    return analytic.slo_capacity(
        mean_service, scv, cpu_cores(profile, platform), slo_p99
    )


def measure_operating_point(
    profile: FunctionProfile,
    platform: str,
    streams: Optional[RandomStreams] = None,
    n_requests: int = 20_000,
    load_fraction: float = 0.95,
    slo_p99: Optional[float] = None,
) -> OperatingPoint:
    """Find the saturation knee, then measure at ``load_fraction`` of it.

    The knee is located with a deterministic geometric rate ladder around
    the analytic capacity estimate: capacity is the largest offered rate
    the system still serves with <=5 % loss (losses come from the stack's
    bounded buffers), which matches the paper's "maximum sustainable
    throughput".  An optional ``slo_p99`` additionally bounds the knee.
    """
    streams = streams or RandomStreams()
    if profile.load_fraction_override is not None:
        load_fraction = profile.load_fraction_override
    estimate = estimate_capacity_rps(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    anchor = min(estimate, nic_cap)

    ladder = anchor * np.geomspace(0.3, 1.45, 12)
    knee_rate = ladder[0]
    knee_metrics: Optional[RunMetrics] = None
    best_completed = 0.0
    for rate in ladder:
        metrics = run_fixed_rate(profile, platform, float(rate), streams, n_requests)
        served_fraction = (
            metrics.completed_rate / rate if rate > 0 else 1.0
        )
        acceptable = served_fraction >= 0.95
        if slo_p99 is not None and metrics.latency_p99 > slo_p99:
            acceptable = False
        if acceptable and metrics.completed_rate >= best_completed:
            best_completed = metrics.completed_rate
            knee_rate = float(rate)
            knee_metrics = metrics
    if knee_metrics is None:  # even the lowest rung overloads
        knee_rate = float(ladder[0])

    operating_rate = knee_rate * load_fraction
    metrics = run_fixed_rate(profile, platform, operating_rate, streams, n_requests)
    load = component_load(profile, platform, metrics.completed_rate)
    extra_w = profile.power_extra_w.get(platform, 0.0)
    return OperatingPoint(
        profile_key=profile.key,
        platform=platform,
        capacity_rps=knee_rate,
        metrics=metrics,
        load=load,
        server_power_w=ServerPowerModel().power(load) + extra_w,
        device_power_w=SnicPowerModel().power(load),
    )


def sweep_operating_rate(
    profile: FunctionProfile,
    platform: str,
    streams: Optional[RandomStreams] = None,
    n_requests: int = 20_000,
    slo_p99: Optional[float] = None,
    tolerance: float = 0.02,
    warm: bool = True,
) -> SweepResult:
    """Probe-verified maximum sustainable rate for one (function, platform).

    Unlike :func:`measure_operating_point`'s fixed 12-rung ladder (kept
    deterministic so the figure numbers are stable), this runs the
    adaptive bisection search of :func:`find_max_sustainable_rate` —
    warm-started from the analytic capacity estimate when ``warm`` is
    True, which typically halves the probe count (the savings show up
    in the CLI footer as ``probe.saved``).
    """
    streams = streams or RandomStreams()
    estimate = min(
        estimate_capacity_rps(profile, platform, slo_p99), _nic_cap_rps(profile)
    )

    def run_at(rate: float) -> RunMetrics:
        return run_fixed_rate(profile, platform, rate, streams, n_requests)

    return find_max_sustainable_rate(
        run_at,
        low_rate=estimate * 0.05,
        high_rate=estimate * 2.0,
        slo_p99=slo_p99,
        tolerance=tolerance,
        warm_start=estimate if warm else None,
    )


# ---------------------------------------------------------------------------
# Pure work units + content-addressed caching
# ---------------------------------------------------------------------------
#
# An operating-point measurement is a pure function of
# (profile_key, platform, seed, samples, n_requests, slo_p99): every RNG
# substream it touches is derived from (seed, "{key}:{platform}:{rate}"),
# names that no other measurement uses, so rebuilding a fresh
# RandomStreams(seed) inside the unit reproduces exactly the draws the
# old shared-registry serial loop produced.  That is what makes these
# functions safe both to fan out across processes and to memoize.


def compute_operating_point(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
) -> OperatingPoint:
    """The picklable work unit behind Fig. 4 rows and fault baselines."""
    profile = get_profile(profile_key, samples=samples)
    return measure_operating_point(
        profile, platform, RandomStreams(seed), n_requests, slo_p99=slo_p99
    )


def operating_point_cache_key(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
) -> str:
    """Content hash of everything :func:`compute_operating_point` reads.

    The offered rates probed by the ladder are themselves derived from
    (profile_key, samples), so they need no separate key component; the
    cache module salts every key with CODE_VERSION for invalidation.
    """
    return cache_key(
        "operating-point", profile_key, platform, seed, samples, n_requests,
        slo_p99,
    )


def measure_operating_point_cached(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
) -> OperatingPoint:
    """Memoized operating point for *canonical* profiles.

    Only safe for profiles reachable through ``get_profile`` under the
    global calibration — experiments that perturb calibration in place
    (sensitivity, strategy1) must keep calling
    :func:`measure_operating_point` directly.
    """
    store = get_cache()
    key = operating_point_cache_key(
        profile_key, platform, seed, samples, n_requests, slo_p99
    )
    found, point = store.get(key)
    if found:
        return point
    point = compute_operating_point(
        profile_key, platform, seed, samples, n_requests, slo_p99
    )
    store.put(key, point)
    return point


def component_load(
    profile: FunctionProfile, platform: str, completed_rate: float
) -> ComponentLoad:
    """Average component utilization while serving at ``completed_rate``."""
    if platform == ACCEL_PLATFORM:
        per_item = accel_per_item_seconds(profile)
        utilization = min(completed_rate * per_item, 1.0)
        engine = ACCELERATORS[profile.accel_engine]
        staging_util = 0.0
        staging_stack = profile.accel_staging_stack or profile.stack
        if staging_stack is not None:
            snic = PLATFORMS["snic-cpu"]
            staging_per_packet = snic.stack_seconds(
                staging_stack, int(profile.wire_bytes)
            )
            staging_util = min(
                completed_rate * staging_per_packet / engine.staging_cores, 1.0
            )
        spin = POWER.dpdk_spin_fraction if profile.stack == "dpdk" else 0.0
        staging_busy = engine.staging_cores * (spin + (1 - spin) * staging_util)
        return ComponentLoad(
            snic_busy_cores=staging_busy,
            accel_utilization={profile.accel_engine: utilization},
            accel_engaged=frozenset({profile.accel_engine}),
        )

    services = cpu_service_seconds(profile, platform)
    cores = cpu_cores(profile, platform)
    utilization = min(completed_rate * float(np.mean(services)) / cores, 1.0)
    spin = POWER.dpdk_spin_fraction if profile.stack == "dpdk" else 0.0
    busy = cores * (spin + (1 - spin) * utilization)
    if platform == "host":
        return ComponentLoad(host_busy_cores=busy * profile.host_power_scale)
    return ComponentLoad(snic_busy_cores=busy)
