"""The measurement methodology of §4.

For each (function, platform) pair the paper (1) finds the packet rate at
which throughput saturates, (2) reports the throughput there and the p99
latency measured at that operating point, and (3) measures average wall
power at the same point.  This module reproduces that procedure against
the calibrated platform models:

* CPU platforms (host / SNIC CPU) serve requests on RSS-sharded cores;
  per-request service time = stack cycles + priced work units; latency =
  queueing sojourn + the stack's fixed RTT floor.
* The accelerator platform serves requests through a batch engine with a
  throughput cap (Key Observation 3), staged by SNIC CPU cores over DPDK.
* The NIC line rate bounds every networked function.

Power at the operating point comes from the component power model, with
poll-mode spin accounting (a DPDK core burns power even when idle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..calibration import (
    ACCELERATORS,
    LINE_RATE_GBPS,
    PLATFORMS,
    POWER,
    base_rtt_sampler,
)
from ..core import analytic, hybrid, instrument, trace
from ..core.cache import cache_key, get_cache
from ..core.hybrid import TrustRecord
from ..core.metrics import RunMetrics
from ..core.queueing import (
    COMP_STACK_RTT,
    outcome_to_metrics,
    simulate_batch_server,
    simulate_batch_server_ladder,
    simulate_sharded,
    simulate_sharded_ladder,
)
from ..core.rng import RandomStreams
from ..core.sweep import SweepResult, find_max_sustainable_rate
from ..core.units import gbps_to_bytes_per_second
from ..power.energy import EnergyReport
from ..power.models import ComponentLoad, ServerPowerModel, SnicPowerModel
from .profiles import FunctionProfile, get_profile

ACCEL_PLATFORM = "snic-accel"
CPU_PLATFORMS = ("host", "snic-cpu")
BATCH_TIMEOUT_S = 15e-6
QUEUE_LIMIT_S = 2e-3  # socket/ring buffering bound: overload becomes loss
# Buffers always hold at least a few tens of requests, so the backlog
# bound never drops below this many mean service times.
QUEUE_LIMIT_SERVICES = 8.0
# The deterministic knee-search ladder: offered rates are these factors
# times the analytic capacity anchor (shared by both probe engines so
# the hybrid's trust regions are expressed in the same load factors the
# pure-simulation ladder probes).
LADDER_FACTORS = np.geomspace(0.3, 1.45, 12)


class MeasurementError(RuntimeError):
    pass


@dataclass
class OperatingPoint:
    """One platform's Fig. 4 data point, with the Fig. 6 power numbers."""

    profile_key: str
    platform: str
    capacity_rps: float
    metrics: RunMetrics
    load: ComponentLoad
    server_power_w: float
    device_power_w: float  # the (S)NIC alone

    @property
    def throughput_rps(self) -> float:
        return self.metrics.completed_rate

    @property
    def goodput_gbps(self) -> float:
        return self.metrics.goodput_gbps

    @property
    def p99_latency_s(self) -> float:
        return self.metrics.latency_p99

    @property
    def energy_efficiency(self) -> float:
        if self.server_power_w <= 0:
            return 0.0
        return self.goodput_gbps / self.server_power_w

    def energy_report(self, label: str = "") -> EnergyReport:
        return EnergyReport(
            label=label or f"{self.profile_key}@{self.platform}",
            throughput=self.goodput_gbps,
            total_power_w=self.server_power_w,
            device_power_w=self.device_power_w,
            idle_power_w=POWER.server_idle_w,
        )


def operating_point_json(point: "OperatingPoint") -> Dict[str, object]:
    """The stable machine-readable view of one operating point, shared
    by every experiment's ``--json`` artifact."""
    return {
        "platform": point.platform,
        "capacity_rps": point.capacity_rps,
        "throughput_rps": point.throughput_rps,
        "goodput_gbps": point.goodput_gbps,
        "p99_latency_s": point.p99_latency_s,
        "server_power_w": point.server_power_w,
        "device_power_w": point.device_power_w,
    }


# Schema fragment for :func:`operating_point_json` payloads.
OPERATING_POINT_SCHEMA = {
    "type": "object",
    "required": ["platform", "capacity_rps", "throughput_rps",
                 "goodput_gbps", "p99_latency_s", "server_power_w"],
    "properties": {
        "platform": {"type": "string"},
        "capacity_rps": {"type": "number"},
        "throughput_rps": {"type": "number"},
        "goodput_gbps": {"type": "number"},
        "p99_latency_s": {"type": "number"},
        "server_power_w": {"type": "number"},
        "device_power_w": {"type": "number"},
    },
}


# ---------------------------------------------------------------------------
# Service samplers
# ---------------------------------------------------------------------------


def cpu_service_seconds(profile: FunctionProfile, platform: str) -> np.ndarray:
    """Per-request service times (seconds) for a CPU platform.

    Deterministic in (profile, platform calibration), so the pricing
    pass runs once per pair and every probe shares one read-only array —
    a sweep prices the same work samples hundreds of times otherwise.
    The memo is validated against the *identity* of the calibration
    object: the what-if experiments (TCO strategy 1, sensitivity) swap
    ``PLATFORMS[platform]`` for a perturbed copy in place, and a stale
    array priced under the original physics must not survive the swap.
    """
    cache = getattr(profile, "_service_seconds_cache", None)
    if cache is None:
        cache = {}
        profile._service_seconds_cache = cache
    calibration = PLATFORMS[platform]
    cached = cache.get(platform)
    if cached is not None and cached[0] is calibration:
        return cached[1]
    work_seconds = np.array(
        [calibration.work_seconds(sample) for sample in profile.work_samples]
    )
    if profile.stack is not None and profile.stack_packets > 0:
        per_packet = calibration.stack_seconds(profile.stack, int(profile.wire_bytes))
        work_seconds = work_seconds + per_packet * profile.stack_packets
    work_seconds.setflags(write=False)
    cache[platform] = (calibration, work_seconds)
    return work_seconds


def cpu_cores(profile: FunctionProfile, platform: str) -> int:
    return profile.cores.get(platform, PLATFORMS[platform].cores)


def _nic_cap_rps(profile: FunctionProfile) -> float:
    if profile.stack is None:
        return float("inf")
    return gbps_to_bytes_per_second(LINE_RATE_GBPS) / profile.wire_bytes


def accel_per_item_seconds(profile: FunctionProfile) -> float:
    engine = ACCELERATORS[profile.accel_engine]
    if profile.accel_op_based:
        return 1.0 / engine.ops_per_s[profile.accel_mode]
    return profile.payload_bytes / engine.bytes_per_s[profile.accel_mode]


# ---------------------------------------------------------------------------
# Fixed-rate runs
# ---------------------------------------------------------------------------


def run_fixed_rate(
    profile: FunctionProfile,
    platform: str,
    rate: float,
    streams: RandomStreams,
    n_requests: int = 20_000,
) -> RunMetrics:
    """Offer ``rate`` requests/s and measure (the inner loop of a sweep)."""
    instrument.increment(instrument.PROBES)
    instrument.increment(instrument.PROBES_SIMULATED)
    if not trace.TRACING:
        return _run_fixed_rate(profile, platform, rate, streams, n_requests)
    # Each probe records onto its own sub-track, so its queue-depth
    # series and the probe summary stay grouped in the trace viewer.
    with trace.track(trace.subtrack(f"{profile.key}:{platform}:{rate:.6g}")):
        trace.instant("probe", trace.PROBE, function=profile.key,
                      platform=platform, rate=rate, n_requests=n_requests)
        metrics = _run_fixed_rate(profile, platform, rate, streams, n_requests)
        trace.instant("probe.done", trace.PROBE,
                      completed_rate=metrics.completed_rate,
                      p99_us=metrics.latency_p99 * 1e6,
                      dropped=metrics.dropped)
        return metrics


def _run_fixed_rate(
    profile: FunctionProfile,
    platform: str,
    rate: float,
    streams: RandomStreams,
    n_requests: int,
) -> RunMetrics:
    if platform == ACCEL_PLATFORM:
        return _run_accelerator(profile, rate, streams, n_requests)
    if platform not in CPU_PLATFORMS:
        raise MeasurementError(f"unknown platform {platform!r}")
    if platform not in profile.platforms:
        raise MeasurementError(f"{profile.key} does not run on {platform}")

    rng = streams.stream(f"{profile.key}:{platform}:{rate:.6g}")
    calibration = PLATFORMS[platform]
    services = cpu_service_seconds(profile, platform)
    cores = cpu_cores(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    effective_rate = min(rate, nic_cap)
    queue_limit = QUEUE_LIMIT_S
    if profile.stack is not None:
        queue_limit = calibration.stacks[profile.stack].queue_limit_s
    queue_limit = max(queue_limit, QUEUE_LIMIT_SERVICES * float(np.mean(services)))

    def sampler(sampler_rng: np.random.Generator, n: int) -> np.ndarray:
        return sampler_rng.choice(services, size=n)

    outcome = simulate_sharded(
        effective_rate, cores, sampler, n_requests, rng, queue_limit=queue_limit
    )
    outcome = _add_fixed_latency(outcome, profile, platform, rng)
    metrics = outcome_to_metrics(
        outcome, offered_rate=rate, bytes_per_request=profile.wire_bytes, cores=cores
    )
    if rate > nic_cap:
        # Wire-rate clipping: the excess never reaches the server.
        metrics.completed_rate = min(metrics.completed_rate, nic_cap)
        metrics.dropped += int((rate - nic_cap) / rate * n_requests)
    return metrics


def _add_fixed_latency(outcome, profile, platform, rng):
    n = len(outcome.sojourns)
    if n == 0:
        return outcome
    extra = np.zeros(n)
    stack = profile.stack
    if platform == ACCEL_PLATFORM:
        stack = profile.accel_staging_stack or profile.stack
    if stack is not None:
        calibration = PLATFORMS[platform] if platform != ACCEL_PLATFORM else PLATFORMS["snic-cpu"]
        cost = calibration.stacks[stack]
        extra = extra + base_rtt_sampler(cost)(rng, n)
    adder = profile.latency_extra.get(platform, 0.0)
    # add_component keeps sojourns and the attribution arrays in sync.
    outcome.add_component(COMP_STACK_RTT, extra + adder)
    return outcome


def _run_accelerator(
    profile: FunctionProfile,
    rate: float,
    streams: RandomStreams,
    n_requests: int,
) -> RunMetrics:
    if profile.accel_engine is None:
        raise MeasurementError(f"{profile.key} has no accelerator path")
    rng = streams.stream(f"{profile.key}:accel:{rate:.6g}")
    engine = ACCELERATORS[profile.accel_engine]
    per_item = accel_per_item_seconds(profile)

    # Staging: SNIC CPU cores feed the engine over DPDK (§3.4).  They cap
    # the submission rate but their per-packet time is tiny.
    staging_cap = float("inf")
    staging_stack = profile.accel_staging_stack or profile.stack
    if staging_stack is not None:
        snic = PLATFORMS["snic-cpu"]
        staging_per_packet = snic.stack_seconds(staging_stack, int(profile.wire_bytes))
        staging_cap = engine.staging_cores / staging_per_packet
    nic_cap = _nic_cap_rps(profile)
    effective_rate = min(rate, staging_cap, nic_cap)

    outcome = simulate_batch_server(
        effective_rate,
        n_requests,
        rng,
        batch_size=engine.max_batch,
        batch_timeout=BATCH_TIMEOUT_S,
        setup_time=engine.setup_latency_s,
        per_item_time=per_item,
    )
    outcome = _add_fixed_latency(outcome, profile, ACCEL_PLATFORM, rng)
    metrics = outcome_to_metrics(
        outcome, offered_rate=rate, bytes_per_request=profile.wire_bytes
    )
    cap = min(staging_cap, nic_cap)
    if rate > cap:
        metrics.completed_rate = min(metrics.completed_rate, cap)
        metrics.dropped += int((rate - cap) / rate * n_requests)
    return metrics


# ---------------------------------------------------------------------------
# Batched ladder probes (hybrid engine fast path)
# ---------------------------------------------------------------------------


def _cpu_queue_limit(
    profile: FunctionProfile, platform: str, services: np.ndarray
) -> float:
    calibration = PLATFORMS[platform]
    queue_limit = QUEUE_LIMIT_S
    if profile.stack is not None:
        queue_limit = calibration.stacks[profile.stack].queue_limit_s
    return max(queue_limit, QUEUE_LIMIT_SERVICES * float(np.mean(services)))


def _stack_rtt_floor(profile: FunctionProfile, platform: str) -> tuple:
    """(mean, p99) of the fixed stack-RTT + latency-extra floor."""
    stack = profile.stack
    if platform == ACCEL_PLATFORM:
        stack = profile.accel_staging_stack or profile.stack
    adder = profile.latency_extra.get(platform, 0.0)
    if stack is None:
        return adder, adder
    calibration = (PLATFORMS[platform] if platform != ACCEL_PLATFORM
                   else PLATFORMS["snic-cpu"])
    cost = calibration.stacks[stack]
    return cost.base_rtt_mean_s + adder, cost.base_rtt_p99_s + adder


def run_ladder(
    profile: FunctionProfile,
    platform: str,
    rates,
    streams: RandomStreams,
    n_requests: int = 20_000,
) -> list:
    """Simulate several rates of one (function, platform) in one batch.

    The hybrid engine's simulated path: every rung shares one sampled
    service array, one unit-mean interarrival array, and one stack-RTT
    array (drawn from the dedicated ``:ladder`` substream), evaluated by
    the stacked kernels in :mod:`repro.core.queueing`.  Returns one
    :class:`RunMetrics` per rate, in order.
    """
    rates = [float(rate) for rate in rates]
    count = len(rates)
    if count == 0:
        return []
    instrument.increment(instrument.PROBES, count)
    instrument.increment(instrument.PROBES_SIMULATED, count)
    if count > 1:
        # Every rung past the first reuses the shared draws instead of
        # re-sampling (services + gaps + stack RTT).
        instrument.increment(instrument.SAMPLES_REUSED, count - 1)
    if not trace.TRACING:
        return _run_ladder(profile, platform, rates, streams, n_requests)
    with trace.track(trace.subtrack(f"{profile.key}:{platform}:ladder")):
        trace.instant("probe.ladder", trace.PROBE, function=profile.key,
                      platform=platform, rungs=count, n_requests=n_requests)
        metrics = _run_ladder(profile, platform, rates, streams, n_requests)
        for rate, rung in zip(rates, metrics):
            trace.instant("probe.done", trace.PROBE, rate=rate,
                          completed_rate=rung.completed_rate,
                          p99_us=rung.latency_p99 * 1e6,
                          dropped=rung.dropped)
        return metrics


def _run_ladder(profile, platform, rates, streams, n_requests) -> list:
    if platform == ACCEL_PLATFORM:
        return _run_accelerator_ladder(profile, rates, streams, n_requests)
    if platform not in CPU_PLATFORMS:
        raise MeasurementError(f"unknown platform {platform!r}")
    if platform not in profile.platforms:
        raise MeasurementError(f"{profile.key} does not run on {platform}")
    rng = streams.fresh(f"{profile.key}:{platform}:ladder")
    services = cpu_service_seconds(profile, platform)
    cores = cpu_cores(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    queue_limit = _cpu_queue_limit(profile, platform, services)
    effective = [min(rate, nic_cap) for rate in rates]

    def sampler(sampler_rng: np.random.Generator, n: int) -> np.ndarray:
        return sampler_rng.choice(services, size=n)

    outcomes = simulate_sharded_ladder(
        effective, cores, sampler, n_requests, rng, queue_limit=queue_limit
    )
    rtt = _shared_rtt(profile, platform, rng, n_requests)
    results = []
    for rate, outcome in zip(rates, outcomes):
        outcome.add_component(COMP_STACK_RTT, rtt[: len(outcome.sojourns)])
        metrics = outcome_to_metrics(
            outcome, offered_rate=rate,
            bytes_per_request=profile.wire_bytes, cores=cores,
        )
        if rate > nic_cap:
            metrics.completed_rate = min(metrics.completed_rate, nic_cap)
            metrics.dropped += int((rate - nic_cap) / rate * n_requests)
        results.append(metrics)
    return results


def _run_accelerator_ladder(profile, rates, streams, n_requests) -> list:
    if profile.accel_engine is None:
        raise MeasurementError(f"{profile.key} has no accelerator path")
    rng = streams.fresh(f"{profile.key}:accel:ladder")
    engine = ACCELERATORS[profile.accel_engine]
    per_item = accel_per_item_seconds(profile)
    staging_cap = _staging_cap_rps(profile)
    nic_cap = _nic_cap_rps(profile)
    cap = min(staging_cap, nic_cap)
    effective = [min(rate, cap) for rate in rates]
    outcomes = simulate_batch_server_ladder(
        effective,
        n_requests,
        rng,
        batch_size=engine.max_batch,
        batch_timeout=BATCH_TIMEOUT_S,
        setup_time=engine.setup_latency_s,
        per_item_time=per_item,
    )
    rtt = _shared_rtt(profile, ACCEL_PLATFORM, rng, n_requests)
    results = []
    for rate, outcome in zip(rates, outcomes):
        outcome.add_component(COMP_STACK_RTT, rtt[: len(outcome.sojourns)])
        metrics = outcome_to_metrics(
            outcome, offered_rate=rate, bytes_per_request=profile.wire_bytes
        )
        if rate > cap:
            metrics.completed_rate = min(metrics.completed_rate, cap)
            metrics.dropped += int((rate - cap) / rate * n_requests)
        results.append(metrics)
    return results


def _shared_rtt(profile, platform, rng, n_requests) -> np.ndarray:
    """One stack-RTT draw shared by every rung of a ladder.

    RTT draws are i.i.d. and independent of the queueing state, so a
    rung that dropped requests simply consumes a prefix of the shared
    array.
    """
    extra = np.zeros(n_requests)
    stack = profile.stack
    if platform == ACCEL_PLATFORM:
        stack = profile.accel_staging_stack or profile.stack
    if stack is not None:
        calibration = (PLATFORMS[platform] if platform != ACCEL_PLATFORM
                       else PLATFORMS["snic-cpu"])
        extra = extra + base_rtt_sampler(calibration.stacks[stack])(rng, n_requests)
    return extra + profile.latency_extra.get(platform, 0.0)


def _staging_cap_rps(profile: FunctionProfile) -> float:
    staging_cap = float("inf")
    staging_stack = profile.accel_staging_stack or profile.stack
    if staging_stack is not None:
        snic = PLATFORMS["snic-cpu"]
        staging_per_packet = snic.stack_seconds(
            staging_stack, int(profile.wire_bytes))
        staging_cap = ACCELERATORS[profile.accel_engine].staging_cores / staging_per_packet
    return staging_cap


# ---------------------------------------------------------------------------
# Analytic probe predictions (hybrid engine fast path)
# ---------------------------------------------------------------------------


def predict_fixed_rate(
    profile: FunctionProfile,
    platform: str,
    rate: float,
    n_requests: int = 20_000,
) -> RunMetrics:
    """Analytic prediction of :func:`run_fixed_rate` (no simulation).

    CPU platforms use the M/G/1 Pollaczek-Khinchine mean wait and the
    exponential-tail p99 per RSS shard plus the calibrated stack-RTT
    floor; the accelerator uses the batch-capacity model.  The hybrid
    engine only *reports* these inside a simulation-validated trust
    region (see :mod:`repro.core.hybrid`); throughput acceptance above
    capacity and latency under SLO bounds stay simulation-gated.

    The returned metrics carry ``extra["probe.analytic"] == 1.0`` so
    downstream layers can tell the two kinds of probe apart.
    """
    rtt_mean, rtt_p99 = _stack_rtt_floor(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    if platform == ACCEL_PLATFORM:
        if profile.accel_engine is None:
            raise MeasurementError(f"{profile.key} has no accelerator path")
        engine = ACCELERATORS[profile.accel_engine]
        per_item = accel_per_item_seconds(profile)
        batch_cap = analytic.batch_capacity(
            engine.setup_latency_s, per_item, engine.max_batch)
        cap = min(batch_cap, _staging_cap_rps(profile), nic_cap)
        effective = min(rate, _staging_cap_rps(profile), nic_cap)
        # Expected batch fill under timeout dispatch, and the resulting
        # service span; below capacity a request waits at most the
        # timeout for its batch to form.
        fill = min(engine.max_batch, max(1.0, effective * BATCH_TIMEOUT_S))
        span = engine.setup_latency_s + fill * per_item
        if effective < cap * 0.999:
            completed_rate = min(rate, cap)
            latency_mean = 0.5 * BATCH_TIMEOUT_S + span + rtt_mean
            latency_p99 = BATCH_TIMEOUT_S + span + rtt_p99
            latency_p50 = 0.5 * BATCH_TIMEOUT_S + span + rtt_mean
        else:
            completed_rate = cap
            latency_mean = latency_p99 = latency_p50 = float("inf")
        return _analytic_metrics(
            profile, rate, completed_rate, latency_p50, latency_p99,
            latency_mean, n_requests)

    services = cpu_service_seconds(profile, platform)
    mean_service = float(np.mean(services))
    scv = float(np.var(services)) / (mean_service**2)
    cores = cpu_cores(profile, platform)
    capacity = min(cores / mean_service, nic_cap)
    effective = min(rate, nic_cap)
    shard_rate = effective / cores
    rho = shard_rate * mean_service
    if rho < 1.0:
        wait_mean = analytic.mg1_wait_mean(shard_rate, mean_service, scv)
        sojourn_p99 = analytic.mg1_sojourn_p99(shard_rate, mean_service, scv)
        completed_rate = min(rate, effective)
        latency_mean = wait_mean + mean_service + rtt_mean
        latency_p99 = sojourn_p99 + rtt_p99
        latency_p50 = mean_service + rtt_mean
    else:
        # Overloaded: the bounded buffer pins the backlog at the queue
        # limit and sheds the excess.
        queue_limit = _cpu_queue_limit(profile, platform, services)
        completed_rate = capacity
        latency_mean = 0.75 * queue_limit + mean_service + rtt_mean
        latency_p99 = queue_limit + mean_service + rtt_p99
        latency_p50 = 0.75 * queue_limit + mean_service + rtt_mean
    return _analytic_metrics(
        profile, rate, completed_rate, latency_p50, latency_p99,
        latency_mean, n_requests)


def _analytic_metrics(
    profile, rate, completed_rate, p50, p99, mean, n_requests
) -> RunMetrics:
    served_fraction = min(1.0, completed_rate / rate) if rate > 0 else 1.0
    completed = int(round(n_requests * served_fraction))
    duration = n_requests / rate if rate > 0 else 0.0
    return RunMetrics(
        offered_rate=rate,
        duration=duration,
        completed=completed,
        completed_rate=completed_rate,
        goodput_gbps=completed_rate * profile.wire_bytes * 8 / 1e9,
        latency_p50=p50,
        latency_p99=p99,
        latency_mean=mean,
        dropped=n_requests - completed,
        extra={"probe.analytic": 1.0},
    )


# ---------------------------------------------------------------------------
# Operating points (capacity search + measurement at the knee)
# ---------------------------------------------------------------------------


def estimate_capacity_rps(
    profile: FunctionProfile, platform: str, slo_p99: Optional[float] = None
) -> float:
    """Analytic capacity estimate (see :mod:`repro.core.analytic`).

    Used both to anchor the deterministic knee ladder and to warm-start
    rate sweeps.  With ``slo_p99`` the M/G/1 tail approximation lowers
    the estimate to the rate whose analytic p99 meets the SLO.
    """
    if platform == ACCEL_PLATFORM:
        engine = ACCELERATORS[profile.accel_engine]
        return analytic.batch_capacity(
            engine.setup_latency_s, accel_per_item_seconds(profile),
            engine.max_batch,
        )
    services = cpu_service_seconds(profile, platform)
    mean_service = float(np.mean(services))
    if mean_service <= 0:
        raise MeasurementError(f"degenerate service time for {profile.key}")
    scv = float(np.var(services)) / (mean_service**2)
    return analytic.slo_capacity(
        mean_service, scv, cpu_cores(profile, platform), slo_p99
    )


def run_validated_ladder(
    profile: FunctionProfile,
    platform: str,
    rates,
    streams: RandomStreams,
    n_requests: int = 20_000,
) -> list:
    """Hybrid rate ladder for full sweeps (the Fig. 5 fast path).

    Simulates the knee window — rungs whose load factor against the
    analytic capacity anchor falls inside ``HybridConfig.sim_window`` —
    plus one low and one high spot-check rung (the lowest and highest
    offered rates), all in one batched :func:`run_ladder` call.  The
    remaining rungs are answered by :func:`predict_fixed_rate`, but only
    after the spot checks validate the analytic model:

    * *low side* — the lowest-rate simulation must agree with the
      prediction on acceptability **and** its p99 must match within
      ``p99_tolerance`` (the sub-window p99s appear verbatim in the
      Fig. 5 latency curves, so throughput agreement alone is not
      enough);
    * *high side* — the highest-rate simulation must agree with the
      prediction that the rung overloads.

    A failed spot check degrades that side back to batched simulation,
    so the fast path only ever engages inside tolerance.  The knee
    window itself is always simulated, which keeps every p99-wall
    crossing (Fig. 5's ``knee_gbps``) simulation-backed.
    """
    rates = [float(rate) for rate in rates]
    if len(rates) <= 2:
        return run_ladder(profile, platform, rates, streams, n_requests)
    cfg = hybrid.config()
    anchor = min(estimate_capacity_rps(profile, platform),
                 _nic_cap_rps(profile))
    if platform == ACCEL_PLATFORM:
        anchor = min(anchor, _staging_cap_rps(profile))
    if not np.isfinite(anchor) or anchor <= 0:
        return run_ladder(profile, platform, rates, streams, n_requests)

    factors = [rate / anchor for rate in rates]
    below = [i for i, f in enumerate(factors) if f < cfg.sim_window_lo]
    above = [i for i, f in enumerate(factors) if f > cfg.sim_window_hi]
    window = [i for i, f in enumerate(factors)
              if cfg.sim_window_lo <= f <= cfg.sim_window_hi]
    if not window:
        # Degenerate grid: keep the rung nearest the anchor simulated.
        nearest = min(range(len(rates)), key=lambda i: abs(factors[i] - 1.0))
        window = [nearest]
        below = [i for i in below if i != nearest]
        above = [i for i in above if i != nearest]
    spot_low = min(below, key=lambda i: rates[i]) if below else None
    spot_high = max(above, key=lambda i: rates[i]) if above else None
    sim_idx = sorted(set(window)
                     | ({spot_low} if spot_low is not None else set())
                     | ({spot_high} if spot_high is not None else set()))

    simulated: Dict[int, RunMetrics] = {}

    def simulate(indices) -> None:
        todo = [i for i in indices if i not in simulated]
        if not todo:
            return
        for index, metrics in zip(
                todo,
                run_ladder(profile, platform, [rates[i] for i in todo],
                           streams, n_requests)):
            simulated[index] = metrics

    simulate(sim_idx)
    if len(simulated) == len(rates):
        return [simulated[i] for i in range(len(rates))]

    predictions = {
        index: predict_fixed_rate(profile, platform, rates[index], n_requests)
        for index in range(len(rates)) if index not in simulated
    }

    if spot_low is not None:
        sim_lo = simulated[spot_low]
        pred_lo = predict_fixed_rate(profile, platform, rates[spot_low],
                                     n_requests)
        p99_rel_err = float("inf")
        if np.isfinite(sim_lo.latency_p99) and sim_lo.latency_p99 > 0:
            p99_rel_err = abs(sim_lo.latency_p99 - pred_lo.latency_p99) \
                / sim_lo.latency_p99
        trust_low = (p99_rel_err <= cfg.p99_tolerance
                     and _rung_acceptable(sim_lo, rates[spot_low], None)
                     == _rung_acceptable(pred_lo, rates[spot_low], None))
        if not trust_low:
            simulate(below)
    if spot_high is not None:
        sim_hi = simulated[spot_high]
        pred_hi = predict_fixed_rate(profile, platform, rates[spot_high],
                                     n_requests)
        trust_high = (_rung_acceptable(sim_hi, rates[spot_high], None)
                      == _rung_acceptable(pred_hi, rates[spot_high], None))
        if not trust_high:
            simulate(above)

    analytic_count = len(rates) - len(simulated)
    if analytic_count:
        instrument.increment(instrument.PROBES, analytic_count)
        instrument.increment(instrument.ANALYTIC_HITS, analytic_count)
    return [simulated.get(index) or predictions[index]
            for index in range(len(rates))]


def measure_operating_point(
    profile: FunctionProfile,
    platform: str,
    streams: Optional[RandomStreams] = None,
    n_requests: int = 20_000,
    load_fraction: float = 0.95,
    slo_p99: Optional[float] = None,
    engine: Optional[str] = None,
) -> OperatingPoint:
    """Find the saturation knee, then measure at ``load_fraction`` of it.

    The knee is located with a deterministic geometric rate ladder around
    the analytic capacity estimate: capacity is the largest offered rate
    the system still serves with <=5 % loss (losses come from the stack's
    bounded buffers), which matches the paper's "maximum sustainable
    throughput".  An optional ``slo_p99`` additionally bounds the knee.

    ``engine`` selects the probe engine (:mod:`repro.core.hybrid`):
    ``"sim"`` simulates every ladder rung one probe at a time (the
    legacy path, byte-identical output); ``"hybrid"`` (the default)
    simulates the knee window in one batched ladder call and serves the
    far-from-knee rungs analytically inside a validated trust region.
    Both engines probe the same 12 offered rates and the measurement at
    the chosen knee is always a fresh standalone simulation on the same
    RNG substream, so whenever the two engines agree on the knee rung —
    disagreement at the window edges degrades the hybrid back to full
    simulation — they report identical operating points.
    """
    engine = hybrid.resolve_engine(engine)
    streams = streams or RandomStreams()
    if profile.load_fraction_override is not None:
        load_fraction = profile.load_fraction_override
    estimate = estimate_capacity_rps(profile, platform)
    nic_cap = _nic_cap_rps(profile)
    anchor = min(estimate, nic_cap)

    ladder = anchor * LADDER_FACTORS
    if engine == hybrid.ENGINE_SIM:
        knee_rate = _knee_sim(profile, platform, ladder, streams,
                              n_requests, slo_p99)
    else:
        knee_rate = _knee_hybrid(profile, platform, anchor, ladder, streams,
                                 n_requests, slo_p99)

    operating_rate = knee_rate * load_fraction
    metrics = run_fixed_rate(profile, platform, operating_rate, streams, n_requests)
    load = component_load(profile, platform, metrics.completed_rate)
    extra_w = profile.power_extra_w.get(platform, 0.0)
    return OperatingPoint(
        profile_key=profile.key,
        platform=platform,
        capacity_rps=knee_rate,
        metrics=metrics,
        load=load,
        server_power_w=ServerPowerModel().power(load) + extra_w,
        device_power_w=SnicPowerModel().power(load),
    )


def _rung_acceptable(metrics: RunMetrics, rate: float,
                     slo_p99: Optional[float]) -> bool:
    served_fraction = metrics.completed_rate / rate if rate > 0 else 1.0
    acceptable = served_fraction >= 0.95
    if slo_p99 is not None and metrics.latency_p99 > slo_p99:
        acceptable = False
    return acceptable


def _select_knee(ladder, rung_metrics, slo_p99: Optional[float]) -> float:
    """The ladder's knee: largest acceptable rung still improving
    completed rate (identical to the legacy inline loop)."""
    knee_rate = float(ladder[0])
    knee_metrics: Optional[RunMetrics] = None
    best_completed = 0.0
    for rate, metrics in zip(ladder, rung_metrics):
        rate = float(rate)
        if (_rung_acceptable(metrics, rate, slo_p99)
                and metrics.completed_rate >= best_completed):
            best_completed = metrics.completed_rate
            knee_rate = rate
            knee_metrics = metrics
    if knee_metrics is None:  # even the lowest rung overloads
        knee_rate = float(ladder[0])
    return knee_rate


def _knee_sim(profile, platform, ladder, streams, n_requests,
              slo_p99) -> float:
    """Legacy knee search: every rung is its own simulation."""
    rung_metrics = [
        run_fixed_rate(profile, platform, float(rate), streams, n_requests)
        for rate in ladder
    ]
    return _select_knee(ladder, rung_metrics, slo_p99)


def _trust_key(profile: FunctionProfile, platform: str, n_requests: int,
               seed: object, anchor: float) -> str:
    """Content hash of everything a trust region's validity depends on.

    Hashing the queueing model's *inputs* (service moments, cores, caps,
    RTT floor) rather than just the profile key means experiments that
    perturb calibration in place (sensitivity, TCO strategy 1) can never
    reuse a record validated against different physics.
    """
    rtt_mean, rtt_p99 = _stack_rtt_floor(profile, platform)
    if platform == ACCEL_PLATFORM:
        engine = ACCELERATORS[profile.accel_engine]
        model = ("batch", engine.setup_latency_s,
                 accel_per_item_seconds(profile), engine.max_batch,
                 BATCH_TIMEOUT_S, _staging_cap_rps(profile))
    else:
        services = cpu_service_seconds(profile, platform)
        mean_service = float(np.mean(services))
        model = ("mg1", mean_service,
                 float(np.var(services)) / (mean_service**2),
                 cpu_cores(profile, platform), len(services),
                 _cpu_queue_limit(profile, platform, services))
    return cache_key(
        "hybrid-trust", profile.key, platform, n_requests, seed, anchor,
        rtt_mean, rtt_p99, _nic_cap_rps(profile), model,
    )


def _knee_hybrid(profile, platform, anchor, ladder, streams, n_requests,
                 slo_p99, record: Optional[TrustRecord] = None,
                 record_checked: bool = False) -> float:
    """Hybrid knee search: batched simulation of the knee window,
    validated analytic answers elsewhere.

    Without a cached trust record the window-edge rungs double as spot
    checks: the lowest simulated rung must agree with the analytic
    *accept* for the rungs below to be served analytically, the highest
    with the analytic *reject* for the rungs above.  Any disagreement
    degrades that side back to (batched) simulation, so the knee always
    matches what the pure-simulation ladder would have chosen.  The
    validated edges are stored as a :class:`~repro.core.hybrid.
    TrustRecord` under a model-content key; a later measurement of the
    same model shrinks the window to the rungs strictly inside the
    record, and a window simulation that contradicts the record's
    promise invalidates it and re-runs the full spot-check pass.
    """
    cfg = hybrid.config()
    store = get_cache()
    factors = np.asarray(ladder, dtype=float) / anchor if anchor > 0 else LADDER_FACTORS
    trust_key = _trust_key(profile, platform, n_requests, streams.root_seed,
                           float(anchor))
    if record is None and not record_checked:
        found, cached = store.get(trust_key, count=False)
        if found and isinstance(cached, TrustRecord):
            record = cached
    if record is not None:
        sim_idx = [
            index for index, factor in enumerate(factors)
            if (record.low_factor is None or factor > record.low_factor)
            and (record.high_factor is None or factor < record.high_factor)
        ]
    else:
        sim_idx = [index for index, factor in enumerate(factors)
                   if cfg.sim_window_lo <= factor <= cfg.sim_window_hi]
    if not sim_idx:
        # Degenerate ladder (all rungs outside the window): simulate the
        # rung closest to the anchor so the knee stays simulation-backed.
        sim_idx = [int(np.argmin(np.abs(factors - 1.0)))]

    simulated: Dict[int, RunMetrics] = {}

    def simulate(indices) -> None:
        indices = [i for i in indices if i not in simulated]
        if not indices:
            return
        for index, metrics in zip(
                indices,
                run_ladder(profile, platform, [float(ladder[i]) for i in indices],
                           streams, n_requests)):
            simulated[index] = metrics

    simulate(sim_idx)
    predictions = {
        index: predict_fixed_rate(profile, platform, float(ladder[index]),
                                  n_requests)
        for index in range(len(ladder)) if index not in simulated
    }

    if record is not None:
        # Consuming a cached record: the window rungs are the spot
        # refresh.  A simulated rung disagreeing with the analytic
        # prediction means the record's promise no longer holds —
        # invalidate and redo the full edge-validation pass.
        consistent = all(
            _rung_acceptable(simulated[i], float(ladder[i]), slo_p99)
            == _rung_acceptable(
                predict_fixed_rate(profile, platform, float(ladder[i]),
                                   n_requests),
                float(ladder[i]), slo_p99)
            for i in simulated
        )
        if not consistent:
            store.put(trust_key, None)
            return _knee_hybrid(profile, platform, anchor, ladder, streams,
                                n_requests, slo_p99, record=None,
                                record_checked=True)
    else:
        low_edge, high_edge = min(simulated), max(simulated)
        low_rate, high_rate = float(ladder[low_edge]), float(ladder[high_edge])
        pred_low = predict_fixed_rate(profile, platform, low_rate, n_requests)
        pred_high = predict_fixed_rate(profile, platform, high_rate, n_requests)
        sim_low, sim_high = simulated[low_edge], simulated[high_edge]
        trust_low = (_rung_acceptable(sim_low, low_rate, None)
                     and _rung_acceptable(pred_low, low_rate, None))
        trust_high = (not _rung_acceptable(sim_high, high_rate, None)
                      and not _rung_acceptable(pred_high, high_rate, None))
        p99_rel_err = float("inf")
        if np.isfinite(sim_low.latency_p99) and sim_low.latency_p99 > 0:
            p99_rel_err = abs(sim_low.latency_p99 - pred_low.latency_p99) \
                / sim_low.latency_p99
        p99_trusted = p99_rel_err <= cfg.p99_tolerance
        if slo_p99 is not None and trust_low:
            # Latency gates acceptance below the window: only trust the
            # analytic fill if its p99 model validated *and* every
            # filled rung clears the SLO by the tolerance margin.
            safe = p99_trusted and all(
                predictions[i].latency_p99 * (1.0 + cfg.p99_tolerance)
                <= slo_p99
                for i in predictions if i < low_edge
            )
            trust_low = trust_low and safe
        if not trust_low:
            simulate(range(0, low_edge))
        if not trust_high:
            simulate(range(high_edge + 1, len(ladder)))
        store.put(trust_key, TrustRecord(
            anchor_rps=float(anchor),
            low_factor=float(factors[low_edge]) if trust_low else None,
            high_factor=float(factors[high_edge]) if trust_high else None,
            p99_trusted=p99_trusted,
            p99_rel_err=p99_rel_err,
        ))

    analytic_count = len(ladder) - len(simulated)
    if analytic_count:
        instrument.increment(instrument.PROBES, analytic_count)
        instrument.increment(instrument.ANALYTIC_HITS, analytic_count)
    rung_metrics = [
        simulated.get(index) or predictions[index]
        for index in range(len(ladder))
    ]
    return _select_knee(ladder, rung_metrics, slo_p99)


def sweep_operating_rate(
    profile: FunctionProfile,
    platform: str,
    streams: Optional[RandomStreams] = None,
    n_requests: int = 20_000,
    slo_p99: Optional[float] = None,
    tolerance: float = 0.02,
    warm: bool = True,
    engine: Optional[str] = None,
) -> SweepResult:
    """Probe-verified maximum sustainable rate for one (function, platform).

    Unlike :func:`measure_operating_point`'s fixed 12-rung ladder (kept
    deterministic so the figure numbers are stable), this runs the
    adaptive bisection search of :func:`find_max_sustainable_rate` —
    warm-started from the analytic capacity estimate when ``warm`` is
    True, which typically halves the probe count (the savings show up
    in the CLI footer as ``probe.saved``).

    Under the hybrid engine, probes far enough outside a *previously
    validated* trust region (see :func:`measure_operating_point`) are
    answered analytically; every probe near the boundary — everything
    the bisection actually decides on — is still simulated, so the
    returned rate is identical with the hybrid engine on or off.  If
    the search settles on an analytically answered probe, that rate is
    re-simulated so the reported metrics stay simulation-backed.
    """
    engine = hybrid.resolve_engine(engine)
    streams = streams or RandomStreams()
    estimate = min(
        estimate_capacity_rps(profile, platform, slo_p99), _nic_cap_rps(profile)
    )

    def simulate_at(rate: float) -> RunMetrics:
        return run_fixed_rate(profile, platform, rate, streams, n_requests)

    run_at = simulate_at
    if engine == hybrid.ENGINE_HYBRID:
        anchor = min(estimate_capacity_rps(profile, platform),
                     _nic_cap_rps(profile))
        found, record = get_cache().get(
            _trust_key(profile, platform, n_requests, streams.root_seed,
                       float(anchor)),
            count=False)
        if found and isinstance(record, TrustRecord) and anchor > 0:
            run_at = _trusted_run_at(profile, platform, anchor, record,
                                     slo_p99, simulate_at, n_requests)

    result = find_max_sustainable_rate(
        run_at,
        low_rate=estimate * 0.05,
        high_rate=estimate * 2.0,
        slo_p99=slo_p99,
        tolerance=tolerance,
        warm_start=estimate if warm else None,
    )
    if result.metrics.extra.get("probe.analytic"):
        # The best probe was served analytically (it sat deep inside the
        # trusted region); re-simulate it at the same rate — same
        # substream as the pure-simulation path — so the reported
        # metrics are measurements, not predictions.
        result = SweepResult(
            max_rate=result.max_rate,
            metrics=simulate_at(result.metrics.offered_rate),
            probes=result.probes,
        )
    return result


def _trusted_run_at(profile, platform, anchor, record: TrustRecord,
                    slo_p99, simulate_at, n_requests):
    """A sweep probe that skips simulation deep inside the trust region.

    Acceptance is only answered analytically below the validated low
    edge (minus the rate margin), rejection only above the validated
    high edge (plus the margin); with an SLO bound, a probe is skipped
    only when the analytic p99 is decisively on one side of the bound
    given the recorded model error.  Everything else — in particular
    every rate the bisection narrows onto — is simulated.
    """
    cfg = hybrid.config()

    def run_at(rate: float) -> RunMetrics:
        factor = rate / anchor
        below = (record.low_factor is not None
                 and factor <= record.low_factor * (1.0 - cfg.rate_margin))
        above = (record.high_factor is not None
                 and factor >= record.high_factor * (1.0 + cfg.rate_margin))
        if not below and not above:
            return simulate_at(rate)
        prediction = predict_fixed_rate(profile, platform, rate, n_requests)
        if below and slo_p99 is not None:
            # Latency gates acceptance: skip only when the analytic p99
            # is decisively clear of (or past) the SLO.
            if not record.p99_trusted:
                return simulate_at(rate)
            margin = max(record.p99_rel_err, cfg.p99_tolerance)
            p99 = prediction.latency_p99
            decisive = (p99 * (1.0 + margin) <= slo_p99
                        or p99 * (1.0 - margin) > slo_p99)
            if not decisive:
                return simulate_at(rate)
        instrument.increment(instrument.PROBES)
        instrument.increment(instrument.ANALYTIC_HITS)
        return prediction

    return run_at


# ---------------------------------------------------------------------------
# Pure work units + content-addressed caching
# ---------------------------------------------------------------------------
#
# An operating-point measurement is a pure function of
# (profile_key, platform, seed, samples, n_requests, slo_p99): every RNG
# substream it touches is derived from (seed, "{key}:{platform}:{rate}"),
# names that no other measurement uses, so rebuilding a fresh
# RandomStreams(seed) inside the unit reproduces exactly the draws the
# old shared-registry serial loop produced.  That is what makes these
# functions safe both to fan out across processes and to memoize.


def compute_operating_point(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
    engine: Optional[str] = None,
) -> OperatingPoint:
    """The picklable work unit behind Fig. 4 rows and fault baselines.

    ``engine`` is resolved at submission time and travels inside the
    unit args (see fig4), so a worker process never depends on an
    inherited process-global engine setting.
    """
    profile = get_profile(profile_key, samples=samples)
    return measure_operating_point(
        profile, platform, RandomStreams(seed), n_requests, slo_p99=slo_p99,
        engine=hybrid.resolve_engine(engine),
    )


def operating_point_cache_key(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
    engine: Optional[str] = None,
) -> str:
    """Content hash of everything :func:`compute_operating_point` reads.

    The offered rates probed by the ladder are themselves derived from
    (profile_key, samples), so they need no separate key component; the
    cache module salts every key with CODE_VERSION for invalidation.
    The probe engine is part of the key: hybrid and pure-simulation
    measurements are distinct artifacts even when they agree.
    """
    return cache_key(
        "operating-point", profile_key, platform, seed, samples, n_requests,
        slo_p99, hybrid.resolve_engine(engine),
    )


def measure_operating_point_cached(
    profile_key: str,
    platform: str,
    seed: int,
    samples: int,
    n_requests: int,
    slo_p99: Optional[float] = None,
    engine: Optional[str] = None,
) -> OperatingPoint:
    """Memoized operating point for *canonical* profiles.

    Only safe for profiles reachable through ``get_profile`` under the
    global calibration — experiments that perturb calibration in place
    (sensitivity, strategy1) must keep calling
    :func:`measure_operating_point` directly.
    """
    engine = hybrid.resolve_engine(engine)
    store = get_cache()
    key = operating_point_cache_key(
        profile_key, platform, seed, samples, n_requests, slo_p99, engine
    )
    found, point = store.get(key)
    if found:
        return point
    point = compute_operating_point(
        profile_key, platform, seed, samples, n_requests, slo_p99, engine
    )
    store.put(key, point)
    return point


def component_load(
    profile: FunctionProfile, platform: str, completed_rate: float
) -> ComponentLoad:
    """Average component utilization while serving at ``completed_rate``."""
    if platform == ACCEL_PLATFORM:
        per_item = accel_per_item_seconds(profile)
        utilization = min(completed_rate * per_item, 1.0)
        engine = ACCELERATORS[profile.accel_engine]
        staging_util = 0.0
        staging_stack = profile.accel_staging_stack or profile.stack
        if staging_stack is not None:
            snic = PLATFORMS["snic-cpu"]
            staging_per_packet = snic.stack_seconds(
                staging_stack, int(profile.wire_bytes)
            )
            staging_util = min(
                completed_rate * staging_per_packet / engine.staging_cores, 1.0
            )
        spin = POWER.dpdk_spin_fraction if profile.stack == "dpdk" else 0.0
        staging_busy = engine.staging_cores * (spin + (1 - spin) * staging_util)
        return ComponentLoad(
            snic_busy_cores=staging_busy,
            accel_utilization={profile.accel_engine: utilization},
            accel_engaged=frozenset({profile.accel_engine}),
        )

    services = cpu_service_seconds(profile, platform)
    cores = cpu_cores(profile, platform)
    utilization = min(completed_rate * float(np.mean(services)) / cores, 1.0)
    spin = POWER.dpdk_spin_fraction if profile.stack == "dpdk" else 0.0
    busy = cores * (spin + (1 - spin) * utilization)
    if platform == "host":
        return ComponentLoad(host_busy_cores=busy * profile.host_power_scale)
    return ComponentLoad(snic_busy_cores=busy)
