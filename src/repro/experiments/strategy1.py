"""Strategy 1 (§5.3): what if the SNIC offloaded its TCP/UDP stack?

Key Observation 1 blames the SNIC CPU's kernel-stack cycles for its
losses on TCP/UDP functions; Strategy 1 proposes hardware stack offload
(the FlexTOE / AccelTCP line of work).  This what-if re-prices the SNIC's
stack under partial offload — a fraction of per-packet stack cycles moves
to NIC hardware and the softirq serialization relaxes — and re-measures
the Fig. 4 points, quantifying how much of the gap Strategy 1 recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from .. import calibration
from ..core.rng import RandomStreams
from .measurement import measure_operating_point
from .profiles import get_profile

DEFAULT_KEYS = ("udp:64", "redis:a", "nat:10k", "bm25:1k", "snort:file_executable")


@dataclass
class OffloadScenario:
    """One point on the stack-offload spectrum."""

    name: str
    # Fraction of per-packet kernel-stack cycles moved into NIC hardware.
    cycles_offloaded: float
    # Restored parallel efficiency (hardware dispatch removes the softirq
    # serialization that capped the A72s).
    parallel_efficiency: float

    def __post_init__(self):
        if not 0.0 <= self.cycles_offloaded < 1.0:
            raise ValueError("cycles_offloaded must be in [0, 1)")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")


BASELINE = OffloadScenario("today", 0.0, 0.30)
# AccelTCP-style: connection setup/teardown + segmentation in hardware.
PARTIAL = OffloadScenario("partial-offload", 0.45, 0.60)
# FlexTOE-style: the full datapath decomposed onto NIC engines.
AGGRESSIVE = OffloadScenario("datapath-offload", 0.75, 0.90)

SCENARIOS = (BASELINE, PARTIAL, AGGRESSIVE)


@dataclass
class Strategy1Row:
    key: str
    scenario: str
    snic_throughput_rps: float
    host_throughput_rps: float

    @property
    def ratio(self) -> float:
        if self.host_throughput_rps <= 0:
            return float("inf")
        return self.snic_throughput_rps / self.host_throughput_rps


def _snic_with_offload(scenario: OffloadScenario) -> calibration.PlatformCalibration:
    """A SNIC CPU calibration with the scenario's stack re-pricing."""
    base = calibration.SNIC_CPU
    stacks = dict(base.stacks)
    for name in ("udp", "tcp"):
        cost = stacks[name]
        stacks[name] = replace(
            cost,
            per_packet_cycles=cost.per_packet_cycles * (1 - scenario.cycles_offloaded),
            per_byte_cycles=cost.per_byte_cycles * (1 - scenario.cycles_offloaded),
            parallel_efficiency=scenario.parallel_efficiency,
        )
    return replace(base, stacks=stacks)


def run_strategy1(
    keys: Sequence[str] = DEFAULT_KEYS,
    scenarios: Sequence[OffloadScenario] = SCENARIOS,
    samples: int = 150,
    n_requests: int = 8_000,
    streams: Optional[RandomStreams] = None,
) -> List[Strategy1Row]:
    """Measure each function under each stack-offload scenario.

    Temporarily swaps the SNIC CPU calibration; always restores it.
    """
    streams = streams or RandomStreams(31)
    rows: List[Strategy1Row] = []
    original = calibration.PLATFORMS["snic-cpu"]
    try:
        for key in keys:
            profile = get_profile(key, samples=samples)
            host = measure_operating_point(profile, "host", streams, n_requests)
            for index, scenario in enumerate(scenarios):
                calibration.PLATFORMS["snic-cpu"] = _snic_with_offload(scenario)
                snic = measure_operating_point(
                    profile, "snic-cpu", streams.fork(index + 1), n_requests
                )
                rows.append(
                    Strategy1Row(
                        key=key,
                        scenario=scenario.name,
                        snic_throughput_rps=snic.throughput_rps,
                        host_throughput_rps=host.throughput_rps,
                    )
                )
    finally:
        calibration.PLATFORMS["snic-cpu"] = original
    return rows


def rows_by_scenario(rows: List[Strategy1Row]) -> Dict[str, Dict[str, float]]:
    """{scenario: {function: snic/host ratio}}"""
    result: Dict[str, Dict[str, float]] = {}
    for row in rows:
        result.setdefault(row.scenario, {})[row.key] = row.ratio
    return result


def format_strategy1(rows: List[Strategy1Row]) -> str:
    by_scenario = rows_by_scenario(rows)
    keys = sorted({row.key for row in rows})
    scenario_names = [s.name for s in SCENARIOS if s.name in by_scenario]
    header = f"{'function':<24}" + "".join(f"{name:>20}" for name in scenario_names)
    lines = [header, "-" * len(header)]
    for key in keys:
        cells = "".join(
            f"{by_scenario[name].get(key, float('nan')):>20.2f}"
            for name in scenario_names
        )
        lines.append(f"{key:<24}" + cells)
    lines.append("")
    lines.append("(cells: SNIC/host max-throughput ratio)")
    return "\n".join(lines)
