"""Strategy 1 (§5.3): what if the SNIC offloaded its TCP/UDP stack?

Key Observation 1 blames the SNIC CPU's kernel-stack cycles for its
losses on TCP/UDP functions; Strategy 1 proposes hardware stack offload
(the FlexTOE / AccelTCP line of work).  This what-if re-prices the SNIC's
stack under partial offload — a fraction of per-packet stack cycles moves
to NIC hardware and the softirq serialization relaxes — and re-measures
the Fig. 4 points, quantifying how much of the gap Strategy 1 recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from .. import calibration
from ..core import hybrid
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from .measurement import (
    compute_operating_point,
    measure_operating_point,
    operating_point_cache_key,
)
from .profiles import get_profile
from .registry import (
    DEGRADE_PARTIAL,
    Experiment,
    ExperimentContext,
    register,
    smoke_tier,
)

DEFAULT_KEYS = ("udp:64", "redis:a", "nat:10k", "bm25:1k", "snort:file_executable")


@dataclass
class OffloadScenario:
    """One point on the stack-offload spectrum."""

    name: str
    # Fraction of per-packet kernel-stack cycles moved into NIC hardware.
    cycles_offloaded: float
    # Restored parallel efficiency (hardware dispatch removes the softirq
    # serialization that capped the A72s).
    parallel_efficiency: float

    def __post_init__(self):
        if not 0.0 <= self.cycles_offloaded < 1.0:
            raise ValueError("cycles_offloaded must be in [0, 1)")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ValueError("parallel_efficiency must be in (0, 1]")


BASELINE = OffloadScenario("today", 0.0, 0.30)
# AccelTCP-style: connection setup/teardown + segmentation in hardware.
PARTIAL = OffloadScenario("partial-offload", 0.45, 0.60)
# FlexTOE-style: the full datapath decomposed onto NIC engines.
AGGRESSIVE = OffloadScenario("datapath-offload", 0.75, 0.90)

SCENARIOS = (BASELINE, PARTIAL, AGGRESSIVE)


@dataclass
class Strategy1Row:
    key: str
    scenario: str
    snic_throughput_rps: float
    host_throughput_rps: float

    @property
    def ratio(self) -> float:
        if self.host_throughput_rps <= 0:
            return float("inf")
        return self.snic_throughput_rps / self.host_throughput_rps


def _snic_with_offload(scenario: OffloadScenario) -> calibration.PlatformCalibration:
    """A SNIC CPU calibration with the scenario's stack re-pricing."""
    base = calibration.SNIC_CPU
    stacks = dict(base.stacks)
    for name in ("udp", "tcp"):
        cost = stacks[name]
        stacks[name] = replace(
            cost,
            per_packet_cycles=cost.per_packet_cycles * (1 - scenario.cycles_offloaded),
            per_byte_cycles=cost.per_byte_cycles * (1 - scenario.cycles_offloaded),
            parallel_efficiency=scenario.parallel_efficiency,
        )
    return replace(base, stacks=stacks)


def _snic_point_under_offload(
    key: str,
    scenario: OffloadScenario,
    salt: int,
    seed: int,
    samples: int,
    n_requests: int,
    engine: Optional[str] = None,
) -> float:
    """Picklable work unit: SNIC throughput with the scenario applied.

    Swaps the SNIC CPU calibration for the duration of the measurement
    and always restores it — required both for the in-process serial
    path and for pooled workers, whose module state persists across
    units.  RNG substreams rebuild from ``(seed, salt)`` exactly as the
    serial loop's ``streams.fork(salt)`` derived them.
    """
    profile = get_profile(key, samples=samples)
    original = calibration.PLATFORMS["snic-cpu"]
    calibration.PLATFORMS["snic-cpu"] = _snic_with_offload(scenario)
    try:
        point = measure_operating_point(
            profile, "snic-cpu", RandomStreams(seed).fork(salt), n_requests,
            engine=engine,
        )
    finally:
        calibration.PLATFORMS["snic-cpu"] = original
    return point.throughput_rps


def run_strategy1(
    keys: Sequence[str] = DEFAULT_KEYS,
    scenarios: Sequence[OffloadScenario] = SCENARIOS,
    samples: int = 150,
    n_requests: int = 8_000,
    streams: Optional[RandomStreams] = None,
    executor: Optional[ParallelExecutor] = None,
    engine: Optional[str] = None,
) -> List[Strategy1Row]:
    """Measure each function under each stack-offload scenario.

    Host baselines are canonical-calibration operating points, so they
    go through the content-addressed cache (free after a fig4 run at
    the same fidelity/seed); the what-if SNIC points re-price the stack
    per scenario inside their own work units, so every (key, scenario)
    cell fans out through ``executor`` deterministically.
    """
    streams = streams or RandomStreams(31)
    seed = streams.root_seed
    executor = executor or ParallelExecutor(1)
    engine = hybrid.resolve_engine(engine)

    host_args = [(key, "host", seed, samples, n_requests, None, engine)
                 for key in keys]
    host_points = map_cached(
        executor,
        [WorkUnit(name=f"strategy1:{key}:host", fn=compute_operating_point,
                  args=args) for key, args in zip(keys, host_args)],
        [operating_point_cache_key(*args) for args in host_args],
    )
    snic_units = [
        WorkUnit(
            name=f"strategy1:{key}:{scenario.name}",
            fn=_snic_point_under_offload,
            args=(key, scenario, index + 1, seed, samples, n_requests,
                  engine),
        )
        for key in keys
        for index, scenario in enumerate(scenarios)
    ]
    snic_rps = executor.map(snic_units)

    rows: List[Strategy1Row] = []
    cell = 0
    for key, host in zip(keys, host_points):
        for scenario in scenarios:
            rows.append(
                Strategy1Row(
                    key=key,
                    scenario=scenario.name,
                    snic_throughput_rps=snic_rps[cell],
                    host_throughput_rps=host.throughput_rps,
                )
            )
            cell += 1
    return rows


def rows_by_scenario(rows: List[Strategy1Row]) -> Dict[str, Dict[str, float]]:
    """{scenario: {function: snic/host ratio}}"""
    result: Dict[str, Dict[str, float]] = {}
    for row in rows:
        result.setdefault(row.scenario, {})[row.key] = row.ratio
    return result


def format_strategy1(rows: List[Strategy1Row]) -> str:
    by_scenario = rows_by_scenario(rows)
    keys = sorted({row.key for row in rows})
    scenario_names = [s.name for s in SCENARIOS if s.name in by_scenario]
    header = f"{'function':<24}" + "".join(f"{name:>20}" for name in scenario_names)
    lines = [header, "-" * len(header)]
    for key in keys:
        cells = "".join(
            f"{by_scenario[name].get(key, float('nan')):>20.2f}"
            for name in scenario_names
        )
        lines.append(f"{key:<24}" + cells)
    lines.append("")
    lines.append("(cells: SNIC/host max-throughput ratio)")
    return "\n".join(lines)


def _strategy1_runner(ctx: ExperimentContext) -> List[Strategy1Row]:
    fid = ctx.fidelity()
    return run_strategy1(samples=fid.samples, n_requests=fid.requests,
                         streams=ctx.streams, executor=ctx.executor,
                         engine=fid.engine)


register(Experiment(
    name="strategy1",
    title="Strategy 1: SNIC kernel-stack offload what-if",
    description="Fig. 4 points re-measured with fractions of the SNIC "
                "stack moved to NIC hardware (AccelTCP/FlexTOE-style)",
    runner=_strategy1_runner,
    formatter=format_strategy1,
    to_json=lambda rows: [
        {"key": r.key, "scenario": r.scenario,
         "snic_throughput_rps": r.snic_throughput_rps,
         "host_throughput_rps": r.host_throughput_rps,
         "ratio": r.ratio}
        for r in rows
    ],
    schema={
        "type": "array",
        "minItems": 1,
        "items": {
            "type": "object",
            "required": ["key", "scenario", "snic_throughput_rps",
                         "host_throughput_rps", "ratio"],
            "properties": {
                "key": {"type": "string"},
                "scenario": {"type": "string"},
                "ratio": {"type": ["number", "null"]},
            },
        },
    },
    tiers=smoke_tier(),
    unit_granularity="one (key, offload-scenario) re-measurement",
    degradation=DEGRADE_PARTIAL,
))
