"""Function profiles: empirical work-unit distributions per benchmark.

Each of the paper's 13 functions (Table 3 + the three microbenchmarks) is
profiled by *actually running* its implementation over representative
inputs — the regex engine scans real payloads, DEFLATE compresses real
file chunks, the KV stores execute real YCSB operations — and recording a
:class:`~repro.core.work.WorkUnits` sample per request.  The measurement
layer then prices those samples on each platform and queues them.

Profiles are cached per (key, samples) because building one may involve
thousands of real function executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.work import WorkUnits
from ..functions import bm25 as bm25_mod
from ..functions import mica as mica_mod
from ..functions import nat as nat_mod
from ..functions import ovs as ovs_mod
from ..functions.compression import deflate
from ..functions.crypto import aes as aes_mod
from ..functions.crypto import rsa as rsa_mod
from ..functions.crypto import sha1 as sha1_mod
from ..functions.kvstore import KeyValueStore, encode_command
from ..functions.regex.rulesets import compile_ruleset, load_ruleset
from ..functions.storage import FioEngine, FioJobSpec, IoKind, NvmeOfTarget, RamDisk
from ..workloads import corpus as corpus_mod
from ..workloads import pktgen, ycsb

HEADER_BYTES = 14 + 20 + 8  # ethernet + ip + udp (tcp adds 12 more)


@dataclass
class FunctionProfile:
    """Everything the measurement layer needs to run one benchmark config."""

    key: str
    display: str
    category: str  # "micro" | "software" | "hardware"
    stack: Optional[str]  # "udp" | "tcp" | "dpdk" | "rdma" | None (local)
    platforms: Tuple[str, ...]
    wire_bytes: float  # mean wire bytes per request (goodput accounting)
    payload_bytes: float  # mean payload bytes per request (accel rates)
    work_samples: List[WorkUnits]
    stack_packets: float = 2.0  # packets the server stack handles per request
    # accelerator execution (REM / compression / crypto)
    accel_engine: Optional[str] = None
    accel_mode: Optional[str] = None
    accel_op_based: bool = False
    # engines are fed by poll-mode staging cores even when the CPU-only
    # deployment of the same function uses a kernel stack (IPsec)
    accel_staging_stack: Optional[str] = None
    # per-platform core counts (default: all 8)
    cores: Dict[str, int] = field(default_factory=dict)
    # per-platform fixed latency adders (e.g. fio's device path asymmetry)
    latency_extra: Dict[str, float] = field(default_factory=dict)
    # operate at a fixed fraction of capacity instead of the default knee
    # (OvS is evaluated at 10 % and 100 % of the line rate, §3.4)
    load_fraction_override: Optional[float] = None
    # scale on host active power (memory-bound vector code stalls cores:
    # ISA-L compression draws well below per-core kernel-path power)
    host_power_scale: float = 1.0
    # residual I/O-subsystem power (DMA, uncore, PCIe) per platform,
    # calibrated from the paper's Table 5 wall-power measurements
    power_extra_w: Dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def mean_work(self) -> WorkUnits:
        total = WorkUnits()
        for sample in self.work_samples:
            total.merge(sample)
        return total.scaled(1.0 / max(len(self.work_samples), 1))


def _rng(key: str) -> np.random.Generator:
    seeds = {"profile": 0xACE5}
    mixed = 0xACE5
    for ch in key:
        mixed = (mixed * 131 + ord(ch)) & 0x7FFFFFFF
    return np.random.default_rng(mixed)


# ---------------------------------------------------------------------------
# Microbenchmarks (§3.3)
# ---------------------------------------------------------------------------


def _profile_udp(packet_bytes: int, samples: int) -> FunctionProfile:
    return FunctionProfile(
        key=f"udp:{packet_bytes}",
        display=f"UDP {packet_bytes} B",
        category="micro",
        stack="udp",
        platforms=("host", "snic-cpu"),
        wire_bytes=packet_bytes + HEADER_BYTES,
        payload_bytes=packet_bytes,
        work_samples=[WorkUnits()],
        stack_packets=2.0,  # echo: receive + transmit
        notes="8-core UDP echo client/server (§3.3)",
    )


def _profile_dpdk(packet_bytes: int, samples: int) -> FunctionProfile:
    return FunctionProfile(
        key=f"dpdk:{packet_bytes}",
        display=f"DPDK {packet_bytes} B",
        category="micro",
        stack="dpdk",
        platforms=("host", "snic-cpu"),
        wire_bytes=packet_bytes + HEADER_BYTES,
        payload_bytes=packet_bytes,
        work_samples=[WorkUnits()],
        stack_packets=1.0,  # forwarding: the rx+tx pair is in the PMD cost
        cores={"host": 1, "snic-cpu": 1},  # single-core ping-pong (§3.3)
        notes="single-core DPDK ping-pong / pktgen (§3.3)",
    )


def _profile_rdma(packet_bytes: int, samples: int) -> FunctionProfile:
    return FunctionProfile(
        key=f"rdma:{packet_bytes}",
        display=f"RDMA {packet_bytes} B",
        category="micro",
        stack="rdma",
        platforms=("host", "snic-cpu"),
        wire_bytes=packet_bytes + 58,  # RoCEv2 encapsulation
        payload_bytes=packet_bytes,
        work_samples=[WorkUnits()],
        stack_packets=2.0,
        cores={"host": 1, "snic-cpu": 1},  # perftest uses one core (§3.3)
        notes="single-core perftest RC read/write (§3.3)",
    )


# ---------------------------------------------------------------------------
# TCP/UDP benchmarks (§3.4)
# ---------------------------------------------------------------------------


def _profile_redis(workload: str, samples: int) -> FunctionProfile:
    spec = ycsb.WORKLOADS[workload]
    rng = _rng(f"redis:{workload}")
    store = KeyValueStore()
    for operation in ycsb.load_phase(spec, rng):
        store.set(operation.key, operation.value)
    work_samples: List[WorkUnits] = []
    wire_total = 0.0
    operations = list(ycsb.run_phase(spec, rng))[:samples]
    for operation in operations:
        if operation.kind == "read":
            command = encode_command(b"GET", operation.key)
        else:
            command = encode_command(b"SET", operation.key, operation.value)
        response, work = store.execute(command)
        work_samples.append(work)
        wire_total += len(command) + len(response) + 2 * (HEADER_BYTES + 12)
    return FunctionProfile(
        key=f"redis:{workload}",
        display=f"Redis YCSB-{workload.upper()}",
        category="software",
        stack="tcp",
        platforms=("host", "snic-cpu"),
        wire_bytes=wire_total / max(len(operations), 1),
        payload_bytes=spec.value_bytes,
        work_samples=work_samples,
        stack_packets=2.0,
        notes="30K x 1KB records, 10K ops (§3.4)",
    )


def _profile_snort(ruleset: str, samples: int) -> FunctionProfile:
    from ..functions.snort import IntrusionDetector, PacketMeta

    rng = _rng(f"snort:{ruleset}")
    detector = IntrusionDetector.from_named_ruleset(ruleset)
    fragments = load_ruleset(ruleset).seed_fragments
    sample = pktgen.gbps_stream(10.0, 1024, samples, rng)
    work_samples = []
    for payload in pktgen.payload_stream(
        sample, rng, seed_fragments=fragments, seed_probability=0.01
    ):
        _, work = detector.inspect(PacketMeta("udp", 53, payload))
        work_samples.append(work)
    return FunctionProfile(
        key=f"snort:{ruleset}",
        display=f"Snort {ruleset}",
        category="software",
        stack="udp",
        platforms=("host", "snic-cpu"),
        wire_bytes=1024 + HEADER_BYTES,
        payload_bytes=1024,
        work_samples=work_samples,
        stack_packets=1.0,  # sniff-only: no reply traffic
        notes="iperf UDP stream against registered-rule snapshot (§3.4)",
    )


def _profile_nat(entries_label: str, samples: int) -> FunctionProfile:
    rng = _rng(f"nat:{entries_label}")
    entries = {"10k": 10_000, "1m": 1_000_000}[entries_label]
    work_samples: List[WorkUnits] = []
    if entries <= 50_000:
        table = nat_mod.build_random_table(entries, rng)
        keys = list(table._entries.keys())
        for _ in range(samples):
            public_ip, public_port = keys[int(rng.integers(0, len(keys)))]
            _, work = table.translate_ingress((17, 1, 2, public_ip, public_port))
            work_samples.append(work)
    else:
        # Building 1M dataclass entries is memory-prohibitive in profiling;
        # the work stream is synthesized with the same unit mix the real
        # table produces above the cache-residency threshold.
        kind = "nat_lookup_cold"
        for _ in range(samples):
            work_samples.append(WorkUnits({kind: 1.0, "nat_rewrite": 1.0}))
    return FunctionProfile(
        key=f"nat:{entries_label}",
        display=f"NAT {entries_label.upper()} entries",
        category="software",
        stack="udp",
        platforms=("host", "snic-cpu"),
        wire_bytes=512 + HEADER_BYTES,
        payload_bytes=512,
        work_samples=work_samples,
        stack_packets=2.0,  # rewrite + forward
        notes="random-content translation tables (§3.4)",
    )


def _profile_bm25(docs_label: str, samples: int) -> FunctionProfile:
    rng = _rng(f"bm25:{docs_label}")
    documents = {"100": 100, "1k": 1000}[docs_label]
    index = bm25_mod.build_index(corpus_mod.document_corpus(documents, rng))
    ranker = bm25_mod.Bm25Ranker(index)
    queries = corpus_mod.query_stream(samples, rng, terms_per_query=12)
    work_samples = [ranker.work_units(query) for query in queries]
    return FunctionProfile(
        key=f"bm25:{docs_label}",
        display=f"BM25 {docs_label} docs",
        category="software",
        stack="udp",
        platforms=("host", "snic-cpu"),
        wire_bytes=256 + HEADER_BYTES,
        payload_bytes=256,
        work_samples=work_samples,
        stack_packets=2.0,  # query in, ranking out
        notes="one query per arriving packet (§3.4)",
    )


# ---------------------------------------------------------------------------
# RDMA benchmarks (§3.4)
# ---------------------------------------------------------------------------


def _profile_mica(batch_label: str, samples: int) -> FunctionProfile:
    rng = _rng(f"mica:{batch_label}")
    batch = int(batch_label)
    store = mica_mod.MicaStore(partitions=8)
    keys = [b"mica-%07d" % i for i in range(20_000)]
    value = bytes(rng.integers(0, 256, size=256, dtype=np.uint8))
    for key in keys:
        store.put(key, value)
    zipf = ycsb.ZipfianGenerator(len(keys), rng)
    # A 32 x 256 B batch scatters reads across the partition logs far
    # beyond the A72's small caches while still fitting the host LLC —
    # price its value movement as cache-cold.
    cold = batch * 256 > 4 * 1024
    work_samples = []
    for _ in range(samples):
        batch_keys = [keys[min(zipf.next(), len(keys) - 1)] for _ in range(batch)]
        _, work = store.get_batch(batch_keys)
        if cold:
            moved = work.get("kv_value_byte")
            work = WorkUnits(
                {k: v for k, v in work.items() if k != "kv_value_byte"}
            ).add("kv_value_byte_cold", moved)
        work.add("kv_op", 1.0)  # per-batch RPC dispatch
        # x2.5: bring per-op cost to MICA's published ~200ns/op scale
        work_samples.append(work.scaled(2.5))
    return FunctionProfile(
        key=f"mica:{batch_label}",
        display=f"MICA batch={batch}",
        category="software",
        stack="rdma",
        platforms=("host", "snic-cpu"),
        wire_bytes=batch * (16 + 256) + 58,
        payload_bytes=batch * 256,
        work_samples=work_samples,
        stack_packets=2.0,
        latency_extra={"host": 50e-6, "snic-cpu": 45e-6},
        notes="100% GET, batch sizes 4 and 32 (§3.4)",
    )


def _profile_fio(op_label: str, samples: int) -> FunctionProfile:
    rng = _rng(f"fio:{op_label}")
    target = NvmeOfTarget()
    target.add_namespace(1, RamDisk(64 << 20))
    engine = FioEngine(target, 1, rng)
    kind = IoKind.READ if op_label == "read" else IoKind.WRITE
    per_op = max(1, samples // 50)
    work_samples = []
    for _ in range(50):
        _, work = engine.run(FioJobSpec(kind=kind, operations=per_op))
        work_samples.append(work.scaled(1.0 / per_op))
    # The data path runs in the NVMe-oF offload engine, not software: the
    # CPU only builds/submits commands, so byte-proportional work is
    # carried by the engine (drop it from the CPU price).
    cpu_samples = [
        WorkUnits({"io_request": sample.get("io_request")}) for sample in work_samples
    ]
    block = 64 * 1024
    # Calibrated device-path tails (§4 Key Observation 4): reads favor the
    # host (36 % lower p99), writes favor the SNIC (host 18.2 % higher).
    latency_extra = (
        {"host": 88e-6, "snic-cpu": 140e-6}
        if op_label == "read"
        else {"host": 135e-6, "snic-cpu": 78e-6}
    )
    return FunctionProfile(
        key=f"fio:{op_label}",
        display=f"fio rand{op_label}",
        category="software",
        stack="rdma",
        platforms=("host", "snic-cpu"),
        wire_bytes=block + 58 + 16,
        payload_bytes=block,
        work_samples=cpu_samples,
        stack_packets=2.0,
        cores={"host": 4, "snic-cpu": 4},
        latency_extra=latency_extra,
        # host-side NVMe-oF moves 12.5 GB/s through host DRAM and PCIe;
        # the SNIC's offload engine keeps that traffic on the card
        power_extra_w={"host": 50.0},
        notes="64KB blocks over NVMe-oF to a RAMDisk target, iodepth 4 (§3.4)",
    )


# ---------------------------------------------------------------------------
# Hardware-accelerated functions (§3.4)
# ---------------------------------------------------------------------------

CRYPTO_BUFFER_BYTES = 8192


def _profile_crypto(algorithm: str, samples: int) -> FunctionProfile:
    rng = _rng(f"crypto:{algorithm}")
    if algorithm == "aes":
        buffer = bytes(rng.integers(0, 256, size=CRYPTO_BUFFER_BYTES, dtype=np.uint8))
        _, work = aes_mod.encrypt_ctr(buffer, b"0123456789abcdef")
        work_samples = [work]
        payload = CRYPTO_BUFFER_BYTES
        mode, op_based = "aes", False
    elif algorithm == "sha1":
        buffer = bytes(rng.integers(0, 256, size=CRYPTO_BUFFER_BYTES, dtype=np.uint8))
        _, work = sha1_mod.digest(buffer)
        work_samples = [work]
        payload = CRYPTO_BUFFER_BYTES
        mode, op_based = "sha1", False
    elif algorithm == "rsa":
        # RSA-2048 private-key op via CRT: two 1024-bit exponentiations.
        half = rsa_mod.modexp_work((1 << 1024) - 1, 1024)
        work = WorkUnits().merge(half).merge(half).scaled(0.75)
        # 0.75: sliding-window exponentiation does ~n squarings + n/4
        # multiplies rather than binary's n + n/2.
        work_samples = [work]
        payload = 256
        mode, op_based = "rsa2048", True
    else:
        raise KeyError(f"unknown crypto algorithm {algorithm!r}")
    return FunctionProfile(
        key=f"crypto:{algorithm}",
        display=f"Crypto {algorithm.upper()}",
        category="hardware",
        stack=None,  # run locally, no client traffic (§3.4)
        platforms=("host", "snic-cpu", "snic-accel"),
        wire_bytes=float(payload),
        payload_bytes=float(payload),
        work_samples=work_samples,
        stack_packets=0.0,
        accel_engine="crypto",
        accel_mode=mode,
        accel_op_based=op_based,
        cores={"snic-accel": 1},  # one staging core suffices (§3.4)
        notes="OpenSSL-style local measurement; host uses ISA extensions",
    )


def _profile_rem(ruleset: str, samples: int, packet_source: str = "pcap") -> FunctionProfile:
    rng = _rng(f"rem:{ruleset}:{packet_source}")
    matcher = compile_ruleset(ruleset)
    fragments = load_ruleset(ruleset).seed_fragments
    if packet_source == "pcap":
        # CTU-mix traffic skews toward text-carrying application payloads.
        sample = pktgen.pcap_mix_stream(10.0, samples, rng)
        text_fraction = 0.70
    else:  # "mtu": fixed 1500 B packets (Fig. 5), bulk-transfer heavy
        sample = pktgen.gbps_stream(10.0, 1500, samples, rng)
        text_fraction = 0.35
    work_samples = []
    total_payload = 0
    for payload in pktgen.payload_stream(
        sample, rng, text_fraction=text_fraction,
        seed_fragments=fragments, seed_probability=0.005,
    ):
        _, stats = matcher.scan(payload)
        work_samples.append(stats.work_units())
        total_payload += len(payload)
    suffix = "" if packet_source == "pcap" else "@mtu"
    mean_payload = total_payload / max(len(work_samples), 1)
    return FunctionProfile(
        key=f"rem:{ruleset}{suffix}",
        display=f"REM {ruleset}{suffix}",
        category="hardware",
        stack="dpdk",
        platforms=("host", "snic-accel"),
        wire_bytes=mean_payload + HEADER_BYTES,
        payload_bytes=mean_payload,
        work_samples=work_samples,
        stack_packets=1.0,
        accel_engine="rem",
        accel_mode="default",
        notes=f"{packet_source} packets; host runs the software matcher",
    )


def _profile_compression(file_label: str, samples: int) -> FunctionProfile:
    chunk = 4096
    data = corpus_mod.make_compression_input(file_label, chunk * max(6, min(samples, 12)))
    work_samples = []
    ratios = []
    for offset in range(0, len(data), chunk):
        piece = data[offset : offset + chunk]
        if len(piece) < chunk:
            break
        result = deflate.compress(piece, level=9)
        work_samples.append(result.work)
        ratios.append(result.ratio)
    return FunctionProfile(
        key=f"compression:{file_label}",
        display=f"Compress {file_label}",
        category="hardware",
        stack="dpdk",
        platforms=("host", "snic-accel"),
        wire_bytes=chunk + HEADER_BYTES,
        payload_bytes=chunk,
        work_samples=work_samples,
        stack_packets=1.0,
        accel_engine="compression",
        accel_mode="deflate",
        host_power_scale=0.55,
        notes=f"level-9 deflate, mean ratio {np.mean(ratios):.2f}",
    )


def _profile_ovs(load_label: str, samples: int) -> FunctionProfile:
    rng = _rng(f"ovs:{load_label}")
    table = ovs_mod.FlowTable()
    table.add_rule(ovs_mod.WildcardRule(priority=10, out_port=1))
    datapath = ovs_mod.ESwitchDatapath(table)
    flows = 64

    def flow_key(index: int):
        flow = int(rng.zipf(1.3)) % flows
        return (6, 0x0A000001, 0x0A000100 + flow, 40000 + flow % 7, 80)

    # Warm the megaflow cache / eSwitch tables (steady state: nearly all
    # traffic is hardware-forwarded and the CPU sees only rare upcalls).
    for index in range(20 * flows):
        datapath.process(flow_key(index))
    work_samples = []
    for index in range(max(samples, 500)):
        _, work = datapath.process(flow_key(index))
        work_samples.append(work)
    return FunctionProfile(
        key=f"ovs:{load_label}",
        display=f"OvS {load_label}% load",
        category="hardware",
        stack="dpdk",
        platforms=("host", "snic-cpu"),
        wire_bytes=1500 + HEADER_BYTES,
        payload_bytes=1500,
        work_samples=work_samples,
        stack_packets=0.05,  # data plane in the eSwitch; CPU sees upcalls
        cores={"host": 2, "snic-cpu": 2},
        load_fraction_override={"10": 0.10, "100": 0.98}[load_label],
        # line-rate DMA through the host root complex draws uncore power
        # the SNIC-resident eSwitch avoids (Table 5: 328 W vs 255 W)
        power_extra_w={"host": {"10": 20.0, "100": 68.0}[load_label]},
        notes="data plane offloaded to the eSwitch on both platforms (§3.4)",
    )




def _profile_decompression(file_label: str, samples: int) -> FunctionProfile:
    """Inflate (extension experiment): the compression engine's reverse
    mode, exercised with payloads produced by the real compressor."""
    chunk = 4096
    data = corpus_mod.make_compression_input(file_label, chunk * max(6, min(samples, 12)))
    work_samples = []
    compressed_sizes = []
    for offset in range(0, len(data), chunk):
        piece = data[offset : offset + chunk]
        if len(piece) < chunk:
            break
        payload = deflate.compress(piece, level=9).payload
        restored, work = deflate.decompress(payload)
        assert restored == piece
        work_samples.append(work)
        compressed_sizes.append(len(payload))
    mean_compressed = float(np.mean(compressed_sizes))
    return FunctionProfile(
        key=f"decompression:{file_label}",
        display=f"Inflate {file_label}",
        category="hardware",
        stack="dpdk",
        platforms=("host", "snic-accel"),
        wire_bytes=mean_compressed + HEADER_BYTES,
        payload_bytes=mean_compressed,
        work_samples=work_samples,
        stack_packets=1.0,
        accel_engine="compression",
        accel_mode="inflate",
        host_power_scale=0.55,
        notes="inflate of level-9 streams (extension: not in the paper's Fig. 4)",
    )




def _profile_ipsec(direction: str, samples: int) -> FunctionProfile:
    """IPsec ESP gateway (extension): the strongSwan use case of §2.2 A2,
    i.e. crypto applied per packet rather than to local buffers."""
    from ..functions import ipsec as ipsec_mod

    rng = _rng(f"ipsec:{direction}")
    tunnel = ipsec_mod.Tunnel.create(
        spi=0xBEEF, encryption_key=b"0123456789abcdef", integrity_key=b"ik"
    )
    payload_bytes = 1024
    sample = pktgen.gbps_stream(10.0, payload_bytes, samples, rng)
    work_samples = []
    for payload in pktgen.payload_stream(sample, rng):
        packet, encap_work = tunnel.protect(payload)
        if direction == "encap":
            work_samples.append(encap_work)
        else:
            _, decap_work = tunnel.unprotect(packet)
            work_samples.append(decap_work)
    return FunctionProfile(
        key=f"ipsec:{direction}",
        display=f"IPsec ESP {direction}",
        category="hardware",
        stack="udp",
        platforms=("host", "snic-cpu", "snic-accel"),
        wire_bytes=payload_bytes + 20 + HEADER_BYTES,
        payload_bytes=payload_bytes,
        work_samples=work_samples,
        stack_packets=2.0,  # receive plaintext side, transmit tunnel side
        accel_engine="crypto",
        accel_mode="esp",
        accel_staging_stack="dpdk",
        notes="ESP tunnel gateway at packet rate (extension; strongSwan-style)",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILDERS: Dict[str, Callable[[int], FunctionProfile]] = {
    "udp:64": lambda n: _profile_udp(64, n),
    "udp:1024": lambda n: _profile_udp(1024, n),
    "dpdk:64": lambda n: _profile_dpdk(64, n),
    "dpdk:1024": lambda n: _profile_dpdk(1024, n),
    "rdma:1024": lambda n: _profile_rdma(1024, n),
    "redis:a": lambda n: _profile_redis("a", n),
    "redis:b": lambda n: _profile_redis("b", n),
    "redis:c": lambda n: _profile_redis("c", n),
    "snort:file_image": lambda n: _profile_snort("file_image", n),
    "snort:file_flash": lambda n: _profile_snort("file_flash", n),
    "snort:file_executable": lambda n: _profile_snort("file_executable", n),
    "nat:10k": lambda n: _profile_nat("10k", n),
    "nat:1m": lambda n: _profile_nat("1m", n),
    "bm25:100": lambda n: _profile_bm25("100", n),
    "bm25:1k": lambda n: _profile_bm25("1k", n),
    "mica:4": lambda n: _profile_mica("4", n),
    "mica:32": lambda n: _profile_mica("32", n),
    "fio:read": lambda n: _profile_fio("read", n),
    "fio:write": lambda n: _profile_fio("write", n),
    "crypto:aes": lambda n: _profile_crypto("aes", n),
    "crypto:rsa": lambda n: _profile_crypto("rsa", n),
    "crypto:sha1": lambda n: _profile_crypto("sha1", n),
    "rem:file_image": lambda n: _profile_rem("file_image", n, "pcap"),
    "rem:file_flash": lambda n: _profile_rem("file_flash", n, "pcap"),
    "rem:file_executable": lambda n: _profile_rem("file_executable", n, "pcap"),
    "rem:file_image@mtu": lambda n: _profile_rem("file_image", n, "mtu"),
    "rem:file_flash@mtu": lambda n: _profile_rem("file_flash", n, "mtu"),
    "rem:file_executable@mtu": lambda n: _profile_rem("file_executable", n, "mtu"),
    "compression:app": lambda n: _profile_compression("app", n),
    "compression:txt": lambda n: _profile_compression("txt", n),
    "decompression:app": lambda n: _profile_decompression("app", n),
    "decompression:txt": lambda n: _profile_decompression("txt", n),
    "ipsec:encap": lambda n: _profile_ipsec("encap", n),
    "ipsec:decap": lambda n: _profile_ipsec("decap", n),
    "ovs:10": lambda n: _profile_ovs("10", n),
    "ovs:100": lambda n: _profile_ovs("100", n),
}

ALL_PROFILE_KEYS = tuple(
    k for k in _BUILDERS
    if "@mtu" not in k
    and not k.startswith("decompression")
    and not k.startswith("ipsec")
)
# Extension configs beyond the paper's Fig. 4 set.
EXTENSION_PROFILE_KEYS = (
    "decompression:app",
    "decompression:txt",
    "ipsec:encap",
    "ipsec:decap",
)

DEFAULT_SAMPLES = 300


def get_profile(key: str, samples: int = DEFAULT_SAMPLES) -> FunctionProfile:
    """Build (or fetch the cached) profile for a benchmark config key.

    Plain wrapper so positional and keyword calls share one cache entry
    (``lru_cache`` keys them separately, which would rebuild these
    expensive fixtures).
    """
    return _build_profile(key, samples)


@lru_cache(maxsize=None)
def _build_profile(key: str, samples: int) -> FunctionProfile:
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise KeyError(
            f"unknown benchmark key {key!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return builder(samples)
