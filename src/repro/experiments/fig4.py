"""Figure 4: maximum sustainable throughput and p99 latency of the SNIC
processor, normalized to the host CPU, across all 13 functions.

Each row measures both platforms at their own saturation knees (the
paper's methodology, §4) and reports the SNIC/host ratios.  Functions
with an accelerator path (Table 3 column SA) use the accelerator as
their SNIC execution platform; the rest use the SNIC CPU.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core import hybrid
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from .measurement import (
    ACCEL_PLATFORM,
    OPERATING_POINT_SCHEMA,
    OperatingPoint,
    compute_operating_point,
    operating_point_cache_key,
    operating_point_json,
)
from .profiles import ALL_PROFILE_KEYS, FunctionProfile, get_profile
from .registry import Experiment, ExperimentContext, register, smoke_tier

logger = logging.getLogger("repro.fig4")

# Display order mirrors the paper's x-axis: microbenchmarks, software-only
# functions, then hardware-accelerated functions.
FIG4_KEYS = (
    "udp:64",
    "udp:1024",
    "dpdk:64",
    "dpdk:1024",
    "rdma:1024",
    "redis:a",
    "redis:b",
    "redis:c",
    "snort:file_image",
    "snort:file_flash",
    "snort:file_executable",
    "nat:10k",
    "nat:1m",
    "bm25:100",
    "bm25:1k",
    "mica:4",
    "mica:32",
    "fio:read",
    "fio:write",
    "ovs:10",
    "ovs:100",
    "crypto:aes",
    "crypto:rsa",
    "crypto:sha1",
    "rem:file_image",
    "rem:file_flash",
    "rem:file_executable",
    "compression:app",
    "compression:txt",
)


def snic_platform_for(profile: FunctionProfile) -> str:
    """The SNIC execution platform per Table 3 (accelerator if present)."""
    return ACCEL_PLATFORM if ACCEL_PLATFORM in profile.platforms else "snic-cpu"


@dataclass
class Fig4Row:
    key: str
    display: str
    category: str
    host: OperatingPoint
    snic: OperatingPoint

    @property
    def snic_platform(self) -> str:
        return self.snic.platform

    @property
    def throughput_ratio(self) -> float:
        if self.host.throughput_rps <= 0:
            return float("inf")
        return self.snic.throughput_rps / self.host.throughput_rps

    @property
    def p99_ratio(self) -> float:
        if self.host.p99_latency_s <= 0:
            return float("inf")
        return self.snic.p99_latency_s / self.host.p99_latency_s


def run_fig4(
    keys: Sequence[str] = FIG4_KEYS,
    samples: int = 300,
    n_requests: int = 20_000,
    streams: Optional[RandomStreams] = None,
    jobs: int = 1,
    executor: Optional[ParallelExecutor] = None,
    engine: Optional[str] = None,
) -> List[Fig4Row]:
    """Measure every function on both platforms; returns the figure rows.

    The ~2x29 operating-point measurements are mutually independent work
    units (each re-derives its RNG substreams from ``(seed, name)``), so
    ``jobs=N`` fans them across processes with element-wise identical
    output to ``jobs=1``.  Results are memoized through the global
    result cache, keyed on (profile, platform, fidelity, seed, engine);
    the probe engine is resolved here so workers never depend on an
    inherited process global.
    """
    streams = streams or RandomStreams()
    seed = streams.root_seed
    executor = executor or ParallelExecutor(jobs)
    engine = hybrid.resolve_engine(engine)

    pairs = [
        (key, get_profile(key, samples=samples))
        for key in keys
    ]
    units: List[WorkUnit] = []
    cache_keys: List[str] = []
    for key, profile in pairs:
        for platform in ("host", snic_platform_for(profile)):
            args = (key, platform, seed, samples, n_requests, None, engine)
            units.append(
                WorkUnit(name=f"fig4:{key}:{platform}",
                         fn=compute_operating_point, args=args)
            )
            cache_keys.append(operating_point_cache_key(*args))
    logger.info("fig4: measuring %d operating points (%d functions, jobs=%d)",
                len(units), len(pairs), executor.jobs)
    points = map_cached(executor, units, cache_keys)

    rows: List[Fig4Row] = []
    for index, (key, profile) in enumerate(pairs):
        host, snic = points[2 * index], points[2 * index + 1]
        rows.append(
            Fig4Row(
                key=key,
                display=profile.display,
                category=profile.category,
                host=host,
                snic=snic,
            )
        )
    return rows


def rows_by_key(rows: List[Fig4Row]) -> Dict[str, Fig4Row]:
    return {row.key: row for row in rows}


def fig4_row_json(row: Fig4Row) -> Dict[str, object]:
    return {
        "key": row.key,
        "display": row.display,
        "category": row.category,
        "snic_platform": row.snic_platform,
        "host": operating_point_json(row.host),
        "snic": operating_point_json(row.snic),
        "throughput_ratio": row.throughput_ratio,
        "p99_ratio": row.p99_ratio,
    }


FIG4_ROW_SCHEMA = {
    "type": "object",
    "required": ["key", "snic_platform", "host", "snic",
                 "throughput_ratio", "p99_ratio"],
    "properties": {
        "key": {"type": "string"},
        "snic_platform": {"type": "string"},
        "host": OPERATING_POINT_SCHEMA,
        "snic": OPERATING_POINT_SCHEMA,
        "throughput_ratio": {"type": ["number", "null"]},
        "p99_ratio": {"type": ["number", "null"]},
    },
}

# Smoke keys span every execution layer (UDP stack, kernel-stack KV,
# RDMA bypass, accelerator batch) *and* cover every key the observation
# checks index, so `observations --smoke` can resolve its fig4
# dependency against this subset.
FIG4_SMOKE_KEYS = (
    "udp:64",
    "redis:a",
    "mica:4",
    "mica:32",
    "fio:read",
    "fio:write",
    "crypto:aes",
    "crypto:rsa",
    "crypto:sha1",
    "rem:file_image",
    "rem:file_flash",
    "rem:file_executable",
    "compression:app",
    "compression:txt",
)


def _fig4_runner(ctx: ExperimentContext) -> List[Fig4Row]:
    fid = ctx.fidelity()
    kwargs = dict(samples=fid.samples, n_requests=fid.requests,
                  streams=ctx.streams, executor=ctx.executor,
                  engine=fid.engine)
    if fid.keys is not None:
        kwargs["keys"] = fid.keys
    return run_fig4(**kwargs)


def format_fig4(rows: List[Fig4Row]) -> str:
    """Render the figure as an aligned text table."""
    lines = [
        f"{'function':<24} {'plat':<10} {'host rps':>12} {'snic rps':>12} "
        f"{'T ratio':>8} {'host p99us':>11} {'snic p99us':>11} {'L ratio':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row.display:<24} {row.snic_platform:<10} "
            f"{row.host.throughput_rps:>12,.0f} {row.snic.throughput_rps:>12,.0f} "
            f"{row.throughput_ratio:>8.2f} "
            f"{row.host.p99_latency_s * 1e6:>11.1f} "
            f"{row.snic.p99_latency_s * 1e6:>11.1f} "
            f"{row.p99_ratio:>8.2f}"
        )
    return "\n".join(lines)


def _fig4_chart(rows: List[Fig4Row]) -> str:
    from ..analysis.plots import fig4_chart

    return fig4_chart(rows)


def _write_fig4_csv(stream, rows: List[Fig4Row]) -> int:
    from ..analysis.export import write_fig4_csv

    return write_fig4_csv(stream, rows)


register(Experiment(
    name="fig4",
    title="Fig. 4: throughput and p99 latency, SNIC vs host",
    description="maximum sustainable throughput and p99 latency of every "
                "function on both platforms, with SNIC/host ratios",
    runner=_fig4_runner,
    formatter=format_fig4,
    chart=_fig4_chart,
    csv_writer=_write_fig4_csv,
    to_json=lambda rows: [fig4_row_json(row) for row in rows],
    schema={"type": "array", "minItems": 1, "items": FIG4_ROW_SCHEMA},
    tiers=smoke_tier(keys=FIG4_SMOKE_KEYS),
    # Load-bearing: fig6, table5, the observations, and the report all
    # consume these rows — a quarantined probe must abort, not degrade.
    unit_granularity="one (function, platform) capacity probe",
))
