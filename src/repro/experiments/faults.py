"""Availability under faults: the graceful-degradation experiment.

The paper measures the SNIC at steady state; this study asks what the
same operating points look like when the offload path degrades.  Four
representative functions (REM, compression, a KV store, OvS — the Fig. 4
spread of accelerator-backed and SNIC-CPU functions) are first measured
at their Fig. 4 operating points (the no-fault baseline reproduces those
numbers exactly: same streams, same procedure), then replayed through
fault scenarios:

* ``snic-outage`` — the SNIC path (accelerator engine or SNIC CPU) dies
  for a window; the threshold load balancer must detect it through its
  reaction-delay machinery, fail over to the host, and fail back;
* ``thermal-throttle`` — a degraded-clock episode (BlueField-2-class
  parts document thermal throttling) multiplies SNIC service times;
* ``core-loss`` — half the SNIC cores drop out mid-run;
* ``link-burst-loss`` — correlated (Gilbert-Elliott) loss on the client
  link, absorbed by timeout/retry with exponential backoff.

Each scenario reports availability (served within an SLO deadline), p99
and p999 inflation over the no-fault baseline, drop counts inside and
outside the fault window, host share during the fault, and time to
recover (fault end → traffic back on the SNIC path).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import cache_key, get_cache
from ..core.executor import ParallelExecutor, WorkUnit, map_cached
from ..core.rng import RandomStreams
from ..faults.models import SnicHealth
from ..faults.retry import RetryPolicy, simulate_retries
from ..faults.schedule import (
    KIND_BURST_LOSS,
    KIND_CORE_LOSS,
    KIND_DEGRADE,
    KIND_OUTAGE,
    FaultSpec,
    FaultTimeline,
)
from ..netstack.link import GilbertElliottLoss
from ..offload.loadbalancer import (
    ROUTE_DROP,
    BalancerConfig,
    BalancerOutcome,
    FailoverOutcome,
    simulate_failover,
)
from .fig4 import snic_platform_for
from .measurement import (
    OperatingPoint,
    measure_operating_point_cached,
    operating_point_cache_key,
    operating_point_json,
)
from .profiles import get_profile
from .registry import (
    DEGRADE_PARTIAL,
    Experiment,
    ExperimentContext,
    register,
    smoke_tier,
)

logger = logging.getLogger("repro.faults")

# Fig. 4 spread: two accelerator-backed functions, a kernel-stack KV
# store, and a SNIC-CPU packet function.
FAULT_FUNCTIONS = ("rem:file_image", "compression:app", "redis:a", "ovs:10")
SMOKE_FUNCTIONS = ("redis:a", "ovs:10")

SNIC_PATH = "snic"  # timeline target name for the offload path
LINK_PATH = "link"

# Operating point: offered rate as a fraction of the SNIC path's measured
# capacity (below saturation so the baseline stays clean, high enough
# that faults bite).
RATE_FRACTION = 0.75
CORES = 8


@dataclass
class ScenarioResult:
    """One (function, scenario) cell of the availability study."""

    function: str
    scenario: str
    offered: int
    availability: float
    baseline_p99_s: float
    p99_s: float
    p999_s: float
    dropped: int
    drops_outside_fault_s: int
    host_share_steady: float
    host_share_fault: float
    recovery_s: float  # nan when the scenario has no outage to recover from
    # Mean extra delay survivors spent in timeout/retry backoff (the
    # "retry/fault stall" attribution component; 0 outside link faults).
    retry_stall_mean_s: float = 0.0
    fault_windows: List[Tuple[float, float]] = field(default_factory=list)

    @property
    def p99_inflation(self) -> float:
        if self.baseline_p99_s <= 0:
            return float("inf")
        return self.p99_s / self.baseline_p99_s


@dataclass
class FunctionFaultReport:
    """Baseline operating points plus every scenario outcome."""

    function: str
    snic_platform: str
    host: OperatingPoint
    snic: OperatingPoint
    offered_rate_rps: float
    deadline_s: float
    scenarios: List[ScenarioResult] = field(default_factory=list)


@dataclass
class FaultStudyResult:
    reports: List[FunctionFaultReport]

    def by_function(self) -> Dict[str, FunctionFaultReport]:
        return {r.function: r for r in self.reports}


# ---------------------------------------------------------------------------
# Scenario construction
# ---------------------------------------------------------------------------


def _balancer_config(host: OperatingPoint, snic: OperatingPoint) -> BalancerConfig:
    """Fold the measured Fig. 4 capacities into the fluid two-path model.

    The balancer's effective per-request service time on a path is
    ``service_s / cores``; setting ``service_s = cores / capacity`` makes
    the path saturate exactly at its measured operating-point capacity.
    Thresholds scale with the path's service time so slow functions
    (compression) and fast ones (OvS) get comparable policies.
    """
    snic_service_s = CORES / snic.capacity_rps
    host_service_s = CORES / host.capacity_rps
    snic_eff = snic_service_s / CORES
    return BalancerConfig(
        snic_service_s=snic_service_s,
        host_service_s=host_service_s,
        snic_cores=CORES,
        host_cores=CORES,
        redirect_threshold_s=25.0 * snic_eff,
        snic_queue_limit_s=250.0 * snic_eff,
        host_queue_limit_s=250.0 * snic_eff,
        monitor_cost_s=600 / 2.0e9,  # §5.3 SNIC-CPU balancer
        reaction_delay_s=min(100e-6, 10.0 * snic_eff),
    )


def scenario_specs(scenario: str, horizon_s: float) -> List[FaultSpec]:
    """The fault schedule for a named scenario over a run of ``horizon_s``."""
    t0, t1 = 0.35 * horizon_s, 0.60 * horizon_s
    if scenario == "snic-outage":
        return [FaultSpec.one_shot("snic-outage", SNIC_PATH, start_s=t0,
                                   duration_s=t1 - t0, kind=KIND_OUTAGE)]
    if scenario == "thermal-throttle":
        return [FaultSpec.one_shot("thermal-throttle", SNIC_PATH, start_s=t0,
                                   duration_s=t1 - t0, kind=KIND_DEGRADE,
                                   severity=2.5)]
    if scenario == "core-loss":
        return [FaultSpec.one_shot("core-loss", SNIC_PATH, start_s=t0,
                                   duration_s=t1 - t0, kind=KIND_CORE_LOSS,
                                   severity=0.5)]
    if scenario == "link-burst-loss":
        return [FaultSpec.one_shot("link-burst-loss", LINK_PATH, start_s=t0,
                                   duration_s=t1 - t0, kind=KIND_BURST_LOSS,
                                   severity=1.0)]
    raise ValueError(f"unknown scenario {scenario!r}")


BALANCER_SCENARIOS = ("snic-outage", "thermal-throttle", "core-loss")
ALL_SCENARIOS = BALANCER_SCENARIOS + ("link-burst-loss",)


# ---------------------------------------------------------------------------
# Scenario execution
# ---------------------------------------------------------------------------


def _fault_union(timeline: FaultTimeline) -> List[Tuple[float, float]]:
    windows = [
        (start, end)
        for spec in timeline.specs
        for start, end in timeline.episodes(spec.name)
    ]
    return sorted(windows)


def _summarize(
    function: str,
    scenario: str,
    run: FailoverOutcome,
    baseline_p99_s: float,
    windows: List[Tuple[float, float]],
    recovery: float,
) -> ScenarioResult:
    horizon = float(run.arrivals[-1]) if run.offered else 0.0
    inside = 0
    for start, end in windows:
        inside += run.drops_between(start, end)
    # Drops shortly after a window are still fault-attributable (queues
    # drain, the stale observation lags); "outside" means beyond a small
    # grace period after every window.
    grace = 0.1 * horizon
    outside = run.outcome.dropped
    for start, end in windows:
        outside -= run.drops_between(start, min(end + grace, horizon + 1.0))
    outside = max(0, outside)
    steady_share = run.host_fraction_between(0.0, windows[0][0]) if windows else (
        run.host_fraction_between(0.0, horizon))
    fault_share = (
        max(run.host_fraction_between(start, end) for start, end in windows)
        if windows
        else 0.0
    )
    return ScenarioResult(
        function=function,
        scenario=scenario,
        offered=run.offered,
        availability=run.availability,
        baseline_p99_s=baseline_p99_s,
        p99_s=run.outcome.p99_latency_s,
        p999_s=run.p999_latency_s,
        dropped=run.outcome.dropped,
        drops_outside_fault_s=outside,
        host_share_steady=steady_share,
        host_share_fault=fault_share,
        recovery_s=recovery,
        fault_windows=windows,
    )


def _run_balancer_scenario(
    function: str,
    scenario: str,
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    deadline_s: float,
    baseline_p99_s: float,
    streams: RandomStreams,
) -> ScenarioResult:
    horizon = n_packets / rate
    timeline = FaultTimeline(scenario_specs(scenario, horizon), horizon,
                             streams=streams)
    health = SnicHealth(timeline, target=SNIC_PATH)
    rng = streams.stream(f"faults:{function}:{scenario}")
    run = simulate_failover(config, rate, n_packets, rng, snic_health=health,
                            deadline_s=deadline_s)
    recoveries = run.recovery_times_s()
    finite = [r for r in recoveries if np.isfinite(r)]
    recovery = max(finite) if finite else (float("inf") if recoveries
                                           else float("nan"))
    return _summarize(function, scenario, run, baseline_p99_s,
                      _fault_union(timeline), recovery)


def _run_link_scenario(
    function: str,
    config: BalancerConfig,
    rate: float,
    n_packets: int,
    deadline_s: float,
    baseline_p99_s: float,
    streams: RandomStreams,
) -> ScenarioResult:
    """Bursty correlated loss on the client link, healed by retries.

    The balancer itself runs fault-free; inside the fault window each
    packet's transmissions traverse a Gilbert-Elliott chain, and lost
    attempts are retried under exponential backoff with jitter.  A packet
    that exhausts its attempts is a drop; survivors carry their
    accumulated retry delay on top of the service sojourn.
    """
    horizon = n_packets / rate
    timeline = FaultTimeline(scenario_specs("link-burst-loss", horizon),
                             horizon, streams=streams)
    rng = streams.stream(f"faults:{function}:link-burst-loss")
    run = simulate_failover(config, rate, n_packets, rng, snic_health=None,
                            deadline_s=deadline_s)

    snic_eff = config.snic_service_s / config.snic_cores
    policy = RetryPolicy(timeout_s=max(100e-6, 10.0 * snic_eff),
                         max_attempts=5, backoff_factor=2.0,
                         jitter_fraction=0.2)
    # Mean burst length 10 packets; ~2 % of in-window packets enter a burst.
    chain = GilbertElliottLoss(p_good_to_bad=0.02, p_bad_to_good=0.10)
    loss_rng = streams.stream(f"faults:{function}:ge-chain")

    in_window = timeline.active_mask(run.arrivals, LINK_PATH, KIND_BURST_LOSS)
    kept_idx = np.flatnonzero(run.routes != ROUTE_DROP)
    extra = np.zeros(run.offered)
    delivered = np.ones(run.offered, dtype=bool)
    for i in np.flatnonzero(in_window):
        outcome = simulate_retries(lambda _a: chain.lost(loss_rng), policy,
                                   loss_rng)
        extra[i] = outcome.extra_delay_s
        delivered[i] = outcome.delivered

    routes = run.routes.copy()
    routes[~delivered] = ROUTE_DROP
    survivor_mask = delivered[kept_idx]
    latencies = run.latencies[survivor_mask] + extra[kept_idx][survivor_mask]
    dropped = int(np.sum(routes == ROUTE_DROP))
    lost_to_retry = dropped - run.outcome.dropped
    healed = FailoverOutcome(
        outcome=BalancerOutcome(
            sent_to_snic=max(0, run.outcome.sent_to_snic - lost_to_retry),
            sent_to_host=run.outcome.sent_to_host,
            dropped=dropped,
            p99_latency_s=(float(np.percentile(latencies, 99))
                           if len(latencies) else float("inf")),
            mean_latency_s=(float(np.mean(latencies))
                            if len(latencies) else float("inf")),
            snic_monitor_utilization=run.outcome.snic_monitor_utilization,
        ),
        deadline_s=deadline_s,
        p999_latency_s=(float(np.percentile(latencies, 99.9))
                        if len(latencies) else float("inf")),
        arrivals=run.arrivals,
        routes=routes,
        latencies=latencies,
        outage_windows=[],
    )
    result = _summarize(function, "link-burst-loss", healed, baseline_p99_s,
                        _fault_union(timeline), float("nan"))
    stalls = extra[kept_idx][survivor_mask]
    result.retry_stall_mean_s = float(np.mean(stalls)) if len(stalls) else 0.0
    return result


# ---------------------------------------------------------------------------
# The study
# ---------------------------------------------------------------------------


def compute_function_report(
    key: str,
    scenarios: Sequence[str],
    samples: int,
    n_requests: int,
    n_packets: int,
    seed: int,
) -> FunctionFaultReport:
    """Picklable work unit: one function's full fault report.

    Rebuilds a fresh ``RandomStreams(seed)``; the operating points and
    every ``faults:{key}:...`` substream depend only on ``(seed, name)``,
    so per-function fan-out reproduces the serial study exactly.  The
    fault-timeline substreams (``fault:{scenario}``) restart per function
    unit, keeping each function's scenario draws self-contained.
    """
    logger.info("fault report: %s (%d scenarios)", key, len(scenarios))
    streams = RandomStreams(seed)
    profile = get_profile(key, samples=samples)
    platform = snic_platform_for(profile)
    host = measure_operating_point_cached(key, "host", seed, samples,
                                          n_requests)
    snic = measure_operating_point_cached(key, platform, seed, samples,
                                          n_requests)
    config = _balancer_config(host, snic)
    rate = RATE_FRACTION * snic.capacity_rps
    snic_eff = config.snic_service_s / config.snic_cores
    deadline_s = 500.0 * snic_eff

    rng = streams.stream(f"faults:{key}:baseline")
    baseline = simulate_failover(config, rate, n_packets, rng,
                                 snic_health=None, deadline_s=deadline_s)
    report = FunctionFaultReport(
        function=key,
        snic_platform=platform,
        host=host,
        snic=snic,
        offered_rate_rps=rate,
        deadline_s=deadline_s,
    )
    report.scenarios.append(
        _summarize(key, "no-fault", baseline,
                   baseline.outcome.p99_latency_s, [], float("nan"))
    )
    base_p99 = baseline.outcome.p99_latency_s
    for scenario in scenarios:
        if scenario == "link-burst-loss":
            report.scenarios.append(
                _run_link_scenario(key, config, rate, n_packets,
                                   deadline_s, base_p99, streams)
            )
        else:
            report.scenarios.append(
                _run_balancer_scenario(key, scenario, config, rate,
                                       n_packets, deadline_s, base_p99,
                                       streams)
            )
    return report


def run_faults_study(
    functions: Sequence[str] = FAULT_FUNCTIONS,
    samples: int = 200,
    n_requests: int = 12_000,
    n_packets: int = 30_000,
    streams: Optional[RandomStreams] = None,
    scenarios: Sequence[str] = ALL_SCENARIOS,
    smoke: bool = False,
    jobs: int = 1,
    executor: Optional[ParallelExecutor] = None,
) -> FaultStudyResult:
    """Measure Fig. 4 operating points, then replay them under faults.

    ``smoke`` shrinks the study (two functions, small samples) so CI can
    exercise the whole path in seconds.  Functions are independent work
    units, so ``jobs=N`` parallelizes across them deterministically.
    """
    if smoke:
        functions = SMOKE_FUNCTIONS
        samples = min(samples, 40)
        n_requests = min(n_requests, 2_500)
        n_packets = min(n_packets, 8_000)
    streams = streams or RandomStreams(2023)
    seed = streams.root_seed
    executor = executor or ParallelExecutor(jobs)

    units = [
        WorkUnit(
            name=f"faults:{key}",
            fn=compute_function_report,
            args=(key, tuple(scenarios), samples, n_requests, n_packets, seed),
        )
        for key in functions
    ]
    keys = [
        cache_key("faults-report", key, tuple(scenarios), samples,
                  n_requests, n_packets, seed)
        for key in functions
    ]
    reports = map_cached(executor, units, keys)

    # Back-fill the operating points measured inside worker processes so
    # later verbs in this process (fig4 at the same fidelity, table5)
    # reuse them without re-simulating.
    store = get_cache()
    for report in reports:
        store.put(
            operating_point_cache_key(report.function, "host", seed, samples,
                                      n_requests),
            report.host,
        )
        store.put(
            operating_point_cache_key(report.function, report.snic_platform,
                                      seed, samples, n_requests),
            report.snic,
        )
    return FaultStudyResult(reports=list(reports))


def format_faults(result: FaultStudyResult) -> str:
    """Aligned text rendering for the CLI."""
    lines: List[str] = []
    for report in result.reports:
        lines.append(
            f"{report.function} [{report.snic_platform}] — offered "
            f"{report.offered_rate_rps:,.0f} rps "
            f"(snic cap {report.snic.capacity_rps:,.0f}, host cap "
            f"{report.host.capacity_rps:,.0f}), SLO deadline "
            f"{report.deadline_s * 1e6:.0f} us"
        )
        lines.append(
            f"  {'scenario':<18} {'avail':>8} {'p99 us':>10} {'p999 us':>10} "
            f"{'x base':>7} {'drops':>7} {'late-drop':>9} {'host%':>6} "
            f"{'stall us':>9} {'recover ms':>11}"
        )
        for s in report.scenarios:
            recover = ("-" if not np.isfinite(s.recovery_s)
                       else f"{s.recovery_s * 1e3:.2f}")
            lines.append(
                f"  {s.scenario:<18} {s.availability:>8.2%} "
                f"{s.p99_s * 1e6:>10.1f} {s.p999_s * 1e6:>10.1f} "
                f"{s.p99_inflation:>7.2f} {s.dropped:>7d} "
                f"{s.drops_outside_fault_s:>9d} "
                f"{s.host_share_fault:>6.0%} "
                f"{s.retry_stall_mean_s * 1e6:>9.2f} {recover:>11}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def _faults_runner(ctx: ExperimentContext) -> FaultStudyResult:
    fid = ctx.fidelity()
    return run_faults_study(samples=fid.samples, n_requests=fid.requests,
                            streams=ctx.streams, smoke=ctx.smoke,
                            executor=ctx.executor)


def _scenario_json(s: ScenarioResult) -> dict:
    return {
        "scenario": s.scenario,
        "availability": s.availability,
        "p99_s": s.p99_s,
        "p999_s": s.p999_s,
        "p99_inflation": s.p99_inflation,
        "dropped": s.dropped,
        "drops_outside_fault_s": s.drops_outside_fault_s,
        "host_share_fault": s.host_share_fault,
        "retry_stall_mean_s": s.retry_stall_mean_s,
        "recovery_s": s.recovery_s,
    }


def faults_json(result: FaultStudyResult) -> list:
    return [
        {
            "function": r.function,
            "snic_platform": r.snic_platform,
            "offered_rate_rps": r.offered_rate_rps,
            "deadline_s": r.deadline_s,
            "host": operating_point_json(r.host),
            "snic": operating_point_json(r.snic),
            "scenarios": [_scenario_json(s) for s in r.scenarios],
        }
        for r in result.reports
    ]


register(Experiment(
    name="faults",
    title="Availability under faults: failover and graceful degradation",
    description="Fig. 4 operating points replayed through SNIC outage, "
                "thermal throttle, core loss, and bursty link loss",
    runner=_faults_runner,
    formatter=format_faults,
    to_json=faults_json,
    schema={
        "type": "array",
        "minItems": 1,
        "items": {
            "type": "object",
            "required": ["function", "snic_platform", "offered_rate_rps",
                         "deadline_s", "scenarios"],
            "properties": {
                "function": {"type": "string"},
                "snic_platform": {"type": "string"},
                "scenarios": {
                    "type": "array",
                    "minItems": 1,
                    "items": {
                        "type": "object",
                        "required": ["scenario", "availability", "p99_s",
                                     "dropped"],
                        "properties": {
                            "scenario": {"type": "string"},
                            "availability": {"type": "number"},
                            # inf/nan serialize to null by design
                            "p99_inflation": {"type": ["number", "null"]},
                            "recovery_s": {"type": ["number", "null"]},
                        },
                    },
                },
            },
        },
    },
    tiers=smoke_tier(),
    # An extension study: losing one scenario replay should not take the
    # whole report down — degrade to a partial-results verdict and let
    # --resume retry the quarantined units.
    unit_granularity="one (function, fault-scenario) replay",
    degradation=DEGRADE_PARTIAL,
))
