"""Operation-mode study (§2.3): on-path vs off-path delivery.

The paper runs everything on-path (the accelerators require it and
off-path support was discontinued), but the mode choice has a cost: every
host-bound packet traverses the SNIC CPU complex first.  This experiment
measures that tax on the packet-accurate testbed — the latency and
SNIC-CPU-occupancy difference between the two modes for host-terminated
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.engine import Simulator
from ..testbed.eswitch import Destination, OperationMode
from ..testbed.server import (
    SnicServer,
    consume_all,
    forward_all,
    reply_all,
    run_udp_echo_measurement,
)


@dataclass
class ModeResult:
    mode: str
    mean_rtt_s: float
    p99_rtt_s: float
    snic_cpu_packets: int  # packets that consumed SNIC CPU time


def _measure(mode: OperationMode, n_packets: int, interval_s: float) -> ModeResult:
    sim = Simulator()
    server = SnicServer(
        sim,
        snic_handler=forward_all,  # on-path: SNIC CPU forwards to host
        host_handler=reply_all,
        mode=mode,
        snic_service_s=1.5e-6,
        host_service_s=1.0e-6,
    )
    if mode is OperationMode.OFF_PATH:
        # the eSwitch steers host-addressed packets directly
        server.eswitch.map_address(2, Destination.HOST)
    measurement = run_udp_echo_measurement(
        sim, server, "host" if mode is OperationMode.ON_PATH else "host",
        n_packets, interval_s,
    )
    # run_udp_echo_measurement sets handlers for the on-path route; for
    # off-path the eSwitch bypasses the SNIC complex entirely, so its
    # handler assignment is moot.
    sim.run()
    return ModeResult(
        mode=mode.value,
        mean_rtt_s=measurement.latencies.mean(),
        p99_rtt_s=measurement.latencies.p99(),
        snic_cpu_packets=server.snic.stats.handled,
    )


def run_mode_study(n_packets: int = 400, interval_s: float = 20e-6) -> Dict[str, ModeResult]:
    """Measure host-terminated echo traffic under both modes."""
    return {
        mode.value: _measure(mode, n_packets, interval_s)
        for mode in (OperationMode.ON_PATH, OperationMode.OFF_PATH)
    }


def format_mode_study(results: Dict[str, ModeResult]) -> str:
    lines = [
        f"{'mode':<10} {'mean RTT us':>12} {'p99 RTT us':>12} {'SNIC-CPU pkts':>14}"
    ]
    for result in results.values():
        lines.append(
            f"{result.mode:<10} {result.mean_rtt_s*1e6:>12.2f} "
            f"{result.p99_rtt_s*1e6:>12.2f} {result.snic_cpu_packets:>14}"
        )
    on_path = results["on-path"]
    off_path = results["off-path"]
    tax = on_path.mean_rtt_s - off_path.mean_rtt_s
    lines.append(
        f"\non-path tax for host-bound traffic: +{tax*1e6:.2f} us mean RTT, "
        f"{on_path.snic_cpu_packets} packets through the SNIC CPU "
        f"(off-path: {off_path.snic_cpu_packets})"
    )
    return "\n".join(lines)


def _register() -> None:
    from .registry import DEGRADE_PARTIAL, Experiment, register, smoke_tier

    register(Experiment(
        name="modes",
        title="Operation modes: the on-path tax for host-bound traffic",
        description="packet-accurate on-path vs off-path RTT and SNIC-CPU "
                    "occupancy for host-terminated echo traffic",
        # A few hundred packets through the event engine; the study is
        # already smoke-fast, so both tiers run it as-is.
        runner=lambda ctx: run_mode_study(),
        formatter=format_mode_study,
        to_json=lambda results: {
            mode: {"mean_rtt_s": r.mean_rtt_s, "p99_rtt_s": r.p99_rtt_s,
                   "snic_cpu_packets": r.snic_cpu_packets}
            for mode, r in results.items()
        },
        schema={
            "type": "object",
            "required": ["on-path", "off-path"],
            "properties": {
                mode: {
                    "type": "object",
                    "required": ["mean_rtt_s", "p99_rtt_s",
                                 "snic_cpu_packets"],
                    "properties": {
                        "mean_rtt_s": {"type": "number"},
                        "p99_rtt_s": {"type": "number"},
                        "snic_cpu_packets": {"type": "integer"},
                    },
                }
                for mode in ("on-path", "off-path")
            },
        },
        tiers=smoke_tier(),
        unit_granularity="one packet-level mode study",
        degradation=DEGRADE_PARTIAL,
    ))


_register()
