"""Figure 7: network data rates over time (the hyperscaler trace)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..workloads.traces import RateTrace, hyperscaler_trace, summarize
from .registry import Experiment, register, smoke_tier


@dataclass
class Fig7Result:
    trace: RateTrace
    stats: Dict[str, float]

    def series(self) -> List[float]:
        return [float(v) for v in self.trace.gbps]


def run_fig7(duration_s: float = 3600.0, seed: int = 2023) -> Fig7Result:
    trace = hyperscaler_trace(duration_s=duration_s, seed=seed)
    return Fig7Result(trace=trace, stats=summarize(trace))


def format_fig7(result: Fig7Result, width: int = 72, height: int = 12) -> str:
    """ASCII sparkline of the rate series plus summary statistics."""
    series = result.series()
    bucket = max(1, len(series) // width)
    downsampled = [
        max(series[i : i + bucket]) for i in range(0, len(series), bucket)
    ][:width]
    peak = max(downsampled) or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = peak * level / height
        rows.append(
            "".join("#" if value >= threshold else " " for value in downsampled)
        )
    stats = result.stats
    rows.append("-" * len(downsampled))
    rows.append(
        f"avg {stats['average_gbps']:.2f} Gb/s | p50 {stats['p50_gbps']:.2f} | "
        f"p99 {stats['p99_gbps']:.2f} | peak {stats['peak_gbps']:.2f} | "
        f"{stats['duration_s']:.0f}s"
    )
    return "\n".join(rows)


register(Experiment(
    name="fig7",
    title="Fig. 7: network data rates of the hyperscaler trace",
    description="the synthetic hyperscaler rate trace with its summary "
                "statistics (the Table 4 replay input)",
    # The trace is a fixed artifact (seed 2023 regardless of --seed, as
    # the CLI has always generated it); it is cheap enough to build at
    # full length even at smoke fidelity.
    runner=lambda ctx: run_fig7(),
    formatter=format_fig7,
    to_json=lambda result: {"stats": dict(result.stats),
                            "series_gbps": result.series()},
    schema={
        "type": "object",
        "required": ["stats", "series_gbps"],
        "properties": {
            "stats": {
                "type": "object",
                "required": ["average_gbps", "p50_gbps", "p99_gbps",
                             "peak_gbps", "duration_s"],
            },
            "series_gbps": {"type": "array", "minItems": 1,
                            "items": {"type": "number"}},
        },
    },
    tiers=smoke_tier(),
))
