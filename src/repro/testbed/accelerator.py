"""DOCA-style accelerator device on the event kernel (§2.2).

The paper describes how the BlueField-2 engines are actually driven: the
application "programs a compiled rule set to the accelerator through
DOCA APIs, and then the BlueField-2 CPU is used to acquire ingress
network packets..., put the packets in buffers, and submit tasks with
those buffers to the accelerator; for each task, the accelerator will
return a list of network packets with matched patterns".

:class:`AcceleratorDevice` reproduces that contract: program() loads a
workload-specific executor (the real regex matcher, the real DEFLATE),
submit() enqueues multi-buffer jobs, the engine serves them one job at a
time with setup latency + per-byte rate, and completions carry the real
results.  Timing comes from the same calibration as the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from ..calibration import ACCELERATORS, AcceleratorCalibration
from ..core import trace
from ..core.engine import Event, Simulator
from ..core.resources import Store

Executor = Callable[[bytes], Any]


class DocaError(RuntimeError):
    pass


@dataclass
class Job:
    """A submitted task: one or more buffers, one completion event."""

    buffers: List[bytes]
    completion: Event
    submitted_at: float

    @property
    def total_bytes(self) -> int:
        return sum(len(buffer) for buffer in self.buffers)


@dataclass
class JobResult:
    results: List[Any]
    latency_s: float
    job_bytes: int


class AcceleratorDevice:
    """One engine (rem / compression / crypto) with a DOCA-ish interface."""

    def __init__(self, sim: Simulator, engine: str, mode: Optional[str] = None,
                 queue_depth: int = 128):
        if engine not in ACCELERATORS:
            raise DocaError(f"unknown engine {engine!r}")
        self.sim = sim
        self.engine = engine
        self.calibration: AcceleratorCalibration = ACCELERATORS[engine]
        mode = mode or next(iter(self.calibration.bytes_per_s))
        if mode not in self.calibration.bytes_per_s:
            raise DocaError(f"engine {engine!r} has no mode {mode!r}")
        self.mode = mode
        self.bytes_per_s = self.calibration.bytes_per_s[mode]
        self._executor: Optional[Executor] = None
        self._queue: Store = Store(sim, capacity=queue_depth, name=f"{engine}-wq")
        self.jobs_completed = 0
        self.bytes_processed = 0
        self._worker = sim.process(self._run(), name=f"{engine}-engine")

    # -- DOCA-ish API --------------------------------------------------------

    def program(self, executor: Executor) -> None:
        """Load the workload program (compiled rule set, codec, ...)."""
        self._executor = executor

    def submit(self, buffers: List[bytes]) -> Event:
        """Submit one job; the returned event fires with a JobResult."""
        if self._executor is None:
            raise DocaError(f"engine {self.engine!r} not programmed")
        if not buffers:
            raise DocaError("empty job")
        if len(buffers) > self.calibration.max_batch:
            raise DocaError(
                f"job exceeds max batch {self.calibration.max_batch}"
            )
        completion = Event(self.sim)
        job = Job(buffers=buffers, completion=completion,
                  submitted_at=self.sim.now)
        self._queue.put(job)
        return completion

    # -- the engine ----------------------------------------------------------

    def _run(self):
        while True:
            job: Job = yield self._queue.get()
            service = (
                self.calibration.setup_latency_s
                + job.total_bytes / self.bytes_per_s
            )
            yield self.sim.timeout(service)
            results = [self._executor(buffer) for buffer in job.buffers]
            self.jobs_completed += 1
            self.bytes_processed += job.total_bytes
            if trace.TRACING:
                trace.complete(
                    f"{self.engine}.job", trace.ACCEL_BATCH,
                    ts=self.sim.now - service, dur=service,
                    track=trace.subtrack(self.engine),
                    buffers=len(job.buffers), job_bytes=job.total_bytes,
                    queue_wait_us=round(
                        (self.sim.now - service - job.submitted_at) * 1e6, 3),
                )
            job.completion.trigger(
                JobResult(
                    results=results,
                    latency_s=self.sim.now - job.submitted_at,
                    job_bytes=job.total_bytes,
                )
            )


def rem_device(sim: Simulator, ruleset: str) -> AcceleratorDevice:
    """An REM engine programmed with a compiled rule set."""
    from ..functions.regex.rulesets import compile_ruleset

    matcher = compile_ruleset(ruleset)
    device = AcceleratorDevice(sim, "rem")
    device.program(lambda buffer: matcher.scan(buffer)[0])
    return device


def compression_device(sim: Simulator, level: int = 9) -> AcceleratorDevice:
    """A deflate engine."""
    from ..functions.compression import deflate

    device = AcceleratorDevice(sim, "compression", mode="deflate")
    device.program(lambda buffer: deflate.compress(buffer, level=level).payload)
    return device
