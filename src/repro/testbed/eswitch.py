"""The embedded switch inside ConnectX-6 Dx / BlueField-2 (§2.2-2.3).

The eSwitch sits between the wire and the two processor complexes and
implements the paper's two operation modes:

* **on-path** — every ingress packet is steered to the SNIC CPU complex
  first; the SNIC CPU (running OvS as the control plane) decides whether
  to consume it or forward it over PCIe to the host;
* **off-path** — the eSwitch forwards by destination address directly to
  the SNIC CPU or the host, with no SNIC CPU involvement.

Forwarding is bump-in-the-wire: the switch adds only a small fixed
latency and is capacity-bounded at the line rate.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Optional

from ..core.engine import Simulator
from ..core.units import gbps_to_bytes_per_second
from ..netstack.packet import Packet

Receiver = Callable[[Packet], None]


class OperationMode(Enum):
    ON_PATH = "on-path"
    OFF_PATH = "off-path"


class Destination(Enum):
    SNIC_CPU = "snic-cpu"
    HOST = "host"
    WIRE = "wire"


class ESwitch:
    """Ingress/egress steering fabric of the SmartNIC."""

    def __init__(
        self,
        sim: Simulator,
        mode: OperationMode = OperationMode.ON_PATH,
        line_rate_gbps: float = 100.0,
        forwarding_latency_s: float = 300e-9,
    ):
        self.sim = sim
        self.mode = mode
        self.bytes_per_second = gbps_to_bytes_per_second(line_rate_gbps)
        self.forwarding_latency_s = forwarding_latency_s
        self._receivers: Dict[Destination, Receiver] = {}
        # off-path steering: destination IP -> destination complex
        self._address_map: Dict[int, Destination] = {}
        self._busy_until = 0.0
        self.forwarded = 0
        self.dropped_no_receiver = 0

    def attach(self, destination: Destination, receiver: Receiver) -> None:
        self._receivers[destination] = receiver

    def map_address(self, address: int, destination: Destination) -> None:
        """Off-path rule: packets for ``address`` go straight to ``destination``."""
        if destination is Destination.WIRE:
            raise ValueError("cannot map an address to the wire")
        self._address_map[address] = destination

    def _steer(self, packet: Packet) -> Destination:
        if self.mode is OperationMode.ON_PATH:
            # Everything goes through the SNIC CPU complex first (§2.3 M1).
            return Destination.SNIC_CPU
        return self._address_map.get(packet.dst_ip, Destination.HOST)

    def ingress(self, packet: Packet) -> None:
        """A packet arriving from the wire."""
        self._forward(packet, self._steer(packet))

    def egress(self, packet: Packet) -> None:
        """A packet leaving toward the wire."""
        self._forward(packet, Destination.WIRE)

    def snic_to_host(self, packet: Packet) -> None:
        """On-path hand-off from the SNIC CPU toward the host complex."""
        self._forward(packet, Destination.HOST)

    def _forward(self, packet: Packet, destination: Destination) -> None:
        receiver = self._receivers.get(destination)
        if receiver is None:
            self.dropped_no_receiver += 1
            return
        serialization = packet.wire_bytes / self.bytes_per_second
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + serialization
        delay = (start - self.sim.now) + serialization + self.forwarding_latency_s
        event = self.sim.timeout(delay, packet)
        event.add_callback(lambda fired: self._deliver(receiver, fired.value))

    def _deliver(self, receiver: Receiver, packet: Packet) -> None:
        self.forwarded += 1
        receiver(packet)
