"""Packet-accurate testbed: Fig. 3's system on the event kernel."""

from .accelerator import (
    AcceleratorDevice,
    DocaError,
    JobResult,
    compression_device,
    rem_device,
)
from .eswitch import Destination, ESwitch, OperationMode
from .pcie import PcieLink
from .server import (
    CONSUME,
    REPLY,
    TO_HOST,
    EchoMeasurement,
    ProcessorComplex,
    SnicServer,
    consume_all,
    forward_all,
    reply_all,
    run_udp_echo_measurement,
)

__all__ = [
    "AcceleratorDevice",
    "DocaError",
    "JobResult",
    "compression_device",
    "rem_device",
    "Destination",
    "ESwitch",
    "OperationMode",
    "PcieLink",
    "CONSUME",
    "REPLY",
    "TO_HOST",
    "EchoMeasurement",
    "ProcessorComplex",
    "SnicServer",
    "consume_all",
    "forward_all",
    "reply_all",
    "run_udp_echo_measurement",
]
