"""The evaluation system of Fig. 3 assembled on the event kernel.

:class:`SnicServer` wires together the wire link, the eSwitch, the SNIC
CPU complex, the PCIe link, and the host CPU complex.  Packets take the
paper's on-path route (wire -> eSwitch -> SNIC CPU -> [PCIe -> host]),
or the off-path route when the eSwitch is configured for it.

Each processor complex is a `core pool + per-packet handler` pair; the
handler declares where the packet terminates ("consume") or continues
("to-host", "reply").  The testbed is deliberately packet-accurate and
therefore slow — it exists to *cross-validate* the calibrated fast path
at low rates (see tests/testbed/), not to run the sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.engine import Simulator
from ..core.metrics import LatencyRecorder, ThroughputMeter
from ..core.resources import Resource
from ..hardware.specs import BLUEFIELD2, SERVER
from ..netstack.link import Link
from ..netstack.packet import Packet
from .eswitch import Destination, ESwitch, OperationMode
from .pcie import PcieLink

# Handler verdicts
CONSUME = "consume"
TO_HOST = "to-host"
REPLY = "reply"

Handler = Callable[[Packet], str]


@dataclass
class ComplexStats:
    handled: int = 0
    consumed: int = 0
    forwarded: int = 0
    replied: int = 0


class ProcessorComplex:
    """A pool of cores running a per-packet handler."""

    def __init__(self, sim: Simulator, name: str, cores: int,
                 per_packet_service_s: float, handler: Handler):
        self.sim = sim
        self.name = name
        self.cores = Resource(sim, cores, name=f"{name}-cores")
        self.per_packet_service_s = per_packet_service_s
        self.handler = handler
        self.stats = ComplexStats()
        self.on_forward: Optional[Callable[[Packet], None]] = None
        self.on_reply: Optional[Callable[[Packet], None]] = None

    def submit(self, packet: Packet) -> None:
        self.sim.process(self._serve(packet), name=f"{self.name}-pkt")

    def _serve(self, packet: Packet):
        request = self.cores.request()
        yield request
        yield self.sim.timeout(self.per_packet_service_s)
        verdict = self.handler(packet)
        self.cores.release()
        self.stats.handled += 1
        if verdict == TO_HOST:
            self.stats.forwarded += 1
            if self.on_forward is not None:
                self.on_forward(packet)
        elif verdict == REPLY:
            self.stats.replied += 1
            if self.on_reply is not None:
                reply = packet.reply_template(packet.payload)
                reply.packet_id = packet.packet_id  # echo correlation
                self.on_reply(reply)
        else:
            self.stats.consumed += 1


class SnicServer:
    """Fig. 3's server: host CPU + BlueField-2, both ends of the wire."""

    def __init__(
        self,
        sim: Simulator,
        snic_handler: Handler,
        host_handler: Handler,
        mode: OperationMode = OperationMode.ON_PATH,
        snic_service_s: float = 2e-6,
        host_service_s: float = 1e-6,
        snic_cores: Optional[int] = None,
        host_cores: int = 8,
    ):
        self.sim = sim
        self.eswitch = ESwitch(sim, mode=mode)
        self.pcie_to_host = PcieLink(sim, BLUEFIELD2.pcie, name="snic->host")
        self.pcie_to_snic = PcieLink(sim, BLUEFIELD2.pcie, name="host->snic")
        self.snic = ProcessorComplex(
            sim, "snic-cpu", snic_cores or BLUEFIELD2.cpu.cores,
            snic_service_s, snic_handler,
        )
        self.host = ProcessorComplex(
            sim, "host-cpu", host_cores, host_service_s, host_handler
        )
        self.egress_link: Optional[Link] = None

        self.eswitch.attach(Destination.SNIC_CPU, self.snic.submit)
        self.eswitch.attach(Destination.HOST, self._host_over_pcie)
        self.eswitch.attach(Destination.WIRE, self._to_wire)
        self.snic.on_forward = self.eswitch.snic_to_host
        self.snic.on_reply = self.eswitch.egress
        self.host.on_reply = self._host_reply

    # -- wiring ----------------------------------------------------------

    def attach_wire(self, egress: Link) -> None:
        """The cable back toward the client."""
        self.egress_link = egress

    def receive(self, packet: Packet) -> None:
        """Entry point for packets arriving from the wire."""
        self.eswitch.ingress(packet)

    # -- internal paths ----------------------------------------------------

    def _host_over_pcie(self, packet: Packet) -> None:
        event = self.pcie_to_host.transfer(packet.wire_bytes)
        event.add_callback(lambda _e: self.host.submit(packet))

    def _host_reply(self, reply: Packet) -> None:
        event = self.pcie_to_snic.transfer(reply.wire_bytes)
        event.add_callback(lambda _e: self.eswitch.egress(reply))

    def _to_wire(self, packet: Packet) -> None:
        if self.egress_link is not None:
            self.egress_link.send(packet)


def consume_all(_packet: Packet) -> str:
    return CONSUME


def reply_all(_packet: Packet) -> str:
    return REPLY


def forward_all(_packet: Packet) -> str:
    return TO_HOST


@dataclass
class EchoMeasurement:
    latencies: LatencyRecorder
    throughput: ThroughputMeter
    sent: int = 0


def run_udp_echo_measurement(
    sim: Simulator,
    server: SnicServer,
    serve_on: str,
    n_packets: int,
    interval_s: float,
    payload_bytes: int = 64,
    wire_latency_s: float = 1e-6,
) -> EchoMeasurement:
    """Drive the testbed with paced echo requests and record RTTs.

    ``serve_on`` selects which complex answers: "snic" (its handler
    replies) or "host" (the SNIC forwards over PCIe, the host replies).
    """
    if serve_on == "snic":
        server.snic.handler = reply_all
    elif serve_on == "host":
        server.snic.handler = forward_all
        server.host.handler = reply_all
    else:
        raise ValueError("serve_on must be 'snic' or 'host'")

    measurement = EchoMeasurement(LatencyRecorder(), ThroughputMeter())
    ingress = Link(sim, gbps=100.0, propagation_s=wire_latency_s)
    egress = Link(sim, gbps=100.0, propagation_s=wire_latency_s)
    ingress.attach(server.receive)
    server.attach_wire(egress)
    sent_at: Dict[int, float] = {}

    def on_reply(packet: Packet) -> None:
        started = sent_at.pop(packet.packet_id, None)
        if started is not None:
            rtt = sim.now - started
            measurement.latencies.record(sim.now, rtt)
            measurement.throughput.record(sim.now, packet.wire_bytes)

    egress.attach(on_reply)

    def client():
        for index in range(n_packets):
            packet = Packet(
                proto=17, src_ip=1, src_port=9000, dst_ip=2, dst_port=53,
                payload=b"x" * payload_bytes, packet_id=index + 1,
            )
            sent_at[packet.packet_id] = sim.now
            measurement.sent += 1
            ingress.send(packet)
            yield sim.timeout(interval_s)

    sim.process(client())
    return measurement
