"""PCIe interconnect model on the event kernel.

The link between the SNIC and the host (Fig. 1): transactions pay a
fixed root-complex traversal latency plus serialization at the link's
usable bandwidth, and the link serializes DMA bursts FIFO.  Used by the
testbed's on-path delivery (eSwitch -> SNIC CPU -> PCIe -> host) and by
host-initiated accelerator offload.
"""

from __future__ import annotations

from typing import Optional

from ..core.engine import Event, Simulator
from ..hardware.specs import PcieSpec


class PcieLink:
    """One direction of a PCIe link; create two for full duplex."""

    def __init__(self, sim: Simulator, spec: PcieSpec, name: str = "pcie"):
        self.sim = sim
        self.spec = spec
        self.name = name
        self.bytes_per_second = spec.bandwidth_gbs * 1e9
        self._busy_until = 0.0
        self.transactions = 0
        self.bytes_moved = 0

    def transfer(self, nbytes: int) -> Event:
        """Move ``nbytes`` across the link; the event fires on delivery."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        self.transactions += 1
        self.bytes_moved += nbytes
        serialization = nbytes / self.bytes_per_second
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + serialization
        delay = (start - self.sim.now) + serialization + self.spec.transaction_latency_s
        return self.sim.timeout(delay)

    def doorbell(self) -> Event:
        """A zero-payload MMIO write (posted): latency only."""
        return self.transfer(0)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        horizon = elapsed if elapsed is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        return min(self.bytes_moved / self.bytes_per_second / horizon, 1.0)
