"""Resumable run manifests: one JSONL file of record per work unit.

A :class:`RunManifest` is the run farm's durable source of truth.  Every
generation of a run (the first invocation and each ``--resume``) appends
a ``run`` header record, and every work-unit state transition appends a
``unit`` record::

    {"type": "run", "manifest_version": 1, "generation": 1, "verb": ...}
    {"type": "unit", "key": "...", "unit": "fig4:udp:64:host",
     "status": "running", "attempt": 1, ...}
    {"type": "unit", "key": "...", "status": "done", "attempt": 1,
     "artifact": "sha256-hex", "elapsed_s": 0.41, ...}

Appends are **atomic**: each record is serialized to one ``\\n``-
terminated line and written with a single ``os.write`` on an
``O_APPEND`` descriptor, so concurrent writers interleave whole lines
and a SIGKILLed driver leaves at most one truncated final line — which
the loader tolerates (counted, skipped).  Replaying the file with
last-record-wins per key reconstructs the run's exact state: units whose
final record is ``done``/``cached`` are complete (their artifact lives
in the content-addressed store), everything else — including units
caught mid-flight as ``running`` when the driver died — is incomplete
and re-executes on resume.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

MANIFEST_VERSION = 1
MANIFEST_NAME = "manifest.jsonl"

# Unit statuses, in lifecycle order.
RUNNING = "running"
DONE = "done"          # executed this generation; artifact stored
CACHED = "cached"      # served from the artifact store (hit or resume)
FAILED = "failed"      # attempt raised; may retry
TIMEOUT = "timeout"    # attempt SIGKILLed at the wall-clock deadline
WORKER_LOST = "worker-lost"  # worker died (OOM/crash/kill) mid-unit
QUARANTINED = "quarantined"  # poison pill: exhausted attempts, benched

COMPLETE_STATUSES = frozenset({DONE, CACHED})
FAILURE_STATUSES = frozenset({FAILED, TIMEOUT, WORKER_LOST})


@dataclass
class UnitRecord:
    """Last known state of one work unit (one manifest key)."""

    key: str
    unit: str
    status: str
    attempt: int = 0
    elapsed_s: Optional[float] = None
    artifact: Optional[str] = None
    error: Optional[str] = None
    # Per-unit profile (recorded on DONE by the supervisor from the
    # executor's UnitProfile): wall seconds, worker CPU seconds, and
    # simulated kernel events per wall second.
    wall_s: Optional[float] = None
    cpu_s: Optional[float] = None
    events_per_s: Optional[float] = None

    @property
    def complete(self) -> bool:
        return self.status in COMPLETE_STATUSES


@dataclass
class ManifestState:
    """A manifest file replayed into current per-unit state."""

    path: str
    header: Dict[str, Any] = field(default_factory=dict)
    generations: int = 0
    units: Dict[str, UnitRecord] = field(default_factory=dict)
    skipped_lines: int = 0

    @property
    def run_dir(self) -> str:
        return os.path.dirname(os.path.abspath(self.path))

    def done_keys(self) -> frozenset:
        return frozenset(key for key, record in self.units.items()
                         if record.complete)

    def incomplete(self) -> List[UnitRecord]:
        return [record for record in self.units.values()
                if not record.complete]

    def quarantined(self) -> List[UnitRecord]:
        return [record for record in self.units.values()
                if record.status == QUARANTINED]

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.units.values():
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def summary(self) -> str:
        total = len(self.units)
        done = len(self.done_keys())
        extra = ""
        quarantined = len(self.quarantined())
        if quarantined:
            extra = f", {quarantined} quarantined"
        return (f"{done}/{total} units complete{extra} "
                f"(generation {self.generations})")


class RunManifest:
    """Append-only JSONL journal of one run's work units."""

    def __init__(self, path: str):
        # Anything that isn't explicitly a .jsonl file is a run
        # directory (possibly not yet created).
        if os.path.isdir(path) or not path.endswith(".jsonl"):
            path = os.path.join(path, MANIFEST_NAME)
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)

    # -- writing ------------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True,
                          separators=(",", ":")) + "\n"
        # One O_APPEND write per record: concurrent appenders interleave
        # whole lines, and a killed process leaves at most one partial
        # final line (tolerated by the loader).
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                     0o644)
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def begin_generation(self, *, verb: str, seed: int, samples: int,
                         requests: int, tier: str, jobs: int,
                         code_version: str,
                         engine: Optional[str] = None,
                         topology: Optional[str] = None,
                         argv: Optional[List[str]] = None,
                         generation: Optional[int] = None) -> int:
        """Append a ``run`` header; returns the generation number."""
        if generation is None:
            state = self.load(self.path) if os.path.exists(self.path) else None
            generation = (state.generations if state else 0) + 1
        self._append({
            "type": "run",
            "manifest_version": MANIFEST_VERSION,
            "generation": generation,
            "verb": verb,
            "seed": seed,
            "samples": samples,
            "requests": requests,
            "tier": tier,
            "engine": engine,
            "topology": topology,
            "jobs": jobs,
            "code_version": code_version,
            "argv": list(argv) if argv else [],
            "started_unix": time.time(),
        })
        return generation

    def record_unit(self, key: str, unit: str, status: str, *,
                    attempt: int = 0, elapsed_s: Optional[float] = None,
                    artifact: Optional[str] = None,
                    error: Optional[str] = None,
                    wall_s: Optional[float] = None,
                    cpu_s: Optional[float] = None,
                    events_per_s: Optional[float] = None) -> None:
        record: Dict[str, Any] = {
            "type": "unit",
            "key": key,
            "unit": unit,
            "status": status,
            "attempt": attempt,
            "ts_unix": time.time(),
        }
        if elapsed_s is not None:
            record["elapsed_s"] = round(elapsed_s, 6)
        if artifact is not None:
            record["artifact"] = artifact
        if error is not None:
            record["error"] = error[:500]
        if wall_s is not None:
            record["wall_s"] = round(wall_s, 6)
        if cpu_s is not None:
            record["cpu_s"] = round(cpu_s, 6)
        if events_per_s is not None:
            record["events_per_s"] = round(events_per_s, 3)
        self._append(record)

    # -- reading ------------------------------------------------------------

    @staticmethod
    def load(path: str) -> ManifestState:
        """Replay a manifest file into last-record-wins unit state.

        ``path`` may be the manifest file or its run directory.  Corrupt
        or truncated lines (a SIGKILLed writer's final append) are
        counted and skipped, never fatal.
        """
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_NAME)
        state = ManifestState(path=path)
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    state.skipped_lines += 1
                    continue
                if not isinstance(record, dict):
                    state.skipped_lines += 1
                    continue
                kind = record.get("type")
                if kind == "run":
                    state.generations = max(state.generations,
                                            int(record.get("generation", 1)))
                    if not state.header:
                        state.header = {
                            k: v for k, v in record.items()
                            if k not in ("type",)
                        }
                elif kind == "unit" and "key" in record:
                    state.units[record["key"]] = UnitRecord(
                        key=record["key"],
                        unit=record.get("unit", ""),
                        status=record.get("status", ""),
                        attempt=int(record.get("attempt", 0)),
                        elapsed_s=record.get("elapsed_s"),
                        artifact=record.get("artifact"),
                        error=record.get("error"),
                        wall_s=record.get("wall_s"),
                        cpu_s=record.get("cpu_s"),
                        events_per_s=record.get("events_per_s"),
                    )
                else:
                    state.skipped_lines += 1
        return state


def iter_records(path: str) -> Iterable[Dict[str, Any]]:
    """Yield every well-formed record in file order (for tooling/tests)."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                yield record
