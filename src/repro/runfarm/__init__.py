"""Run-farm orchestration: resumable, fault-contained experiment fleets.

FireSim-style supervision over the existing parallel executor and
content-addressed cache (ROADMAP item 2): :mod:`manifest` journals every
work unit's state to a resumable JSONL file, :mod:`health` gives workers
heartbeats so the parent can tell hung from slow, and :mod:`supervisor`
drives batches under per-unit deadlines, harness-level retry/backoff,
and poison-pill quarantine.  The CLI installs a
:class:`~repro.runfarm.supervisor.SupervisedExecutor` whenever a runfarm
flag is active, so every registry-declared experiment inherits the whole
machinery through its existing ``map_cached``/``executor.map`` calls.
"""

from .manifest import ManifestState, RunManifest, UnitRecord
from .supervisor import (
    QuarantinedUnitError,
    RunSupervisor,
    SupervisedExecutor,
    SupervisorConfig,
)

__all__ = [
    "ManifestState",
    "QuarantinedUnitError",
    "RunManifest",
    "RunSupervisor",
    "SupervisedExecutor",
    "SupervisorConfig",
    "UnitRecord",
]
