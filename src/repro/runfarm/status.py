"""Fleet status: watch a supervised run from its manifest + heartbeats.

``repro status <run-dir>`` answers the question PR 6 left open: *how far
along is this sweep, which units are slow, and is anything stuck?*  All
state is reconstructed from what the run farm already journals — no new
wire protocol:

* the manifest replay gives exact per-unit state (the ``counts`` in
  ``--json`` output match :meth:`RunManifest.load(...).counts()`
  verbatim) plus each unit's full attempt history;
* heartbeat files name the units in flight right now and how fresh
  their workers' beats are;
* completed units' journaled ``wall_s`` feed an EWMA per-unit runtime,
  which with the header's ``jobs`` yields the ETA.

``--watch`` refreshes until the run has no incomplete units;
``--json`` emits one machine-readable document instead of text.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from . import manifest as mf
from .health import HealthMonitor, WorkerBeat
from .manifest import MANIFEST_NAME, ManifestState, RunManifest, iter_records

# EWMA smoothing for completed-unit wall time (same constant family as
# the executor's bypass estimator: recent units dominate).
_EWMA_ALPHA = 0.3
# How many slowest completed units the text view lists.
TOP_SLOWEST = 5


@dataclass
class UnitHistory:
    """One unit's attempt trail, replayed from the journal."""

    key: str
    unit: str
    # (attempt, status) transitions in journal order.
    attempts: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return any(attempt > 1 for attempt, _status in self.attempts)


@dataclass
class FleetStatus:
    """Everything one status snapshot knows about a run."""

    run_dir: str
    state: ManifestState
    histories: Dict[str, UnitHistory]
    beats: Dict[str, WorkerBeat]
    ewma_unit_s: Optional[float]
    now_unix: float

    @property
    def total(self) -> int:
        return len(self.state.units)

    @property
    def complete(self) -> int:
        return len(self.state.done_keys())

    @property
    def incomplete(self) -> int:
        return len(self.state.incomplete())

    def counts(self) -> Dict[str, int]:
        """Per-status unit counts — verbatim from the manifest replay."""
        return self.state.counts()

    def running_units(self) -> List[mf.UnitRecord]:
        return sorted(
            (r for r in self.state.units.values()
             if r.status == mf.RUNNING),
            key=lambda r: r.unit)

    def retried_units(self) -> List[UnitHistory]:
        # Quarantined units have their own section; "retried" highlights
        # the ones that needed extra attempts but are still in play.
        quarantined = {k for k, r in self.state.units.items()
                       if r.status == mf.QUARANTINED}
        return sorted((h for h in self.histories.values()
                       if h.retried and h.key not in quarantined),
                      key=lambda h: h.unit)

    def slowest(self, top_n: int = TOP_SLOWEST) -> List[mf.UnitRecord]:
        done = [r for r in self.state.units.values()
                if r.status == mf.DONE and r.wall_s is not None]
        return sorted(done, key=lambda r: (-r.wall_s, r.unit))[:top_n]

    def eta_s(self) -> Optional[float]:
        """Remaining work / worker parallelism, from the wall-time EWMA."""
        if self.ewma_unit_s is None or self.incomplete == 0:
            return None
        jobs = max(1, int(self.state.header.get("jobs", 1) or 1))
        return self.incomplete * self.ewma_unit_s / jobs


def collect(run_dir: str, now: Optional[float] = None) -> FleetStatus:
    """One status snapshot of ``run_dir`` (a directory or manifest path)."""
    manifest_path = run_dir
    if os.path.isdir(manifest_path):
        manifest_path = os.path.join(manifest_path, MANIFEST_NAME)
    state = RunManifest.load(manifest_path)

    histories: Dict[str, UnitHistory] = {}
    ewma: Optional[float] = None
    for record in iter_records(manifest_path):
        if record.get("type") != "unit" or "key" not in record:
            continue
        key = record["key"]
        history = histories.get(key)
        if history is None:
            history = histories[key] = UnitHistory(
                key=key, unit=record.get("unit", ""))
        history.attempts.append(
            (int(record.get("attempt", 0)), record.get("status", "")))
        if record.get("status") == mf.DONE:
            sample = record.get("wall_s", record.get("elapsed_s"))
            if sample is not None:
                sample = float(sample)
                ewma = (sample if ewma is None
                        else _EWMA_ALPHA * sample + (1 - _EWMA_ALPHA) * ewma)

    beats: Dict[str, WorkerBeat] = {}
    heartbeat_dir = os.path.join(state.run_dir, "heartbeats")
    if os.path.isdir(heartbeat_dir):
        beats = HealthMonitor(heartbeat_dir).scan(now=now)

    return FleetStatus(
        run_dir=state.run_dir,
        state=state,
        histories=histories,
        beats=beats,
        ewma_unit_s=ewma,
        now_unix=now if now is not None else time.time(),
    )


def to_json(status: FleetStatus) -> Dict[str, Any]:
    """The machine-readable status document (``repro status --json``)."""
    eta = status.eta_s()
    return {
        "run_dir": status.run_dir,
        "verb": status.state.header.get("verb"),
        "generation": status.state.generations,
        "counts": status.counts(),
        "total": status.total,
        "complete": status.complete,
        "incomplete": status.incomplete,
        "quarantined": sorted(r.unit for r in status.state.quarantined()),
        "retried": [
            {"unit": h.unit, "attempts": [
                {"attempt": attempt, "status": st}
                for attempt, st in h.attempts]}
            for h in status.retried_units()
        ],
        "running": [
            {
                "unit": record.unit,
                "attempt": record.attempt,
                "heartbeat_age_s": (
                    round(status.beats[record.unit].age_s, 3)
                    if record.unit in status.beats else None),
                "heartbeat_stale": (
                    status.beats[record.unit].stale
                    if record.unit in status.beats else None),
            }
            for record in status.running_units()
        ],
        "slowest": [
            {
                "unit": record.unit,
                "wall_s": record.wall_s,
                "cpu_s": record.cpu_s,
                "events_per_s": record.events_per_s,
            }
            for record in status.slowest()
        ],
        "ewma_unit_s": (round(status.ewma_unit_s, 6)
                        if status.ewma_unit_s is not None else None),
        "eta_s": round(eta, 3) if eta is not None else None,
        "skipped_lines": status.state.skipped_lines,
    }


def _progress_bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "[" + " " * width + "]"
    filled = int(round(width * done / total))
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "n/a"
    if seconds < 90:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 90:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


def render(status: FleetStatus) -> str:
    """The human-readable status view."""
    header = status.state.header
    lines: List[str] = []
    verb = header.get("verb", "?")
    tier = header.get("tier", "?")
    lines.append(
        f"run {status.run_dir} — verb '{verb}' ({tier} tier, "
        f"generation {status.state.generations}, "
        f"jobs {header.get('jobs', '?')})")
    lines.append(
        f"{_progress_bar(status.complete, status.total)} "
        f"{status.complete}/{status.total} units complete, "
        f"ETA {_fmt_eta(status.eta_s())}")
    counts = status.counts()
    lines.append("  " + ", ".join(
        f"{name} {counts[name]}" for name in sorted(counts)))
    running = status.running_units()
    if running:
        lines.append("running:")
        for record in running:
            beat = status.beats.get(record.unit)
            if beat is None:
                hb = "no heartbeat"
            elif beat.stale:
                hb = f"heartbeat STALE ({beat.age_s:.1f}s)"
            else:
                hb = f"heartbeat {beat.age_s:.1f}s ago"
            lines.append(f"  {record.unit} (attempt {record.attempt}, {hb})")
    retried = status.retried_units()
    if retried:
        lines.append("retried:")
        for history in retried:
            trail = " -> ".join(f"{st}#{attempt}"
                                for attempt, st in history.attempts)
            lines.append(f"  {history.unit}: {trail}")
    quarantined = status.state.quarantined()
    if quarantined:
        lines.append("quarantined:")
        for record in sorted(quarantined, key=lambda r: r.unit):
            lines.append(f"  {record.unit}: {record.error or 'unknown'}")
    slowest = status.slowest()
    if slowest:
        lines.append("slowest completed units:")
        for record in slowest:
            cpu = f"{record.cpu_s:.2f}" if record.cpu_s is not None else "?"
            eps = (f"{record.events_per_s:,.0f}"
                   if record.events_per_s is not None else "?")
            lines.append(
                f"  {record.unit}: wall {record.wall_s:.2f}s, cpu {cpu}s, "
                f"{eps} events/s")
    if status.state.skipped_lines:
        lines.append(f"({status.state.skipped_lines} torn manifest "
                     f"line(s) skipped)")
    return "\n".join(lines)


def run_cli(args) -> int:
    """The ``repro status`` verb (wired from :mod:`repro.cli`)."""
    target = args.run_dir
    manifest_path = target
    if os.path.isdir(manifest_path):
        manifest_path = os.path.join(manifest_path, MANIFEST_NAME)
    if not os.path.exists(manifest_path):
        print(f"repro status: no manifest at {target}", file=sys.stderr)
        return 2
    watch = bool(getattr(args, "watch", False))
    interval = float(getattr(args, "interval", 2.0))
    as_json = bool(getattr(args, "status_json", False))
    while True:
        status = collect(target)
        if as_json:
            print(json.dumps(to_json(status), indent=2, sort_keys=True))
        else:
            if watch:
                # Clear the screen between refreshes; plain print keeps
                # non-watch output pipe-friendly.
                sys.stdout.write("\x1b[2J\x1b[H")
            print(render(status))
        if not watch or status.incomplete == 0:
            return 0
        time.sleep(max(0.1, interval))
