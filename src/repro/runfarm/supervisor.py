"""The run-farm supervisor: retries, quarantine, and manifest journaling.

This is the scheduling substrate ROADMAP item 2 calls for: a
manifest-driven layer over :class:`~repro.core.executor.ParallelExecutor`
and the content-addressed cache that makes every registry-declared run
**resumable, time-bounded, and fault-contained**:

* every work unit's key, status, attempt count, and artifact hash is
  journaled to a :class:`~repro.runfarm.manifest.RunManifest` (atomic
  JSONL appends), so a SIGKILLed driver loses nothing but in-flight
  units;
* each attempt runs under a per-unit wall-clock deadline enforced with
  SIGKILL by the executor's supervised path; the kill is surgical — one
  hung probe dies alone;
* failed attempts are retried under a harness-level
  :class:`~repro.faults.retry.RetryPolicy` (the same backoff math the
  simulated request paths use), with both attempt-count and
  total-elapsed bounds;
* units that keep failing are **quarantined** as poison pills after
  exhausting their attempts, and the batch completes with a
  :class:`QuarantinedUnitError` carrying the full typed failure list —
  the experiment registry's degradation policy then decides whether the
  artifact aborts or degrades to a partial-results verdict;
* on ``--resume``, previously completed units are served straight from
  the artifact store (verified present), so only incomplete units
  re-execute and the final output is byte-identical to an uninterrupted
  run (units are pure functions of their arguments).

:class:`SupervisedExecutor` plugs all of this into the existing
``map_cached``/``executor.map`` seam, so every experiment gains
supervision with zero per-experiment changes.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

import numpy as np

from ..core import instrument, trace
from ..core.executor import (
    ParallelExecutor,
    UnitFailure,
    UnitProfile,
    WorkUnit,
    unit_content_key,
)
from ..faults.retry import RetryPolicy
from . import manifest as mf
from .manifest import RunManifest

if TYPE_CHECKING:  # pragma: no cover
    from ..core.cache import ResultCache

logger = logging.getLogger("repro.runfarm")

# Harness-level retry defaults: short backoff (these are process-level
# requeues, not simulated RPCs), deterministic (no jitter), bounded both
# by attempts and by total elapsed time.
DEFAULT_RETRY = RetryPolicy(timeout_s=0.05, max_attempts=3,
                            backoff_factor=2.0, jitter_fraction=0.0,
                            max_elapsed_s=300.0)

_FAILURE_STATUS = {
    UnitFailure.TIMEOUT: mf.TIMEOUT,
    UnitFailure.WORKER_LOST: mf.WORKER_LOST,
    UnitFailure.ERROR: mf.FAILED,
}


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs for one supervised run (CLI flags map 1:1 onto these)."""

    unit_timeout_s: Optional[float] = None
    retry: RetryPolicy = DEFAULT_RETRY
    heartbeat_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ValueError("unit_timeout_s must be positive")


class QuarantinedUnitError(RuntimeError):
    """A batch finished but some units were quarantined as poison pills.

    Raised by the supervisor after the *whole batch* has been driven to
    completion — every healthy unit's result is computed and stored
    before this surfaces, so a resume (or a partial-results verdict)
    has maximal progress to build on.
    """

    def __init__(self, failures: Sequence[UnitFailure], total: int):
        self.failures = list(failures)
        self.total = total
        names = ", ".join(f.unit for f in self.failures[:5])
        more = "" if len(self.failures) <= 5 else (
            f" (+{len(self.failures) - 5} more)")
        super().__init__(
            f"{len(self.failures)}/{total} units quarantined after "
            f"exhausting attempts: {names}{more}"
        )

    def quarantined_units(self) -> List[str]:
        return [f.unit for f in self.failures]


@dataclass
class RunSupervisor:
    """Drives batches of work units to completion under fault policy."""

    manifest: RunManifest
    config: SupervisorConfig = field(default_factory=SupervisorConfig)
    prior_done: frozenset = frozenset()
    rng: np.random.Generator = field(
        default_factory=lambda: np.random.default_rng(0))
    # Totals across every batch of the run (CLI health footer).
    units_completed: int = 0
    units_resumed: int = 0
    units_retried: int = 0
    units_quarantined: int = 0
    # Per-unit wall/CPU/events profiles accumulated across batches
    # (journaled to the manifest and surfaced by the report's
    # slowest-units section and `repro status`).
    profiles: List[UnitProfile] = field(default_factory=list)

    def run_batch(
        self,
        executor: ParallelExecutor,
        units: Sequence[WorkUnit],
        keys: Sequence[Optional[str]],
        store: "ResultCache",
    ) -> List[object]:
        """Drive one batch to completion; returns results in unit order.

        Raises :class:`QuarantinedUnitError` (after finishing everything
        else) if any unit exhausted its attempts.
        """
        units = list(units)
        keys = list(keys)
        if len(units) != len(keys):
            raise ValueError("units and keys must have equal length")
        if not units:
            return []
        results: List[object] = [None] * len(units)
        manifest_keys = [
            key if key is not None else f"unkeyed:{unit.name}"
            for unit, key in zip(units, keys)
        ]

        pending: List[int] = []
        for index, (unit, key) in enumerate(zip(units, keys)):
            if key is not None:
                found, value = store.get(key)
                if found:
                    results[index] = value
                    self.units_completed += 1
                    if key in self.prior_done:
                        self.units_resumed += 1
                        instrument.increment(instrument.RUNFARM_RESUMED)
                    self.manifest.record_unit(
                        key, unit.name, mf.CACHED,
                        artifact=store.digest(key))
                    continue
            pending.append(index)

        policy = self.config.retry
        batch_started = time.monotonic()
        quarantined: List[UnitFailure] = []
        attempt = 1
        while pending:
            for index in pending:
                self.manifest.record_unit(manifest_keys[index],
                                          units[index].name, mf.RUNNING,
                                          attempt=attempt)
            outcomes = executor.map_supervised(
                [units[i] for i in pending],
                unit_timeout_s=self.config.unit_timeout_s,
                heartbeat_dir=self.config.heartbeat_dir,
                attempts=[attempt] * len(pending),
            )
            elapsed = time.monotonic() - batch_started
            retry: List[int] = []
            for index, outcome in zip(pending, outcomes):
                if not isinstance(outcome, UnitFailure):
                    digest = None
                    if keys[index] is not None:
                        digest = store.put(keys[index], outcome)
                    profile = executor.last_profiles.get(units[index].name)
                    if profile is not None:
                        self.profiles.append(profile)
                    self.manifest.record_unit(
                        manifest_keys[index], units[index].name, mf.DONE,
                        attempt=attempt, artifact=digest,
                        wall_s=profile.wall_s if profile else None,
                        cpu_s=profile.cpu_s if profile else None,
                        events_per_s=(profile.events_per_s
                                      if profile else None))
                    results[index] = outcome
                    self.units_completed += 1
                    continue
                failure = outcome
                self.manifest.record_unit(
                    manifest_keys[index], units[index].name,
                    _FAILURE_STATUS.get(failure.kind, mf.FAILED),
                    attempt=attempt, elapsed_s=failure.elapsed_s,
                    error=failure.describe())
                exhausted = attempt >= policy.max_attempts
                over_deadline = not policy.within_deadline(elapsed)
                if exhausted or over_deadline:
                    reason = ("attempts exhausted" if exhausted
                              else "retry deadline exceeded")
                    self.manifest.record_unit(
                        manifest_keys[index], units[index].name,
                        mf.QUARANTINED, attempt=attempt,
                        error=f"{reason}: {failure.describe()}")
                    quarantined.append(failure)
                    self.units_quarantined += 1
                    instrument.increment(instrument.RUNFARM_QUARANTINED)
                    logger.error("quarantining poison-pill unit %s (%s)",
                                 failure.unit, reason)
                    if trace.TRACING:
                        trace.instant("runfarm.quarantine", trace.RUNFARM,
                                      unit=failure.unit, attempt=attempt,
                                      kind=failure.kind)
                else:
                    retry.append(index)
                    if trace.TRACING:
                        trace.instant("runfarm.requeue", trace.RUNFARM,
                                      unit=failure.unit, attempt=attempt,
                                      kind=failure.kind)
            if retry:
                self.units_retried += len(retry)
                instrument.increment(instrument.RUNFARM_RETRIES, len(retry))
                backoff = policy.backoff_s(attempt - 1, self.rng)
                if policy.max_elapsed_s is not None:
                    budget = policy.max_elapsed_s - (time.monotonic()
                                                     - batch_started)
                    backoff = max(0.0, min(backoff, budget))
                logger.warning(
                    "requeueing %d failed unit(s) (attempt %d -> %d) "
                    "after %.2fs backoff", len(retry), attempt,
                    attempt + 1, backoff)
                if backoff > 0:
                    time.sleep(backoff)
            pending = retry
            attempt += 1
        if quarantined:
            raise QuarantinedUnitError(quarantined, total=len(units))
        return results


class SupervisedExecutor(ParallelExecutor):
    """A drop-in :class:`ParallelExecutor` with run-farm supervision.

    Installed by the CLI when any runfarm flag (``--run-dir``,
    ``--resume``, ``--unit-timeout``, ``--max-unit-attempts``) is
    active.  Both execution seams route through the supervisor:

    * :meth:`map_keyed` (every ``map_cached`` call site) uses the
      experiments' own content-addressed keys;
    * :meth:`map` (table4, microburst, auxiliary sweeps) derives keys
      from each unit's pickle bytes, so even those batches journal to
      the manifest and skip-on-resume.

    Unpicklable units (closures) get no key: they run under supervision
    but always re-execute — correctness is unaffected since they are
    pure.
    """

    def __init__(self, jobs: int = 1, *, manifest: RunManifest,
                 config: Optional[SupervisorConfig] = None,
                 store: Optional["ResultCache"] = None,
                 prior_done: frozenset = frozenset(),
                 rng: Optional[np.random.Generator] = None,
                 serial_bypass: bool = True):
        super().__init__(jobs, serial_bypass=serial_bypass)
        self.supervisor = RunSupervisor(
            manifest=manifest,
            config=config or SupervisorConfig(),
            prior_done=prior_done,
            rng=rng if rng is not None else np.random.default_rng(0),
        )
        self._store = store

    def _resolve_store(self, store: Optional["ResultCache"]
                       ) -> "ResultCache":
        if store is not None:
            return store
        if self._store is not None:
            return self._store
        from ..core.cache import get_cache

        return get_cache()

    def map_keyed(
        self,
        units: Sequence[WorkUnit],
        keys: Sequence[str],
        store: Optional["ResultCache"] = None,
    ) -> List[object]:
        return self.supervisor.run_batch(self, units, keys,
                                         self._resolve_store(store))

    def map(self, units: Sequence[WorkUnit]) -> List[object]:
        units = list(units)
        keys = [unit_content_key(unit) for unit in units]
        return self.supervisor.run_batch(self, units, keys,
                                         self._resolve_store(None))

    @property
    def unit_profiles(self) -> List[UnitProfile]:
        """Every completed unit's wall/CPU/events profile, in completion
        order (the report's slowest-units section reads this)."""
        return self.supervisor.profiles

    def summary(self) -> str:
        sup = self.supervisor
        return (f"runfarm {sup.units_completed} units"
                f" | {sup.units_resumed} resumed"
                f" | {sup.units_retried} retried"
                f" | {sup.units_quarantined} quarantined")


def load_prior_done(manifest_path: str) -> frozenset:
    """Keys a previous generation completed (for resume accounting)."""
    import os

    if not os.path.exists(manifest_path):
        return frozenset()
    try:
        return RunManifest.load(manifest_path).done_keys()
    except OSError:
        return frozenset()
