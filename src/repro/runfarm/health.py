"""Worker heartbeats: telling a hung worker from a merely slow one.

A wall-clock deadline alone cannot distinguish "this unit is genuinely
expensive" from "this worker is wedged" — both look like elapsed time.
Heartbeats add the missing signal: every supervised worker runs a tiny
daemon thread that rewrites its own heartbeat file (atomic rename) every
``interval_s`` seconds.  The parent-side :class:`HealthMonitor` scans
the directory and classifies:

* **healthy** — beats arriving on schedule;
* **slow** — beating fine but the unit has far outlived the batch's
  per-unit runtime estimate (the executor logs it, counts it, and lets
  it run to its deadline);
* **hung** — beats stale for several intervals: the process is dead,
  SIGSTOPped, or wedged below the GIL.  The deadline's SIGKILL is
  coming; the monitor makes the distinction visible in counters and
  logs first.

Heartbeat files are process-local (named by pid), written atomically,
and deleted on clean worker exit, so a scan only ever sees live workers
plus the corpses of killed ones (stale files whose pid is gone are
swept).  Each beat also records the writing process's start time (the
Linux ``/proc`` ``starttime`` field), so a beat file whose pid has been
recycled by an unrelated process is recognized as a corpse too instead
of masquerading as a healthy worker.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

DEFAULT_INTERVAL_S = 0.25
# Beats older than this many intervals mean the worker can no longer
# schedule a Python thread: call it hung, not slow.
STALE_INTERVALS = 4.0


@dataclass
class WorkerBeat:
    """One worker's latest heartbeat, as seen by the parent."""

    pid: int
    unit: str
    seq: int
    age_s: float
    interval_s: float
    alive: bool

    @property
    def stale(self) -> bool:
        return self.age_s > STALE_INTERVALS * self.interval_s


def _beat_path(heartbeat_dir: str, pid: int) -> str:
    return os.path.join(heartbeat_dir, f"{pid}.json")


def _proc_start_id(pid: int) -> Optional[str]:
    """The process's start time in clock ticks (Linux ``/proc``).

    Together with the pid this identifies one process *incarnation*: a
    recycled pid gets a different start time, so a beat file stamped
    with the original worker's start id can be told apart from an
    unrelated process that happens to wear the same pid.  Returns
    ``None`` where ``/proc`` is unavailable (non-Linux), in which case
    the monitor falls back to pid-liveness alone.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        # Field 22 (starttime).  The comm field (2) may contain spaces
        # and parentheses, so split after the LAST ')': the remainder
        # starts at field 3.
        rest = data.rsplit(b")", 1)[1].split()
        return rest[19].decode("ascii")
    except (OSError, IndexError, UnicodeDecodeError):
        return None


def write_beat(heartbeat_dir: str, unit: str, seq: int,
               interval_s: float = DEFAULT_INTERVAL_S,
               pid: Optional[int] = None) -> None:
    """Atomically publish one heartbeat (rename over the previous)."""
    pid = pid if pid is not None else os.getpid()
    os.makedirs(heartbeat_dir, exist_ok=True)
    payload = {
        "pid": pid,
        "unit": unit,
        "seq": seq,
        "interval_s": interval_s,
        "ts_unix": time.time(),
        "proc_start": _proc_start_id(pid),
    }
    fd, tmp = tempfile.mkstemp(dir=heartbeat_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, _beat_path(heartbeat_dir, pid))
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def clear_beat(heartbeat_dir: str, pid: Optional[int] = None) -> None:
    """Remove this worker's heartbeat file (clean exit)."""
    pid = pid if pid is not None else os.getpid()
    try:
        os.unlink(_beat_path(heartbeat_dir, pid))
    except OSError:
        pass


def start_heartbeat(heartbeat_dir: str, unit: str,
                    interval_s: float = DEFAULT_INTERVAL_S
                    ) -> Callable[[], None]:
    """Begin beating from a daemon thread; returns a stop function.

    The first beat is written synchronously (so the parent can see the
    unit name immediately), then a daemon thread re-beats every
    ``interval_s``.  The returned stopper ends the thread and removes
    the heartbeat file — a SIGKILLed worker never reaches it, leaving a
    stale file behind, which is exactly the hung signal.
    """
    write_beat(heartbeat_dir, unit, seq=0, interval_s=interval_s)
    stop_event = threading.Event()

    def _beat_loop() -> None:
        seq = 1
        while not stop_event.wait(interval_s):
            write_beat(heartbeat_dir, unit, seq=seq, interval_s=interval_s)
            seq += 1

    thread = threading.Thread(target=_beat_loop, name="runfarm-heartbeat",
                              daemon=True)
    thread.start()

    def _stop() -> None:
        stop_event.set()
        thread.join(timeout=2 * interval_s)
        clear_beat(heartbeat_dir)

    return _stop


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover — exists, not ours
        return True
    return True


class HealthMonitor:
    """Parent-side scanner over a heartbeat directory."""

    def __init__(self, heartbeat_dir: str):
        self.heartbeat_dir = heartbeat_dir
        self.total_beats = 0
        self._last_seq: Dict[int, int] = {}

    def scan(self, now: Optional[float] = None) -> Dict[str, WorkerBeat]:
        """Read every heartbeat file; returns beats keyed by unit name.

        Also folds newly observed beats into ``total_beats`` (and the
        ``runfarm.heartbeats`` counter) and sweeps files whose pid no
        longer exists — dead workers' corpses must not masquerade as
        hung workers forever.
        """
        from ..core import instrument

        now = now if now is not None else time.time()
        beats: Dict[str, WorkerBeat] = {}
        if not os.path.isdir(self.heartbeat_dir):
            return beats
        for name in sorted(os.listdir(self.heartbeat_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.heartbeat_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # mid-rename or torn file: next scan sees it
            pid = int(payload.get("pid", 0))
            seq = int(payload.get("seq", 0))
            alive = _pid_alive(pid)
            if alive:
                # Pid-reuse hazard: the pid may be alive but belong to a
                # different process incarnation than the one that wrote
                # the beat.  Compare recorded vs current start time and
                # treat a mismatch as a corpse wearing a recycled pid.
                recorded_start = payload.get("proc_start")
                if recorded_start is not None:
                    current_start = _proc_start_id(pid)
                    if (current_start is not None
                            and current_start != recorded_start):
                        alive = False
            if not alive:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            new_beats = seq - self._last_seq.get(pid, -1)
            if new_beats > 0:
                self.total_beats += new_beats
                instrument.increment(instrument.RUNFARM_HEARTBEATS,
                                     new_beats)
            self._last_seq[pid] = seq
            beats[str(payload.get("unit", ""))] = WorkerBeat(
                pid=pid,
                unit=str(payload.get("unit", "")),
                seq=seq,
                age_s=max(0.0, now - float(payload.get("ts_unix", now))),
                interval_s=float(payload.get("interval_s",
                                             DEFAULT_INTERVAL_S)),
                alive=alive,
            )
        return beats

    def summary(self) -> str:
        return f"{self.total_beats} heartbeats"
