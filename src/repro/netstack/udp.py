"""UDP endpoints over the link model.

Connectionless datagram sockets: no delivery guarantee (the link may
drop), per-socket bounded receive queues (overflow drops, as the kernel
does when an application falls behind), and a simple request/reply echo
server used by the UDP microbenchmark (§3.3).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from ..core import trace
from ..core.engine import Event, Simulator
from .link import Link
from .packet import PROTO_UDP, Packet


class UdpEndpoint:
    """One host's UDP layer: sockets keyed by local port."""

    def __init__(self, sim: Simulator, address: int, egress: Link,
                 receive_queue_packets: int = 1024):
        self.sim = sim
        self.address = address
        self.egress = egress
        self.receive_queue_packets = receive_queue_packets
        self._sockets: Dict[int, "UdpSocket"] = {}
        self.dropped_no_socket = 0
        self._packet_ids = itertools.count(1)

    def bind(self, port: int) -> "UdpSocket":
        if port in self._sockets:
            raise OSError(f"port {port} already bound")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def close(self, port: int) -> None:
        self._sockets.pop(port, None)

    def deliver(self, packet: Packet) -> None:
        """Called by the ingress link."""
        socket = self._sockets.get(packet.dst_port)
        if socket is None:
            self.dropped_no_socket += 1
            return
        socket._enqueue(packet)

    def send(self, packet: Packet) -> None:
        packet.created_at = self.sim.now
        if packet.packet_id == 0:
            packet.packet_id = next(self._packet_ids)
        self.egress.send(packet)


class UdpSocket:
    """A bound datagram socket with a bounded receive queue."""

    def __init__(self, endpoint: UdpEndpoint, port: int):
        self.endpoint = endpoint
        self.port = port
        self._queue: Deque[Packet] = deque()
        self._waiters: Deque[Event] = deque()
        self.overflow_drops = 0

    def sendto(self, payload: bytes, dst_ip: int, dst_port: int) -> None:
        packet = Packet(
            proto=PROTO_UDP,
            src_ip=self.endpoint.address,
            src_port=self.port,
            dst_ip=dst_ip,
            dst_port=dst_port,
            payload=payload,
        )
        self.endpoint.send(packet)

    def _enqueue(self, packet: Packet) -> None:
        if self._waiters:
            self._waiters.popleft().trigger(packet)
            return
        if len(self._queue) >= self.endpoint.receive_queue_packets:
            self.overflow_drops += 1
            if trace.TRACING:
                trace.instant("udp.overflow", trace.NETSTACK,
                              ts=self.endpoint.sim.now,
                              track=trace.subtrack("udp"),
                              port=self.port, queued=len(self._queue))
            return
        self._queue.append(packet)

    def recv(self) -> Event:
        """Event firing with the next datagram."""
        event = Event(self.endpoint.sim)
        if self._queue:
            event.trigger(self._queue.popleft())
        else:
            self._waiters.append(event)
        return event

    @property
    def queued(self) -> int:
        return len(self._queue)


def run_echo_server(
    sim: Simulator,
    socket: UdpSocket,
    transform: Optional[Callable[[bytes], bytes]] = None,
    count: Optional[int] = None,
):
    """A server process answering each datagram (optionally transformed)."""

    def server():
        handled = 0
        while count is None or handled < count:
            packet = yield socket.recv()
            payload = transform(packet.payload) if transform else packet.payload
            reply = packet.reply_template(payload)
            socket.endpoint.send(reply)
            handled += 1
        return handled

    return sim.process(server(), name=f"udp-echo:{socket.port}")
