"""RDMA verbs over simulated NICs.

Models the property that makes RDMA functions SNIC-friendly (§4, Key
Observation 1): the transport runs *in NIC hardware*, so one-sided READ /
WRITE complete against the remote memory region with no remote-CPU
involvement, and two-sided SEND/RECV only deliver completions.  Queue
pairs use the reliable-connection (RC) transport the paper selects.

The latency model separates the wire from the *local bus*: a host-CPU
initiator reaches its NIC across PCIe (two crossings per operation),
while the SNIC CPU sits next to the NIC — this path difference is why the
paper measures up to 1.4x message rate and ~15-24 % lower p99 from the
SNIC side.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Deque, Dict, Optional, Tuple

from ..core.engine import Event, Simulator
from ..core.units import gbps_to_bytes_per_second


class RdmaError(RuntimeError):
    pass


class OpCode(Enum):
    SEND = "send"
    RECV = "recv"
    READ = "read"
    WRITE = "write"


@dataclass
class MemoryRegion:
    """A registered buffer addressable by remote one-sided operations."""

    key: int
    buffer: bytearray

    def read(self, offset: int, length: int) -> bytes:
        if offset < 0 or offset + length > len(self.buffer):
            raise RdmaError("remote read out of bounds")
        return bytes(self.buffer[offset : offset + length])

    def write(self, offset: int, data: bytes) -> None:
        if offset < 0 or offset + len(data) > len(self.buffer):
            raise RdmaError("remote write out of bounds")
        self.buffer[offset : offset + len(data)] = data


@dataclass
class Completion:
    opcode: OpCode
    ok: bool
    data: bytes = b""
    wr_id: int = 0


class RdmaNic:
    """The NIC-resident RDMA engine of one node."""

    def __init__(self, sim: Simulator, node_id: int, gbps: float = 100.0,
                 local_bus_latency_s: float = 900e-9,
                 nic_processing_s: float = 250e-9):
        self.sim = sim
        self.node_id = node_id
        self.bytes_per_second = gbps_to_bytes_per_second(gbps)
        self.local_bus_latency_s = local_bus_latency_s
        self.nic_processing_s = nic_processing_s
        self.regions: Dict[int, MemoryRegion] = {}
        self._next_key = 1
        self.operations = 0

    def register_memory(self, size_or_buffer) -> MemoryRegion:
        buffer = (
            bytearray(size_or_buffer)
            if isinstance(size_or_buffer, int)
            else bytearray(size_or_buffer)
        )
        region = MemoryRegion(self._next_key, buffer)
        self.regions[region.key] = region
        self._next_key += 1
        return region


class QueuePair:
    """An RC queue pair between two NICs."""

    def __init__(self, sim: Simulator, local: RdmaNic, remote: RdmaNic,
                 wire_latency_s: float = 600e-9):
        self.sim = sim
        self.local = local
        self.remote = remote
        self.wire_latency_s = wire_latency_s
        self.completion_queue: Deque[Completion] = deque()
        self._cq_waiters: Deque[Event] = deque()
        self._recv_queue: Deque[Tuple[int, int]] = deque()  # (wr_id, max_len)
        self.peer: Optional["QueuePair"] = None

    def connect(self, peer: "QueuePair") -> None:
        self.peer = peer
        peer.peer = self

    # -- verbs ---------------------------------------------------------------

    def post_recv(self, wr_id: int, max_len: int = 4096) -> None:
        self._recv_queue.append((wr_id, max_len))

    def post_send(self, data: bytes, wr_id: int = 0) -> Event:
        """Two-sided SEND; completes locally when the remote consumed it."""
        self._require_peer()
        delay = self._operation_latency(len(data))
        done = self.sim.timeout(delay)
        completion_event = Event(self.sim)

        def _on_arrival(_event) -> None:
            peer = self.peer
            ok = bool(peer._recv_queue)
            if ok:
                recv_wr, max_len = peer._recv_queue.popleft()
                ok = len(data) <= max_len
                peer._complete(Completion(OpCode.RECV, ok, data, recv_wr))
            self._complete(Completion(OpCode.SEND, ok, b"", wr_id))
            completion_event.trigger(ok)

        done.add_callback(_on_arrival)
        self.local.operations += 1
        return completion_event

    def read(self, remote_key: int, offset: int, length: int, wr_id: int = 0) -> Event:
        """One-sided READ from the remote region; no remote CPU involved."""
        self._require_peer()
        delay = self._operation_latency(length, round_trip=True)
        done = self.sim.timeout(delay)
        completion_event = Event(self.sim)

        def _on_done(_event) -> None:
            try:
                region = self._remote_region(remote_key)
                data = region.read(offset, length)
                completion = Completion(OpCode.READ, True, data, wr_id)
            except RdmaError:
                completion = Completion(OpCode.READ, False, b"", wr_id)
            self._complete(completion)
            completion_event.trigger(completion)

        done.add_callback(_on_done)
        self.local.operations += 1
        return completion_event

    def write(self, remote_key: int, offset: int, data: bytes, wr_id: int = 0) -> Event:
        """One-sided WRITE into the remote region."""
        self._require_peer()
        delay = self._operation_latency(len(data))
        done = self.sim.timeout(delay)
        completion_event = Event(self.sim)

        def _on_done(_event) -> None:
            try:
                region = self._remote_region(remote_key)
                region.write(offset, data)
                completion = Completion(OpCode.WRITE, True, b"", wr_id)
            except RdmaError:
                completion = Completion(OpCode.WRITE, False, b"", wr_id)
            self._complete(completion)
            completion_event.trigger(completion)

        done.add_callback(_on_done)
        self.local.operations += 1
        return completion_event

    def poll_cq(self) -> Event:
        """Event firing with the next completion."""
        event = Event(self.sim)
        if self.completion_queue:
            event.trigger(self.completion_queue.popleft())
        else:
            self._cq_waiters.append(event)
        return event

    # -- internals -----------------------------------------------------------

    def _require_peer(self) -> None:
        if self.peer is None:
            raise RdmaError("queue pair not connected")

    def _remote_region(self, key: int) -> MemoryRegion:
        region = self.remote.regions.get(key)
        if region is None:
            raise RdmaError(f"unknown remote key {key}")
        return region

    def _operation_latency(self, nbytes: int, round_trip: bool = False) -> float:
        transfer = nbytes / self.local.bytes_per_second
        one_way = (
            self.local.local_bus_latency_s
            + self.local.nic_processing_s
            + self.wire_latency_s
            + self.remote.nic_processing_s
        )
        wire_crossings = 2 if round_trip else 1
        return one_way * wire_crossings + transfer

    def _complete(self, completion: Completion) -> None:
        if self._cq_waiters:
            self._cq_waiters.popleft().trigger(completion)
        else:
            self.completion_queue.append(completion)
