"""Networking stacks: packets, links, UDP, TCP, DPDK, RDMA."""

from .link import DuplexChannel, GilbertElliottLoss, Link
from .packet import Flow, Packet, format_ip, ip
from .udp import UdpEndpoint, UdpSocket, run_echo_server
from .tcp import TcpConnection, TcpEndpoint, TcpListener, TcpState
from .dpdk import PollModePort, RxRing, run_poll_loop
from .rdma import Completion, MemoryRegion, OpCode, QueuePair, RdmaError, RdmaNic

__all__ = [
    "DuplexChannel",
    "GilbertElliottLoss",
    "Link",
    "Flow",
    "Packet",
    "format_ip",
    "ip",
    "UdpEndpoint",
    "UdpSocket",
    "run_echo_server",
    "TcpConnection",
    "TcpEndpoint",
    "TcpListener",
    "TcpState",
    "PollModePort",
    "RxRing",
    "run_poll_loop",
    "Completion",
    "MemoryRegion",
    "OpCode",
    "QueuePair",
    "RdmaError",
    "RdmaNic",
]
