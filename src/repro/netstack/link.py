"""A point-to-point network link on the event kernel.

Models the 100 Gbps cable between the client and server (Fig. 3):
serialization delay from packet size and link rate, fixed propagation
delay, and optional random loss.  Both stack models and integration tests
move packets through :class:`Link` objects.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core.engine import Simulator
from ..core.units import gbps_to_bytes_per_second
from .packet import Packet

Receiver = Callable[[Packet], None]


class Link:
    """Unidirectional link delivering packets to a receiver callback."""

    def __init__(
        self,
        sim: Simulator,
        gbps: float = 100.0,
        propagation_s: float = 500e-9,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        jitter_s: float = 0.0,
    ):
        """``jitter_s`` adds uniform random extra delay per packet, which
        can reorder deliveries (multi-path / switch-buffer effects)."""
        if gbps <= 0:
            raise ValueError("link rate must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        if jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if (loss_probability or jitter_s) and rng is None:
            raise ValueError("loss/jitter require an rng")
        self.sim = sim
        self.bytes_per_second = gbps_to_bytes_per_second(gbps)
        self.propagation_s = propagation_s
        self.loss_probability = loss_probability
        self.jitter_s = jitter_s
        self.rng = rng
        self.receiver: Optional[Receiver] = None
        self.delivered = 0
        self.lost = 0
        self._busy_until = 0.0

    def attach(self, receiver: Receiver) -> None:
        self.receiver = receiver

    def send(self, packet: Packet) -> None:
        """Queue a packet for transmission (FIFO serialization)."""
        if self.receiver is None:
            raise RuntimeError("link has no receiver attached")
        if self.loss_probability and self.rng is not None:
            if self.rng.random() < self.loss_probability:
                self.lost += 1
                return
        serialization = packet.wire_bytes / self.bytes_per_second
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + serialization
        arrival_delay = (start - self.sim.now) + serialization + self.propagation_s
        if self.jitter_s and self.rng is not None:
            arrival_delay += float(self.rng.uniform(0.0, self.jitter_s))
        event = self.sim.timeout(arrival_delay, packet)

        def _deliver(fired) -> None:
            self.delivered += 1
            self.receiver(fired.value)

        event.add_callback(_deliver)


class DuplexChannel:
    """A pair of links between two endpoints."""

    def __init__(self, sim: Simulator, gbps: float = 100.0,
                 propagation_s: float = 500e-9,
                 loss_probability: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 jitter_s: float = 0.0):
        self.forward = Link(sim, gbps, propagation_s, loss_probability, rng,
                            jitter_s)
        self.backward = Link(sim, gbps, propagation_s, loss_probability, rng,
                             jitter_s)
