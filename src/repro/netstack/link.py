"""A point-to-point network link on the event kernel.

Models the 100 Gbps cable between the client and server (Fig. 3):
serialization delay from packet size and link rate, fixed propagation
delay, and optional random loss.  Both stack models and integration tests
move packets through :class:`Link` objects.

Loss comes in three flavours:

* i.i.d. Bernoulli (``loss_probability``) — the classic random-drop cable;
* bursty correlated loss (:class:`GilbertElliottLoss`) — a two-state
  Markov chain where drops cluster into episodes, as congestion loss does
  in real fabrics;
* link flaps — the link goes administratively down for a window and every
  packet sent meanwhile is lost.  Flaps are driven either directly via
  :meth:`Link.set_down` or by attaching the link to a
  :class:`~repro.faults.injector.FaultInjector` (the link implements the
  fault-target protocol for ``link-flap`` / ``outage`` faults).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..core import trace
from ..core.engine import Simulator
from ..core.units import gbps_to_bytes_per_second
from .packet import Packet

Receiver = Callable[[Packet], None]

# Mark-on-enqueue seam: called with (packet, queue_depth_bytes) before a
# packet joins the serialization queue.  Return False to drop the packet
# (tail drop / RED drop); mutate ``packet.ce`` to ECN-mark it.  Fabric
# ports install their RED policy here instead of monkeypatching link
# internals, and tests can install trivial markers in isolation.
EnqueueHook = Callable[[Packet, float], bool]


class GilbertElliottLoss:
    """Two-state (good/bad) Markov loss model: drops arrive in bursts.

    Each packet first advances the chain, then draws a loss from the
    current state's loss probability.  With ``loss_bad`` near 1 and a small
    ``p_bad_to_good``, losses cluster into multi-packet episodes whose mean
    length is ``1 / p_bad_to_good`` — i.i.d. Bernoulli cannot express that.
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_bad: float = 1.0,
        loss_good: float = 0.0,
    ):
        for name, p in (("p_good_to_bad", p_good_to_bad),
                        ("p_bad_to_good", p_bad_to_good),
                        ("loss_bad", loss_bad), ("loss_good", loss_good)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self.loss_bad = loss_bad
        self.loss_good = loss_good
        self.bad = False

    @property
    def steady_state_loss(self) -> float:
        """Long-run loss fraction of the chain."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            return self.loss_bad if self.bad else self.loss_good
        bad_fraction = self.p_good_to_bad / denom
        return bad_fraction * self.loss_bad + (1 - bad_fraction) * self.loss_good

    def lost(self, rng: np.random.Generator) -> bool:
        if self.bad:
            if rng.random() < self.p_bad_to_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_to_bad:
                self.bad = True
        p = self.loss_bad if self.bad else self.loss_good
        return bool(p) and rng.random() < p


class Link:
    """Unidirectional link delivering packets to a receiver callback."""

    def __init__(
        self,
        sim: Simulator,
        gbps: float = 100.0,
        propagation_s: float = 500e-9,
        loss_probability: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        jitter_s: float = 0.0,
        loss_model: Optional[GilbertElliottLoss] = None,
    ):
        """``jitter_s`` adds uniform random extra delay per packet, which
        can reorder deliveries (multi-path / switch-buffer effects)."""
        if gbps <= 0:
            raise ValueError("link rate must be positive")
        # Closed interval: p = 1.0 is a fully dead link, which fault
        # scenarios legitimately express.
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError("loss probability must be in [0, 1]")
        if jitter_s < 0:
            raise ValueError("jitter must be non-negative")
        if (loss_probability or jitter_s or loss_model is not None) and rng is None:
            raise ValueError("loss/jitter require an rng")
        self.sim = sim
        self.bytes_per_second = gbps_to_bytes_per_second(gbps)
        self.propagation_s = propagation_s
        self.loss_probability = loss_probability
        self.jitter_s = jitter_s
        self.loss_model = loss_model
        self.rng = rng
        self.receiver: Optional[Receiver] = None
        self.on_enqueue: Optional[EnqueueHook] = None
        self.delivered = 0
        self.lost = 0
        self.flap_lost = 0  # subset of ``lost`` dropped while the link was down
        self.queue_lost = 0  # subset of ``lost`` rejected by the enqueue hook
        self.down = False
        self._busy_until = 0.0

    def queue_depth_bytes(self) -> float:
        """Bytes accepted but not yet serialized onto the wire.

        The link serializes FIFO from ``_busy_until``; the backlog in
        seconds times the line rate is the instantaneous queue depth an
        AQM policy sees at enqueue time.
        """
        return max(0.0, self._busy_until - self.sim.now) * self.bytes_per_second

    def set_down(self, down: bool) -> None:
        """Administratively flap the link; packets sent while down are lost."""
        self.down = down

    # -- fault-target protocol (repro.faults.injector) -----------------------

    def fault_begin(self, fault) -> None:
        if fault.spec.kind in ("link-flap", "outage"):
            self.set_down(True)

    def fault_end(self, fault) -> None:
        if fault.spec.kind in ("link-flap", "outage"):
            self.set_down(False)

    # ------------------------------------------------------------------------

    def attach(self, receiver: Receiver) -> None:
        self.receiver = receiver

    def send(self, packet: Packet) -> None:
        """Queue a packet for transmission (FIFO serialization)."""
        if self.receiver is None:
            raise RuntimeError("link has no receiver attached")
        if self.down:
            self.lost += 1
            self.flap_lost += 1
            if trace.TRACING:
                trace.instant("link.drop", trace.NETSTACK, ts=self.sim.now,
                              track=trace.subtrack("link"), reason="flap")
            return
        if self.loss_model is not None and self.rng is not None:
            if self.loss_model.lost(self.rng):
                self.lost += 1
                if trace.TRACING:
                    trace.instant("link.drop", trace.NETSTACK, ts=self.sim.now,
                                  track=trace.subtrack("link"), reason="burst")
                return
        if self.loss_probability and self.rng is not None:
            if self.rng.random() < self.loss_probability:
                self.lost += 1
                if trace.TRACING:
                    trace.instant("link.drop", trace.NETSTACK, ts=self.sim.now,
                                  track=trace.subtrack("link"), reason="loss")
                return
        if self.on_enqueue is not None:
            if not self.on_enqueue(packet, self.queue_depth_bytes()):
                self.lost += 1
                self.queue_lost += 1
                if trace.TRACING:
                    trace.instant("link.drop", trace.NETSTACK, ts=self.sim.now,
                                  track=trace.subtrack("link"), reason="queue")
                return
        serialization = packet.wire_bytes / self.bytes_per_second
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + serialization
        arrival_delay = (start - self.sim.now) + serialization + self.propagation_s
        if self.jitter_s and self.rng is not None:
            arrival_delay += float(self.rng.uniform(0.0, self.jitter_s))
        if trace.TRACING:
            trace.complete("link.tx", trace.NETSTACK, ts=start,
                           dur=serialization, track=trace.subtrack("link"),
                           wire_bytes=packet.wire_bytes)
        event = self.sim.timeout(arrival_delay, packet)

        def _deliver(fired) -> None:
            self.delivered += 1
            self.receiver(fired.value)

        event.add_callback(_deliver)


class DuplexChannel:
    """A pair of links between two endpoints."""

    def __init__(self, sim: Simulator, gbps: float = 100.0,
                 propagation_s: float = 500e-9,
                 loss_probability: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 jitter_s: float = 0.0):
        self.forward = Link(sim, gbps, propagation_s, loss_probability, rng,
                            jitter_s)
        self.backward = Link(sim, gbps, propagation_s, loss_probability, rng,
                             jitter_s)
