"""Packet and flow primitives shared by the stack models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

FiveTuple = Tuple[int, int, int, int, int]  # proto, src_ip, src_port, dst_ip, dst_port

PROTO_TCP = 6
PROTO_UDP = 17

ETHERNET_HEADER = 14
IPV4_HEADER = 20
UDP_HEADER = 8
TCP_HEADER = 20


@dataclass
class Packet:
    """A network packet: addressing, payload, and simulation bookkeeping."""

    proto: int
    src_ip: int
    src_port: int
    dst_ip: int
    dst_port: int
    payload: bytes = b""
    # TCP-specific fields (ignored by UDP paths)
    seq: int = 0
    ack: int = 0
    flags: frozenset = frozenset()
    # ECN codepoint (RFC 3168): ``ecn_capable`` is ECT on the wire, ``ce``
    # is the Congestion Experienced mark a queue may set in transit.
    ecn_capable: bool = False
    ce: bool = False
    # simulation bookkeeping
    created_at: float = 0.0
    packet_id: int = 0

    @property
    def five_tuple(self) -> FiveTuple:
        return (self.proto, self.src_ip, self.src_port, self.dst_ip, self.dst_port)

    @property
    def header_bytes(self) -> int:
        transport = TCP_HEADER if self.proto == PROTO_TCP else UDP_HEADER
        return ETHERNET_HEADER + IPV4_HEADER + transport

    @property
    def wire_bytes(self) -> int:
        return max(self.header_bytes + len(self.payload), 64)

    def reply_template(self, payload: bytes = b"") -> "Packet":
        """A packet heading back to this packet's sender."""
        return Packet(
            proto=self.proto,
            src_ip=self.dst_ip,
            src_port=self.dst_port,
            dst_ip=self.src_ip,
            dst_port=self.src_port,
            payload=payload,
        )


def ip(a: int, b: int, c: int, d: int) -> int:
    """Dotted-quad to integer address."""
    for octet in (a, b, c, d):
        if not 0 <= octet <= 255:
            raise ValueError("bad IPv4 octet")
    return (a << 24) | (b << 16) | (c << 8) | d


def format_ip(address: int) -> str:
    return ".".join(str((address >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass
class Flow:
    """A unidirectional packet flow description used by generators."""

    five_tuple: FiveTuple
    packet_bytes: int
    rate_pps: float
    start: float = 0.0
    duration: Optional[float] = None
    label: str = ""
    _sent: int = field(default=0, repr=False)
