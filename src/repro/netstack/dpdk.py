"""DPDK-style poll-mode packet I/O.

Kernel-bypass semantics: the NIC places packets into RX descriptor rings;
an application thread polls ``rx_burst``/``tx_burst`` with no interrupts
and no copies.  Ring overflow tail-drops, exactly like a real PMD when
software falls behind the wire.  The ping-pong microbenchmark (§3.3) and
the REM/compression/OvS staging paths (§3.4) run on this model.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..core.engine import Simulator
from .link import Link
from .packet import Packet

DEFAULT_RING_SIZE = 1024
DEFAULT_BURST = 32


class RxRing:
    """A fixed-size RX descriptor ring with tail-drop."""

    def __init__(self, size: int = DEFAULT_RING_SIZE):
        if size < 1:
            raise ValueError("ring size must be >= 1")
        self.size = size
        self._ring: Deque[Packet] = deque()
        self.tail_drops = 0

    def offer(self, packet: Packet) -> bool:
        if len(self._ring) >= self.size:
            self.tail_drops += 1
            return False
        self._ring.append(packet)
        return True

    def poll(self, max_packets: int) -> List[Packet]:
        burst: List[Packet] = []
        while self._ring and len(burst) < max_packets:
            burst.append(self._ring.popleft())
        return burst

    def __len__(self) -> int:
        return len(self._ring)


class PollModePort:
    """One DPDK port: an RX ring fed by the link, TX straight to the wire."""

    def __init__(self, sim: Simulator, egress: Link,
                 ring_size: int = DEFAULT_RING_SIZE):
        self.sim = sim
        self.egress = egress
        self.rx = RxRing(ring_size)
        self.rx_packets = 0
        self.tx_packets = 0

    def deliver(self, packet: Packet) -> None:
        """Ingress path (attach this to the link)."""
        if self.rx.offer(packet):
            self.rx_packets += 1

    def rx_burst(self, max_packets: int = DEFAULT_BURST) -> List[Packet]:
        return self.rx.poll(max_packets)

    def tx_burst(self, packets: List[Packet]) -> int:
        for packet in packets:
            packet.created_at = self.sim.now
            self.egress.send(packet)
        self.tx_packets += len(packets)
        return len(packets)


def run_poll_loop(
    sim: Simulator,
    port: PollModePort,
    handler: Callable[[Packet], Optional[Packet]],
    poll_interval: float = 1e-6,
    burst: int = DEFAULT_BURST,
    stop_after: Optional[int] = None,
):
    """A poll-mode worker: busy-polls the ring, handles bursts, transmits
    replies.  ``handler`` returns the packet to send back (or None).

    ``poll_interval`` models the empty-poll spin granularity; handled
    packets are processed back-to-back within a burst.
    """

    def worker():
        handled = 0
        while stop_after is None or handled < stop_after:
            packets = port.rx_burst(burst)
            if not packets:
                yield sim.timeout(poll_interval)
                continue
            replies = []
            for packet in packets:
                reply = handler(packet)
                if reply is not None:
                    replies.append(reply)
                handled += 1
            if replies:
                port.tx_burst(replies)
        return handled

    return sim.process(worker(), name="dpdk-poll")
