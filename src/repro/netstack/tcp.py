"""A miniature TCP: connection state machine with handshake, ordered
byte-stream delivery, cumulative ACKs, retransmission on timeout, and
FIN teardown.

This is the substrate behind the Redis benchmark's transport and behind
Strategy 1's discussion (the cost of running this state machine on the
SNIC CPU is the paper's first observation).  It is a real protocol
implementation — the test suite drives lossy links and asserts in-order
exactly-once delivery — while the *cycle cost* of running it is priced by
the calibration layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Deque, Dict, Optional, Tuple

from ..core.engine import Event, Simulator
from .link import Link
from .packet import PROTO_TCP, Packet

MSS = 1460
DEFAULT_RTO = 20e-3
MIN_RTO = 2e-3
INITIAL_CWND = 10  # segments (RFC 6928)
DEFAULT_SSTHRESH = 64 * 1024  # bytes

SYN = "SYN"
ACK = "ACK"
FIN = "FIN"
ECE = "ECE"  # ECN-Echo: receiver saw a CE mark, keeps echoing until CWR
CWR = "CWR"  # Congestion Window Reduced: sender acknowledges the echo


class TcpState(Enum):
    CLOSED = "closed"
    LISTEN = "listen"
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    FIN_WAIT = "fin-wait"
    CLOSE_WAIT = "close-wait"
    TIME_WAIT = "time-wait"


@dataclass
class _OutSegment:
    seq: int
    payload: bytes
    sent_at: float
    retransmits: int = 0


class TcpEndpoint:
    """One host's TCP layer: demultiplexes to connections and listeners."""

    def __init__(self, sim: Simulator, address: int, egress: Link,
                 ecn: bool = False):
        self.sim = sim
        self.address = address
        self.egress = egress
        self.ecn = ecn  # default for connections created by this endpoint
        self.connections: Dict[Tuple[int, int, int], "TcpConnection"] = {}
        self.listeners: Dict[int, "TcpListener"] = {}

    def listen(self, port: int) -> "TcpListener":
        if port in self.listeners:
            raise OSError(f"port {port} already listening")
        listener = TcpListener(self, port)
        self.listeners[port] = listener
        return listener

    def connect(self, local_port: int, remote_ip: int, remote_port: int,
                ecn: Optional[bool] = None) -> "TcpConnection":
        connection = TcpConnection(
            self, local_port, remote_ip, remote_port, initiate=True,
            ecn=self.ecn if ecn is None else ecn,
        )
        self._register(connection)
        return connection

    def _register(self, connection: "TcpConnection") -> None:
        key = (connection.local_port, connection.remote_ip, connection.remote_port)
        self.connections[key] = connection

    def deliver(self, packet: Packet) -> None:
        key = (packet.dst_port, packet.src_ip, packet.src_port)
        connection = self.connections.get(key)
        if connection is not None:
            connection._on_packet(packet)
            return
        if SYN in packet.flags and ACK not in packet.flags:
            listener = self.listeners.get(packet.dst_port)
            if listener is not None:
                listener._on_syn(packet)
                return
        # RST territory in a real stack; we silently drop.

    def send(self, packet: Packet) -> None:
        packet.created_at = self.sim.now
        self.egress.send(packet)


class TcpListener:
    def __init__(self, endpoint: TcpEndpoint, port: int):
        self.endpoint = endpoint
        self.port = port
        self._pending: Deque[TcpConnection] = deque()
        self._waiters: Deque[Event] = deque()

    def _on_syn(self, packet: Packet) -> None:
        connection = TcpConnection(
            self.endpoint, self.port, packet.src_ip, packet.src_port,
            initiate=False, ecn=self.endpoint.ecn,
        )
        self.endpoint._register(connection)
        connection._on_packet(packet)
        if self._waiters:
            self._waiters.popleft().trigger(connection)
        else:
            self._pending.append(connection)

    def accept(self) -> Event:
        event = Event(self.endpoint.sim)
        if self._pending:
            event.trigger(self._pending.popleft())
        else:
            self._waiters.append(event)
        return event


class TcpConnection:
    """One direction-pair of a TCP conversation."""

    def __init__(self, endpoint: TcpEndpoint, local_port: int,
                 remote_ip: int, remote_port: int, initiate: bool,
                 rto: float = DEFAULT_RTO, ecn: bool = False):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.rto = rto
        self.state = TcpState.CLOSED
        self.iss = 1  # initial send sequence; the SYN consumes it
        self.snd_nxt = self.iss + 1
        self.snd_una = self.iss + 1
        self.rcv_nxt = 0
        self._unacked: Deque[_OutSegment] = deque()
        self._send_buffer: Deque[bytes] = deque()  # waits for cwnd space
        self._out_of_order: Dict[int, bytes] = {}
        self._recv_buffer = bytearray()
        self._recv_waiters: Deque[Tuple[int, Event]] = deque()
        self._established_event = Event(self.sim)
        self._closed_event = Event(self.sim)
        self.retransmissions = 0
        self._timer_generation = 0
        # congestion control (Tahoe-style slow start + AIMD on loss)
        self.cwnd = INITIAL_CWND * MSS
        self.ssthresh = DEFAULT_SSTHRESH
        # Jacobson/Karels RTT estimation; self.rto adapts after samples
        self._srtt: Optional[float] = None
        self._rttvar: Optional[float] = None
        # ECN (RFC 3168): data segments carry ECT; queues may set CE; the
        # receiver echoes ECE on ACKs until the sender's CWR arrives; the
        # sender reduces at most once per window of data.
        self.ecn = ecn
        self.ecn_marks_seen = 0   # CE-marked packets this side received
        self.ecn_responses = 0    # window reductions this sender performed
        self._ece_pending = False
        self._cwr_pending = False
        self._ecn_recovery_until = self.snd_nxt
        if initiate:
            self.state = TcpState.SYN_SENT
            self._send_control({SYN})
        else:
            self.state = TcpState.LISTEN

    # -- public API --------------------------------------------------------

    def established(self) -> Event:
        return self._established_event

    def closed(self) -> Event:
        return self._closed_event

    def send(self, data: bytes) -> None:
        """Segment and transmit application data (window permitting;
        the rest queues in the send buffer until ACKs open the cwnd)."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise OSError(f"send in state {self.state}")
        for offset in range(0, len(data), MSS):
            self._send_buffer.append(data[offset : offset + MSS])
        self._pump()

    @property
    def bytes_in_flight(self) -> int:
        return sum(len(segment.payload) for segment in self._unacked)

    def _pump(self) -> None:
        """Transmit buffered segments while the congestion window allows."""
        sent = False
        while self._send_buffer and (
            self.bytes_in_flight + len(self._send_buffer[0]) <= self.cwnd
        ):
            chunk = self._send_buffer.popleft()
            segment = _OutSegment(self.snd_nxt, chunk, self.sim.now)
            self._unacked.append(segment)
            self._transmit(segment)
            self.snd_nxt += len(chunk)
            sent = True
        if sent:
            self._arm_timer()

    def recv(self, nbytes: int) -> Event:
        """Event firing with exactly ``nbytes`` of in-order data."""
        event = Event(self.sim)
        if len(self._recv_buffer) >= nbytes:
            data = bytes(self._recv_buffer[:nbytes])
            del self._recv_buffer[:nbytes]
            event.trigger(data)
        else:
            self._recv_waiters.append((nbytes, event))
        return event

    def close(self) -> None:
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT
            self._send_control({FIN, ACK})
        elif self.state == TcpState.CLOSE_WAIT:
            self.state = TcpState.TIME_WAIT
            self._send_control({FIN, ACK})
            self._finish_close()

    # -- internals ----------------------------------------------------------

    def _packet(self, flags, payload: bytes = b"", seq: Optional[int] = None) -> Packet:
        return Packet(
            proto=PROTO_TCP,
            src_ip=self.endpoint.address,
            src_port=self.local_port,
            dst_ip=self.remote_ip,
            dst_port=self.remote_port,
            payload=payload,
            seq=self.snd_nxt if seq is None else seq,
            ack=self.rcv_nxt,
            flags=frozenset(flags),
        )

    def _send_control(self, flags) -> None:
        flags = set(flags)
        if self._ece_pending and ACK in flags and SYN not in flags:
            flags.add(ECE)
        seq = self.iss if SYN in flags else None
        self.endpoint.send(self._packet(flags, seq=seq))
        if SYN in flags:
            self._arm_timer()

    def _transmit(self, segment: _OutSegment) -> None:
        flags = {ACK}
        if self.ecn and self._cwr_pending:
            flags.add(CWR)
            self._cwr_pending = False
        packet = self._packet(flags, segment.payload, seq=segment.seq)
        if self.ecn:
            packet.ecn_capable = True
        self.endpoint.send(packet)

    def _arm_timer(self) -> None:
        self._timer_generation += 1
        generation = self._timer_generation
        timer = self.sim.timeout(self.rto)

        def _on_timeout(_event) -> None:
            if generation != self._timer_generation:
                return  # superseded
            if self.state == TcpState.SYN_SENT:
                self._send_control({SYN})
                self.retransmissions += 1
            elif self.state == TcpState.SYN_RECEIVED:
                self._send_control({SYN, ACK})
                self.retransmissions += 1
            elif self._unacked:
                self.retransmissions += 1
                # Tahoe reaction: halve ssthresh, restart from one segment
                self.ssthresh = max(2 * MSS, self.bytes_in_flight // 2)
                self.cwnd = INITIAL_CWND * MSS
                self.rto = min(self.rto * 2, 1.0)  # exponential backoff
                for segment in self._unacked:
                    segment.retransmits += 1
                    self._transmit(segment)
                self._arm_timer()

        timer.add_callback(_on_timeout)

    def _on_packet(self, packet: Packet) -> None:
        flags = packet.flags
        # CWR first, then CE: a marked segment that itself carries CWR must
        # leave the echo armed for the *new* congestion event.
        if CWR in flags:
            self._ece_pending = False
        if packet.ce:
            self._ece_pending = True
            self.ecn_marks_seen += 1
        if self.state == TcpState.LISTEN and SYN in flags and ACK not in flags:
            self.rcv_nxt = packet.seq + 1
            self.state = TcpState.SYN_RECEIVED
            self._send_control({SYN, ACK})
            return
        if self.state == TcpState.SYN_RECEIVED and SYN in flags and ACK not in flags:
            # Our SYN-ACK was lost; the peer retried its SYN.
            self._send_control({SYN, ACK})
            return
        if self.state == TcpState.ESTABLISHED and SYN in flags and ACK in flags:
            # Duplicate SYN-ACK: our handshake ACK was lost; re-ACK.
            self._send_control({ACK})
            return
        if self.state == TcpState.SYN_SENT and SYN in flags and ACK in flags:
            self.rcv_nxt = packet.seq + 1
            self.state = TcpState.ESTABLISHED
            self._send_control({ACK})
            if not self._established_event.triggered:
                self._established_event.trigger(self)
            return
        if self.state == TcpState.SYN_RECEIVED and ACK in flags and SYN not in flags:
            self.state = TcpState.ESTABLISHED
            if not self._established_event.triggered:
                self._established_event.trigger(self)
            # fall through: the ACK may carry data

        if ACK in flags:
            if self.ecn and ECE in flags:
                self._on_ecn_echo()
            self._handle_ack(packet.ack)
        if packet.payload:
            self._handle_data(packet)
        if FIN in flags:
            self._handle_fin(packet)

    def _on_ecn_echo(self) -> None:
        """React to an ECN echo: multiplicative decrease, once per window.

        Repeated ECE flags for the same congestion event (the receiver
        echoes on every ACK until CWR arrives) must not stack reductions,
        so the cut applies only when the ACKed data was sent after the
        previous reduction (RFC 3168 §6.1.2 semantics).
        """
        if self.snd_una < self._ecn_recovery_until:
            return
        self.ssthresh = max(2 * MSS, self.cwnd // 2)
        self.cwnd = self.ssthresh
        self._ecn_recovery_until = self.snd_nxt
        self._cwr_pending = True
        self.ecn_responses += 1

    def _handle_ack(self, ack: int) -> None:
        if ack <= self.snd_una:
            return
        self.snd_una = ack
        acked_bytes = 0
        while self._unacked and self._unacked[0].seq + len(self._unacked[0].payload) <= ack:
            segment = self._unacked.popleft()
            acked_bytes += len(segment.payload)
            if segment.retransmits == 0:  # Karn's rule: fresh samples only
                self._sample_rtt(self.sim.now - segment.sent_at)
        if acked_bytes:
            self._grow_cwnd(acked_bytes)
        if self._unacked:
            self._arm_timer()
        else:
            self._timer_generation += 1  # cancel
        self._pump()

    def _sample_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self.rto = max(MIN_RTO, self._srtt + 4 * self._rttvar)

    def _grow_cwnd(self, acked_bytes: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += acked_bytes  # slow start: exponential
        else:
            self.cwnd += max(1, MSS * MSS // self.cwnd)  # congestion avoidance

    def _handle_data(self, packet: Packet) -> None:
        if packet.seq == self.rcv_nxt:
            self._recv_buffer.extend(packet.payload)
            self.rcv_nxt += len(packet.payload)
            while self.rcv_nxt in self._out_of_order:
                chunk = self._out_of_order.pop(self.rcv_nxt)
                self._recv_buffer.extend(chunk)
                self.rcv_nxt += len(chunk)
            self._wake_receivers()
        elif packet.seq > self.rcv_nxt:
            self._out_of_order[packet.seq] = packet.payload
        # duplicate (seq < rcv_nxt): ignore payload, re-ACK below
        self._send_control({ACK})

    def _wake_receivers(self) -> None:
        while self._recv_waiters:
            nbytes, event = self._recv_waiters[0]
            if len(self._recv_buffer) < nbytes:
                break
            self._recv_waiters.popleft()
            data = bytes(self._recv_buffer[:nbytes])
            del self._recv_buffer[:nbytes]
            event.trigger(data)

    def _handle_fin(self, packet: Packet) -> None:
        self.rcv_nxt = max(self.rcv_nxt, packet.seq + 1)
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
            self._send_control({ACK})
        elif self.state == TcpState.FIN_WAIT:
            self.state = TcpState.TIME_WAIT
            self._send_control({ACK})
            self._finish_close()

    def _finish_close(self) -> None:
        if not self._closed_event.triggered:
            self._closed_event.trigger(self)
        self.state = TcpState.CLOSED
