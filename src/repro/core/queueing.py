"""Fast-path queueing simulation for per-packet service.

Driving a 100 Gbps interface means tens of millions of packets per second;
simulating each as a kernel event would make parameter sweeps intractable.
Two structural facts let us do better without losing fidelity:

* Packet work on a multi-core platform is sharded per core by RSS — each
  core owns an independent FIFO.  A c-core system at offered rate R is
  statistically c independent single-server queues at rate R/c, so we
  simulate *one shard* exactly (Lindley's recursion) and measure it.
* Accelerators are single batch servers; we simulate their batching
  behaviour directly.

Both paths produce per-request sojourn times from which the same
percentile/throughput metrics as the event-driven path are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .metrics import RunMetrics, summarize_samples

ServiceSampler = Callable[[np.random.Generator, int], np.ndarray]


def lindley_waits(interarrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Waiting times (time in queue, excluding service) of a G/G/1 queue.

    ``interarrivals[i]`` is the gap before customer i (the first gap is from
    t=0); ``services[i]`` is customer i's service demand.
    """
    if interarrivals.shape != services.shape:
        raise ValueError("interarrivals and services must have equal length")
    n = len(services)
    waits = np.empty(n)
    wait = 0.0
    for i in range(n):
        if i > 0:
            wait = max(0.0, wait + services[i - 1] - interarrivals[i])
        waits[i] = wait
    return waits


@dataclass
class QueueOutcome:
    """Raw per-request results of a fast-path queue simulation."""

    sojourns: np.ndarray  # seconds, queue wait + service
    services: np.ndarray
    arrivals: np.ndarray
    dropped: int = 0

    def completions(self) -> np.ndarray:
        return self.arrivals + self.sojourns


def simulate_gg1(
    rate: float,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate a single FIFO server fed at ``rate`` requests/second.

    ``arrival_cv`` selects the arrival process: 0 gives a deterministic
    (paced) stream, 1 gives Poisson; intermediate values use a gamma
    renewal process with that coefficient of variation.

    ``queue_limit`` (seconds of backlog) drops requests arriving when the
    unfinished work exceeds the limit — modeling finite NIC/socket buffers
    so overload shows up as loss rather than unbounded latency.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        gaps = np.full(n_requests, mean_gap)
    elif arrival_cv == 1.0:
        gaps = rng.exponential(mean_gap, size=n_requests)
    else:
        shape = 1.0 / (arrival_cv**2)
        gaps = rng.gamma(shape, mean_gap / shape, size=n_requests)
    arrivals = np.cumsum(gaps)
    services = np.asarray(service_sampler(rng, n_requests), dtype=float)
    if services.shape != (n_requests,):
        raise ValueError("service sampler returned wrong shape")

    if queue_limit is None:
        waits = lindley_waits(gaps, services)
        return QueueOutcome(sojourns=waits + services, services=services, arrivals=arrivals)

    # With a buffer bound we track unfinished work and drop on overflow.
    kept_sojourns = []
    kept_services = []
    kept_arrivals = []
    dropped = 0
    backlog = 0.0
    previous_arrival = 0.0
    for i in range(n_requests):
        arrival = arrivals[i]
        backlog = max(0.0, backlog - (arrival - previous_arrival))
        previous_arrival = arrival
        if backlog > queue_limit:
            dropped += 1
            continue
        kept_sojourns.append(backlog + services[i])
        kept_services.append(services[i])
        kept_arrivals.append(arrival)
        backlog += services[i]
    return QueueOutcome(
        sojourns=np.asarray(kept_sojourns),
        services=np.asarray(kept_services),
        arrivals=np.asarray(kept_arrivals),
        dropped=dropped,
    )


def simulate_sharded(
    rate: float,
    cores: int,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate one RSS shard of a ``cores``-way packet service.

    The shard sees rate/cores arrivals; its latency distribution equals the
    system's (all shards are exchangeable), and system throughput is the
    shard's times ``cores``.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return simulate_gg1(
        rate / cores, service_sampler, n_requests, rng, arrival_cv, queue_limit
    )


def simulate_batch_server(
    rate: float,
    n_requests: int,
    rng: np.random.Generator,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
    arrival_cv: float = 1.0,
) -> QueueOutcome:
    """Simulate an accelerator-style batch server.

    Items accumulate until ``batch_size`` are waiting or ``batch_timeout``
    elapses since the first queued item, then the whole batch is served in
    ``setup_time + k * per_item_time``.  This is how the BlueField-2 REM and
    compression engines are driven through DOCA (§2.2): the SNIC CPU stages
    buffers and submits multi-buffer tasks.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        gaps = np.full(n_requests, mean_gap)
    else:
        shape = 1.0 / max(arrival_cv, 1e-9) ** 2
        gaps = (
            rng.exponential(mean_gap, size=n_requests)
            if arrival_cv == 1.0
            else rng.gamma(shape, mean_gap / shape, size=n_requests)
        )
    arrivals = np.cumsum(gaps)
    sojourns = np.empty(n_requests)
    services = np.empty(n_requests)

    server_free_at = 0.0
    index = 0
    while index < n_requests:
        deadline = arrivals[index] + batch_timeout
        end = index + 1
        while (
            end < n_requests
            and end - index < batch_size
            and arrivals[end] <= deadline
        ):
            end += 1
        if end - index >= batch_size:
            # Batch filled: dispatch as soon as the last member arrived and
            # the engine is free.
            dispatch = max(arrivals[end - 1], server_free_at)
        else:
            # Timeout-driven dispatch; while the engine is still busy past
            # the deadline, late arrivals may still join (up to batch_size).
            dispatch = max(deadline, server_free_at)
            while (
                end < n_requests
                and end - index < batch_size
                and arrivals[end] <= dispatch
            ):
                end += 1
        batch = end - index
        finish = dispatch + setup_time + batch * per_item_time
        sojourns[index:end] = finish - arrivals[index:end]
        services[index:end] = setup_time / batch + per_item_time
        server_free_at = finish
        index = end

    return QueueOutcome(sojourns=sojourns, services=services, arrivals=arrivals)


def outcome_to_metrics(
    outcome: QueueOutcome,
    offered_rate: float,
    bytes_per_request: float,
    cores: int = 1,
    warmup_fraction: float = 0.1,
) -> RunMetrics:
    """Convert raw queue results to the standard RunMetrics record.

    For sharded runs pass the *system* offered rate and the shard count;
    completion rates scale back up by ``cores``.
    """
    n = len(outcome.sojourns)
    total = n + outcome.dropped
    if n == 0:
        return RunMetrics(
            offered_rate=offered_rate,
            duration=0.0,
            completed=0,
            completed_rate=0.0,
            goodput_gbps=0.0,
            latency_p50=float("inf"),
            latency_p99=float("inf"),
            latency_mean=float("inf"),
            dropped=outcome.dropped,
        )
    skip = int(n * warmup_fraction)
    kept = outcome.sojourns[skip:]
    completions = outcome.completions()
    duration = float(completions.max() - (outcome.arrivals[skip] if skip < n else 0.0))
    # Arrivals in `outcome` are the *served* requests only (drops were
    # removed), so their rate over the run span IS the served rate.
    served_rate = (n / float(outcome.arrivals[-1])) if outcome.arrivals[-1] > 0 else 0.0
    # A shard saturates when completions lag arrivals; detect via backlog at
    # the end of the run growing beyond a few service times.
    tail_backlog = float(completions[-1] - outcome.arrivals[-1])
    mean_service = float(np.mean(outcome.services)) if n else 0.0
    run_span = float(outcome.arrivals[-1]) if n else 0.0
    overloaded = tail_backlog > max(50 * mean_service, 0.05 * run_span)
    effective_rate = served_rate * cores
    if overloaded and mean_service > 0:
        effective_rate = min(effective_rate, cores / mean_service)
    latency = summarize_samples(kept)
    return RunMetrics(
        offered_rate=offered_rate,
        duration=duration,
        completed=n,
        completed_rate=effective_rate,
        goodput_gbps=effective_rate * bytes_per_request * 8 / 1e9,
        latency_p50=latency.p50,
        latency_p99=latency.p99,
        latency_mean=latency.mean,
        dropped=outcome.dropped,
    )
