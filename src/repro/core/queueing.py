"""Fast-path queueing simulation for per-packet service.

Driving a 100 Gbps interface means tens of millions of packets per second;
simulating each as a kernel event would make parameter sweeps intractable.
Two structural facts let us do better without losing fidelity:

* Packet work on a multi-core platform is sharded per core by RSS — each
  core owns an independent FIFO.  A c-core system at offered rate R is
  statistically c independent single-server queues at rate R/c, so we
  simulate *one shard* exactly (Lindley's recursion) and measure it.
* Accelerators are single batch servers; we simulate their batching
  behaviour directly.

Both paths produce per-request sojourn times from which the same
percentile/throughput metrics as the event-driven path are computed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from . import trace
from .metrics import RunMetrics, summarize_samples

ServiceSampler = Callable[[np.random.Generator, int], np.ndarray]

# Latency-attribution component names.  Each QueueOutcome carries a set
# of per-request component arrays that sum (exactly) to its sojourns;
# the attribution report in EXPERIMENTS.md is built from these.
COMP_QUEUE_WAIT = "queue_wait"      # time in FIFO before service begins
COMP_SERVICE = "service"            # time being served (whole batch span
                                    # on the accelerator path)
COMP_BATCH_WAIT = "batch_wait"      # waiting for a batch to form/dispatch
COMP_STACK_RTT = "stack_rtt"        # fixed network-stack RTT floor
COMP_STALL = "stall"                # retry/fault stall (faults study)
COMPONENTS = (COMP_QUEUE_WAIT, COMP_SERVICE, COMP_BATCH_WAIT,
              COMP_STACK_RTT, COMP_STALL)


def lindley_waits(interarrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Waiting times (time in queue, excluding service) of a G/G/1 queue.

    ``interarrivals[i]`` is the gap before customer i (the first gap is from
    t=0); ``services[i]`` is customer i's service demand.
    """
    if interarrivals.shape != services.shape:
        raise ValueError("interarrivals and services must have equal length")
    n = len(services)
    waits = np.empty(n)
    wait = 0.0
    for i in range(n):
        if i > 0:
            wait = max(0.0, wait + services[i - 1] - interarrivals[i])
        waits[i] = wait
    return waits


@dataclass
class QueueOutcome:
    """Raw per-request results of a fast-path queue simulation."""

    sojourns: np.ndarray  # seconds, queue wait + service
    services: np.ndarray
    arrivals: np.ndarray
    dropped: int = 0
    # Per-request latency decomposition (COMP_* keys).  Invariant: the
    # component arrays sum element-wise to ``sojourns``; code that adds
    # latency to ``sojourns`` must add a matching component (see
    # ``add_component``).
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    def completions(self) -> np.ndarray:
        return self.arrivals + self.sojourns

    def add_component(self, name: str, values: np.ndarray) -> None:
        """Add latency to every request, keeping attribution consistent."""
        self.sojourns = self.sojourns + values
        if name in self.components:
            self.components[name] = self.components[name] + values
        else:
            self.components[name] = np.asarray(values, dtype=float)

    def component_residual(self) -> float:
        """Max |sojourn - sum(components)|; ~0 when attribution is exact."""
        if not self.components or len(self.sojourns) == 0:
            return 0.0
        total = np.zeros_like(self.sojourns)
        for values in self.components.values():
            total = total + values
        return float(np.max(np.abs(self.sojourns - total)))


def simulate_gg1(
    rate: float,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate a single FIFO server fed at ``rate`` requests/second.

    ``arrival_cv`` selects the arrival process: 0 gives a deterministic
    (paced) stream, 1 gives Poisson; intermediate values use a gamma
    renewal process with that coefficient of variation.

    ``queue_limit`` (seconds of backlog) drops requests arriving when the
    unfinished work exceeds the limit — modeling finite NIC/socket buffers
    so overload shows up as loss rather than unbounded latency.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        gaps = np.full(n_requests, mean_gap)
    elif arrival_cv == 1.0:
        gaps = rng.exponential(mean_gap, size=n_requests)
    else:
        shape = 1.0 / (arrival_cv**2)
        gaps = rng.gamma(shape, mean_gap / shape, size=n_requests)
    arrivals = np.cumsum(gaps)
    services = np.asarray(service_sampler(rng, n_requests), dtype=float)
    if services.shape != (n_requests,):
        raise ValueError("service sampler returned wrong shape")

    if queue_limit is None:
        waits = lindley_waits(gaps, services)
        outcome = QueueOutcome(
            sojourns=waits + services, services=services, arrivals=arrivals,
            components={COMP_QUEUE_WAIT: waits, COMP_SERVICE: services},
        )
        if trace.TRACING:
            _emit_queue_series(outcome, dropped_total=0)
        return outcome

    # With a buffer bound we track unfinished work and drop on overflow.
    kept_waits = []
    kept_services = []
    kept_arrivals = []
    dropped = 0
    backlog = 0.0
    previous_arrival = 0.0
    for i in range(n_requests):
        arrival = arrivals[i]
        backlog = max(0.0, backlog - (arrival - previous_arrival))
        previous_arrival = arrival
        if backlog > queue_limit:
            dropped += 1
            continue
        kept_waits.append(backlog)
        kept_services.append(services[i])
        kept_arrivals.append(arrival)
        backlog += services[i]
    waits = np.asarray(kept_waits)
    kept = np.asarray(kept_services)
    outcome = QueueOutcome(
        sojourns=waits + kept,
        services=kept,
        arrivals=np.asarray(kept_arrivals),
        dropped=dropped,
        components={COMP_QUEUE_WAIT: waits, COMP_SERVICE: kept},
    )
    if trace.TRACING:
        _emit_queue_series(outcome, dropped_total=dropped)
    return outcome


def simulate_sharded(
    rate: float,
    cores: int,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate one RSS shard of a ``cores``-way packet service.

    The shard sees rate/cores arrivals; its latency distribution equals the
    system's (all shards are exchangeable), and system throughput is the
    shard's times ``cores``.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return simulate_gg1(
        rate / cores, service_sampler, n_requests, rng, arrival_cv, queue_limit
    )


def simulate_batch_server(
    rate: float,
    n_requests: int,
    rng: np.random.Generator,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
    arrival_cv: float = 1.0,
) -> QueueOutcome:
    """Simulate an accelerator-style batch server.

    Items accumulate until ``batch_size`` are waiting or ``batch_timeout``
    elapses since the first queued item, then the whole batch is served in
    ``setup_time + k * per_item_time``.  This is how the BlueField-2 REM and
    compression engines are driven through DOCA (§2.2): the SNIC CPU stages
    buffers and submits multi-buffer tasks.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        gaps = np.full(n_requests, mean_gap)
    else:
        shape = 1.0 / max(arrival_cv, 1e-9) ** 2
        gaps = (
            rng.exponential(mean_gap, size=n_requests)
            if arrival_cv == 1.0
            else rng.gamma(shape, mean_gap / shape, size=n_requests)
        )
    arrivals = np.cumsum(gaps)
    sojourns = np.empty(n_requests)
    services = np.empty(n_requests)
    batch_waits = np.empty(n_requests)
    service_spans = np.empty(n_requests)
    batch_log = [] if trace.TRACING else None

    server_free_at = 0.0
    index = 0
    while index < n_requests:
        deadline = arrivals[index] + batch_timeout
        end = index + 1
        while (
            end < n_requests
            and end - index < batch_size
            and arrivals[end] <= deadline
        ):
            end += 1
        if end - index >= batch_size:
            # Batch filled: dispatch as soon as the last member arrived and
            # the engine is free.
            dispatch = max(arrivals[end - 1], server_free_at)
        else:
            # Timeout-driven dispatch; while the engine is still busy past
            # the deadline, late arrivals may still join (up to batch_size).
            dispatch = max(deadline, server_free_at)
            while (
                end < n_requests
                and end - index < batch_size
                and arrivals[end] <= dispatch
            ):
                end += 1
        batch = end - index
        span = setup_time + batch * per_item_time
        finish = dispatch + span
        sojourns[index:end] = finish - arrivals[index:end]
        services[index:end] = setup_time / batch + per_item_time
        # Attribution: a request waits for its batch to form/dispatch,
        # then experiences the full batch service span.
        batch_waits[index:end] = dispatch - arrivals[index:end]
        service_spans[index:end] = span
        if batch_log is not None:
            batch_log.append((dispatch, batch, span))
        server_free_at = finish
        index = end

    outcome = QueueOutcome(
        sojourns=sojourns, services=services, arrivals=arrivals,
        components={COMP_BATCH_WAIT: batch_waits, COMP_SERVICE: service_spans},
    )
    if batch_log is not None:
        _emit_batch_series(batch_log)
        _emit_queue_series(outcome, dropped_total=0)
    return outcome


def _emit_queue_series(outcome: QueueOutcome, dropped_total: int = 0) -> None:
    """Per-window queue-depth / utilization counters onto the trace.

    Vectorized over window edges (searchsorted + histogram) so the cost
    is independent of the request count; capped at
    :data:`trace.MAX_SERIES_POINTS` windows per probe so a long run
    cannot flood the ring buffer.  Only called when tracing is enabled.
    """
    n = len(outcome.sojourns)
    rec = trace.recorder()
    if n == 0 or rec is None:
        return
    completions = outcome.completions()
    horizon = float(completions.max())
    if horizon <= 0:
        return
    interval = rec.metrics_interval_s
    n_windows = int(np.ceil(horizon / interval))
    if n_windows > trace.MAX_SERIES_POINTS:
        n_windows = trace.MAX_SERIES_POINTS
        interval = horizon / n_windows
    edges = np.arange(1, n_windows + 1) * interval
    sorted_completions = np.sort(completions)
    arrived = np.searchsorted(outcome.arrivals, edges, side="right")
    done = np.searchsorted(sorted_completions, edges, side="right")
    depth = arrived - done
    busy, _ = np.histogram(completions, bins=np.concatenate(([0.0], edges)),
                           weights=outcome.services)
    util = np.minimum(busy / interval, 1.0)
    track = trace.subtrack("queue")
    for i in range(n_windows):
        trace.counter("queue", trace.QUEUE, ts=float(edges[i]), track=track,
                      depth=int(depth[i]), util=round(float(util[i]), 6))
    if dropped_total:
        trace.instant("queue.dropped", trace.QUEUE, ts=horizon, track=track,
                      dropped=dropped_total)


def _emit_batch_series(batch_log) -> None:
    """Batch-formation spans for the accelerator fast path (trace-only)."""
    step = max(1, len(batch_log) // trace.MAX_SERIES_POINTS)
    track = trace.subtrack("batches")
    for dispatch, batch, span in batch_log[::step]:
        trace.complete("batch", trace.ACCEL_BATCH, ts=dispatch, dur=span,
                       track=track, size=batch)


def attribute_outcome(
    outcome: QueueOutcome, warmup_fraction: float = 0.1
) -> Dict[str, float]:
    """Latency attribution over the measurement window.

    Returns ``attr.*`` floats for :attr:`RunMetrics.extra`: the mean of
    each component over the kept (post-warmup) requests — these sum to
    the reported mean sojourn exactly — plus the tail-conditional means
    (requests at or above the kept p99), which sum to ``attr.tail_mean_s``
    and show *where* the p99 comes from.
    """
    n = len(outcome.sojourns)
    if n == 0 or not outcome.components:
        return {}
    skip = int(n * warmup_fraction)
    kept = outcome.sojourns[skip:]
    if kept.size == 0:
        return {}
    p99 = np.percentile(kept, 99.0)
    tail = kept >= p99
    result = {
        "attr.sojourn_mean_s": float(np.mean(kept)),
        "attr.tail_mean_s": float(np.mean(kept[tail])),
    }
    for name in COMPONENTS:
        values = outcome.components.get(name)
        if values is None:
            continue
        kept_values = values[skip:]
        result[f"attr.{name}_mean_s"] = float(np.mean(kept_values))
        result[f"attr.{name}_tail_s"] = float(np.mean(kept_values[tail]))
    return result


def outcome_to_metrics(
    outcome: QueueOutcome,
    offered_rate: float,
    bytes_per_request: float,
    cores: int = 1,
    warmup_fraction: float = 0.1,
) -> RunMetrics:
    """Convert raw queue results to the standard RunMetrics record.

    For sharded runs pass the *system* offered rate and the shard count;
    completion rates scale back up by ``cores``.
    """
    n = len(outcome.sojourns)
    total = n + outcome.dropped
    if n == 0:
        return RunMetrics(
            offered_rate=offered_rate,
            duration=0.0,
            completed=0,
            completed_rate=0.0,
            goodput_gbps=0.0,
            latency_p50=float("inf"),
            latency_p99=float("inf"),
            latency_mean=float("inf"),
            dropped=outcome.dropped,
        )
    skip = int(n * warmup_fraction)
    kept = outcome.sojourns[skip:]
    completions = outcome.completions()
    duration = float(completions.max() - (outcome.arrivals[skip] if skip < n else 0.0))
    # Arrivals in `outcome` are the *served* requests only (drops were
    # removed), so their rate over the run span IS the served rate.
    served_rate = (n / float(outcome.arrivals[-1])) if outcome.arrivals[-1] > 0 else 0.0
    # A shard saturates when completions lag arrivals; detect via backlog at
    # the end of the run growing beyond a few service times.
    tail_backlog = float(completions[-1] - outcome.arrivals[-1])
    mean_service = float(np.mean(outcome.services)) if n else 0.0
    run_span = float(outcome.arrivals[-1]) if n else 0.0
    overloaded = tail_backlog > max(50 * mean_service, 0.05 * run_span)
    effective_rate = served_rate * cores
    if overloaded and mean_service > 0:
        effective_rate = min(effective_rate, cores / mean_service)
    latency = summarize_samples(kept)
    return RunMetrics(
        offered_rate=offered_rate,
        duration=duration,
        completed=n,
        completed_rate=effective_rate,
        goodput_gbps=effective_rate * bytes_per_request * 8 / 1e9,
        latency_p50=latency.p50,
        latency_p99=latency.p99,
        latency_mean=latency.mean,
        dropped=outcome.dropped,
        # Same warmup window as the latency summary, so the component
        # means sum to latency_mean exactly.
        extra=attribute_outcome(outcome, warmup_fraction),
    )
