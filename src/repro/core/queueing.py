"""Fast-path queueing simulation for per-packet service.

Driving a 100 Gbps interface means tens of millions of packets per second;
simulating each as a kernel event would make parameter sweeps intractable.
Two structural facts let us do better without losing fidelity:

* Packet work on a multi-core platform is sharded per core by RSS — each
  core owns an independent FIFO.  A c-core system at offered rate R is
  statistically c independent single-server queues at rate R/c, so we
  simulate *one shard* exactly (Lindley's recursion) and measure it.
* Accelerators are single batch servers; we simulate their batching
  behaviour directly.

Both paths produce per-request sojourn times from which the same
percentile/throughput metrics as the event-driven path are computed.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

import numpy as np

from . import trace
from .metrics import RunMetrics, summarize_samples

ServiceSampler = Callable[[np.random.Generator, int], np.ndarray]

# Latency-attribution component names.  Each QueueOutcome carries a set
# of per-request component arrays that sum (exactly) to its sojourns;
# the attribution report in EXPERIMENTS.md is built from these.
COMP_QUEUE_WAIT = "queue_wait"      # time in FIFO before service begins
COMP_SERVICE = "service"            # time being served (whole batch span
                                    # on the accelerator path)
COMP_BATCH_WAIT = "batch_wait"      # waiting for a batch to form/dispatch
COMP_STACK_RTT = "stack_rtt"        # fixed network-stack RTT floor
COMP_STALL = "stall"                # retry/fault stall (faults study)
COMPONENTS = (COMP_QUEUE_WAIT, COMP_SERVICE, COMP_BATCH_WAIT,
              COMP_STACK_RTT, COMP_STALL)


# Reusable per-thread scratch for the consumed `increments` input of
# :func:`_seeded_lindley`.  Fresh 150+ KiB allocations cost real page
# faults every probe; the scratch never escapes a kernel call, so
# reusing it is safe (per-thread: no sharing across concurrent callers).
_scratch = threading.local()


def _increment_buffer(n: int) -> np.ndarray:
    buf = getattr(_scratch, "buf", None)
    if buf is None or len(buf) < n:
        buf = np.empty(max(n, 1024))
        _scratch.buf = buf
    return buf[:n]


def lindley_waits(interarrivals: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Waiting times (time in queue, excluding service) of a G/G/1 queue.

    ``interarrivals[i]`` is the gap before customer i (the first gap is from
    t=0); ``services[i]`` is customer i's service demand.

    Exact O(n) closed form of Lindley's recursion, no Python loop:
    with increments X_i = services[i-1] - interarrivals[i] and partial
    sums C_n = sum_{k<=n} X_k (C_0 = 0),

        W_n = max(0, W_{n-1} + X_n) = C_n - min_{k<=n} C_k.

    ``lindley_waits_reference`` is the retained scalar oracle; the
    property tests assert element-wise agreement to 1e-12.
    """
    interarrivals = np.asarray(interarrivals, dtype=float)
    services = np.asarray(services, dtype=float)
    if interarrivals.shape != services.shape:
        raise ValueError("interarrivals and services must have equal length")
    n = len(services)
    if n == 0:
        return np.empty(0)
    increments = _increment_buffer(n)
    increments[0] = 0.0
    np.subtract(services[:-1], interarrivals[1:], out=increments[1:])
    # In-place cumsum and fused subtraction: one fresh buffer total.
    # C_1 = 0 keeps C_0 = 0 inside the running minimum, so the
    # subtraction is the max(0, .) clamp of the sequential recursion.
    cumulative = np.cumsum(increments, out=increments)
    floor = np.minimum.accumulate(cumulative)
    np.subtract(cumulative, floor, out=floor)
    return floor


def lindley_waits_reference(
    interarrivals: np.ndarray, services: np.ndarray
) -> np.ndarray:
    """Scalar Lindley recursion: the oracle the vectorized kernel must match."""
    if np.shape(interarrivals) != np.shape(services):
        raise ValueError("interarrivals and services must have equal length")
    n = len(services)
    waits = np.empty(n)
    wait = 0.0
    for i in range(n):
        if i > 0:
            wait = max(0.0, wait + services[i - 1] - interarrivals[i])
        waits[i] = wait
    return waits


def _seeded_lindley(increments: np.ndarray, initial: float) -> np.ndarray:
    """Lindley waits of one block given the entering backlog ``initial``.

    ``increments[j]`` is the backlog change at block element j *before*
    the max(0, .) clamp; the closed form extends to a seeded start:

        w_j = C_j - min(min_{0<=k<=j} C_k, -initial)    (C_0 = 0).

    Preconditions (both call sites guarantee them): ``initial >= 0`` and
    ``increments[0] <= 0``, so C_1 <= 0 keeps C_0 = 0 inside the running
    minimum for free.  ``increments`` is consumed (cumsum'd in place).
    """
    cumulative = np.cumsum(increments, out=increments)
    floor = np.minimum.accumulate(cumulative)
    if initial > 0.0:
        np.minimum(floor, -initial, out=floor)
    np.subtract(cumulative, floor, out=floor)
    return floor


# Bounded-buffer kernel tuning: block width of the optimistic fixed
# point, and how many refinement passes a block gets before it falls
# back to the exact scalar recursion (heavy sustained overload).
_DROP_BLOCK = 4096
_DROP_MAX_PASSES = 8


def bounded_waits_reference(
    arrivals: np.ndarray,
    services: np.ndarray,
    queue_limit: float,
    initial_backlog: float = 0.0,
    previous_arrival: float = 0.0,
) -> tuple:
    """Scalar bounded-buffer recursion (the drop-path oracle).

    Walks arrivals in order, draining ``backlog`` by elapsed time; an
    arrival finding more than ``queue_limit`` seconds of unfinished work
    is dropped, a kept arrival waits the backlog and adds its service.
    Returns ``(kept_mask, waits_of_kept, backlog, last_arrival)`` so
    the vectorized kernel can resume a block from this exact state.
    """
    n = len(arrivals)
    kept = np.zeros(n, dtype=bool)
    waits = []
    backlog = float(initial_backlog)
    previous = float(previous_arrival)
    # Plain-float lists: scalar indexing into ndarrays boxes a np.float64
    # per access, which dominates this loop.  Python floats are the same
    # IEEE doubles, so the arithmetic (and the results) are bit-identical.
    arrival_list = arrivals.tolist() if isinstance(arrivals, np.ndarray) else list(arrivals)
    service_list = services.tolist() if isinstance(services, np.ndarray) else list(services)
    append = waits.append
    for i in range(n):
        arrival = arrival_list[i]
        backlog = max(0.0, backlog - (arrival - previous))
        previous = arrival
        if backlog > queue_limit:
            continue
        kept[i] = True
        append(backlog)
        backlog += service_list[i]
    return kept, np.asarray(waits), backlog, previous


def bounded_waits(
    arrivals: np.ndarray,
    services: np.ndarray,
    queue_limit: float,
) -> tuple:
    """Vectorized bounded-buffer (queue-limit) drop kernel.

    Exact block fixed point: each block's waits are computed with the
    closed-form Lindley kernel assuming no drops inside the block; an
    overflowing block is refined by removing, per zero-backlog segment,
    its *first* violator (whose computed wait is provably exact — every
    earlier request in the segment is a certain keep) and recomputing.
    Almost-never-dropping probes converge in one pass; a block still
    overflowing after ``_DROP_MAX_PASSES`` (sustained deep overload)
    falls back to the scalar oracle seeded with the exact carry-in, so
    the result always matches ``bounded_waits_reference`` element-wise.

    Returns ``(kept_mask, waits_of_kept)``.
    """
    n = len(arrivals)
    if n == 0:
        return np.zeros(0, dtype=bool), np.empty(0)
    if queue_limit < 0:
        # A drained backlog is never negative, so everything overflows.
        return np.zeros(n, dtype=bool), np.empty(0)
    # Optimistic whole-array attempt first: an acceptable rate probe
    # drops (almost) nothing, and one closed-form pass both proves it
    # and *is* the answer — the block fixed point below only runs when
    # the no-drop waits actually overflow somewhere.
    increments = _increment_buffer(n)
    increments[0] = -arrivals[0]
    if n > 1:
        # services[:-1] - diff(arrivals), built without temporaries.
        np.subtract(arrivals[:-1], arrivals[1:], out=increments[1:])
        increments[1:] += services[:-1]
    optimistic = _seeded_lindley(increments, 0.0)
    if optimistic.max() <= queue_limit:
        return np.ones(n, dtype=bool), optimistic
    kept = np.ones(n, dtype=bool)
    waits = np.empty(n)
    backlog = 0.0
    previous = 0.0
    for start in range(0, n, _DROP_BLOCK):
        stop = min(start + _DROP_BLOCK, n)
        block_arrivals = arrivals[start:stop]
        block_services = services[start:stop]
        backlog, previous = _bounded_block(
            block_arrivals, block_services, queue_limit, backlog, previous,
            kept[start:stop], waits[start:stop],
        )
    return kept, waits[kept]


def _bounded_block(
    arrivals: np.ndarray,
    services: np.ndarray,
    queue_limit: float,
    backlog: float,
    previous: float,
    kept_out: np.ndarray,
    waits_out: np.ndarray,
) -> tuple:
    """One block of the bounded-buffer fixed point (see bounded_waits).

    Writes keep flags and (for kept requests) waits into the output
    views and returns the exact ``(backlog, last_arrival)`` carry.
    """
    m = len(arrivals)
    survivors = np.arange(m)
    for _ in range(_DROP_MAX_PASSES):
        surv_arrivals = arrivals[survivors]
        surv_services = services[survivors]
        # Backlog drains by wall time between consecutive *arrivals*
        # (dropped requests still let time pass), so increments use
        # arrival-time differences, exactly like the scalar oracle.
        increments = np.empty(len(survivors))
        increments[0] = -(surv_arrivals[0] - previous)
        if len(survivors) > 1:
            increments[1:] = surv_services[:-1] - np.diff(surv_arrivals)
        waits = _seeded_lindley(increments, backlog)
        violators = waits > queue_limit
        if not violators.any():
            kept_mask = np.zeros(m, dtype=bool)
            kept_mask[survivors] = True
            kept_out[:] = kept_mask
            waits_out[survivors] = waits
            # Drain past any trailing dropped arrivals so the carry state
            # matches the oracle's (backlog at the block's last arrival).
            carry_backlog = waits[-1] + surv_services[-1]
            last = float(arrivals[-1])
            carry_backlog = max(0.0, carry_backlog - (last - float(surv_arrivals[-1])))
            return carry_backlog, last
        # Zero-wait positions are exact resets: the optimistic wait is
        # an overestimate, so a computed 0 pins the true backlog to 0
        # and decouples everything after it from earlier drop choices.
        # Within each reset-delimited segment only the FIRST violator's
        # wait is known exact (all earlier segment members are certain
        # keeps); drop exactly those and recompute the shrunk block.
        segments = np.cumsum(waits == 0.0)
        violator_positions = np.flatnonzero(violators)
        first_in_segment = np.empty(len(violator_positions), dtype=bool)
        first_in_segment[0] = True
        violator_segments = segments[violator_positions]
        first_in_segment[1:] = violator_segments[1:] != violator_segments[:-1]
        survivors = np.delete(survivors,
                              violator_positions[first_in_segment])
        if len(survivors) == 0:
            kept_out[:] = False
            last = float(arrivals[-1])
            drained = max(0.0, backlog - (last - previous))
            return drained, last
    # Sustained deep overload: the fixed point is shedding one drop per
    # busy period per pass, so finish the block with the exact scalar
    # recursion from the block's (exact) entry state instead.
    kept_mask, block_waits, backlog, previous = bounded_waits_reference(
        arrivals, services, queue_limit, backlog, previous
    )
    kept_out[:] = kept_mask
    waits_out[kept_mask] = block_waits
    return backlog, previous


@dataclass
class QueueOutcome:
    """Raw per-request results of a fast-path queue simulation."""

    sojourns: np.ndarray  # seconds, queue wait + service
    services: np.ndarray
    arrivals: np.ndarray
    dropped: int = 0
    # Per-request latency decomposition (COMP_* keys).  Invariant: the
    # component arrays sum element-wise to ``sojourns``; code that adds
    # latency to ``sojourns`` must add a matching component (see
    # ``add_component``).
    components: Dict[str, np.ndarray] = field(default_factory=dict)

    def completions(self) -> np.ndarray:
        return self.arrivals + self.sojourns

    def add_component(self, name: str, values: np.ndarray) -> None:
        """Add latency to every request, keeping attribution consistent."""
        self.sojourns = self.sojourns + values
        if name in self.components:
            self.components[name] = self.components[name] + values
        else:
            self.components[name] = np.asarray(values, dtype=float)

    def component_residual(self) -> float:
        """Max |sojourn - sum(components)|; ~0 when attribution is exact."""
        if not self.components or len(self.sojourns) == 0:
            return 0.0
        total = np.zeros_like(self.sojourns)
        for values in self.components.values():
            total = total + values
        return float(np.max(np.abs(self.sojourns - total)))


def simulate_gg1(
    rate: float,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate a single FIFO server fed at ``rate`` requests/second.

    ``arrival_cv`` selects the arrival process: 0 gives a deterministic
    (paced) stream, 1 gives Poisson; intermediate values use a gamma
    renewal process with that coefficient of variation.

    ``queue_limit`` (seconds of backlog) drops requests arriving when the
    unfinished work exceeds the limit — modeling finite NIC/socket buffers
    so overload shows up as loss rather than unbounded latency.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        gaps = np.full(n_requests, mean_gap)
    elif arrival_cv == 1.0:
        gaps = rng.exponential(mean_gap, size=n_requests)
    else:
        shape = 1.0 / (arrival_cv**2)
        gaps = rng.gamma(shape, mean_gap / shape, size=n_requests)
    arrivals = np.cumsum(gaps)
    services = np.asarray(service_sampler(rng, n_requests), dtype=float)
    if services.shape != (n_requests,):
        raise ValueError("service sampler returned wrong shape")

    if queue_limit is None:
        waits = lindley_waits(gaps, services)
        outcome = QueueOutcome(
            sojourns=waits + services, services=services, arrivals=arrivals,
            components={COMP_QUEUE_WAIT: waits, COMP_SERVICE: services},
        )
        if trace.TRACING:
            _emit_queue_series(outcome, dropped_total=0)
        return outcome

    # With a buffer bound we track unfinished work and drop on overflow
    # (vectorized block fixed point; bounded_waits_reference is the
    # retained scalar oracle).
    kept_mask, waits = bounded_waits(arrivals, services, queue_limit)
    dropped = int(n_requests - kept_mask.sum())
    if dropped:
        kept = services[kept_mask]
        kept_arrivals = arrivals[kept_mask]
    else:
        kept = services
        kept_arrivals = arrivals
    outcome = QueueOutcome(
        sojourns=waits + kept,
        services=kept,
        arrivals=kept_arrivals,
        dropped=dropped,
        components={COMP_QUEUE_WAIT: waits, COMP_SERVICE: kept},
    )
    if trace.TRACING:
        _emit_queue_series(outcome, dropped_total=outcome.dropped)
    return outcome


def simulate_sharded(
    rate: float,
    cores: int,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> QueueOutcome:
    """Simulate one RSS shard of a ``cores``-way packet service.

    The shard sees rate/cores arrivals; its latency distribution equals the
    system's (all shards are exchangeable), and system throughput is the
    shard's times ``cores``.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return simulate_gg1(
        rate / cores, service_sampler, n_requests, rng, arrival_cv, queue_limit
    )


def lindley_waits_stacked(gaps: np.ndarray, services: np.ndarray) -> np.ndarray:
    """Closed-form Lindley waits for a stack of ladders sharing services.

    ``gaps`` is ``(L, n)`` — one row of interarrival gaps per rate rung —
    and ``services`` is the shared ``(n,)`` service array.  Row ``r`` of
    the result equals ``lindley_waits(gaps[r], services)``: the cumsum /
    running-minimum closed form applies along axis 1 unchanged, so a
    whole rate ladder costs one vectorized pass instead of L dispatches.
    """
    gaps = np.asarray(gaps, dtype=float)
    services = np.asarray(services, dtype=float)
    if gaps.ndim != 2 or gaps.shape[1] != services.shape[0]:
        raise ValueError("gaps must be (L, n) with services of length n")
    ladder, n = gaps.shape
    if n == 0:
        return np.empty((ladder, 0))
    increments = np.empty((ladder, n))
    increments[:, 0] = 0.0
    np.subtract(services[None, :-1], gaps[:, 1:], out=increments[:, 1:])
    cumulative = np.cumsum(increments, axis=1, out=increments)
    floor = np.minimum.accumulate(cumulative, axis=1)
    return cumulative - floor


def _unit_gaps(
    n_requests: int, rng: np.random.Generator, arrival_cv: float
) -> np.ndarray:
    """Rate-free interarrival gaps (mean 1); divide by a rate to use.

    Exploits the scale family of every supported arrival process —
    deterministic, exponential, and gamma gaps all scale linearly in the
    mean gap — so one draw serves every rung of a ladder.
    """
    if arrival_cv == 0.0:
        return np.ones(n_requests)
    if arrival_cv == 1.0:
        return rng.exponential(1.0, size=n_requests)
    shape = 1.0 / (arrival_cv**2)
    return rng.gamma(shape, 1.0 / shape, size=n_requests)


def simulate_gg1_ladder(
    rates,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> list:
    """Simulate a whole rate ladder against one shared set of draws.

    One unit-mean gap array and one service array are sampled once and
    shared by every rung (``rates[r]`` scales the gaps); the no-drop
    waits of all rungs are computed in a single stacked Lindley pass and
    only rungs whose optimistic waits overflow ``queue_limit`` pay the
    per-row bounded-buffer fixed point.  Returns one
    :class:`QueueOutcome` per rate, same semantics as per-rate
    :func:`simulate_gg1` calls (over different, shared, draws).
    """
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or len(rates) == 0:
        raise ValueError("rates must be a non-empty 1-D sequence")
    if np.any(rates <= 0):
        raise ValueError("rates must be positive")
    unit = _unit_gaps(n_requests, rng, arrival_cv)
    services = np.asarray(service_sampler(rng, n_requests), dtype=float)
    if services.shape != (n_requests,):
        raise ValueError("service sampler returned wrong shape")
    gaps = unit[None, :] / rates[:, None]
    arrivals = np.cumsum(gaps, axis=1)
    waits = lindley_waits_stacked(gaps, services)
    outcomes = []
    for row in range(len(rates)):
        if queue_limit is None or (len(waits[row]) and
                                   waits[row].max() <= queue_limit):
            outcome = QueueOutcome(
                sojourns=waits[row] + services,
                services=services,
                arrivals=arrivals[row],
                components={COMP_QUEUE_WAIT: waits[row],
                            COMP_SERVICE: services},
            )
        else:
            kept_mask, kept_waits = bounded_waits(
                arrivals[row], services, queue_limit)
            dropped = int(n_requests - kept_mask.sum())
            kept = services[kept_mask] if dropped else services
            kept_arrivals = arrivals[row][kept_mask] if dropped else arrivals[row]
            outcome = QueueOutcome(
                sojourns=kept_waits + kept,
                services=kept,
                arrivals=kept_arrivals,
                dropped=dropped,
                components={COMP_QUEUE_WAIT: kept_waits, COMP_SERVICE: kept},
            )
        if trace.TRACING:
            _emit_queue_series(outcome, dropped_total=outcome.dropped)
        outcomes.append(outcome)
    return outcomes


def simulate_sharded_ladder(
    rates,
    cores: int,
    service_sampler: ServiceSampler,
    n_requests: int,
    rng: np.random.Generator,
    arrival_cv: float = 1.0,
    queue_limit: Optional[float] = None,
) -> list:
    """Ladder variant of :func:`simulate_sharded`: one shard per rung,
    every rung sharing the same sampled draws."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    shard_rates = np.asarray(rates, dtype=float) / cores
    return simulate_gg1_ladder(
        shard_rates, service_sampler, n_requests, rng, arrival_cv, queue_limit
    )


def simulate_batch_server(
    rate: float,
    n_requests: int,
    rng: np.random.Generator,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
    arrival_cv: float = 1.0,
) -> QueueOutcome:
    """Simulate an accelerator-style batch server.

    Items accumulate until ``batch_size`` are waiting or ``batch_timeout``
    elapses since the first queued item, then the whole batch is served in
    ``setup_time + k * per_item_time``.  This is how the BlueField-2 REM and
    compression engines are driven through DOCA (§2.2): the SNIC CPU stages
    buffers and submits multi-buffer tasks.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    arrivals = np.cumsum(_batch_gaps(rate, n_requests, rng, arrival_cv))
    return _batch_outcome_from_arrivals(
        arrivals, batch_size, batch_timeout, setup_time, per_item_time
    )


def simulate_batch_server_ladder(
    rates,
    n_requests: int,
    rng: np.random.Generator,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
    arrival_cv: float = 1.0,
) -> list:
    """Ladder variant of :func:`simulate_batch_server`.

    One unit-mean gap array is drawn and shared by every rung (the
    arrival prefix sums scale linearly in the mean gap); the batch
    chaining itself stays per-rung since dispatch boundaries depend on
    the absolute arrival times.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rates = np.asarray(rates, dtype=float)
    if rates.ndim != 1 or len(rates) == 0:
        raise ValueError("rates must be a non-empty 1-D sequence")
    if np.any(rates <= 0):
        raise ValueError("rates must be positive")
    unit_arrivals = np.cumsum(_unit_gaps(n_requests, rng, arrival_cv))
    return [
        _batch_outcome_from_arrivals(
            unit_arrivals / rate, batch_size, batch_timeout,
            setup_time, per_item_time,
        )
        for rate in rates
    ]


def _batch_outcome_from_arrivals(
    arrivals: np.ndarray,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
) -> QueueOutcome:
    counts, dispatches, spans, finishes = _batch_schedule(
        arrivals, batch_size, batch_timeout, setup_time, per_item_time
    )
    # Payload arrays in one shot: every member of a batch shares its
    # dispatch/finish/span, so the per-batch columns expand with repeat.
    counts_arr = np.asarray(counts, dtype=np.intp)
    dispatch_arr = np.repeat(dispatches, counts_arr)
    sojourns = np.repeat(finishes, counts_arr) - arrivals
    services = np.repeat(setup_time / counts_arr + per_item_time, counts_arr)
    # Attribution: a request waits for its batch to form/dispatch,
    # then experiences the full batch service span.
    batch_waits = dispatch_arr - arrivals
    service_spans = np.repeat(spans, counts_arr)

    outcome = QueueOutcome(
        sojourns=sojourns, services=services, arrivals=arrivals,
        components={COMP_BATCH_WAIT: batch_waits, COMP_SERVICE: service_spans},
    )
    if trace.TRACING:
        _emit_batch_series(list(zip(dispatches, counts, spans)))
        _emit_queue_series(outcome, dropped_total=0)
    return outcome


def _batch_gaps(
    rate: float, n_requests: int, rng: np.random.Generator, arrival_cv: float
) -> np.ndarray:
    """Arrival gaps for the batch server (shared with the reference)."""
    mean_gap = 1.0 / rate
    if arrival_cv == 0.0:
        return np.full(n_requests, mean_gap)
    shape = 1.0 / max(arrival_cv, 1e-9) ** 2
    return (
        rng.exponential(mean_gap, size=n_requests)
        if arrival_cv == 1.0
        else rng.gamma(shape, mean_gap / shape, size=n_requests)
    )


def _batch_schedule(
    arrivals: np.ndarray,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
) -> tuple:
    """Batch boundaries, dispatch and finish times for every batch.

    The timeout cut of every *potential* batch start is one vectorized
    ``searchsorted`` over the arrival prefix (`timeout-end[i]` = first
    arrival past `arrivals[i] + batch_timeout`); chaining the batches is
    then O(1) per batch on plain Python floats — bisect only when a
    busy engine lets late arrivals join a timed-out batch.  Arithmetic
    is identical to the retained reference loop, so dispatch/finish
    times match it bit for bit.
    """
    n = len(arrivals)
    timeout_end = np.searchsorted(
        arrivals, arrivals + batch_timeout, side="right"
    ).tolist()
    arr = arrivals.tolist()
    counts: list = []
    dispatches: list = []
    spans: list = []
    finishes: list = []
    server_free_at = 0.0
    index = 0
    while index < n:
        end = min(index + batch_size, max(timeout_end[index], index + 1))
        if end - index >= batch_size:
            # Batch filled: dispatch as soon as the last member arrived and
            # the engine is free.
            last_arrival = arr[end - 1]
            dispatch = last_arrival if last_arrival > server_free_at else server_free_at
        else:
            # Timeout-driven dispatch; while the engine is still busy past
            # the deadline, late arrivals may still join (up to batch_size).
            deadline = arr[index] + batch_timeout
            dispatch = deadline if deadline > server_free_at else server_free_at
            if dispatch > deadline and end < n:
                end = min(index + batch_size,
                          bisect_right(arr, dispatch, end, n))
        batch = end - index
        span = setup_time + batch * per_item_time
        finish = dispatch + span
        counts.append(batch)
        dispatches.append(dispatch)
        spans.append(span)
        finishes.append(finish)
        server_free_at = finish
        index = end
    return counts, dispatches, spans, finishes


def simulate_batch_server_reference(
    rate: float,
    n_requests: int,
    rng: np.random.Generator,
    batch_size: int,
    batch_timeout: float,
    setup_time: float,
    per_item_time: float,
    arrival_cv: float = 1.0,
) -> QueueOutcome:
    """Scalar batch-server loop: the oracle the vectorized path must match."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    arrivals = np.cumsum(_batch_gaps(rate, n_requests, rng, arrival_cv))
    sojourns = np.empty(n_requests)
    services = np.empty(n_requests)
    batch_waits = np.empty(n_requests)
    service_spans = np.empty(n_requests)

    server_free_at = 0.0
    index = 0
    while index < n_requests:
        deadline = arrivals[index] + batch_timeout
        end = index + 1
        while (
            end < n_requests
            and end - index < batch_size
            and arrivals[end] <= deadline
        ):
            end += 1
        if end - index >= batch_size:
            dispatch = max(arrivals[end - 1], server_free_at)
        else:
            dispatch = max(deadline, server_free_at)
            while (
                end < n_requests
                and end - index < batch_size
                and arrivals[end] <= dispatch
            ):
                end += 1
        batch = end - index
        span = setup_time + batch * per_item_time
        finish = dispatch + span
        sojourns[index:end] = finish - arrivals[index:end]
        services[index:end] = setup_time / batch + per_item_time
        batch_waits[index:end] = dispatch - arrivals[index:end]
        service_spans[index:end] = span
        server_free_at = finish
        index = end

    return QueueOutcome(
        sojourns=sojourns, services=services, arrivals=arrivals,
        components={COMP_BATCH_WAIT: batch_waits, COMP_SERVICE: service_spans},
    )


def _emit_queue_series(outcome: QueueOutcome, dropped_total: int = 0) -> None:
    """Per-window queue-depth / utilization counters onto the trace.

    Vectorized over window edges (searchsorted + histogram) so the cost
    is independent of the request count; capped at
    :data:`trace.MAX_SERIES_POINTS` windows per probe so a long run
    cannot flood the ring buffer.  Only called when tracing is enabled.
    """
    n = len(outcome.sojourns)
    rec = trace.recorder()
    if n == 0 or rec is None:
        return
    completions = outcome.completions()
    horizon = float(completions.max())
    if horizon <= 0:
        return
    interval = rec.metrics_interval_s
    n_windows = int(np.ceil(horizon / interval))
    if n_windows > trace.MAX_SERIES_POINTS:
        n_windows = trace.MAX_SERIES_POINTS
        interval = horizon / n_windows
    edges = np.arange(1, n_windows + 1) * interval
    sorted_completions = np.sort(completions)
    arrived = np.searchsorted(outcome.arrivals, edges, side="right")
    done = np.searchsorted(sorted_completions, edges, side="right")
    depth = arrived - done
    busy, _ = np.histogram(completions, bins=np.concatenate(([0.0], edges)),
                           weights=outcome.services)
    util = np.minimum(busy / interval, 1.0)
    track = trace.subtrack("queue")
    # One batched emission for the whole series; the columns are built
    # vectorized and rounded exactly like the old per-window loop did
    # (np.round matches round() on these non-negative values).
    trace.counter_series(
        "queue", trace.QUEUE, ts_seconds=[float(t) for t in edges], track=track,
        depth=[int(d) for d in depth],
        util=[float(u) for u in np.round(util, 6)],
    )
    if dropped_total:
        trace.instant("queue.dropped", trace.QUEUE, ts=horizon, track=track,
                      dropped=dropped_total)


def _emit_batch_series(batch_log) -> None:
    """Batch-formation spans for the accelerator fast path (trace-only)."""
    step = max(1, len(batch_log) // trace.MAX_SERIES_POINTS)
    track = trace.subtrack("batches")
    for dispatch, batch, span in batch_log[::step]:
        trace.complete("batch", trace.ACCEL_BATCH, ts=dispatch, dur=span,
                       track=track, size=batch)


def attribute_outcome(
    outcome: QueueOutcome, warmup_fraction: float = 0.1
) -> Dict[str, float]:
    """Latency attribution over the measurement window.

    Returns ``attr.*`` floats for :attr:`RunMetrics.extra`: the mean of
    each component over the kept (post-warmup) requests — these sum to
    the reported mean sojourn exactly — plus the tail-conditional means
    (requests at or above the kept p99), which sum to ``attr.tail_mean_s``
    and show *where* the p99 comes from.
    """
    n = len(outcome.sojourns)
    if n == 0 or not outcome.components:
        return {}
    skip = int(n * warmup_fraction)
    kept = outcome.sojourns[skip:]
    if kept.size == 0:
        return {}
    p99 = np.percentile(kept, 99.0)
    tail = kept >= p99
    result = {
        "attr.sojourn_mean_s": float(np.mean(kept)),
        "attr.tail_mean_s": float(np.mean(kept[tail])),
    }
    for name in COMPONENTS:
        values = outcome.components.get(name)
        if values is None:
            continue
        kept_values = values[skip:]
        result[f"attr.{name}_mean_s"] = float(np.mean(kept_values))
        result[f"attr.{name}_tail_s"] = float(np.mean(kept_values[tail]))
    return result


def outcome_to_metrics(
    outcome: QueueOutcome,
    offered_rate: float,
    bytes_per_request: float,
    cores: int = 1,
    warmup_fraction: float = 0.1,
) -> RunMetrics:
    """Convert raw queue results to the standard RunMetrics record.

    For sharded runs pass the *system* offered rate and the shard count;
    completion rates scale back up by ``cores``.
    """
    n = len(outcome.sojourns)
    total = n + outcome.dropped
    if n == 0:
        return RunMetrics(
            offered_rate=offered_rate,
            duration=0.0,
            completed=0,
            completed_rate=0.0,
            goodput_gbps=0.0,
            latency_p50=float("inf"),
            latency_p99=float("inf"),
            latency_mean=float("inf"),
            dropped=outcome.dropped,
        )
    skip = int(n * warmup_fraction)
    kept = outcome.sojourns[skip:]
    completions = outcome.completions()
    duration = float(completions.max() - (outcome.arrivals[skip] if skip < n else 0.0))
    # Arrivals in `outcome` are the *served* requests only (drops were
    # removed), so their rate over the run span IS the served rate.  A
    # degenerate span (single request at t=0, or a zero-gap burst) gives
    # no rate information — report 0 rather than divide by zero.
    run_span = float(outcome.arrivals[-1])
    served_rate = n / run_span if run_span > 0.0 else 0.0
    # A shard saturates when completions lag arrivals; detect via backlog at
    # the end of the run growing beyond a few service times.
    tail_backlog = float(completions[-1] - outcome.arrivals[-1])
    mean_service = float(np.mean(outcome.services))
    overloaded = tail_backlog > max(50 * mean_service, 0.05 * run_span)
    effective_rate = served_rate * cores
    if overloaded and mean_service > 0:
        effective_rate = min(effective_rate, cores / mean_service)
    latency = summarize_samples(kept)
    return RunMetrics(
        offered_rate=offered_rate,
        duration=duration,
        completed=n,
        completed_rate=effective_rate,
        goodput_gbps=effective_rate * bytes_per_request * 8 / 1e9,
        latency_p50=latency.p50,
        latency_p99=latency.p99,
        latency_mean=latency.mean,
        dropped=outcome.dropped,
        # Same warmup window as the latency summary, so the component
        # means sum to latency_mean exactly.
        extra=attribute_outcome(outcome, warmup_fraction),
    )
