"""Unit helpers.

The kernel's base time unit is the second and the base data unit is the
byte; these helpers keep experiment code readable and eliminate conversion
mistakes (Gb/s vs GB/s is the classic one in NIC papers).
"""

from __future__ import annotations

# -- time ---------------------------------------------------------------

NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def nanoseconds(value: float) -> float:
    return value * NS


def microseconds(value: float) -> float:
    return value * US


def milliseconds(value: float) -> float:
    return value * MS


def to_microseconds(seconds: float) -> float:
    return seconds / US


# -- data ---------------------------------------------------------------

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

BITS_PER_BYTE = 8


def gbps_to_bytes_per_second(gbps: float) -> float:
    """Decimal gigabits per second -> bytes per second (network convention)."""
    return gbps * 1e9 / BITS_PER_BYTE


def bytes_per_second_to_gbps(bps: float) -> float:
    return bps * BITS_PER_BYTE / 1e9


def packets_per_second(gbps: float, packet_bytes: int, overhead_bytes: int = 0) -> float:
    """Packet rate achieving ``gbps`` of goodput at a given packet size.

    ``overhead_bytes`` covers per-packet wire overhead (preamble, IFG,
    Ethernet framing) when line-rate limits matter.
    """
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    return gbps_to_bytes_per_second(gbps) / (packet_bytes + overhead_bytes)


# Ethernet per-packet wire overhead: preamble+SFD (8) + IFG (12).  The FCS
# is already part of the minimum 64 B frame.
ETHERNET_WIRE_OVERHEAD = 20
# Minimum Ethernet frame payload handling: 64 B frames on the wire.
MTU = 1500


def line_rate_pps(gbps: float, packet_bytes: int) -> float:
    """Maximum packets/s the wire itself allows at a given frame size."""
    frame = max(packet_bytes, 64)
    return gbps_to_bytes_per_second(gbps) / (frame + ETHERNET_WIRE_OVERHEAD)


# -- energy ---------------------------------------------------------------

KWH = 3.6e6  # joules per kilowatt-hour


def joules_to_kwh(joules: float) -> float:
    return joules / KWH
