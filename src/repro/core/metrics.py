"""Measurement instruments for simulated experiments.

The paper's methodology is: drive a function at a fixed offered rate, then
report the sustained throughput and the p99 of per-request latency at that
rate.  These classes implement that methodology, including warmup trimming
(the paper discards ramp-up) and streaming quantile estimation for long
runs where storing every sample would be wasteful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """p50/p99/mean/max of one latency sample set, computed in one pass."""

    count: int
    p50: float
    p99: float
    mean: float
    max: float


_EMPTY_SUMMARY = LatencySummary(
    count=0, p50=float("inf"), p99=float("inf"), mean=float("inf"),
    max=float("inf"),
)


def summarize_samples(samples: np.ndarray) -> LatencySummary:
    """Summary statistics with a single array conversion and percentile
    call — the per-probe alternative to four separate reductions."""
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        return _EMPTY_SUMMARY
    p50, p99 = np.percentile(data, (50.0, 99.0))
    return LatencySummary(
        count=int(data.size),
        p50=float(p50),
        p99=float(p99),
        mean=float(np.mean(data)),
        max=float(np.max(data)),
    )


class LatencyRecorder:
    """Collects per-request latency samples after a warmup boundary."""

    def __init__(self, warmup_until: float = 0.0):
        self.warmup_until = warmup_until
        self._samples: List[float] = []
        self._dropped_warmup = 0

    def record(self, completion_time: float, latency: float) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency}")
        if completion_time < self.warmup_until:
            self._dropped_warmup += 1
            return
        self._samples.append(latency)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def warmup_count(self) -> int:
        return self._dropped_warmup

    def percentile(self, q: float) -> float:
        """q in [0, 100]; returns +inf when no samples were kept."""
        if not self._samples:
            return float("inf")
        return float(np.percentile(np.asarray(self._samples), q))

    def p50(self) -> float:
        return self.percentile(50.0)

    def p99(self) -> float:
        return self.percentile(99.0)

    def mean(self) -> float:
        if not self._samples:
            return float("inf")
        return float(np.mean(self._samples))

    def max(self) -> float:
        if not self._samples:
            return float("inf")
        return float(np.max(self._samples))

    def summary(self) -> LatencySummary:
        """All summary statistics from one conversion of the sample list
        (``percentile``/``mean``/``max`` each convert separately)."""
        return summarize_samples(self._samples)


class ThroughputMeter:
    """Counts completed requests/bytes inside the measurement window."""

    def __init__(self, warmup_until: float = 0.0):
        self.warmup_until = warmup_until
        self.requests = 0
        self.bytes = 0
        self.first_completion: Optional[float] = None
        self.last_completion: Optional[float] = None

    def record(self, completion_time: float, nbytes: int = 0) -> None:
        if completion_time < self.warmup_until:
            return
        self.requests += 1
        self.bytes += nbytes
        if self.first_completion is None:
            self.first_completion = completion_time
        self.last_completion = completion_time

    def request_rate(self, window: float) -> float:
        """Completed requests per second over an explicit window length."""
        if window <= 0:
            return 0.0
        return self.requests / window

    def byte_rate(self, window: float) -> float:
        if window <= 0:
            return 0.0
        return self.bytes / window

    def gbps(self, window: float) -> float:
        return self.byte_rate(window) * 8 / 1e9


class P2Quantile:
    """The P-squared streaming quantile estimator (Jain & Chlamtac 1985).

    Used for very long power-trace runs; bounded memory, no sample storage.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self._initial: List[float] = []
        self._n: List[int] = []
        self._np: List[float] = []
        self._heights: List[float] = []
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._n = [1, 2, 3, 4, 5]
                q = self.q
                self._np = [1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5]
            return
        heights, n = self._heights, self._n
        if value < heights[0]:
            heights[0] = value
            k = 0
        elif value >= heights[4]:
            heights[4] = value
            k = 3
        else:
            k = 0
            for i in range(1, 4):
                if value < heights[i]:
                    k = i - 1
                    break
            else:
                k = 3
        for i in range(k + 1, 5):
            n[i] += 1
        q = self.q
        increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        for i in range(5):
            self._np[i] += increments[i]
        for i in range(1, 4):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                sign = 1 if d >= 1 else -1
                candidate = self._parabolic(i, sign)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, sign: int) -> float:
        n, h = self._n, self._heights
        return h[i] + sign * (h[i + sign] - h[i]) / (n[i + sign] - n[i])

    def value(self) -> float:
        if self.count == 0:
            return float("nan")
        if len(self._initial) < 5 or not self._heights:
            data = sorted(self._initial)
            index = min(len(data) - 1, int(math.ceil(self.q * len(data))) - 1)
            return data[max(index, 0)]
        return self._heights[2]


@dataclass
class RunMetrics:
    """Everything one fixed-rate run produces.

    Latencies are seconds; throughput fields are per second over the
    measurement window.
    """

    offered_rate: float
    duration: float
    completed: int
    completed_rate: float
    goodput_gbps: float
    latency_p50: float
    latency_p99: float
    latency_mean: float
    dropped: int = 0
    # Mostly numeric side-channels; failed probes also record the error
    # type/message strings here (see core.sweep._failed_probe_metrics).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def sustained(self) -> bool:
        """Did the system keep up with the offered load (within 2 %)?"""
        if self.offered_rate <= 0:
            return True
        return self.completed_rate >= 0.98 * self.offered_rate

    def latency_p99_us(self) -> float:
        return self.latency_p99 / 1e-6
