"""Process-local instrumentation counters (shim over :mod:`repro.obs`).

The experiment stack counts cheap, coarse things — rate probes run,
cache hits, kernel events, trace-buffer evictions — so the CLI can
report what a command actually did.  Counters are keyed by *any* dotted
name (the well-known names below are just constants); the parallel
executor snapshots them around each work unit in the worker process and
ships the delta back, so parent-side totals are identical whether a
study ran with ``--jobs 1`` or ``--jobs N``.

Since the typed metric registry landed (:mod:`repro.obs.metrics`), this
module is a thin back-compat shim over the default registry's counters:
the dict-of-ints API every call site and test uses is preserved exactly,
while the same counters also appear in OpenMetrics exposition
(``--metrics-out``, ``--metrics-port``) alongside gauges and histograms.
"""

from __future__ import annotations

from typing import Dict

from ..obs import metrics as _metrics

PROBES = "probes"
# Probes an analytic warm start avoided versus the equivalent cold
# search (an estimate: the cold control flow replayed against the found
# rate) — see core.sweep.find_max_sustainable_rate(warm_start=...).
PROBES_SAVED = "probe.saved"
# Hybrid engine accounting (DESIGN.md "Hybrid probe engine"): every
# probe evaluation increments PROBES; PROBES_SIMULATED counts the ones
# actually run through a queueing kernel, ANALYTIC_HITS the ones served
# by the validated analytic fast path (so PROBES == simulated +
# analytic), and SAMPLES_REUSED the simulated probes that reused a
# sibling rung's sampled service/interarrival/RTT arrays instead of
# drawing fresh ones.
PROBES_SIMULATED = "probe.simulated"
ANALYTIC_HITS = "analytic.hits"
SAMPLES_REUSED = "probe.samples_reused"
CACHE_HITS = "cache_hits"
CACHE_MISSES = "cache_misses"
# Disk-cache entries that failed to unpickle and were quarantined to a
# ``*.corrupt`` sibling (never silently swallowed) — see core.cache.
CACHE_CORRUPT = "cache.corrupt"
# Run-farm supervision counters (runfarm/): unit attempts that hit the
# wall-clock deadline and were SIGKILLed, workers that died mid-unit,
# harness-level retries, units quarantined as poison pills after
# exhausting attempts, units served from a prior run's manifest +
# artifact store on --resume, and worker heartbeats observed by the
# parent-side health monitor.
RUNFARM_TIMEOUTS = "runfarm.timeout"
RUNFARM_WORKER_LOST = "runfarm.worker_lost"
RUNFARM_RETRIES = "runfarm.retries"
RUNFARM_QUARANTINED = "runfarm.quarantined"
RUNFARM_RESUMED = "runfarm.resumed"
RUNFARM_HEARTBEATS = "runfarm.heartbeats"
RUNFARM_WORKERS_HUNG = "runfarm.workers_hung"
RUNFARM_WORKERS_SLOW = "runfarm.workers_slow"
# Kernel flight-recorder counters (PR 3): folded by Simulator.run() and
# the trace ring buffer; merged across workers like every other counter.
EVENTS_SCHEDULED = "sim.events_scheduled"
EVENTS_FIRED = "sim.events_fired"
TRACE_DROPPED = "trace.dropped"
# SLO burn monitor (obs/slo.py): targets evaluated and breaches seen.
SLO_EVALUATED = "slo.evaluated"
SLO_BREACHES = "slo.breaches"


def increment(name: str, amount: int = 1) -> None:
    _metrics.registry().counter(name).inc(amount)


def value(name: str) -> int:
    metric = _metrics.registry().get(name)
    if metric is None or metric.kind != _metrics.COUNTER:
        return 0
    return metric.value


def snapshot() -> Dict[str, int]:
    """A copy of every counter (used to compute per-unit deltas)."""
    return _metrics.registry().counter_values()


def delta_since(before: Dict[str, int]) -> Dict[str, int]:
    """Counter increments since ``before`` (a prior :func:`snapshot`)."""
    return {
        name: count - before.get(name, 0)
        for name, count in _metrics.registry().counter_values().items()
        if count != before.get(name, 0)
    }


def merge(delta: Dict[str, int]) -> None:
    """Fold a worker-side delta into this process's counters."""
    for name, amount in delta.items():
        increment(name, amount)


def reset() -> None:
    """Clear the whole default metric registry (counters and all)."""
    _metrics.reset()
