"""Deterministic random-stream management.

Every stochastic component (packet generator, YCSB key chooser, sensor
noise, ...) draws from its own named substream derived from one root seed,
so adding a component never perturbs the draws seen by another and whole
experiments replay bit-identically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A registry of named, independent numpy Generators."""

    def __init__(self, root_seed: int = 0x51C0_BEEF):
        self.root_seed = root_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the substream for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            seed = np.random.SeedSequence([self.root_seed, _stable_hash(name)])
            generator = np.random.Generator(np.random.PCG64(seed))
            self._streams[name] = generator
        return generator

    def fresh(self, name: str) -> np.random.Generator:
        """A NEW generator for ``name`` at its initial state.

        Unlike :meth:`stream` — which memoizes the generator so later
        callers continue the sequence — every call returns identical
        draws.  Use for measurements that may legitimately re-sample the
        same substream (the hybrid engine's batched rate ladders, whose
        arrays must be a pure function of ``(root_seed, name)`` no
        matter how many window/degradation passes re-run them).  Never
        mix with :meth:`stream` on the same name: the registry stream's
        first draws would silently correlate with every fresh draw.
        """
        seed = np.random.SeedSequence([self.root_seed, _stable_hash(name)])
        return np.random.Generator(np.random.PCG64(seed))

    def fork(self, salt: int) -> "RandomStreams":
        """A new registry whose streams are independent of this one."""
        return RandomStreams(root_seed=_mix(self.root_seed, salt))


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash (Python's ``hash`` is salted per run)."""
    value = 0xCBF29CE484222325
    for byte in name.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value >> 1


def _mix(a: int, b: int) -> int:
    return _stable_hash(f"{a}:{b}")
