"""Maximum-sustainable-throughput search.

The paper reports, per function and platform, "the packet rate at which we
get the maximum throughput" and "the p99 latency at that rate" (§4).  This
module implements that procedure against any ``run_at(rate) -> RunMetrics``
callable: a coarse geometric scan brackets the saturation point, then a
binary search refines it, and the metrics of the highest sustained rate are
returned.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from . import trace
from .metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ParallelExecutor

logger = logging.getLogger("repro.sweep")

RunFn = Callable[[float], RunMetrics]


@dataclass
class SweepResult:
    """Outcome of a max-throughput search."""

    max_rate: float
    metrics: RunMetrics
    probes: List[RunMetrics] = field(default_factory=list)

    @property
    def p99(self) -> float:
        return self.metrics.latency_p99

    @property
    def goodput_gbps(self) -> float:
        return self.metrics.goodput_gbps

    @property
    def sustainable(self) -> bool:
        """Did any probe actually sustain its offered rate?"""
        return any(m.sustained for m in self.probes)

    @property
    def failed_probes(self) -> int:
        """Probes whose ``run_at`` raised (recorded, not propagated)."""
        return sum(1 for m in self.probes if m.extra.get("probe_failed"))


def _failed_probe_metrics(rate: float, error: Exception) -> RunMetrics:
    """A well-defined sentinel for a probe whose ``run_at`` raised.

    The exception is recorded in ``extra`` so failed probes remain
    diagnosable from ``SweepResult.probes`` after the search returns.
    """
    return RunMetrics(
        offered_rate=rate,
        duration=0.0,
        completed=0,
        completed_rate=0.0,
        goodput_gbps=0.0,
        latency_p50=float("inf"),
        latency_p99=float("inf"),
        latency_mean=float("inf"),
        dropped=0,
        extra={
            "probe_failed": 1.0,
            "error_type": type(error).__name__,
            "error_message": str(error)[:500],
        },
    )


def _acceptable(metrics: RunMetrics, slo_p99: Optional[float]) -> bool:
    if not metrics.sustained:
        return False
    if slo_p99 is not None and metrics.latency_p99 > slo_p99:
        return False
    return True


def find_max_sustainable_rate(
    run_at: RunFn,
    low_rate: float,
    high_rate: float,
    slo_p99: Optional[float] = None,
    tolerance: float = 0.02,
    max_probes: int = 40,
) -> SweepResult:
    """Search [low_rate, high_rate] for the highest acceptable offered rate.

    ``slo_p99`` (seconds) optionally bounds the p99 at the chosen point —
    this is how SLO-constrained operating points are located.  ``tolerance``
    is the relative width at which bisection stops.

    A ``run_at`` that raises is contained: the failed probe is recorded in
    ``SweepResult.probes`` (see ``SweepResult.failed_probes``) and treated
    as unsustainable.  If nothing — including the floor — sustains, the
    result still carries ``max_rate=low_rate`` with ``sustainable`` False:
    a well-defined "no sustainable rate" answer instead of an exception
    mid-search.
    """
    if low_rate <= 0 or high_rate <= low_rate:
        raise ValueError("need 0 < low_rate < high_rate")

    probes: List[RunMetrics] = []

    def probe(rate: float) -> RunMetrics:
        # A probe that raises (a fault scenario with a dead path, a model
        # bug at an extreme rate) must not abort the whole search: record
        # it as an unsustainable point and let the bracketing continue.
        try:
            metrics = run_at(rate)
        except Exception as error:  # noqa: BLE001 — deliberate containment
            logger.warning("probe at rate %.6g failed (%s: %s); contained",
                           rate, type(error).__name__, error)
            metrics = _failed_probe_metrics(rate, error)
        probes.append(metrics)
        if trace.TRACING:
            trace.instant(
                "sweep.probe", trace.PROBE,
                rate=round(rate, 6),
                sustained=bool(metrics.sustained),
                p99_us=(round(metrics.latency_p99 * 1e6, 3)
                        if metrics.latency_p99 != float("inf") else -1.0),
                failed=bool(metrics.extra.get("probe_failed")),
            )
        return metrics

    best: Optional[RunMetrics] = None

    low_metrics = probe(low_rate)
    if not _acceptable(low_metrics, slo_p99):
        # Even the floor rate violates: report the floor as the max point.
        return SweepResult(max_rate=low_rate, metrics=low_metrics, probes=probes)
    best = low_metrics

    # Geometric ramp until the first unacceptable rate or the ceiling.
    lo, hi = low_rate, None
    rate = low_rate
    while len(probes) < max_probes:
        rate = min(rate * 2.0, high_rate)
        metrics = probe(rate)
        if _acceptable(metrics, slo_p99):
            best, lo = metrics, rate
            if rate >= high_rate:
                return SweepResult(max_rate=rate, metrics=metrics, probes=probes)
        else:
            hi = rate
            break

    if hi is None:  # probe budget exhausted while still sustaining
        return SweepResult(max_rate=lo, metrics=best, probes=probes)

    # Bisection between last-good and first-bad.
    while hi - lo > tolerance * hi and len(probes) < max_probes:
        mid = (lo + hi) / 2.0
        metrics = probe(mid)
        if _acceptable(metrics, slo_p99):
            best, lo = metrics, mid
        else:
            hi = mid

    return SweepResult(max_rate=lo, metrics=best, probes=probes)


def rate_response_curve(
    run_at: RunFn,
    rates: List[float],
    executor: Optional["ParallelExecutor"] = None,
) -> Dict[float, RunMetrics]:
    """Measure a fixed ladder of offered rates (used for Fig. 5 style plots).

    The ladder points are mutually independent, so an optional
    :class:`~repro.core.executor.ParallelExecutor` fans them across
    worker processes.  ``run_at`` must then be a pure, picklable
    function of the rate (module-level, deriving its own RNG streams);
    closures that cannot be pickled are detected and run serially.
    """
    if executor is None:
        return {rate: run_at(rate) for rate in rates}
    from .executor import WorkUnit  # local import: avoid cycle at import time

    units = [
        WorkUnit(name=f"rate:{rate:.6g}", fn=run_at, args=(rate,))
        for rate in rates
    ]
    return dict(zip(rates, executor.map(units)))
