"""Maximum-sustainable-throughput search.

The paper reports, per function and platform, "the packet rate at which we
get the maximum throughput" and "the p99 latency at that rate" (§4).  This
module implements that procedure against any ``run_at(rate) -> RunMetrics``
callable: a coarse geometric scan brackets the saturation point, then a
binary search refines it, and the metrics of the highest sustained rate are
returned.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from . import instrument, trace
from .metrics import RunMetrics

if TYPE_CHECKING:  # pragma: no cover
    from .executor import ParallelExecutor

logger = logging.getLogger("repro.sweep")

RunFn = Callable[[float], RunMetrics]


@dataclass
class SweepResult:
    """Outcome of a max-throughput search."""

    max_rate: float
    metrics: RunMetrics
    probes: List[RunMetrics] = field(default_factory=list)

    @property
    def p99(self) -> float:
        return self.metrics.latency_p99

    @property
    def goodput_gbps(self) -> float:
        return self.metrics.goodput_gbps

    @property
    def sustainable(self) -> bool:
        """Did any probe actually sustain its offered rate?"""
        return any(m.sustained for m in self.probes)

    @property
    def failed_probes(self) -> int:
        """Probes whose ``run_at`` raised (recorded, not propagated)."""
        return sum(1 for m in self.probes if m.extra.get("probe_failed"))


def _failed_probe_metrics(rate: float, error: Exception) -> RunMetrics:
    """A well-defined sentinel for a probe whose ``run_at`` raised.

    The exception is recorded in ``extra`` so failed probes remain
    diagnosable from ``SweepResult.probes`` after the search returns.
    """
    return RunMetrics(
        offered_rate=rate,
        duration=0.0,
        completed=0,
        completed_rate=0.0,
        goodput_gbps=0.0,
        latency_p50=float("inf"),
        latency_p99=float("inf"),
        latency_mean=float("inf"),
        dropped=0,
        extra={
            "probe_failed": 1.0,
            "error_type": type(error).__name__,
            "error_message": str(error)[:500],
        },
    )


def _acceptable(metrics: RunMetrics, slo_p99: Optional[float]) -> bool:
    if not metrics.sustained:
        return False
    if slo_p99 is not None and metrics.latency_p99 > slo_p99:
        return False
    return True


# Warm-start bracket shape: probe (1 - _WARM_BELOW) and (1 + _WARM_ABOVE)
# times the analytic capacity estimate and bisect between them.
_WARM_BELOW = 0.25
_WARM_ABOVE = 0.10


def _cold_probe_count(
    low_rate: float,
    high_rate: float,
    max_rate: float,
    tolerance: float,
    max_probes: int,
) -> int:
    """Probes the *cold* search would spend to land on ``max_rate``.

    Replays the cold control flow (floor probe, geometric ramp,
    bisection) against the oracle "acceptable iff rate <= max_rate".
    An estimate — the real search answers probes by simulation — used
    only to size the ``probe.saved`` instrumentation counter.
    """
    count = 1  # the floor probe
    lo, hi = low_rate, None
    rate = low_rate
    while count < max_probes:
        rate = min(rate * 2.0, high_rate)
        count += 1
        if rate <= max_rate:
            lo = rate
            if rate >= high_rate:
                return count
        else:
            hi = rate
            break
    if hi is None:
        return count
    while hi - lo > tolerance * hi and count < max_probes:
        mid = (lo + hi) / 2.0
        count += 1
        if mid <= max_rate:
            lo = mid
        else:
            hi = mid
    return count


def find_max_sustainable_rate(
    run_at: RunFn,
    low_rate: float,
    high_rate: float,
    slo_p99: Optional[float] = None,
    tolerance: float = 0.02,
    max_probes: int = 40,
    warm_start: Optional[float] = None,
) -> SweepResult:
    """Search [low_rate, high_rate] for the highest acceptable offered rate.

    ``slo_p99`` (seconds) optionally bounds the p99 at the chosen point —
    this is how SLO-constrained operating points are located.  ``tolerance``
    is the relative width at which bisection stops.

    ``warm_start`` (requests/s) is an analytic capacity estimate (see
    :mod:`repro.core.analytic`): instead of ramping up from the floor,
    the search brackets the estimate directly — probe just below it,
    then just above, and bisect.  A good estimate collapses the search
    to a handful of probes; a bad one degrades gracefully (too high:
    verify the floor and bisect below; too low: resume the geometric
    ramp from the estimate).  The answer is always probe-verified — the
    estimate never substitutes for simulation.  The probes a warm start
    avoided versus the replayed cold search are credited to the
    ``probe.saved`` counter (:data:`instrument.PROBES_SAVED`).

    A ``run_at`` that raises is contained: the failed probe is recorded in
    ``SweepResult.probes`` (see ``SweepResult.failed_probes``) and treated
    as unsustainable.  If nothing — including the floor — sustains, the
    result still carries ``max_rate=low_rate`` with ``sustainable`` False:
    a well-defined "no sustainable rate" answer instead of an exception
    mid-search.
    """
    if low_rate <= 0 or high_rate <= low_rate:
        raise ValueError("need 0 < low_rate < high_rate")

    probes: List[RunMetrics] = []

    def probe(rate: float) -> RunMetrics:
        # A probe that raises (a fault scenario with a dead path, a model
        # bug at an extreme rate) must not abort the whole search: record
        # it as an unsustainable point and let the bracketing continue.
        try:
            metrics = run_at(rate)
        except Exception as error:  # noqa: BLE001 — deliberate containment
            logger.warning("probe at rate %.6g failed (%s: %s); contained",
                           rate, type(error).__name__, error)
            metrics = _failed_probe_metrics(rate, error)
        probes.append(metrics)
        if trace.TRACING:
            trace.instant(
                "sweep.probe", trace.PROBE,
                rate=round(rate, 6),
                sustained=bool(metrics.sustained),
                p99_us=(round(metrics.latency_p99 * 1e6, 3)
                        if metrics.latency_p99 != float("inf") else -1.0),
                failed=bool(metrics.extra.get("probe_failed")),
            )
        return metrics

    def finish(max_rate: float, metrics: RunMetrics) -> SweepResult:
        if warm_start is not None and _acceptable(metrics, slo_p99):
            cold = _cold_probe_count(low_rate, high_rate, max_rate,
                                     tolerance, max_probes)
            saved = cold - len(probes)
            if saved > 0:
                instrument.increment(instrument.PROBES_SAVED, saved)
            if trace.TRACING:
                trace.instant("sweep.warm_start", trace.PROBE,
                              guess=round(warm_start, 6),
                              probes=len(probes), cold_estimate=cold)
        return SweepResult(max_rate=max_rate, metrics=metrics, probes=probes)

    def bisect(lo: float, hi: float, best: RunMetrics) -> SweepResult:
        # Bisection between last-good and first-bad.
        while hi - lo > tolerance * hi and len(probes) < max_probes:
            mid = (lo + hi) / 2.0
            metrics = probe(mid)
            if _acceptable(metrics, slo_p99):
                best, lo = metrics, mid
            else:
                hi = mid
        return finish(lo, best)

    def ramp(start: float, best: RunMetrics) -> SweepResult:
        # Geometric ramp until the first unacceptable rate or the ceiling.
        lo = start
        rate = start
        while len(probes) < max_probes:
            rate = min(rate * 2.0, high_rate)
            metrics = probe(rate)
            if _acceptable(metrics, slo_p99):
                best, lo = metrics, rate
                if rate >= high_rate:
                    return finish(rate, metrics)
            else:
                return bisect(lo, rate, best)
        # Probe budget exhausted while still sustaining.
        return finish(lo, best)

    if warm_start is not None and warm_start > 0:
        guess = min(max(warm_start, low_rate), high_rate)
        below = max(low_rate, (1.0 - _WARM_BELOW) * guess)
        below_metrics = probe(below)
        if _acceptable(below_metrics, slo_p99):
            above = min(high_rate, (1.0 + _WARM_ABOVE) * guess)
            if above <= below:
                # Both probes clamp to the same point (estimate pinned at
                # a bracket edge): ramp from the verified rate.
                return ramp(below, below_metrics)
            above_metrics = probe(above)
            if _acceptable(above_metrics, slo_p99):
                if above >= high_rate:
                    return finish(above, above_metrics)
                # Estimate was low — keep climbing from above the guess.
                return ramp(above, above_metrics)
            return bisect(below, above, below_metrics)
        # Estimate was high: fall back to verifying the floor, then
        # bisect between the floor and the failed probe.
        if below <= low_rate:
            # The failed probe WAS the floor: no sustainable rate.
            return finish(low_rate, below_metrics)
        low_metrics = probe(low_rate)
        if not _acceptable(low_metrics, slo_p99):
            return finish(low_rate, low_metrics)
        return bisect(low_rate, below, low_metrics)

    low_metrics = probe(low_rate)
    if not _acceptable(low_metrics, slo_p99):
        # Even the floor rate violates: report the floor as the max point.
        return finish(low_rate, low_metrics)
    return ramp(low_rate, low_metrics)


def rate_response_curve(
    run_at: RunFn,
    rates: List[float],
    executor: Optional["ParallelExecutor"] = None,
) -> Dict[float, RunMetrics]:
    """Measure a fixed ladder of offered rates (used for Fig. 5 style plots).

    The ladder points are mutually independent, so an optional
    :class:`~repro.core.executor.ParallelExecutor` fans them across
    worker processes.  ``run_at`` must then be a pure, picklable
    function of the rate (module-level, deriving its own RNG streams);
    closures that cannot be pickled are detected and run serially.
    """
    if executor is None:
        return {rate: run_at(rate) for rate in rates}
    from .executor import WorkUnit  # local import: avoid cycle at import time

    units = [
        WorkUnit(name=f"rate:{rate:.6g}", fn=run_at, args=(rate,))
        for rate in rates
    ]
    return dict(zip(rates, executor.map(units)))
