"""Content-addressed result cache for experiment measurements.

Operating-point searches dominate every artifact's wall-clock: each
``(function, platform)`` pair costs a 13-probe rate ladder, and the CLI
verbs historically re-ran identical measurements (``fig6`` re-runs all of
``fig4``; ``report`` used to measure Table 5's pairs from scratch).  The
measurements are pure functions of ``(profile_key, platform, fidelity,
seed)`` — every RNG substream is re-derived from the root seed and the
probe's name — so they are safe to memoize.

Keys are content hashes over a canonical tuple of primitives that always
includes :data:`CODE_VERSION`; bumping the version invalidates every
prior entry, which is how semantic changes to the measurement pipeline
are kept out of stale on-disk caches.  The cache has an in-memory layer
(always available) and an optional on-disk layer (``--cache-dir`` /
:class:`ResultCache` ``cache_dir=``) that persists results across CLI
invocations.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from . import instrument, trace

# Bump whenever measurement semantics change (models, stream naming,
# ladder shape, metrics definitions): old cached results become garbage.
# 2026.08.1: outcome metrics carry latency-attribution extras (PR 3).
# 2026.08.2: vectorized queueing kernels (closed-form Lindley, block
#   drop fixed point, searchsorted batching) change float rounding.
CODE_VERSION = "2026.08.2"

_PRIMITIVES = (str, int, float, bool, bytes, type(None))


def _canonical(part: Any) -> Any:
    """Normalize a key part to a stable, hashable representation."""
    if isinstance(part, _PRIMITIVES):
        return part
    if isinstance(part, (tuple, list)):
        return tuple(_canonical(p) for p in part)
    if isinstance(part, (set, frozenset)):
        return tuple(sorted(repr(_canonical(p)) for p in part))
    if isinstance(part, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in part.items()))
    raise TypeError(f"unhashable cache key part: {part!r} ({type(part).__name__})")


def cache_key(*parts: Any) -> str:
    """A stable content hash of ``parts`` (always salted by CODE_VERSION)."""
    payload = repr((CODE_VERSION,) + tuple(_canonical(p) for p in parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits}


@dataclass
class ResultCache:
    """Two-layer (memory + optional disk) content-addressed store."""

    cache_dir: Optional[str] = None
    _memory: Dict[str, Any] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    # -- lookup / store -----------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        """Return ``(found, value)``; counts the lookup in stats."""
        if key in self._memory:
            self.stats.hits += 1
            instrument.increment(instrument.CACHE_HITS)
            if trace.TRACING:
                trace.instant("cache.get", trace.CACHE, key=key[:12], hit=True)
            return True, self._memory[key]
        if self.cache_dir:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        value = pickle.load(handle)
                except (OSError, pickle.PickleError, EOFError, ValueError,
                        AttributeError, ImportError, IndexError):
                    pass  # corrupt/partial/stale entry: treat as a miss
                else:
                    self._memory[key] = value
                    self.stats.hits += 1
                    self.stats.disk_hits += 1
                    instrument.increment(instrument.CACHE_HITS)
                    if trace.TRACING:
                        trace.instant("cache.get", trace.CACHE,
                                      key=key[:12], hit=True, disk=True)
                    return True, value
        self.stats.misses += 1
        instrument.increment(instrument.CACHE_MISSES)
        if trace.TRACING:
            trace.instant("cache.get", trace.CACHE, key=key[:12], hit=False)
        return False, None

    def put(self, key: str, value: Any) -> None:
        if trace.TRACING:
            trace.instant("cache.put", trace.CACHE, key=key[:12])
        self._memory[key] = value
        if self.cache_dir:
            path = self._path(key)
            # Atomic publish: parallel workers may race on the same key,
            # and a crashed writer must not leave a truncated pickle.
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except (OSError, pickle.PickleError, AttributeError, TypeError):
                # Unpicklable or disk trouble: the memory layer still has
                # the value; just don't leave a partial file behind.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        found, value = self.get(key)
        if found:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- bookkeeping --------------------------------------------------------

    def clear(self) -> None:
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")


# The process-wide default cache.  In-memory only unless the CLI (or a
# test) installs one with a disk layer via :func:`configure`.
_GLOBAL = ResultCache()


def get_cache() -> ResultCache:
    return _GLOBAL


def configure(cache: ResultCache) -> ResultCache:
    """Install ``cache`` as the process-wide default; returns it."""
    global _GLOBAL
    _GLOBAL = cache
    return cache
