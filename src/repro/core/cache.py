"""Content-addressed result cache for experiment measurements.

Operating-point searches dominate every artifact's wall-clock: each
``(function, platform)`` pair costs a 13-probe rate ladder, and the CLI
verbs historically re-ran identical measurements (``fig6`` re-runs all of
``fig4``; ``report`` used to measure Table 5's pairs from scratch).  The
measurements are pure functions of ``(profile_key, platform, fidelity,
seed)`` — every RNG substream is re-derived from the root seed and the
probe's name — so they are safe to memoize.

Keys are content hashes over a canonical tuple of primitives that always
includes :data:`CODE_VERSION`; bumping the version invalidates every
prior entry, which is how semantic changes to the measurement pipeline
are kept out of stale on-disk caches.  The cache has an in-memory layer
(always available) and an optional on-disk layer (``--cache-dir`` /
:class:`ResultCache` ``cache_dir=``) that persists results across CLI
invocations.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from . import instrument, trace

logger = logging.getLogger("repro.cache")

# Bump whenever measurement semantics change (models, stream naming,
# ladder shape, metrics definitions): old cached results become garbage.
# 2026.08.1: outcome metrics carry latency-attribution extras (PR 3).
# 2026.08.2: vectorized queueing kernels (closed-form Lindley, block
#   drop fixed point, searchsorted batching) change float rounding.
# 2026.08.3: cache entries double as the run-farm's manifest-referenced
#   artifact store (sha256 digests recorded per entry; corrupt disk
#   entries quarantined to *.corrupt instead of silently ignored).
# 2026.08.4: hybrid probe engine (batched ladders share per-rung draws;
#   analytic answers inside validated trust regions) and an identity-
#   validated service-time memo — results priced under the old memo
#   could reflect a stale calibration swap and must not be reused.
CODE_VERSION = "2026.08.5"

_PRIMITIVES = (str, int, float, bool, bytes, type(None))


def _canonical(part: Any) -> Any:
    """Normalize a key part to a stable, hashable representation."""
    if isinstance(part, _PRIMITIVES):
        return part
    if isinstance(part, (tuple, list)):
        return tuple(_canonical(p) for p in part)
    if isinstance(part, (set, frozenset)):
        return tuple(sorted(repr(_canonical(p)) for p in part))
    if isinstance(part, dict):
        return tuple(sorted((str(k), _canonical(v)) for k, v in part.items()))
    raise TypeError(f"unhashable cache key part: {part!r} ({type(part).__name__})")


def cache_key(*parts: Any) -> str:
    """A stable content hash of ``parts`` (always salted by CODE_VERSION)."""
    payload = repr((CODE_VERSION,) + tuple(_canonical(p) for p in parts))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "disk_hits": self.disk_hits, "corrupt": self.corrupt}


@dataclass
class ResultCache:
    """Two-layer (memory + optional disk) content-addressed store.

    Doubles as the run farm's **artifact store**: every entry that can
    be pickled gets a sha256 digest of its serialized bytes, which
    :class:`~repro.runfarm.manifest.RunManifest` records next to the
    unit's status so a resumed run can verify what it is trusting.
    Corrupt or truncated disk entries are never silently swallowed —
    they are quarantined by renaming to ``<key>.pkl.corrupt``, counted
    (``cache.corrupt``), and treated as a miss so the unit recomputes.
    """

    cache_dir: Optional[str] = None
    _memory: Dict[str, Any] = field(default_factory=dict)
    _digests: Dict[str, str] = field(default_factory=dict)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.cache_dir:
            os.makedirs(self.cache_dir, exist_ok=True)

    # -- lookup / store -----------------------------------------------------

    def get(self, key: str, count: bool = True) -> Tuple[bool, Any]:
        """Return ``(found, value)``; counts the lookup in stats.

        ``count=False`` exempts the lookup from the hit/miss counters —
        used for internal bookkeeping reads (hybrid trust records) so
        the CLI footer and the cache-contract tests keep counting only
        *artifact* traffic.
        """
        if key in self._memory:
            if count:
                self.stats.hits += 1
                instrument.increment(instrument.CACHE_HITS)
            if trace.TRACING:
                trace.instant("cache.get", trace.CACHE, key=key[:12], hit=True)
            return True, self._memory[key]
        if self.cache_dir:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as handle:
                        data = handle.read()
                    value = pickle.loads(data)
                except (OSError, pickle.PickleError, EOFError, ValueError,
                        AttributeError, ImportError, IndexError):
                    self._quarantine(key, path)
                else:
                    self._memory[key] = value
                    self._digests[key] = hashlib.sha256(data).hexdigest()
                    if count:
                        self.stats.hits += 1
                        self.stats.disk_hits += 1
                        instrument.increment(instrument.CACHE_HITS)
                    if trace.TRACING:
                        trace.instant("cache.get", trace.CACHE,
                                      key=key[:12], hit=True, disk=True)
                    return True, value
        if count:
            self.stats.misses += 1
            instrument.increment(instrument.CACHE_MISSES)
        if trace.TRACING:
            trace.instant("cache.get", trace.CACHE, key=key[:12], hit=False)
        return False, None

    def _quarantine(self, key: str, path: str) -> None:
        """Move a corrupt/truncated disk entry out of the lookup path.

        The ``.corrupt`` sibling keeps the bytes around for post-mortem
        while guaranteeing the next lookup recomputes instead of
        re-tripping on the same bad pickle.
        """
        self.stats.corrupt += 1
        instrument.increment(instrument.CACHE_CORRUPT)
        logger.warning("quarantining corrupt cache entry %s -> %s.corrupt",
                       os.path.basename(path), os.path.basename(path))
        if trace.TRACING:
            trace.instant("cache.corrupt", trace.CACHE, key=key[:12])
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            # Renaming failed (e.g. racing reader already moved it);
            # removal keeps the entry from being re-read either way.
            try:
                os.unlink(path)
            except OSError:
                pass

    def put(self, key: str, value: Any) -> Optional[str]:
        """Store ``value``; returns the artifact digest (None if the
        value cannot be pickled — it then lives in memory only)."""
        if trace.TRACING:
            trace.instant("cache.put", trace.CACHE, key=key[:12])
        self._memory[key] = value
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PickleError, AttributeError, TypeError):
            self._digests.pop(key, None)
            return None
        digest = hashlib.sha256(data).hexdigest()
        self._digests[key] = digest
        if self.cache_dir:
            path = self._path(key)
            # Atomic publish: parallel workers may race on the same key,
            # and a crashed writer must not leave a truncated pickle.
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except OSError:
                # Disk trouble: the memory layer still has the value;
                # just don't leave a partial file behind.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return digest

    def get_or_compute(self, key: str, compute: Callable[[], Any]) -> Any:
        found, value = self.get(key)
        if found:
            return value
        value = compute()
        self.put(key, value)
        return value

    # -- bookkeeping --------------------------------------------------------

    def digest(self, key: str) -> Optional[str]:
        """sha256 of the entry's serialized bytes (None if unknown)."""
        return self._digests.get(key)

    def clear(self) -> None:
        self._memory.clear()
        self._digests.clear()

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> str:
        return os.path.join(self.cache_dir, f"{key}.pkl")


# The process-wide default cache.  In-memory only unless the CLI (or a
# test) installs one with a disk layer via :func:`configure`.
_GLOBAL = ResultCache()


def get_cache() -> ResultCache:
    return _GLOBAL


def configure(cache: ResultCache) -> ResultCache:
    """Install ``cache`` as the process-wide default; returns it."""
    global _GLOBAL
    _GLOBAL = cache
    return cache
