"""Simulation kernel, queueing resources, and measurement methodology."""

from .closedloop import ClosedLoopResult, simulate_closed_loop
from .engine import Event, Process, Simulator, SimulationError, Timeout
from .metrics import LatencyRecorder, P2Quantile, RunMetrics, ThroughputMeter
from .resources import Resource, Store
from .rng import RandomStreams
from .sweep import SweepResult, find_max_sustainable_rate, rate_response_curve

__all__ = [
    "ClosedLoopResult",
    "simulate_closed_loop",
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "Timeout",
    "Resource",
    "Store",
    "RandomStreams",
    "LatencyRecorder",
    "ThroughputMeter",
    "P2Quantile",
    "RunMetrics",
    "SweepResult",
    "find_max_sustainable_rate",
    "rate_response_curve",
]
