"""Simulation kernel, queueing resources, and measurement methodology."""

from .analytic import (
    batch_capacity,
    erlang_c,
    mg1_sojourn_p99,
    mg1_wait_mean,
    mmc_wait_mean,
    sharded_capacity,
    slo_capacity,
)
from .cache import CODE_VERSION, ResultCache, cache_key
from .closedloop import ClosedLoopResult, simulate_closed_loop
from .engine import Event, Process, Simulator, SimulationError, Timeout
from .executor import ParallelExecutor, WorkUnit
from .metrics import (
    LatencyRecorder,
    LatencySummary,
    P2Quantile,
    RunMetrics,
    ThroughputMeter,
    summarize_samples,
)
from .resources import Resource, Store
from .rng import RandomStreams
from .sweep import SweepResult, find_max_sustainable_rate, rate_response_curve
from .trace import TraceEvent, TraceRecorder, export_chrome, export_jsonl

__all__ = [
    "batch_capacity",
    "erlang_c",
    "mg1_sojourn_p99",
    "mg1_wait_mean",
    "mmc_wait_mean",
    "sharded_capacity",
    "slo_capacity",
    "CODE_VERSION",
    "ResultCache",
    "cache_key",
    "ClosedLoopResult",
    "simulate_closed_loop",
    "Event",
    "Process",
    "Simulator",
    "SimulationError",
    "Timeout",
    "ParallelExecutor",
    "WorkUnit",
    "Resource",
    "Store",
    "RandomStreams",
    "LatencyRecorder",
    "LatencySummary",
    "ThroughputMeter",
    "P2Quantile",
    "RunMetrics",
    "SweepResult",
    "summarize_samples",
    "find_max_sustainable_rate",
    "rate_response_curve",
    "TraceEvent",
    "TraceRecorder",
    "export_chrome",
    "export_jsonl",
]
