"""Flight-recorder tracing for the simulation stack.

Every layer of the library — the DES kernel, the queueing fast path, the
accelerator batch models, the netstack, fault injection, the executor and
the result cache — can emit *trace events* into a bounded ring buffer.
When the buffer fills, the oldest events are evicted (and counted), so
what remains is always the most recent window of activity: a flight
recorder, not a full log.

Overhead contract
-----------------
Tracing is **disabled by default** and every emit helper starts with a
check of the module-level :data:`TRACING` flag.  Hot call sites guard
with ``if trace.TRACING:`` *before* building any arguments, so a
disabled trace costs one module-attribute read per site — the PR-2
kernel and Lindley fast-path wins are preserved (see
``benchmarks/test_bench_kernel.py::test_trace_disabled_overhead``).

Determinism contract
--------------------
Trace events never contain wall-clock values.  Timestamps are either

* explicit **simulated time** (seconds, converted to microseconds), or
* a per-track **logical clock** (one tick per event) for layers that run
  outside a simulator (rate probes, cache lookups, executor profiles).

Each work unit records onto its own track and logical clocks are scoped
per track, so a parallel run (``--jobs N``) merges worker-side events
back in submission order and reproduces the serial trace byte for byte
(``tests/core/test_executor.py::TestTraceDeterminism``).

Categories
----------
``sim.event``   kernel run-loop summaries
``queue``       per-window queue depth / utilization series
``accel.batch`` accelerator batch formation and service
``netstack``    per-packet stage costs (serialization, drops)
``fault``       fault episode spans
``probe``       rate probes, sweeps, per-work-unit profiles
``cache``       result-cache lookups and stores
``runfarm``     unit attempts, timeouts, requeues, quarantines, heartbeats

Exporters
---------
:func:`export_jsonl` writes one event per line (stable key order — the
byte-identical format the determinism tests compare), and
:func:`export_chrome` writes the Chrome ``trace_event`` JSON that
Perfetto / ``chrome://tracing`` load directly.
"""

from __future__ import annotations

import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, TextIO, Tuple

from . import instrument

# -- categories --------------------------------------------------------------

SIM = "sim.event"
QUEUE = "queue"
ACCEL_BATCH = "accel.batch"
NETSTACK = "netstack"
FAULT = "fault"
PROBE = "probe"
CACHE = "cache"
RUNFARM = "runfarm"

CATEGORIES = (SIM, QUEUE, ACCEL_BATCH, NETSTACK, FAULT, PROBE, CACHE,
              RUNFARM)

DEFAULT_CAPACITY = 1 << 16
DEFAULT_METRICS_INTERVAL_S = 1e-3
# Per-probe series are capped so one long run cannot flood the buffer.
MAX_SERIES_POINTS = 256

# Fast-path flag: emit helpers and call sites check this first.  It is
# True exactly when a recorder is installed.
TRACING = False

_recorder: Optional["TraceRecorder"] = None


@dataclass
class TraceEvent:
    """One recorded occurrence; all fields are deterministic primitives."""

    name: str
    category: str
    phase: str  # "X" complete span | "i" instant | "C" counter
    track: str
    ts_us: float
    dur_us: float = 0.0
    args: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` with eviction stats."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics_interval_s: float = DEFAULT_METRICS_INTERVAL_S):
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        if metrics_interval_s <= 0:
            raise ValueError("metrics interval must be positive")
        self.capacity = capacity
        self.metrics_interval_s = metrics_interval_s
        self._events: Deque[TraceEvent] = deque()
        self.appended = 0
        self.dropped = 0
        self._ticks: Dict[str, int] = {}
        self.track = "main"

    # -- recording ----------------------------------------------------------

    def append(self, event: TraceEvent) -> None:
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
            instrument.increment(instrument.TRACE_DROPPED)
        self._events.append(event)
        self.appended += 1

    def extend(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.append(event)

    def tick(self, track: str) -> float:
        """Next logical timestamp (microseconds) on ``track``."""
        value = self._ticks.get(track, 0)
        self._ticks[track] = value + 1
        return float(value)

    # -- inspection ---------------------------------------------------------

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def category_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts


# -- module-level switchboard ------------------------------------------------


def enable(capacity: int = DEFAULT_CAPACITY,
           metrics_interval_s: float = DEFAULT_METRICS_INTERVAL_S) -> TraceRecorder:
    """Install a fresh recorder (discarding any previous one)."""
    global _recorder, TRACING
    _recorder = TraceRecorder(capacity, metrics_interval_s)
    TRACING = True
    return _recorder


def disable() -> None:
    global _recorder, TRACING
    _recorder = None
    TRACING = False


def enabled() -> bool:
    return TRACING


def recorder() -> Optional[TraceRecorder]:
    return _recorder


def current_track() -> str:
    return _recorder.track if _recorder is not None else "main"


@contextmanager
def track(name: str):
    """Scope subsequent events (without an explicit track) to ``name``."""
    if _recorder is None:
        yield
        return
    previous = _recorder.track
    _recorder.track = name
    try:
        yield
    finally:
        _recorder.track = previous


def subtrack(suffix: str) -> str:
    """A child track name under the current track."""
    return f"{current_track()}/{suffix}"


# -- emit helpers ------------------------------------------------------------
#
# ``ts`` is simulated seconds; omit it to stamp the event with the
# track's logical clock instead.  All helpers are no-ops when disabled.


def _resolve(ts: Optional[float], track_name: Optional[str]) -> Tuple[float, str]:
    resolved_track = track_name if track_name is not None else _recorder.track
    if ts is None:
        return _recorder.tick(resolved_track), resolved_track
    return ts * 1e6, resolved_track


def instant(name: str, category: str, ts: Optional[float] = None,
            track: Optional[str] = None, **args: Any) -> None:
    if not TRACING:
        return
    ts_us, resolved = _resolve(ts, track)
    _recorder.append(TraceEvent(name=name, category=category, phase="i",
                                track=resolved, ts_us=ts_us, args=args))


def complete(name: str, category: str, ts: float, dur: float,
             track: Optional[str] = None, **args: Any) -> None:
    """A span covering ``[ts, ts + dur]`` in simulated seconds."""
    if not TRACING:
        return
    resolved = track if track is not None else _recorder.track
    _recorder.append(TraceEvent(name=name, category=category, phase="X",
                                track=resolved, ts_us=ts * 1e6,
                                dur_us=dur * 1e6, args=args))


def counter(name: str, category: str, ts: Optional[float] = None,
            track: Optional[str] = None, **values: float) -> None:
    if not TRACING:
        return
    ts_us, resolved = _resolve(ts, track)
    _recorder.append(TraceEvent(name=name, category=category, phase="C",
                                track=resolved, ts_us=ts_us, args=values))


def counter_series(name: str, category: str, ts_seconds, track: Optional[str] = None,
                   **columns) -> None:
    """Emit one counter event per timestamp in a single batched call.

    ``ts_seconds`` is a sequence of simulated-time stamps and each value
    in ``columns`` a same-length sequence; element i of every column
    becomes event i's args.  Equivalent to calling :func:`counter` in a
    loop (identical events, identical order) but the per-event Python
    overhead — flag check, track resolution, kwarg packing — is paid
    once per series instead of once per point.
    """
    if not TRACING:
        return
    resolved = track if track is not None else _recorder.track
    keys = list(columns)
    rows = zip(*(columns[key] for key in keys)) if keys else iter(())
    append = _recorder.append
    for ts, values in zip(ts_seconds, rows):
        append(TraceEvent(name=name, category=category, phase="C",
                          track=resolved, ts_us=ts * 1e6,
                          args=dict(zip(keys, values))))


# -- exporters ---------------------------------------------------------------


def _event_payload(event: TraceEvent) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "name": event.name,
        "cat": event.category,
        "ph": event.phase,
        "track": event.track,
        "ts": event.ts_us,
    }
    if event.phase == "X":
        payload["dur"] = event.dur_us
    if event.args:
        payload["args"] = event.args
    return payload


def export_jsonl(fh: TextIO, rec: Optional[TraceRecorder] = None) -> int:
    """One compact JSON object per line; returns the event count.

    Key order and float formatting are stable, so two recorders holding
    the same events serialize to identical bytes.
    """
    rec = rec if rec is not None else _recorder
    if rec is None:
        return 0
    count = 0
    for event in rec._events:
        fh.write(json.dumps(_event_payload(event), sort_keys=True,
                            separators=(",", ":")))
        fh.write("\n")
        count += 1
    return count


def export_chrome(fh: TextIO, rec: Optional[TraceRecorder] = None) -> int:
    """Chrome ``trace_event`` JSON (Perfetto-loadable); returns event count.

    Tracks become threads of a single process: tids are assigned in
    sorted track-name order and announced with ``thread_name`` metadata
    events, so the Perfetto timeline groups each probe / work unit on
    its own row.
    """
    rec = rec if rec is not None else _recorder
    if rec is None:
        fh.write(json.dumps({"traceEvents": []}))
        return 0
    tracks = sorted({event.track for event in rec._events})
    tids = {name: index + 1 for index, name in enumerate(tracks)}
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tids[name],
            "args": {"name": name},
        }
        for name in tracks
    ]
    for event in rec._events:
        payload = {
            "name": event.name,
            "cat": event.category,
            "ph": event.phase,
            "ts": event.ts_us,
            "pid": 1,
            "tid": tids[event.track],
            "args": event.args,
        }
        if event.phase == "X":
            payload["dur"] = event.dur_us
        if event.phase == "i":
            payload["s"] = "t"  # instant scope: thread
        trace_events.append(payload)
    json.dump(
        {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "repro flight recorder",
                "dropped_events": rec.dropped,
            },
        },
        fh,
    )
    return len(rec._events)


def summary_line(rec: Optional[TraceRecorder] = None) -> str:
    """Human-readable one-liner for CLI footers."""
    rec = rec if rec is not None else _recorder
    if rec is None:
        return "trace off"
    return f"trace {len(rec)} ev ({rec.dropped} dropped)"
