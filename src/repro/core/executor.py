"""Deterministic parallel execution of independent experiment work units.

The experiment stack is embarrassingly parallel at well-defined seams:
operating-point measurements (one per ``(function, platform)`` pair),
rate-ladder points, and fault scenarios are mutually independent.  This
module fans such units across a :class:`concurrent.futures.
ProcessPoolExecutor` while guaranteeing that results are *bit-identical*
to a serial run.

The determinism contract
------------------------

A :class:`WorkUnit` must be a **pure function of its arguments**: it
receives an explicit root seed and re-derives every RNG substream from
``(seed, name)`` via :class:`~repro.core.rng.RandomStreams` (substreams
are keyed by name, never by call order across units).  Under that
contract the execution schedule cannot influence any draw, so
``jobs=N`` and ``jobs=1`` produce element-wise identical results, and
the serial path simply invokes the same unit functions in-process.

Worker-side instrumentation counters (rate probes, cache hits) are
snapshotted around each unit and the deltas are merged back into the
parent, so CLI footers report identical totals at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..obs import metrics
from . import instrument, trace

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ResultCache

logger = logging.getLogger("repro.executor")


@dataclass(frozen=True)
class UnitFailure:
    """Typed record of one failed unit attempt — never an exception.

    The supervised execution path (:meth:`ParallelExecutor.
    map_supervised`) surfaces every way a unit can die as data in the
    result slot: ``timeout`` (the per-unit wall-clock deadline expired
    and the worker was SIGKILLed), ``worker-lost`` (the worker process
    died before shipping a result — OOM kill, crash, chaos injection),
    or ``error`` (the unit function raised).  Supervisors inspect the
    record to decide requeue vs quarantine; nothing propagates as a
    raised exception out of the execution layer.
    """

    unit: str
    kind: str  # "timeout" | "worker-lost" | "error"
    elapsed_s: float
    attempt: int = 1
    message: str = ""
    error_type: str = ""

    TIMEOUT = "timeout"
    WORKER_LOST = "worker-lost"
    ERROR = "error"

    def describe(self) -> str:
        detail = f": {self.error_type}: {self.message}" if self.message else ""
        return (f"{self.unit} {self.kind} after {self.elapsed_s:.2f}s "
                f"(attempt {self.attempt}){detail}")


@dataclass(frozen=True)
class WorkUnit:
    """One independent, pure, picklable piece of work.

    ``name`` identifies the unit in diagnostics and should be unique
    within a batch; by convention it matches the RNG-substream namespace
    the unit derives its randomness from.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _invoke(
    unit: WorkUnit, trace_spec: Optional[Dict[str, Any]] = None
) -> Tuple[Any, Dict[str, Any], Optional[List[trace.TraceEvent]]]:
    """Worker entry point: run a unit; capture metric + trace deltas.

    The delta is a full metric-registry delta (counters, gauges,
    histogram observations — see :meth:`repro.obs.metrics.MetricRegistry
    .delta_since`), a plain picklable dict the parent merges in
    submission order.  When the parent traces, the worker records onto a
    fresh buffer under the unit's track (per-track logical clocks
    restart at zero, exactly as they would on first use of that track in
    a serial run) and ships the events back alongside the delta.
    """
    before = metrics.snapshot()
    if trace_spec is None:
        result = unit.run()
        return result, metrics.delta_since(before), None
    recorder = trace.enable(**trace_spec)
    try:
        with trace.track(unit.name):
            result = unit.run()
        return result, metrics.delta_since(before), recorder.events()
    finally:
        trace.disable()


def _invoke_chunk(
    units: Sequence[WorkUnit], trace_spec: Optional[Dict[str, Any]] = None
) -> List[Tuple[Any, Dict[str, Any], Optional[List[trace.TraceEvent]]]]:
    """Run several units in one worker round trip (chunked submission).

    Each unit still gets its own metric snapshot and (when tracing) its
    own fresh recorder, so the per-unit tuples shipped back are exactly
    what per-unit submission would have produced — chunking changes the
    IPC count, never the payload.
    """
    return [_invoke(unit, trace_spec) for unit in units]


# -- supervised execution (run-farm substrate) -------------------------------

# Chaos injection for CI and tests: when set to N, a supervised worker
# whose unit-name hash is divisible by N SIGKILLs itself on its FIRST
# attempt.  Results stay byte-identical — units are pure, so the
# supervisor's requeue recomputes the same value — which is exactly what
# the chaos-smoke CI job asserts.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL_NTH"

# Parent-side poll tick for the supervised wait loop (seconds).
_SUPERVISED_TICK_S = 0.05
# Worker heartbeat period (seconds); the health monitor calls a worker
# hung once beats go stale for several periods.
HEARTBEAT_INTERVAL_S = 0.25


def _chaos_maybe_kill(unit_name: str, attempt: int) -> None:
    nth = os.environ.get(CHAOS_KILL_ENV)
    if not nth or attempt != 1:
        return
    try:
        n = int(nth)
    except ValueError:
        return
    if n > 0:
        digest = int(hashlib.sha256(unit_name.encode("utf-8")).hexdigest(), 16)
        if digest % n == 0:
            os.kill(os.getpid(), signal.SIGKILL)


def _supervised_worker(conn, unit: WorkUnit, attempt: int,
                       trace_spec: Optional[Dict[str, Any]],
                       heartbeat_dir: Optional[str],
                       heartbeat_interval_s: float) -> None:
    """Child-process entry point for one supervised unit.

    Runs exactly one unit, ships ``("ok", (result, metric_delta,
    trace_events), cpu_seconds)`` or ``("error", type_name, message)``
    back over the pipe, and beats a heartbeat file for the parent's
    health monitor while the unit runs.  A SIGKILL (timeout enforcement,
    OOM, chaos) simply truncates the pipe — the parent reads EOF as
    worker-lost.
    """
    stop_heartbeat: Optional[Callable[[], None]] = None
    try:
        if heartbeat_dir is not None:
            from ..runfarm.health import start_heartbeat

            stop_heartbeat = start_heartbeat(
                heartbeat_dir, unit.name, interval_s=heartbeat_interval_s)
        _chaos_maybe_kill(unit.name, attempt)
        cpu_before = time.process_time()
        outcome = _invoke(unit, trace_spec)
        cpu_s = time.process_time() - cpu_before
        conn.send(("ok", outcome, cpu_s))
    except BaseException as exc:  # noqa: BLE001 — typed record, not a raise
        try:
            conn.send(("error", type(exc).__name__, str(exc)))
        except Exception:  # noqa: BLE001 — result unpicklable / pipe gone
            pass
    finally:
        if stop_heartbeat is not None:
            stop_heartbeat()
        try:
            conn.close()
        except OSError:
            pass


class _InProcessTimeout(Exception):
    """SIGALRM-driven deadline hit on the in-process fallback path."""


@dataclass
class _Running:
    """Parent-side state for one in-flight supervised worker."""

    index: int
    unit: WorkUnit
    attempt: int
    proc: Any
    started: float
    reported_slow: bool = False


def _emit_unit_profile(unit: WorkUnit, events: int, delta: Dict[str, Any]) -> None:
    """Per-work-unit profile instant on the parent's current track.

    Emitted at the same point of the merge sequence in both the serial
    and parallel paths, with identical deterministic args, so traces
    stay byte-identical at any ``--jobs``.
    """
    trace.instant(
        "unit", trace.PROBE,
        unit=unit.name,
        events=events,
        probes=metrics.counter_delta(delta, instrument.PROBES),
        sim_events=metrics.counter_delta(delta, instrument.EVENTS_FIRED),
    )


@dataclass(frozen=True)
class UnitProfile:
    """Parent-side performance record of one completed supervised unit.

    ``wall_s`` is measured by the supervisor's clock (spawn to reap),
    ``cpu_s`` by the worker's own ``time.process_time()``, and
    ``sim_events`` comes from the unit's merged metric delta — so the
    profile is a pure observation that never feeds back into results.
    """

    unit: str
    wall_s: float
    cpu_s: Optional[float]
    sim_events: int

    @property
    def events_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.sim_events / self.wall_s


def usable_cpu_count() -> int:
    """CPUs this *process* may actually run on.

    ``os.cpu_count()`` reports the machine, not the process: under a
    container quota or a taskset/cgroup affinity mask it overstates the
    usable parallelism (a "16-core" CI runner pinned to one CPU would
    record ``cores: 16`` in benchmark artifacts and then gate on scaling
    it cannot have).  Prefer ``os.process_cpu_count`` (3.13+), fall back
    to the scheduling affinity mask where the platform has one, then to
    ``os.cpu_count()``.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        count = process_cpu_count()
        if count:
            return count
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            affinity = sched_getaffinity(0)
        except OSError:
            affinity = None
        if affinity:
            return len(affinity)
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 serial, 0 = all usable cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return usable_cpu_count()
    return max(1, int(jobs))


# Estimated total batch work (seconds) below which fork + IPC overhead
# beats any parallel win and the batch runs serially instead.
MIN_PARALLEL_SECONDS = 0.05
# Chunked submission: aim for this many chunks per worker, balancing
# per-task IPC against load-balance granularity.
_CHUNKS_PER_WORKER = 4
# EWMA smoothing for the per-unit runtime estimate behind the bypass.
_EWMA_ALPHA = 0.5


class ParallelExecutor:
    """Runs batches of :class:`WorkUnit` with a fixed worker budget.

    ``jobs=1`` (the default) executes in-process, in order — the output
    is the reference a parallel run must reproduce.  ``jobs>1`` fans the
    batch over a worker-process pool; results always come back in
    submission order.  Batches whose units cannot be pickled (e.g.
    closures handed to :func:`~repro.core.sweep.rate_response_curve`)
    fall back to the serial path instead of failing.

    Three things keep ``--jobs`` a speedup instead of a slowdown:

    * **Pool reuse** — the process pool is created once (lazily) and
      reused across every ``map`` call until :meth:`close`, so a study
      with many phases pays the fork cost once, not per phase.
    * **Chunked submission** — a batch is shipped as a handful of
      chunks per worker rather than one IPC round trip per unit.
    * **Serial bypass** — when the machine has one usable core, or an
      EWMA of observed per-unit runtime says the whole batch is worth
      less than ~50 ms, forking cannot win and the batch runs in
      process (``serial_bypass=False`` disables the heuristic, for
      tests and benchmarks that must exercise the pool).

    The executor is a context manager; exiting (or :meth:`close`)
    shuts the pool down.  A worker that dies mid-batch (OOM-killed,
    crashed interpreter) raises ``BrokenProcessPool`` inside the pool;
    work units are pure, so the batch transparently reruns serially and
    a fresh pool is built on the next parallel call.
    """

    def __init__(self, jobs: int = 1, serial_bypass: bool = True):
        self.jobs = resolve_jobs(jobs)
        self.serial_bypass = serial_bypass
        self.units_run = 0
        self.fallbacks = 0
        self.bypasses = 0
        self.pool_restarts = 0
        # Per-unit wall/CPU/events profiles from the most recent
        # map_supervised call (unit name -> UnitProfile); the run-farm
        # supervisor journals these into the manifest.
        self.last_profiles: Dict[str, UnitProfile] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._seconds_per_unit: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (the executor stays usable: a later
        parallel ``map`` simply builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._effective_workers()
            logger.debug("starting process pool with %d workers", workers)
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _effective_workers(self) -> int:
        return min(self.jobs, usable_cpu_count())

    # -- execution ----------------------------------------------------------

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        units = list(units)
        self.units_run += len(units)
        serial = self.jobs <= 1 or len(units) <= 1
        if not serial and not self._picklable(units):
            self.fallbacks += 1
            logger.debug("batch of %d units is not picklable; running serially",
                         len(units))
            serial = True
        if not serial and self.serial_bypass and self._should_bypass(len(units)):
            self.bypasses += 1
            serial = True
        started = time.perf_counter()
        if serial:
            results = self._map_serial(units)
            self._observe(time.perf_counter() - started, len(units), workers=1)
        else:
            results = self._map_parallel(units)
            self._observe(time.perf_counter() - started, len(units),
                          workers=self._effective_workers())
        return results

    def _should_bypass(self, n_units: int) -> bool:
        if self._effective_workers() <= 1:
            logger.debug("single usable core; running %d units serially",
                         n_units)
            return True
        if (self._seconds_per_unit is not None
                and self._seconds_per_unit * n_units < MIN_PARALLEL_SECONDS):
            logger.debug(
                "batch of %d units estimated at %.1f ms total; below the "
                "%.0f ms fork threshold, running serially", n_units,
                self._seconds_per_unit * n_units * 1e3,
                MIN_PARALLEL_SECONDS * 1e3)
            return True
        return False

    def _observe(self, elapsed: float, n_units: int, workers: int) -> None:
        """Fold a batch timing into the per-unit runtime EWMA.

        A parallel batch's wall time is divided across ``workers``, so
        the per-unit cost it implies is ``elapsed * workers / n``.  Only
        the bypass heuristic reads this — never results.
        """
        if n_units <= 0:
            return
        sample = elapsed * workers / n_units
        if self._seconds_per_unit is None:
            self._seconds_per_unit = sample
        else:
            self._seconds_per_unit = (_EWMA_ALPHA * sample
                                      + (1 - _EWMA_ALPHA) * self._seconds_per_unit)

    def _map_serial(self, units: Sequence[WorkUnit]) -> List[Any]:
        if not trace.TRACING:
            return [unit.run() for unit in units]
        recorder = trace.recorder()
        results: List[Any] = []
        for unit in units:
            before_appended = recorder.appended
            before = metrics.snapshot()
            with trace.track(unit.name):
                result = unit.run()
            _emit_unit_profile(unit, recorder.appended - before_appended,
                               metrics.delta_since(before))
            results.append(result)
        return results

    def _map_parallel(self, units: Sequence[WorkUnit]) -> List[Any]:
        recorder = trace.recorder()
        trace_spec = None
        if recorder is not None:
            trace_spec = {"capacity": recorder.capacity,
                          "metrics_interval_s": recorder.metrics_interval_s}
        workers = self._effective_workers()
        chunk_size = max(1, -(-len(units) // (workers * _CHUNKS_PER_WORKER)))
        chunks = [list(units[i:i + chunk_size])
                  for i in range(0, len(units), chunk_size)]
        logger.debug("fanning %d units over %d workers (%d chunks)",
                     len(units), workers, len(chunks))
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_invoke_chunk, chunk, trace_spec)
                       for chunk in chunks]
            # Collect everything BEFORE merging any counter/trace deltas:
            # if a worker dies mid-batch nothing has been folded in yet,
            # so the serial rerun below cannot double-count.
            outcomes = [future.result() for future in futures]
        except BrokenProcessPool:
            self.pool_restarts += 1
            logger.warning("worker pool died mid-batch; rerunning %d units "
                           "serially (next parallel call gets a new pool)",
                           len(units))
            self.close()
            return self._map_serial(units)
        results: List[Any] = []
        # Merging in submission order reproduces the serial event
        # sequence (and counter totals) byte for byte.
        for chunk, chunk_outcomes in zip(chunks, outcomes):
            for unit, (result, delta, events) in zip(chunk, chunk_outcomes):
                metrics.merge(delta)
                if events is not None and recorder is not None:
                    recorder.extend(events)
                    _emit_unit_profile(unit, len(events), delta)
                results.append(result)
        return results

    # -- supervised execution (per-unit processes, deadlines, kills) --------

    def map_supervised(
        self,
        units: Sequence[WorkUnit],
        unit_timeout_s: Optional[float] = None,
        heartbeat_dir: Optional[str] = None,
        attempts: Optional[Sequence[int]] = None,
    ) -> List[Union[Any, "UnitFailure"]]:
        """Run one attempt of each unit under fault containment.

        Unlike :meth:`map` (shared pool, chunked batches), every unit
        gets its **own worker process** so the supervisor can enforce a
        per-unit wall-clock deadline with a surgical SIGKILL — one hung
        probe dies alone instead of stalling or breaking a shared pool.
        Up to ``jobs`` workers run concurrently; results come back in
        submission order, and every way a unit can die is surfaced as a
        :class:`UnitFailure` in its result slot, never an exception.

        Counter deltas and trace events from *successful* units merge in
        submission order (exactly like :meth:`map`), so a supervised run
        of healthy units is byte-identical to a plain one.  Batches that
        cannot be pickled fall back in-process, where the deadline is
        enforced best-effort with ``SIGALRM`` (main thread only).
        """
        units = list(units)
        self.units_run += len(units)
        self.last_profiles = {}
        if attempts is None:
            attempts = [1] * len(units)
        if not units:
            return []
        if not self._picklable(units):
            self.fallbacks += 1
            logger.debug("supervised batch of %d units is not picklable; "
                         "running in-process", len(units))
            return self._map_supervised_inprocess(units, unit_timeout_s,
                                                  attempts)
        started_batch = time.perf_counter()
        results = self._map_supervised_procs(units, unit_timeout_s,
                                             heartbeat_dir, attempts)
        self._observe(time.perf_counter() - started_batch, len(units),
                      workers=self._effective_workers())
        return results

    def _map_supervised_procs(
        self,
        units: List[WorkUnit],
        unit_timeout_s: Optional[float],
        heartbeat_dir: Optional[str],
        attempts: Sequence[int],
    ) -> List[Union[Any, "UnitFailure"]]:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover — non-fork platforms
            ctx = multiprocessing.get_context()
        recorder = trace.recorder()
        trace_spec = None
        if recorder is not None:
            trace_spec = {"capacity": recorder.capacity,
                          "metrics_interval_s": recorder.metrics_interval_s}
        workers = self._effective_workers()
        results: List[Union[Any, UnitFailure]] = [None] * len(units)
        # index -> (worker outcome tuple, worker cpu seconds, wall seconds)
        successes: Dict[int, Tuple[Any, Optional[float], float]] = {}
        running: Dict[Any, _Running] = {}
        monitor = None
        if heartbeat_dir is not None:
            from ..runfarm.health import HealthMonitor

            monitor = HealthMonitor(heartbeat_dir)
        next_index = 0

        def launch() -> None:
            nonlocal next_index
            while next_index < len(units) and len(running) < workers:
                index = next_index
                next_index += 1
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_supervised_worker,
                    args=(send_conn, units[index], attempts[index],
                          trace_spec, heartbeat_dir, HEARTBEAT_INTERVAL_S),
                    daemon=True,
                )
                proc.start()
                send_conn.close()
                running[recv_conn] = _Running(index=index, unit=units[index],
                                              attempt=attempts[index],
                                              proc=proc,
                                              started=time.perf_counter())

        def reap(conn, state: _Running) -> None:
            """Collect one finished worker's message (or its corpse)."""
            payload = None
            try:
                payload = conn.recv()
            except (EOFError, OSError):
                payload = None
            state.proc.join(timeout=5.0)
            try:
                conn.close()
            except OSError:
                pass
            elapsed = time.perf_counter() - state.started
            if payload is None:
                exitcode = state.proc.exitcode
                failure = UnitFailure(
                    unit=state.unit.name, kind=UnitFailure.WORKER_LOST,
                    elapsed_s=elapsed, attempt=state.attempt,
                    message=f"worker exited with code {exitcode}")
                instrument.increment(instrument.RUNFARM_WORKER_LOST)
                logger.warning("worker for unit %s died (exit %s); "
                               "surfacing worker-lost", state.unit.name,
                               exitcode)
                if trace.TRACING:
                    trace.instant("runfarm.worker_lost", trace.RUNFARM,
                                  unit=state.unit.name, attempt=state.attempt)
                results[state.index] = failure
            elif payload[0] == "ok":
                cpu_s = payload[2] if len(payload) > 2 else None
                successes[state.index] = (payload[1], cpu_s, elapsed)
            else:
                _tag, error_type, message = payload
                results[state.index] = UnitFailure(
                    unit=state.unit.name, kind=UnitFailure.ERROR,
                    elapsed_s=elapsed, attempt=state.attempt,
                    message=message, error_type=error_type)

        try:
            while next_index < len(units) or running:
                launch()
                ready = mp_connection.wait(list(running),
                                           timeout=_SUPERVISED_TICK_S)
                for conn in ready:
                    reap(conn, running.pop(conn))
                if unit_timeout_s is not None:
                    now = time.perf_counter()
                    for conn, state in list(running.items()):
                        if now - state.started <= unit_timeout_s:
                            continue
                        # Deadline expired: SIGKILL just this worker and
                        # surface a typed timeout; the supervisor decides
                        # whether to requeue.
                        del running[conn]
                        state.proc.kill()
                        state.proc.join(timeout=5.0)
                        try:
                            conn.close()
                        except OSError:
                            pass
                        elapsed = now - state.started
                        instrument.increment(instrument.RUNFARM_TIMEOUTS)
                        logger.warning(
                            "unit %s exceeded %.2fs deadline after %.2fs; "
                            "SIGKILLed worker %s", state.unit.name,
                            unit_timeout_s, elapsed, state.proc.pid)
                        if trace.TRACING:
                            trace.instant("runfarm.timeout", trace.RUNFARM,
                                          unit=state.unit.name,
                                          attempt=state.attempt)
                        results[state.index] = UnitFailure(
                            unit=state.unit.name, kind=UnitFailure.TIMEOUT,
                            elapsed_s=elapsed, attempt=state.attempt,
                            message=f"exceeded {unit_timeout_s:.2f}s deadline")
                if monitor is not None:
                    self._check_health(monitor, running, unit_timeout_s)
        finally:
            # An unexpected parent-side error must not leak children.
            for conn, state in running.items():
                state.proc.kill()
                state.proc.join(timeout=5.0)
                try:
                    conn.close()
                except OSError:
                    pass
        # Merge successful units' metrics/traces in submission order so
        # supervised output matches the serial reference byte for byte.
        for index in sorted(successes):
            (result, delta, events), cpu_s, wall_s = successes[index]
            metrics.merge(delta)
            if events is not None and recorder is not None:
                recorder.extend(events)
                _emit_unit_profile(units[index], len(events), delta)
            self.last_profiles[units[index].name] = UnitProfile(
                unit=units[index].name, wall_s=wall_s, cpu_s=cpu_s,
                sim_events=metrics.counter_delta(delta,
                                                 instrument.EVENTS_FIRED))
            results[index] = result
        return results

    def _check_health(self, monitor, running: Dict[Any, _Running],
                      unit_timeout_s: Optional[float]) -> None:
        """Fold a heartbeat scan into counters; log hung/slow workers.

        ``hung`` means the worker's heartbeat went stale (the process is
        dead, stopped, or wedged hard enough that its beat thread cannot
        run) — distinct from ``slow``, a live worker whose unit is just
        taking much longer than the batch EWMA predicts.
        """
        beats = monitor.scan()
        for state in running.values():
            status = beats.get(state.unit.name)
            elapsed = time.perf_counter() - state.started
            expected = self._seconds_per_unit
            if status is not None and status.stale and elapsed > 1.0:
                if not state.reported_slow:
                    state.reported_slow = True
                    instrument.increment(instrument.RUNFARM_WORKERS_HUNG)
                    logger.warning(
                        "worker %s (unit %s) looks hung: heartbeat stale "
                        "for %.1fs", state.proc.pid, state.unit.name,
                        status.age_s)
            elif (expected is not None and elapsed > max(4 * expected, 1.0)
                    and not state.reported_slow):
                state.reported_slow = True
                instrument.increment(instrument.RUNFARM_WORKERS_SLOW)
                logger.info(
                    "worker %s (unit %s) is slow: %.1fs vs ~%.2fs expected "
                    "(heartbeat healthy)", state.proc.pid, state.unit.name,
                    elapsed, expected)

    def _map_supervised_inprocess(
        self,
        units: List[WorkUnit],
        unit_timeout_s: Optional[float],
        attempts: Sequence[int],
    ) -> List[Union[Any, "UnitFailure"]]:
        """Fallback for unpicklable batches: same typed-failure contract.

        The deadline is enforced with ``SIGALRM`` where possible (main
        thread, POSIX); a numpy-bound unit may overshoot, but a pure-
        Python hang is still contained.  Workers cannot be killed here,
        so ``worker-lost`` never occurs on this path.
        """
        use_alarm = (
            unit_timeout_s is not None
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        )
        results: List[Union[Any, UnitFailure]] = []
        for unit, attempt in zip(units, attempts):
            started = time.perf_counter()
            cpu_started = time.process_time()
            previous = None
            if use_alarm:
                def _on_alarm(_signum, _frame):
                    raise _InProcessTimeout()
                previous = signal.signal(signal.SIGALRM, _on_alarm)
                signal.setitimer(signal.ITIMER_REAL, unit_timeout_s)
            try:
                before = metrics.snapshot()
                if trace.TRACING:
                    recorder = trace.recorder()
                    before_appended = recorder.appended
                    with trace.track(unit.name):
                        result = unit.run()
                    _emit_unit_profile(unit,
                                       recorder.appended - before_appended,
                                       metrics.delta_since(before))
                else:
                    result = unit.run()
                self.last_profiles[unit.name] = UnitProfile(
                    unit=unit.name,
                    wall_s=time.perf_counter() - started,
                    cpu_s=time.process_time() - cpu_started,
                    sim_events=metrics.counter_delta(
                        metrics.delta_since(before),
                        instrument.EVENTS_FIRED))
                results.append(result)
            except _InProcessTimeout:
                instrument.increment(instrument.RUNFARM_TIMEOUTS)
                results.append(UnitFailure(
                    unit=unit.name, kind=UnitFailure.TIMEOUT,
                    elapsed_s=time.perf_counter() - started, attempt=attempt,
                    message=f"exceeded {unit_timeout_s:.2f}s deadline "
                            "(in-process)"))
            except Exception as exc:  # noqa: BLE001 — typed record
                results.append(UnitFailure(
                    unit=unit.name, kind=UnitFailure.ERROR,
                    elapsed_s=time.perf_counter() - started, attempt=attempt,
                    message=str(exc), error_type=type(exc).__name__))
            finally:
                if use_alarm:
                    signal.setitimer(signal.ITIMER_REAL, 0.0)
                    signal.signal(signal.SIGALRM, previous)
        return results

    # -- keyed (cache-aware) execution --------------------------------------

    def map_keyed(
        self,
        units: Sequence[WorkUnit],
        keys: Sequence[str],
        store: Optional["ResultCache"] = None,
    ) -> List[Any]:
        """Run a batch through the content-addressed cache.

        Each unit is paired with its cache key: hits are served from the
        cache in the parent (one lookup each, never submitted), misses
        are executed and the computed results are stored back — so a
        later batch (or CLI verb sharing a ``--cache-dir``) reuses them.
        Results come back in unit order either way.  The run farm's
        :class:`~repro.runfarm.supervisor.SupervisedExecutor` overrides
        this seam to add manifests, retries, and quarantine.
        """
        if len(units) != len(keys):
            raise ValueError("units and keys must have equal length")
        if store is None:
            from .cache import get_cache

            store = get_cache()
        results: List[Any] = [None] * len(units)
        pending: List[int] = []
        for index, key in enumerate(keys):
            found, value = store.get(key)
            if found:
                results[index] = value
            else:
                pending.append(index)
        for index, value in zip(pending,
                                self.map([units[i] for i in pending])):
            store.put(keys[index], value)
            results[index] = value
        return results

    @staticmethod
    def _picklable(units: Sequence[WorkUnit]) -> bool:
        try:
            pickle.dumps(units)
        except Exception:  # noqa: BLE001 — any pickling failure means serial
            return False
        return True


def unit_content_key(unit: WorkUnit) -> Optional[str]:
    """A content-addressed key derived from the unit's own pickle bytes.

    Units submitted through :meth:`ParallelExecutor.map` carry no
    explicit cache key; for manifest bookkeeping (and resume) the run
    farm derives one from the pickled ``(fn, args, kwargs)`` closure —
    pure units with identical content hash identically across runs of
    the same code.  Returns ``None`` for unpicklable units, which are
    then executed unconditionally.
    """
    from .cache import cache_key

    try:
        payload = pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 — closures etc.
        return None
    return cache_key("unit-pickle", hashlib.sha256(payload).hexdigest())


def map_cached(
    executor: ParallelExecutor,
    units: Sequence[WorkUnit],
    keys: Sequence[str],
    store: Optional["ResultCache"] = None,
) -> List[Any]:
    """Run a batch through the content-addressed cache.

    Thin wrapper over :meth:`ParallelExecutor.map_keyed` — the seam the
    run farm's :class:`~repro.runfarm.supervisor.SupervisedExecutor`
    overrides, so every experiment that funnels units through here gains
    manifests, per-unit timeouts, retries, and quarantine for free when
    the CLI installs a supervised executor.
    """
    return executor.map_keyed(units, keys, store)
