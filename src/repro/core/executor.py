"""Deterministic parallel execution of independent experiment work units.

The experiment stack is embarrassingly parallel at well-defined seams:
operating-point measurements (one per ``(function, platform)`` pair),
rate-ladder points, and fault scenarios are mutually independent.  This
module fans such units across a :class:`concurrent.futures.
ProcessPoolExecutor` while guaranteeing that results are *bit-identical*
to a serial run.

The determinism contract
------------------------

A :class:`WorkUnit` must be a **pure function of its arguments**: it
receives an explicit root seed and re-derives every RNG substream from
``(seed, name)`` via :class:`~repro.core.rng.RandomStreams` (substreams
are keyed by name, never by call order across units).  Under that
contract the execution schedule cannot influence any draw, so
``jobs=N`` and ``jobs=1`` produce element-wise identical results, and
the serial path simply invokes the same unit functions in-process.

Worker-side instrumentation counters (rate probes, cache hits) are
snapshotted around each unit and the deltas are merged back into the
parent, so CLI footers report identical totals at any ``--jobs``.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import instrument

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ResultCache


@dataclass(frozen=True)
class WorkUnit:
    """One independent, pure, picklable piece of work.

    ``name`` identifies the unit in diagnostics and should be unique
    within a batch; by convention it matches the RNG-substream namespace
    the unit derives its randomness from.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _invoke(unit: WorkUnit) -> Tuple[Any, Dict[str, int]]:
    """Worker entry point: run a unit and capture its counter delta."""
    before = instrument.snapshot()
    result = unit.run()
    return result, instrument.delta_since(before)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


class ParallelExecutor:
    """Runs batches of :class:`WorkUnit` with a fixed worker budget.

    ``jobs=1`` (the default) executes in-process, in order — the output
    is the reference a parallel run must reproduce.  ``jobs>1`` fans the
    batch over worker processes; results always come back in submission
    order.  Batches whose units cannot be pickled (e.g. closures handed
    to :func:`~repro.core.sweep.rate_response_curve`) fall back to the
    serial path instead of failing.
    """

    def __init__(self, jobs: int = 1):
        self.jobs = resolve_jobs(jobs)
        self.units_run = 0
        self.fallbacks = 0

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        units = list(units)
        self.units_run += len(units)
        if self.jobs <= 1 or len(units) <= 1:
            return [unit.run() for unit in units]
        if not self._picklable(units):
            self.fallbacks += 1
            return [unit.run() for unit in units]
        workers = min(self.jobs, len(units))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_invoke, unit) for unit in units]
            results: List[Any] = []
            for future in futures:
                result, delta = future.result()
                instrument.merge(delta)
                results.append(result)
        return results

    @staticmethod
    def _picklable(units: Sequence[WorkUnit]) -> bool:
        try:
            pickle.dumps(units)
        except Exception:  # noqa: BLE001 — any pickling failure means serial
            return False
        return True


def map_cached(
    executor: ParallelExecutor,
    units: Sequence[WorkUnit],
    keys: Sequence[str],
    store: Optional["ResultCache"] = None,
) -> List[Any]:
    """Run a batch through the content-addressed cache.

    Each unit is paired with its cache key: hits are served from the
    cache in the parent (one lookup each, never submitted), misses are
    fanned out through ``executor`` and the computed results are stored
    back — so a later batch (or CLI verb sharing a ``--cache-dir``)
    reuses them.  Results come back in unit order either way.
    """
    if len(units) != len(keys):
        raise ValueError("units and keys must have equal length")
    if store is None:
        from .cache import get_cache

        store = get_cache()
    results: List[Any] = [None] * len(units)
    pending: List[int] = []
    for index, key in enumerate(keys):
        found, value = store.get(key)
        if found:
            results[index] = value
        else:
            pending.append(index)
    for index, value in zip(pending, executor.map([units[i] for i in pending])):
        store.put(keys[index], value)
        results[index] = value
    return results
