"""Deterministic parallel execution of independent experiment work units.

The experiment stack is embarrassingly parallel at well-defined seams:
operating-point measurements (one per ``(function, platform)`` pair),
rate-ladder points, and fault scenarios are mutually independent.  This
module fans such units across a :class:`concurrent.futures.
ProcessPoolExecutor` while guaranteeing that results are *bit-identical*
to a serial run.

The determinism contract
------------------------

A :class:`WorkUnit` must be a **pure function of its arguments**: it
receives an explicit root seed and re-derives every RNG substream from
``(seed, name)`` via :class:`~repro.core.rng.RandomStreams` (substreams
are keyed by name, never by call order across units).  Under that
contract the execution schedule cannot influence any draw, so
``jobs=N`` and ``jobs=1`` produce element-wise identical results, and
the serial path simply invokes the same unit functions in-process.

Worker-side instrumentation counters (rate probes, cache hits) are
snapshotted around each unit and the deltas are merged back into the
parent, so CLI footers report identical totals at any ``--jobs``.
"""

from __future__ import annotations

import logging
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import instrument, trace

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ResultCache

logger = logging.getLogger("repro.executor")


@dataclass(frozen=True)
class WorkUnit:
    """One independent, pure, picklable piece of work.

    ``name`` identifies the unit in diagnostics and should be unique
    within a batch; by convention it matches the RNG-substream namespace
    the unit derives its randomness from.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _invoke(
    unit: WorkUnit, trace_spec: Optional[Dict[str, Any]] = None
) -> Tuple[Any, Dict[str, int], Optional[List[trace.TraceEvent]]]:
    """Worker entry point: run a unit; capture counter + trace deltas.

    When the parent traces, the worker records onto a fresh buffer under
    the unit's track (per-track logical clocks restart at zero, exactly
    as they would on first use of that track in a serial run) and ships
    the events back alongside the counter delta.
    """
    before = instrument.snapshot()
    if trace_spec is None:
        result = unit.run()
        return result, instrument.delta_since(before), None
    recorder = trace.enable(**trace_spec)
    try:
        with trace.track(unit.name):
            result = unit.run()
        return result, instrument.delta_since(before), recorder.events()
    finally:
        trace.disable()


def _invoke_chunk(
    units: Sequence[WorkUnit], trace_spec: Optional[Dict[str, Any]] = None
) -> List[Tuple[Any, Dict[str, int], Optional[List[trace.TraceEvent]]]]:
    """Run several units in one worker round trip (chunked submission).

    Each unit still gets its own counter snapshot and (when tracing) its
    own fresh recorder, so the per-unit tuples shipped back are exactly
    what per-unit submission would have produced — chunking changes the
    IPC count, never the payload.
    """
    return [_invoke(unit, trace_spec) for unit in units]


def _emit_unit_profile(unit: WorkUnit, events: int, delta: Dict[str, int]) -> None:
    """Per-work-unit profile instant on the parent's current track.

    Emitted at the same point of the merge sequence in both the serial
    and parallel paths, with identical deterministic args, so traces
    stay byte-identical at any ``--jobs``.
    """
    trace.instant(
        "unit", trace.PROBE,
        unit=unit.name,
        events=events,
        probes=delta.get(instrument.PROBES, 0),
        sim_events=delta.get(instrument.EVENTS_FIRED, 0),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


# Estimated total batch work (seconds) below which fork + IPC overhead
# beats any parallel win and the batch runs serially instead.
MIN_PARALLEL_SECONDS = 0.05
# Chunked submission: aim for this many chunks per worker, balancing
# per-task IPC against load-balance granularity.
_CHUNKS_PER_WORKER = 4
# EWMA smoothing for the per-unit runtime estimate behind the bypass.
_EWMA_ALPHA = 0.5


class ParallelExecutor:
    """Runs batches of :class:`WorkUnit` with a fixed worker budget.

    ``jobs=1`` (the default) executes in-process, in order — the output
    is the reference a parallel run must reproduce.  ``jobs>1`` fans the
    batch over a worker-process pool; results always come back in
    submission order.  Batches whose units cannot be pickled (e.g.
    closures handed to :func:`~repro.core.sweep.rate_response_curve`)
    fall back to the serial path instead of failing.

    Three things keep ``--jobs`` a speedup instead of a slowdown:

    * **Pool reuse** — the process pool is created once (lazily) and
      reused across every ``map`` call until :meth:`close`, so a study
      with many phases pays the fork cost once, not per phase.
    * **Chunked submission** — a batch is shipped as a handful of
      chunks per worker rather than one IPC round trip per unit.
    * **Serial bypass** — when the machine has one usable core, or an
      EWMA of observed per-unit runtime says the whole batch is worth
      less than ~50 ms, forking cannot win and the batch runs in
      process (``serial_bypass=False`` disables the heuristic, for
      tests and benchmarks that must exercise the pool).

    The executor is a context manager; exiting (or :meth:`close`)
    shuts the pool down.  A worker that dies mid-batch (OOM-killed,
    crashed interpreter) raises ``BrokenProcessPool`` inside the pool;
    work units are pure, so the batch transparently reruns serially and
    a fresh pool is built on the next parallel call.
    """

    def __init__(self, jobs: int = 1, serial_bypass: bool = True):
        self.jobs = resolve_jobs(jobs)
        self.serial_bypass = serial_bypass
        self.units_run = 0
        self.fallbacks = 0
        self.bypasses = 0
        self.pool_restarts = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._seconds_per_unit: Optional[float] = None

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (the executor stays usable: a later
        parallel ``map`` simply builds a fresh pool)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            workers = self._effective_workers()
            logger.debug("starting process pool with %d workers", workers)
            self._pool = ProcessPoolExecutor(max_workers=workers)
        return self._pool

    def _effective_workers(self) -> int:
        return min(self.jobs, os.cpu_count() or 1)

    # -- execution ----------------------------------------------------------

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        units = list(units)
        self.units_run += len(units)
        serial = self.jobs <= 1 or len(units) <= 1
        if not serial and not self._picklable(units):
            self.fallbacks += 1
            logger.debug("batch of %d units is not picklable; running serially",
                         len(units))
            serial = True
        if not serial and self.serial_bypass and self._should_bypass(len(units)):
            self.bypasses += 1
            serial = True
        started = time.perf_counter()
        if serial:
            results = self._map_serial(units)
            self._observe(time.perf_counter() - started, len(units), workers=1)
        else:
            results = self._map_parallel(units)
            self._observe(time.perf_counter() - started, len(units),
                          workers=self._effective_workers())
        return results

    def _should_bypass(self, n_units: int) -> bool:
        if self._effective_workers() <= 1:
            logger.debug("single usable core; running %d units serially",
                         n_units)
            return True
        if (self._seconds_per_unit is not None
                and self._seconds_per_unit * n_units < MIN_PARALLEL_SECONDS):
            logger.debug(
                "batch of %d units estimated at %.1f ms total; below the "
                "%.0f ms fork threshold, running serially", n_units,
                self._seconds_per_unit * n_units * 1e3,
                MIN_PARALLEL_SECONDS * 1e3)
            return True
        return False

    def _observe(self, elapsed: float, n_units: int, workers: int) -> None:
        """Fold a batch timing into the per-unit runtime EWMA.

        A parallel batch's wall time is divided across ``workers``, so
        the per-unit cost it implies is ``elapsed * workers / n``.  Only
        the bypass heuristic reads this — never results.
        """
        if n_units <= 0:
            return
        sample = elapsed * workers / n_units
        if self._seconds_per_unit is None:
            self._seconds_per_unit = sample
        else:
            self._seconds_per_unit = (_EWMA_ALPHA * sample
                                      + (1 - _EWMA_ALPHA) * self._seconds_per_unit)

    def _map_serial(self, units: Sequence[WorkUnit]) -> List[Any]:
        if not trace.TRACING:
            return [unit.run() for unit in units]
        recorder = trace.recorder()
        results: List[Any] = []
        for unit in units:
            before_appended = recorder.appended
            before = instrument.snapshot()
            with trace.track(unit.name):
                result = unit.run()
            _emit_unit_profile(unit, recorder.appended - before_appended,
                               instrument.delta_since(before))
            results.append(result)
        return results

    def _map_parallel(self, units: Sequence[WorkUnit]) -> List[Any]:
        recorder = trace.recorder()
        trace_spec = None
        if recorder is not None:
            trace_spec = {"capacity": recorder.capacity,
                          "metrics_interval_s": recorder.metrics_interval_s}
        workers = self._effective_workers()
        chunk_size = max(1, -(-len(units) // (workers * _CHUNKS_PER_WORKER)))
        chunks = [list(units[i:i + chunk_size])
                  for i in range(0, len(units), chunk_size)]
        logger.debug("fanning %d units over %d workers (%d chunks)",
                     len(units), workers, len(chunks))
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_invoke_chunk, chunk, trace_spec)
                       for chunk in chunks]
            # Collect everything BEFORE merging any counter/trace deltas:
            # if a worker dies mid-batch nothing has been folded in yet,
            # so the serial rerun below cannot double-count.
            outcomes = [future.result() for future in futures]
        except BrokenProcessPool:
            self.pool_restarts += 1
            logger.warning("worker pool died mid-batch; rerunning %d units "
                           "serially (next parallel call gets a new pool)",
                           len(units))
            self.close()
            return self._map_serial(units)
        results: List[Any] = []
        # Merging in submission order reproduces the serial event
        # sequence (and counter totals) byte for byte.
        for chunk, chunk_outcomes in zip(chunks, outcomes):
            for unit, (result, delta, events) in zip(chunk, chunk_outcomes):
                instrument.merge(delta)
                if events is not None and recorder is not None:
                    recorder.extend(events)
                    _emit_unit_profile(unit, len(events), delta)
                results.append(result)
        return results

    @staticmethod
    def _picklable(units: Sequence[WorkUnit]) -> bool:
        try:
            pickle.dumps(units)
        except Exception:  # noqa: BLE001 — any pickling failure means serial
            return False
        return True


def map_cached(
    executor: ParallelExecutor,
    units: Sequence[WorkUnit],
    keys: Sequence[str],
    store: Optional["ResultCache"] = None,
) -> List[Any]:
    """Run a batch through the content-addressed cache.

    Each unit is paired with its cache key: hits are served from the
    cache in the parent (one lookup each, never submitted), misses are
    fanned out through ``executor`` and the computed results are stored
    back — so a later batch (or CLI verb sharing a ``--cache-dir``)
    reuses them.  Results come back in unit order either way.
    """
    if len(units) != len(keys):
        raise ValueError("units and keys must have equal length")
    if store is None:
        from .cache import get_cache

        store = get_cache()
    results: List[Any] = [None] * len(units)
    pending: List[int] = []
    for index, key in enumerate(keys):
        found, value = store.get(key)
        if found:
            results[index] = value
        else:
            pending.append(index)
    for index, value in zip(pending, executor.map([units[i] for i in pending])):
        store.put(keys[index], value)
        results[index] = value
    return results
