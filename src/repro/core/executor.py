"""Deterministic parallel execution of independent experiment work units.

The experiment stack is embarrassingly parallel at well-defined seams:
operating-point measurements (one per ``(function, platform)`` pair),
rate-ladder points, and fault scenarios are mutually independent.  This
module fans such units across a :class:`concurrent.futures.
ProcessPoolExecutor` while guaranteeing that results are *bit-identical*
to a serial run.

The determinism contract
------------------------

A :class:`WorkUnit` must be a **pure function of its arguments**: it
receives an explicit root seed and re-derives every RNG substream from
``(seed, name)`` via :class:`~repro.core.rng.RandomStreams` (substreams
are keyed by name, never by call order across units).  Under that
contract the execution schedule cannot influence any draw, so
``jobs=N`` and ``jobs=1`` produce element-wise identical results, and
the serial path simply invokes the same unit functions in-process.

Worker-side instrumentation counters (rate probes, cache hits) are
snapshotted around each unit and the deltas are merged back into the
parent, so CLI footers report identical totals at any ``--jobs``.
"""

from __future__ import annotations

import logging
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from . import instrument, trace

if TYPE_CHECKING:  # pragma: no cover
    from .cache import ResultCache

logger = logging.getLogger("repro.executor")


@dataclass(frozen=True)
class WorkUnit:
    """One independent, pure, picklable piece of work.

    ``name`` identifies the unit in diagnostics and should be unique
    within a batch; by convention it matches the RNG-substream namespace
    the unit derives its randomness from.
    """

    name: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


def _invoke(
    unit: WorkUnit, trace_spec: Optional[Dict[str, Any]] = None
) -> Tuple[Any, Dict[str, int], Optional[List[trace.TraceEvent]]]:
    """Worker entry point: run a unit; capture counter + trace deltas.

    When the parent traces, the worker records onto a fresh buffer under
    the unit's track (per-track logical clocks restart at zero, exactly
    as they would on first use of that track in a serial run) and ships
    the events back alongside the counter delta.
    """
    before = instrument.snapshot()
    if trace_spec is None:
        result = unit.run()
        return result, instrument.delta_since(before), None
    recorder = trace.enable(**trace_spec)
    try:
        with trace.track(unit.name):
            result = unit.run()
        return result, instrument.delta_since(before), recorder.events()
    finally:
        trace.disable()


def _emit_unit_profile(unit: WorkUnit, events: int, delta: Dict[str, int]) -> None:
    """Per-work-unit profile instant on the parent's current track.

    Emitted at the same point of the merge sequence in both the serial
    and parallel paths, with identical deterministic args, so traces
    stay byte-identical at any ``--jobs``.
    """
    trace.instant(
        "unit", trace.PROBE,
        unit=unit.name,
        events=events,
        probes=delta.get(instrument.PROBES, 0),
        sim_events=delta.get(instrument.EVENTS_FIRED, 0),
    )


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/1 serial, 0 = all cores."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


class ParallelExecutor:
    """Runs batches of :class:`WorkUnit` with a fixed worker budget.

    ``jobs=1`` (the default) executes in-process, in order — the output
    is the reference a parallel run must reproduce.  ``jobs>1`` fans the
    batch over worker processes; results always come back in submission
    order.  Batches whose units cannot be pickled (e.g. closures handed
    to :func:`~repro.core.sweep.rate_response_curve`) fall back to the
    serial path instead of failing.
    """

    def __init__(self, jobs: int = 1):
        self.jobs = resolve_jobs(jobs)
        self.units_run = 0
        self.fallbacks = 0

    def map(self, units: Sequence[WorkUnit]) -> List[Any]:
        units = list(units)
        self.units_run += len(units)
        serial = self.jobs <= 1 or len(units) <= 1
        if not serial and not self._picklable(units):
            self.fallbacks += 1
            logger.debug("batch of %d units is not picklable; running serially",
                         len(units))
            serial = True
        if serial:
            return self._map_serial(units)
        return self._map_parallel(units)

    def _map_serial(self, units: Sequence[WorkUnit]) -> List[Any]:
        if not trace.TRACING:
            return [unit.run() for unit in units]
        recorder = trace.recorder()
        results: List[Any] = []
        for unit in units:
            before_appended = recorder.appended
            before = instrument.snapshot()
            with trace.track(unit.name):
                result = unit.run()
            _emit_unit_profile(unit, recorder.appended - before_appended,
                               instrument.delta_since(before))
            results.append(result)
        return results

    def _map_parallel(self, units: Sequence[WorkUnit]) -> List[Any]:
        recorder = trace.recorder()
        trace_spec = None
        if recorder is not None:
            trace_spec = {"capacity": recorder.capacity,
                          "metrics_interval_s": recorder.metrics_interval_s}
        workers = min(self.jobs, len(units))
        logger.debug("fanning %d units over %d workers", len(units), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_invoke, unit, trace_spec) for unit in units]
            results: List[Any] = []
            # Merging in submission order reproduces the serial event
            # sequence (and counter totals) byte for byte.
            for unit, future in zip(units, futures):
                result, delta, events = future.result()
                instrument.merge(delta)
                if events is not None and recorder is not None:
                    recorder.extend(events)
                    _emit_unit_profile(unit, len(events), delta)
                results.append(result)
        return results

    @staticmethod
    def _picklable(units: Sequence[WorkUnit]) -> bool:
        try:
            pickle.dumps(units)
        except Exception:  # noqa: BLE001 — any pickling failure means serial
            return False
        return True


def map_cached(
    executor: ParallelExecutor,
    units: Sequence[WorkUnit],
    keys: Sequence[str],
    store: Optional["ResultCache"] = None,
) -> List[Any]:
    """Run a batch through the content-addressed cache.

    Each unit is paired with its cache key: hits are served from the
    cache in the parent (one lookup each, never submitted), misses are
    fanned out through ``executor`` and the computed results are stored
    back — so a later batch (or CLI verb sharing a ``--cache-dir``)
    reuses them.  Results come back in unit order either way.
    """
    if len(units) != len(keys):
        raise ValueError("units and keys must have equal length")
    if store is None:
        from .cache import get_cache

        store = get_cache()
    results: List[Any] = [None] * len(units)
    pending: List[int] = []
    for index, key in enumerate(keys):
        found, value = store.get(key)
        if found:
            results[index] = value
        else:
            pending.append(index)
    for index, value in zip(pending, executor.map([units[i] for i in pending])):
        store.put(keys[index], value)
        results[index] = value
    return results
