"""Discrete-event simulation kernel.

A minimal, deterministic event engine in the style of SimPy: processes are
Python generators that yield :class:`Event` objects (timeouts, resource
grants, store gets) and are resumed when those events fire.  Everything in
the library — packet arrivals, CPU service, accelerator batches, power
sensor sampling — runs on top of this kernel.

Determinism: events scheduled for the same simulated time fire in FIFO
order of scheduling (a monotonic sequence number breaks ties), so repeated
runs with the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, List, Optional, Tuple

from . import instrument, trace


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (negative delays, double triggers...)."""


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, is *triggered* with an optional value, and
    then fires: every registered callback runs once, in registration order.
    Waiting on an already-fired event resumes the waiter immediately (at the
    current simulation time).
    """

    __slots__ = ("sim", "callbacks", "_value", "_state")

    PENDING, TRIGGERED, FIRED = 0, 1, 2

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._state = Event.PENDING

    @property
    def triggered(self) -> bool:
        return self._state != Event.PENDING

    @property
    def fired(self) -> bool:
        return self._state == Event.FIRED

    @property
    def value(self) -> Any:
        return self._value

    def trigger(self, value: Any = None) -> "Event":
        """Schedule this event to fire now (at the current sim time)."""
        if self._state != Event.PENDING:
            raise SimulationError("event triggered twice")
        self._state = Event.TRIGGERED
        self._value = value
        self.sim._schedule_event(0.0, self)
        return self

    def _fire(self) -> None:
        self._state = Event.FIRED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self._state == Event.FIRED:
            # Fire immediately but asynchronously, preserving ordering.
            self.sim._schedule_event(0.0, _DeferredCallback(self, callback))
        else:
            self.callbacks.append(callback)


class _DeferredCallback:
    """A queue entry that re-delivers an already-fired event to one late
    callback — cheaper than allocating a full holder Event, and the
    callback sees the original event (same ``value``)."""

    __slots__ = ("event", "callback")

    def __init__(self, event: Event, callback: Callable[[Event], None]):
        self.event = event
        self.callback = callback

    def _fire(self) -> None:
        self.callback(self.event)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Fast path: timeouts are the most-allocated event by far, and
        # they are born TRIGGERED — initialize the slots directly instead
        # of paying for Event.__init__ plus a second state assignment.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._state = Event.TRIGGERED
        sim._schedule_event(delay, self)


class Process(Event):
    """Drives a generator; the process itself is an event that fires when
    the generator returns (with the generator's return value)."""

    __slots__ = ("_generator", "name")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next kernel step at the current time.
        starter = Event(sim)
        starter.callbacks.append(self._resume)
        starter._state = Event.TRIGGERED
        sim._schedule_event(0.0, starter)

    def _resume(self, event: Event) -> None:
        if self._state != Event.PENDING:
            return  # interrupted while waiting; drop stale wakeups
        try:
            target = self._generator.send(event.value)
        except StopIteration as stop:
            self.trigger(stop.value)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                "expected an Event"
            )
        target.add_callback(self._resume)

    def interrupt(self) -> None:
        """Stop the process; its event fires with value None."""
        if self._state == Event.PENDING:
            self._generator.close()
            self.trigger(None)


class Simulator:
    """The event loop: a time-ordered queue of triggered events."""

    def __init__(self):
        self._now = 0.0
        # Entries are (time, seq, firable): anything with a ``_fire``
        # method (Events, deferred callbacks).  ``seq`` is a plain int —
        # cheaper to bump than an itertools.count and it keeps same-time
        # entries in FIFO order without ever comparing the payload.
        self._queue: List[Tuple[float, int, Any]] = []
        self._sequence = 0
        # Flight-recorder bookkeeping: fired-event count and cumulative
        # run-loop wall time.  Folded into the process-wide instrument
        # counters at the end of every run() call (not per event — the
        # run loop itself only pays one local integer add per event).
        self.events_fired = 0
        self.run_wall_s = 0.0
        self._folded_scheduled = 0
        self._folded_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever pushed onto the queue."""
        return self._sequence

    def _schedule_event(self, delay: float, event: Any) -> None:
        self._sequence += 1
        heapq.heappush(self._queue, (self._now + delay, self._sequence, event))

    # -- public API ---------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a generator as a concurrently running process."""
        return Process(self, generator, name)

    def step(self) -> bool:
        """Fire the next event; return False when the queue is empty."""
        if not self._queue:
            return False
        time, _, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("time went backwards")
        self._now = time
        event._fire()
        self.events_fired += 1
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run until the queue drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise SimulationError(f"run(until={until}) is in the past")
        # Inlined step loop: one heappop and one _fire per event, without
        # the peek/step call overhead — this is the kernel's hot loop.
        # Instrumentation stays out of it: one local integer add per
        # event, folded into the process counters once on exit.
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        wall_start = perf_counter()
        try:
            while queue:
                if until is not None and queue[0][0] > until:
                    self._now = until
                    return self._now
                time, _, event = pop(queue)
                self._now = time
                event._fire()
                fired += 1
            if until is not None:
                self._now = until
            return self._now
        finally:
            self.events_fired += fired
            self.run_wall_s += perf_counter() - wall_start
            self._fold_instrumentation()

    def _fold_instrumentation(self) -> None:
        """Publish scheduled/fired deltas since the last fold."""
        scheduled = self._sequence - self._folded_scheduled
        fired = self.events_fired - self._folded_fired
        if scheduled:
            instrument.increment(instrument.EVENTS_SCHEDULED, scheduled)
        if fired:
            instrument.increment(instrument.EVENTS_FIRED, fired)
        self._folded_scheduled = self._sequence
        self._folded_fired = self.events_fired
        if trace.TRACING:
            trace.instant("sim.run", trace.SIM, ts=self._now,
                          events_fired=self.events_fired,
                          events_scheduled=self._sequence)

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def any_of(self, events: List[Event]) -> Event:
        """Event that fires when the first of ``events`` fires."""
        combined = self.event()

        def _on_fire(event: Event) -> None:
            if not combined.triggered:
                combined.trigger(event.value)

        for event in events:
            event.add_callback(_on_fire)
        return combined

    def all_of(self, events: List[Event]) -> Event:
        """Event that fires (with a list of values) when all fire."""
        combined = self.event()
        remaining = [len(events)]
        values: List[Any] = [None] * len(events)
        if not events:
            combined.trigger([])
            return combined

        def _make(index: int) -> Callable[[Event], None]:
            def _on_fire(event: Event) -> None:
                values[index] = event.value
                remaining[0] -= 1
                if remaining[0] == 0:
                    combined.trigger(list(values))

            return _on_fire

        for index, event in enumerate(events):
            event.add_callback(_make(index))
        return combined
